// Table 2: 8-processor message totals and data totals (KB) for the
// regular applications under the four systems.
//
// Paper values (full sizes):
//            messages:  SPF    Tmk    XHPF   PVMe  | data KB: SPF    Tmk    XHPF    PVMe
//   Jacobi :            8538   8407   4207   1400  |          989    862    11458   11469
//   Shallow:            13034  11767  7792   1985  |          10814  10400  18407   7328
//   MGS    :            57283  30457  38905  7168  |          59724  55681  29430   29360
//   3-D FFT:            52818  36477  33913  1155  |          103228 74107  102763  73401
//
// Expected shape: DSM systems send the most messages (page-granularity
// fetches + separate synchronization); PVMe the fewest; the DSM versions
// of Jacobi move *less data* than MP (diffs carry only modified words).
#include <benchmark/benchmark.h>

#include "bench_grid.hpp"
#include "bench_opts.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::register_workload_grids(apps::WorkloadClass::kRegular);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_traffic(
      "Table 2: 8-processor message totals and data totals (KB), "
      "regular applications");
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
