// Table 2: 8-processor message totals and data totals (KB) for the
// regular applications under the four systems.
//
// Paper values (full sizes):
//            messages:  SPF    Tmk    XHPF   PVMe  | data KB: SPF    Tmk    XHPF    PVMe
//   Jacobi :            8538   8407   4207   1400  |          989    862    11458   11469
//   Shallow:            13034  11767  7792   1985  |          10814  10400  18407   7328
//   MGS    :            57283  30457  38905  7168  |          59724  55681  29430   29360
//   3-D FFT:            52818  36477  33913  1155  |          103228 74107  102763  73401
//
// Expected shape: DSM systems send the most messages (page-granularity
// fetches + separate synchronization); PVMe the fewest; the DSM versions
// of Jacobi move *less data* than MP (diffs carry only modified words).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_grid.hpp"
#include "bench_sizes.hpp"

namespace {

const std::initializer_list<apps::System> kSystems = {
    apps::System::kSpf, apps::System::kTmk, apps::System::kXhpf,
    apps::System::kPvme};

void BM_Traffic(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("Jacobi",
                    [](apps::System s, int np) {
                      return apps::run_jacobi(s, bench::jacobi_params(), np,
                                              bench::calibrated_options(bench::jacobi_scale()));
                    },
                    kSystems);
    bench::run_grid("Shallow",
                    [](apps::System s, int np) {
                      return apps::run_shallow(s, bench::shallow_params(), np,
                                               bench::calibrated_options(bench::shallow_scale()));
                    },
                    kSystems);
    bench::run_grid("MGS",
                    [](apps::System s, int np) {
                      return apps::run_mgs(s, bench::mgs_params(), np,
                                           bench::calibrated_options(bench::mgs_scale()));
                    },
                    kSystems);
    bench::run_grid("3-D FFT",
                    [](apps::System s, int np) {
                      return apps::run_fft3d(s, bench::fft_params(), np,
                                             bench::calibrated_options(bench::fft_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Traffic)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_traffic(
      "Table 2: 8-processor message totals and data totals (KB), "
      "regular applications");
  benchmark::Shutdown();
  return 0;
}
