// §5 "Results of Hand Optimizations": the per-application optimizations
// applied to the DSM programs through the extension interface of
// Dwarkadas et al. [7].
//
//   Jacobi : data aggregation (push of boundary rows)     6.99 -> 7.23
//            (hand-coded MP reference: 7.55)
//   MGS    : merged synchronization+data via broadcast    4.19 -> 5.09
//            (applied to the hand-coded TreadMarks version)
//   3-D FFT: aggregated validate of the transposed slabs  2.65 -> 5.05
//            (hand-coded MP reference: 5.12)
//
// Expected shape: each optimization closes most of the gap between the
// DSM version and the hand-coded message-passing version. The triples
// are derived from the registry: any workload with a kSpfOpt or kTmkOpt
// variant is measured as {baseline DSM, optimized DSM, hand MP}.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_grid.hpp"
#include "bench_opts.hpp"

namespace {

/// {baseline, optimized, reference} for a workload with a §5 hand
/// optimization; empty if it has none.
std::vector<apps::System> opt_triple(const apps::Workload& w) {
  if (w.find(apps::System::kSpfOpt) != nullptr)
    return {apps::System::kSpf, apps::System::kSpfOpt, apps::System::kPvme};
  if (w.find(apps::System::kTmkOpt) != nullptr)
    return {apps::System::kTmk, apps::System::kTmkOpt, apps::System::kPvme};
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const apps::Workload& w : apps::all_workloads()) {
    const auto systems = opt_triple(w);
    if (systems.empty()) continue;
    benchmark::RegisterBenchmark(w.key.c_str(),
                                 [&w, systems](benchmark::State& state) {
                                   for (auto _ : state)
                                     bench::run_workload_grid(w, systems);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "§5 hand-optimization study (baseline DSM, optimized DSM, "
      "hand MP reference)");
  std::cout << "\npaper reference (8 processors):\n";
  for (const apps::Workload& w : apps::all_workloads()) {
    const auto systems = opt_triple(w);
    if (systems.empty()) continue;
    std::cout << "  " << bench::paper_reference_line(w, systems) << "\n";
  }
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
