// §5 "Results of Hand Optimizations": the per-application optimizations
// applied to the DSM programs through the extension interface of
// Dwarkadas et al. [7].
//
//   Jacobi : data aggregation (push of boundary rows)     6.99 -> 7.23
//            (hand-coded MP reference: 7.55)
//   MGS    : merged synchronization+data via broadcast    4.19 -> 5.09
//            (applied to the hand-coded TreadMarks version)
//   3-D FFT: aggregated validate of the transposed slabs  2.65 -> 5.05
//            (hand-coded MP reference: 5.12)
//
// Expected shape: each optimization closes most of the gap between the
// DSM version and the hand-coded message-passing version.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_grid.hpp"
#include "bench_sizes.hpp"

namespace {

void BM_JacobiOpt(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("Jacobi",
                    [](apps::System s, int np) {
                      return apps::run_jacobi(s, bench::jacobi_params(), np,
                                              bench::calibrated_options(bench::jacobi_scale()));
                    },
                    {apps::System::kSpf, apps::System::kSpfOpt,
                     apps::System::kPvme});
  }
}
BENCHMARK(BM_JacobiOpt)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MgsOpt(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("MGS",
                    [](apps::System s, int np) {
                      return apps::run_mgs(s, bench::mgs_params(), np,
                                           bench::calibrated_options(bench::mgs_scale()));
                    },
                    {apps::System::kTmk, apps::System::kTmkOpt,
                     apps::System::kPvme});
  }
}
BENCHMARK(BM_MgsOpt)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FftOpt(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("3-D FFT",
                    [](apps::System s, int np) {
                      return apps::run_fft3d(s, bench::fft_params(), np,
                                             bench::calibrated_options(bench::fft_scale()));
                    },
                    {apps::System::kSpf, apps::System::kSpfOpt,
                     apps::System::kPvme});
  }
}
BENCHMARK(BM_FftOpt)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "§5 hand-optimization study (baseline DSM, optimized DSM, "
      "hand MP reference)");
  std::cout << "\npaper reference: Jacobi 6.99 -> 7.23 (PVMe 7.55); "
               "MGS 4.19 -> 5.09 (PVMe 6.55);\n3-D FFT 2.65 -> 5.05 "
               "(PVMe 5.12)\n";
  benchmark::Shutdown();
  return 0;
}
