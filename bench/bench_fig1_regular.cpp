// Figure 1: 8-processor speedups for the regular applications (Jacobi,
// Shallow, MGS, 3-D FFT) under SPF-generated TreadMarks, hand-coded
// TreadMarks, XHPF-generated message passing, and hand-coded PVMe.
//
// Expected shape: PVMe >= XHPF > Tmk >= SPF/Tmk for every application
// (the paper's reference values are printed from the registry after the
// run). The benchmark cases are generated from the workload registry:
// one case per regular workload, covering its paper system set.
#include <benchmark/benchmark.h>

#include "bench_grid.hpp"
#include "bench_opts.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::register_workload_grids(apps::WorkloadClass::kRegular);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "Figure 1: 8-processor speedups, regular applications");
  bench::print_paper_reference(apps::WorkloadClass::kRegular);
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
