// Figure 1: 8-processor speedups for the regular applications (Jacobi,
// Shallow, MGS, 3-D FFT) under SPF-generated TreadMarks, hand-coded
// TreadMarks, XHPF-generated message passing, and hand-coded PVMe.
//
// Paper values (8 processors, full sizes):
//   Jacobi : SPF/Tmk 6.99  Tmk 7.13  XHPF 7.39  PVMe 7.55
//   Shallow: SPF/Tmk 5.71  Tmk 6.21  XHPF 6.60  PVMe 6.77
//   MGS    : SPF/Tmk 3.35  Tmk 4.19  XHPF 5.06  PVMe 6.55
//   3-D FFT: SPF/Tmk 2.65  Tmk 3.06  XHPF 4.44  PVMe 5.12
// Expected shape: PVMe >= XHPF > Tmk >= SPF/Tmk for every application.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_grid.hpp"
#include "bench_sizes.hpp"

namespace {

const std::initializer_list<apps::System> kSystems = {
    apps::System::kSpf, apps::System::kTmk, apps::System::kXhpf,
    apps::System::kPvme};

void BM_Jacobi(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("Jacobi",
                    [](apps::System s, int np) {
                      return apps::run_jacobi(s, bench::jacobi_params(), np,
                                              bench::calibrated_options(bench::jacobi_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Jacobi)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Shallow(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("Shallow",
                    [](apps::System s, int np) {
                      return apps::run_shallow(s, bench::shallow_params(), np,
                                               bench::calibrated_options(bench::shallow_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Shallow)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Mgs(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("MGS",
                    [](apps::System s, int np) {
                      return apps::run_mgs(s, bench::mgs_params(), np,
                                           bench::calibrated_options(bench::mgs_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Mgs)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fft(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("3-D FFT",
                    [](apps::System s, int np) {
                      return apps::run_fft3d(s, bench::fft_params(), np,
                                             bench::calibrated_options(bench::fft_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Fft)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "Figure 1: 8-processor speedups, regular applications");
  std::cout << "\npaper reference: Jacobi 6.99/7.13/7.39/7.55, "
               "Shallow 5.71/6.21/6.60/6.77,\n"
               "MGS 3.35/4.19/5.06/6.55, 3-D FFT 2.65/3.06/4.44/5.12 "
               "(SPF/Tmk, Tmk, XHPF, PVMe)\n";
  benchmark::Shutdown();
  return 0;
}
