// §2.3 ablation: the improved compiler/run-time interface.
//
// The original fork-join mapping onto TreadMarks costs 8(n-1) messages
// per parallel loop: two full barriers (4(n-1)) plus two page faults per
// worker for the loop-control pages (4(n-1)). The improved interface —
// one-to-all barrier departure carrying the loop-control block, plus an
// all-to-one arrival — costs 2(n-1). The paper reports "a significant
// effect on execution time"; all its results use the improved interface.
//
// This bench runs the SPF Jacobi under both dispatch modes and reports
// messages per parallel loop and modelled time. (It reaches below the
// registry on purpose: DispatchMode is an spf::Runtime knob, not a
// paper system point.)
#include <benchmark/benchmark.h>

#include <iostream>

#include "apps/jacobi.hpp"
#include "bench_common.hpp"
#include "bench_opts.hpp"
#include "spf/runtime.hpp"

namespace {

// A reduced Jacobi so loop-dispatch overhead dominates visibly.
apps::JacobiParams interface_params() {
  apps::JacobiParams p;
  p.n = 512;
  p.iters = 30;
  p.warmup_iters = 1;
  return p;
}

runner::RunResult run_mode(spf::DispatchMode mode) {
  const auto p = interface_params();
  return runner::spawn(bench::kProcs, bench::paper_options(),
                       [&p, mode](runner::ChildContext& c) {
                         return mode == spf::DispatchMode::kLegacy
                                    ? apps::jacobi_spf_legacy(c, p)
                                    : apps::jacobi_spf(c, p);
                       });
}

void record_mode(spf::DispatchMode mode, const char* label,
                 benchmark::State& state) {
  const auto r = run_mode(mode);
  state.counters["messages"] =
      static_cast<double>(r.messages(mpl::Layer::kTmk));
  state.counters["model_seconds"] = r.seconds();
  bench::Row row;
  row.app = "Jacobi (512^2 x 30)";
  row.system = label;
  row.size = "512^2 x 30";
  row.nprocs = bench::kProcs;
  row.seconds = r.seconds();
  row.messages = r.messages(mpl::Layer::kTmk);
  row.kbytes = r.kbytes(mpl::Layer::kTmk);
  bench::Report::instance().add(row);
}

void BM_LegacyInterface(benchmark::State& state) {
  for (auto _ : state)
    record_mode(spf::DispatchMode::kLegacy, "legacy 8(n-1)", state);
}
BENCHMARK(BM_LegacyInterface)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ImprovedInterface(benchmark::State& state) {
  for (auto _ : state)
    record_mode(spf::DispatchMode::kImproved, "improved 2(n-1)", state);
}
BENCHMARK(BM_ImprovedInterface)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::cout << "\n=== §2.3: compiler/run-time interface ablation "
               "(SPF Jacobi, 8 procs) ===\n";
  common::TextTable t;
  t.header({"interface", "messages", "data(KB)", "time(s)"});
  for (const auto& row : bench::Report::instance().rows())
    t.row({row.system, std::to_string(row.messages),
           common::TextTable::num(row.kbytes, 0),
           common::TextTable::num(row.seconds, 3)});
  t.print(std::cout);
  std::cout << "\npaper: the improved interface cuts fork-join traffic from "
               "8(n-1) to 2(n-1)\nmessages per parallel loop and has a "
               "significant effect on execution time.\n";
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
