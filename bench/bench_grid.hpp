// Runs one application across the paper's four system points (plus the
// sequential baseline) and records the rows.
#pragma once

#include <functional>
#include <string>

#include "bench_common.hpp"

namespace bench {

using GridRunFn =
    std::function<runner::RunResult(apps::System, int nprocs)>;

/// Measures seq + each requested system at kProcs processors.
inline void run_grid(const std::string& app, const GridRunFn& run,
                     std::initializer_list<apps::System> systems) {
  const runner::RunResult seq = run(apps::System::kSeq, 1);
  const double seq_seconds = seq.seconds();
  for (apps::System s : systems) {
    measure(app, s, seq_seconds,
            [&run, s] { return run(s, kProcs); });
  }
}

}  // namespace bench
