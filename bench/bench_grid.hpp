// Runs one registry workload across a set of system points (plus the
// sequential baseline) and records the rows.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench_calibration.hpp"
#include "bench_common.hpp"

namespace bench {

/// Measures seq + each requested system at kProcs processors, using the
/// bench preset (TMK_FULL_SIZES selects the paper's full sizes).
inline void run_workload_grid(const apps::Workload& w,
                              const std::vector<apps::System>& systems) {
  const runner::SpawnOptions opts = calibrated_options(w);
  const std::any& params = w.params(bench_preset());
  const std::string size = w.describe(params);
  const runner::RunResult seq =
      apps::run_workload(w, apps::System::kSeq, 1, opts, params);
  for (apps::System s : systems)
    record(w.name, s, kProcs, seq.seconds(),
           apps::run_workload(w, s, kProcs, opts, params), size);
}

/// Registers one google-benchmark case per registry workload of the
/// class, each running the full paper-system grid — the shared main-
/// body of the figure/table binaries.
inline void register_workload_grids(apps::WorkloadClass cls) {
  for (const apps::Workload& w : apps::all_workloads()) {
    if (w.cls != cls) continue;
    benchmark::RegisterBenchmark(w.key.c_str(),
                                 [&w](benchmark::State& state) {
                                   for (auto _ : state)
                                     run_workload_grid(w, w.paper_systems());
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace bench
