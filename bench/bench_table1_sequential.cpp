// Table 1: data-set sizes and sequential execution times.
//
// Paper (8-node SP/2): Jacobi 2048x2048x100; Shallow 1024x1024x50; MGS
// 1024x1024 (56.4 s); 3-D FFT 128x128x64x5 (37.7 s); IGrid 500x500x19
// (42.6 s); NBF 32K molecules x 20 (63.9 s). This harness uses reduced
// sizes (noted per row) and reports the modelled sequential time:
// measured CPU scaled onto the SP/2-era node (TMK_CPU_SCALE).
#include <benchmark/benchmark.h>

#include <iostream>

#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/shallow.hpp"
#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_sizes.hpp"

namespace {

void BM_SeqJacobi(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_jacobi(apps::System::kSeq,
                                    bench::jacobi_params(), 1,
                                    bench::calibrated_options(bench::jacobi_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "Jacobi (" + bench::jacobi_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqJacobi)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SeqShallow(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_shallow(apps::System::kSeq,
                                     bench::shallow_params(), 1,
                                     bench::calibrated_options(bench::shallow_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "Shallow (" + bench::shallow_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqShallow)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SeqMgs(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_mgs(apps::System::kSeq, bench::mgs_params(), 1,
                                 bench::calibrated_options(bench::mgs_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "MGS (" + bench::mgs_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqMgs)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SeqFft(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_fft3d(apps::System::kSeq, bench::fft_params(), 1,
                                   bench::calibrated_options(bench::fft_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "3-D FFT (" + bench::fft_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqFft)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SeqIGrid(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_igrid(apps::System::kSeq, bench::igrid_params(),
                                   1, bench::calibrated_options(bench::igrid_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "IGrid (" + bench::igrid_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqIGrid)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SeqNbf(benchmark::State& state) {
  for (auto _ : state) {
    const auto r = apps::run_nbf(apps::System::kSeq, bench::nbf_params(), 1,
                                 bench::calibrated_options(bench::nbf_scale()));
    state.counters["model_seconds"] = r.seconds();
    bench::Row row;
    row.app = "NBF (" + bench::nbf_size_label() + ")";
    row.system = "seq";
    row.seconds = r.seconds();
    row.speedup = 1.0;
    bench::Report::instance().add(row);
  }
}
BENCHMARK(BM_SeqNbf)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::cout << "\n[Table 1] Data set sizes and sequential execution time\n"
               "(modelled seconds on the SP/2-class node; paper: MGS 56.4s,"
               " 3-D FFT 37.7s, IGrid 42.6s, NBF 63.9s at full sizes)\n";
  common::TextTable t;
  t.header({"application (size)", "time (model s)"});
  for (const auto& row : bench::Report::instance().rows())
    t.row({row.app, common::TextTable::num(row.seconds, 3)});
  t.print(std::cout);
  benchmark::Shutdown();
  return 0;
}
