// Table 1: data-set sizes and sequential execution times.
//
// Paper (8-node SP/2): Jacobi 2048x2048x100; Shallow 1024x1024x50; MGS
// 1024x1024 (56.4 s); 3-D FFT 128x128x64x5 (37.7 s); IGrid 500x500x19
// (42.6 s); NBF 32K molecules x 20 (63.9 s). This harness uses reduced
// sizes (noted per row) and reports the modelled sequential time:
// measured CPU scaled onto the SP/2-era node (TMK_CPU_SCALE). One
// benchmark case per registry workload.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_opts.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const apps::Workload& w : apps::all_workloads()) {
    benchmark::RegisterBenchmark(
        w.key.c_str(),
        [&w](benchmark::State& state) {
          for (auto _ : state) {
            const std::any& params = w.params(bench::bench_preset());
            const auto r = apps::run_workload(w, apps::System::kSeq, 1,
                                              bench::calibrated_options(w),
                                              params);
            state.counters["model_seconds"] = r.seconds();
            bench::Row row;
            row.app = w.name + " (" + w.describe(params) + ")";
            row.system = "seq";
            row.size = w.describe(params);
            row.nprocs = 1;
            row.seconds = r.seconds();
            row.speedup = 1.0;
            row.checksum = r.checksum;
            bench::Report::instance().add(row);
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  std::cout << "\n[Table 1] Data set sizes and sequential execution time\n"
               "(modelled seconds on the SP/2-class node; paper: MGS 56.4s,"
               " 3-D FFT 37.7s, IGrid 42.6s, NBF 63.9s at full sizes)\n";
  common::TextTable t;
  t.header({"application (size)", "time (model s)"});
  for (const auto& row : bench::Report::instance().rows())
    t.row({row.app, common::TextTable::num(row.seconds, 3)});
  t.print(std::cout);
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
