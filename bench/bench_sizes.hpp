// Problem sizes used by every bench binary, with the paper's full sizes
// noted. One place to change when scaling the reproduction up or down
// (e.g. on a many-core host, export TMK_FULL_SIZES=1 for the paper's
// dimensions).
#pragma once

#include <cstdlib>
#include <string>

#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/shallow.hpp"

namespace bench {

inline bool full_sizes() {
  const char* env = std::getenv("TMK_FULL_SIZES");
  return env != nullptr && env[0] == '1';
}

// Paper: 2048 x 2048, 100 timed iterations.
inline apps::JacobiParams jacobi_params() {
  apps::JacobiParams p;
  if (full_sizes()) {
    p.n = 2048;
    p.iters = 100;
  } else {
    p.n = 2048;   // paper's grid; fewer iterations
    p.iters = 10;
  }
  p.warmup_iters = 1;
  return p;
}
inline std::string jacobi_size_label() {
  const auto p = jacobi_params();
  return std::to_string(p.n) + "^2 x " + std::to_string(p.iters);
}

// Paper: 1024 x 1024, 50 timed iterations.
inline apps::ShallowParams shallow_params() {
  apps::ShallowParams p;
  if (full_sizes()) {
    p.n = 1023;
    p.iters = 50;
  } else {
    p.n = 1023;   // paper's grid (page-aligned rows); fewer iterations
    p.iters = 8;
  }
  p.warmup_iters = 1;
  return p;
}
inline std::string shallow_size_label() {
  const auto p = shallow_params();
  return std::to_string(p.n + 1) + "^2 x " + std::to_string(p.iters);
}

// Paper: 1024 x 1024.
inline apps::MgsParams mgs_params() {
  apps::MgsParams p;
  if (full_sizes()) {
    p.n = 1024;
    p.m = 1024;
  } else {
    p.n = 1024;  // paper's size (the step count is the iteration count)
    p.m = 1024;
  }
  return p;
}
inline std::string mgs_size_label() {
  const auto p = mgs_params();
  return std::to_string(p.n) + " x " + std::to_string(p.m);
}

// Paper: 128 x 128 x 64, 5 timed iterations.
inline apps::FftParams fft_params() {
  apps::FftParams p;
  if (full_sizes()) {
    p.nx = 128;
    p.ny = 128;
    p.nz = 64;
    p.iters = 5;
  } else {
    p.nx = 128;   // paper's grid; fewer iterations
    p.ny = 128;
    p.nz = 64;
    p.iters = 2;
  }
  p.warmup_iters = 1;
  return p;
}
inline std::string fft_size_label() {
  const auto p = fft_params();
  return std::to_string(p.nx) + "x" + std::to_string(p.ny) + "x" +
         std::to_string(p.nz) + " x " + std::to_string(p.iters);
}

// Paper: 500 x 500, 19 timed iterations.
inline apps::IGridParams igrid_params() {
  apps::IGridParams p;
  if (full_sizes()) {
    p.n = 500;
    p.iters = 19;
  } else {
    p.n = 500;    // paper's grid
    p.iters = 10;
  }
  p.warmup_iters = 1;
  return p;
}
inline std::string igrid_size_label() {
  const auto p = igrid_params();
  return std::to_string(p.n) + "^2 x " + std::to_string(p.iters);
}

// Paper: 32K molecules, 20 timed iterations.
inline apps::NbfParams nbf_params() {
  apps::NbfParams p;
  if (full_sizes()) {
    p.nmol = 32 * 1024;
    p.iters = 20;
  } else {
    p.nmol = 32 * 1024;  // paper's molecule count; fewer iterations
    p.iters = 8;
  }
  p.partners = 16;
  p.window = 256;
  p.warmup_iters = 1;
  return p;
}
inline std::string nbf_size_label() {
  const auto p = nbf_params();
  return std::to_string(p.nmol) + " mol x " + std::to_string(p.iters);
}

}  // namespace bench
