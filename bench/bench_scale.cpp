// Scale sweeps beyond the paper's 8 processors, on both transports.
//
// The paper's Figures 1-2 stop at 8 nodes because the SP/2 did. The
// modelled results are transport-invariant, so what actually bounds
// larger configurations is the *host-side* cost of the simulation
// harness — which is exactly what the shared-memory transport attacks.
// This binary sweeps every registry variant that opts into scaling
// (Variant::scale_nprocs: Jacobi, Shallow, MGS, 3-D FFT — both the
// TreadMarks and the hand-coded message-passing variants — at 2..32)
// over {socket, shm}, and records per row both the modelled speedup
// and the host wall/CPU cost, so BENCH_results.json tracks two
// trajectories at once: how the modelled systems scale past the paper,
// and how much cheaper the shm mailbox fabric makes simulating them.
// The DSM variants' host time is part protocol work (twins, diffs,
// mprotect), so the transport buys them tens of percent; the MP
// variants are nearly pure messaging and show the raw transport gap
// (2-10x here).
//
//   ./bench_scale                          # both transports, registry sweep
//   ./bench_scale --transport=shm          # one transport only
//   ./bench_scale --backend=thread         # rank threads on the inproc mesh
//   ./bench_scale --nprocs-list=16,32      # override the sweep points
//
// Sizes follow the registry's scale preset (test-scale dimensions with
// amplified iteration counts, so transport cost — not spawn or raw
// compute — dominates); export TMK_FULL_SIZES=1 for paper sizes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_opts.hpp"

namespace {

const std::any& scale_params(const apps::Workload& w) {
  if (bench::full_sizes()) return w.params(apps::Preset::kFull);
  if (w.scale_params.has_value()) return w.scale_params;
  return w.params(apps::Preset::kReduced);
}

std::vector<mpl::TransportKind> transports() {
  // The thread backend always runs the in-process mesh; sweeping the
  // fork transports under it would just measure inproc twice.
  if (bench::opts().backend == runner::Backend::kThread)
    return {mpl::TransportKind::kInproc};
  if (bench::opts().transport_set) return {bench::opts().transport};
  return {mpl::TransportKind::kSocket, mpl::TransportKind::kShm};
}

void sweep_workload(const apps::Workload& w, const apps::Variant& v) {
  const std::any& params = scale_params(w);
  const std::string size = w.describe(params);
  runner::SpawnOptions opts = bench::paper_options();

  const std::vector<int>& nprocs_list = bench::opts().nprocs_list.empty()
                                            ? v.scale_nprocs
                                            : bench::opts().nprocs_list;
  for (mpl::TransportKind t : transports()) {
    opts.transport = t;
    // Per-transport sequential baseline: modelled time is identical
    // across transports (asserted by the equivalence suite); running it
    // under each keeps every row's host-side columns self-consistent.
    const runner::RunResult seq =
        apps::run_workload(w, apps::System::kSeq, 1, opts, params);
    bench::record(w.name, apps::System::kSeq, 1, seq.seconds(), seq, size);
    for (int np : nprocs_list) {
      const runner::RunResult r =
          apps::run_workload(w, v.system, np, opts, params);
      bench::record(w.name, v.system, np, seq.seconds(), r, size);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  for (const apps::Workload& w : apps::all_workloads()) {
    for (const apps::Variant& v : w.variants) {
      if (v.scale_nprocs.empty()) continue;
      const std::string name =
          w.key + "/" + apps::to_string(v.system);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [&w, &v](benchmark::State& state) {
                                     for (auto _ : state)
                                       sweep_workload(w, v);
                                   })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();

  std::cout << "\n=== scale sweep (modelled speedup and host cost per "
               "transport) ===\n";
  common::TextTable t;
  t.header({"application", "system", "transport", "backend", "update",
            "nprocs", "speedup", "time(s)", "host wall(s)", "host cpu(s)",
            "sends", "futex wakes", "faults", "pulls", "push hit/waste"});
  for (const bench::Row& r : bench::Report::instance().rows()) {
    if (r.nprocs < 2) continue;  // seq baseline rows
    t.row({r.app, r.system, r.transport, r.backend, r.update_mode,
           std::to_string(r.nprocs),
           common::TextTable::num(r.speedup, 2),
           common::TextTable::num(r.seconds, 3),
           common::TextTable::num(r.host_wall_s, 3),
           common::TextTable::num(r.host_cpu_s, 3),
           std::to_string(r.ctr(runner::ctr::Id::kHostSendCalls)),
           std::to_string(r.ctr(runner::ctr::Id::kHostFutexWakes)),
           std::to_string(r.ctr(runner::ctr::Id::kPageFaults)),
           std::to_string(r.ctr(runner::ctr::Id::kDiffRequests)),
           std::to_string(r.ctr(runner::ctr::Id::kPushHits)) + "/" +
               std::to_string(r.ctr(runner::ctr::Id::kPushWaste))});
  }
  t.print(std::cout);
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
