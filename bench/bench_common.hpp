// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure from the paper. Every
// experiment is registered both as a google-benchmark case (so standard
// tooling sees per-run wall time and the modelled speedup as a counter)
// and as a row of the paper-style summary table printed after the run.
//
// Problem sizes default to reduced versions of the paper's (the paper's
// sizes are annotated next to each bench); override the compute scale
// with TMK_CPU_SCALE.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "common/table.hpp"
#include "runner/runner.hpp"

namespace bench {

inline constexpr int kProcs = 8;  // the paper's 8-node SP/2

inline runner::SpawnOptions paper_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.shared_heap_bytes = 512ull << 20;
  o.timeout_sec = 1200;
  return o;
}

/// One measured configuration, in paper terms.
struct Row {
  std::string app;
  std::string system;
  double speedup = 0.0;       // vs the same app's sequential virtual time
  double seconds = 0.0;       // modelled parallel seconds
  std::uint64_t messages = 0;
  double kbytes = 0.0;
  double checksum = 0.0;
};

/// Collects rows across benchmark registrations; printed from main().
class Report {
 public:
  static Report& instance() {
    static Report r;
    return r;
  }

  void add(Row row) { rows_.push_back(std::move(row)); }

  void print_speedups(const std::string& title) const {
    std::cout << "\n=== " << title << " ===\n";
    common::TextTable t;
    t.header({"application", "system", "speedup", "time(s)"});
    for (const Row& r : rows_)
      t.row({r.app, r.system, common::TextTable::num(r.speedup, 2),
             common::TextTable::num(r.seconds, 3)});
    t.print(std::cout);
  }

  void print_traffic(const std::string& title) const {
    std::cout << "\n=== " << title << " ===\n";
    common::TextTable t;
    t.header({"application", "system", "messages", "data(KB)"});
    for (const Row& r : rows_)
      t.row({r.app, r.system, std::to_string(r.messages),
             common::TextTable::num(r.kbytes, 0)});
    t.print(std::cout);
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// Messages/bytes counted for a run: DSM traffic for the shared-memory
/// systems, PVMe traffic for the message-passing ones.
inline void fill_traffic(Row& row, apps::System system,
                         const runner::RunResult& r) {
  const mpl::Layer layer = (system == apps::System::kXhpf ||
                            system == apps::System::kPvme)
                               ? mpl::Layer::kPvme
                               : mpl::Layer::kTmk;
  row.messages = r.messages(layer);
  row.kbytes = r.kbytes(layer);
}

/// Runs one (app, system) configuration and records it. `run_fn` invokes
/// the app's dispatch helper; `seq_seconds` is the app's sequential
/// baseline in modelled seconds.
template <typename RunFn>
Row measure(const std::string& app, apps::System system, double seq_seconds,
            RunFn&& run_fn) {
  const runner::RunResult r = run_fn();
  Row row;
  row.app = app;
  row.system = apps::to_string(system);
  row.seconds = r.seconds();
  row.speedup = (r.seconds() > 0) ? seq_seconds / r.seconds() : 0.0;
  row.checksum = r.checksum;
  fill_traffic(row, system, r);
  Report::instance().add(row);
  return row;
}

}  // namespace bench
