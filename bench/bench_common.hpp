// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure from the paper by looping
// over the workload registry (apps/registry.hpp) — no per-application
// code here. Every experiment is registered both as a google-benchmark
// case (so standard tooling sees per-run wall time and the modelled
// speedup as a counter) and as a row of the paper-style summary table
// printed after the run; the same rows are appended to a machine-
// readable BENCH_results.json so the perf trajectory can be tracked
// across PRs.
//
// Problem sizes default to reduced versions of the paper's (fewer
// iterations at the paper's dimensions); export TMK_FULL_SIZES=1 for the
// paper's full iteration counts, and TMK_CPU_SCALE to pin the
// host-to-SP/2 compute scale instead of calibrating per workload.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/registry.hpp"
#include "bench_opts.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "runner/counters.hpp"
#include "runner/runner.hpp"
#include "tmk/config.hpp"

namespace bench {

inline constexpr int kProcs = 8;  // the paper's 8-node SP/2

inline runner::SpawnOptions paper_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.shared_heap_bytes = 512ull << 20;
  o.timeout_sec = 1200;
  o.transport = opts().transport;  // --transport / TMK_TRANSPORT
  o.backend = opts().backend;      // --backend / TMK_BACKEND
  return o;
}

inline bool full_sizes() {
  return common::env::flag_knob("TMK_FULL_SIZES", false);
}

/// The parameter preset the bench binaries run at.
inline apps::Preset bench_preset() {
  return full_sizes() ? apps::Preset::kFull : apps::Preset::kDefault;
}

/// One measured configuration, in paper terms.
struct Row {
  std::string app;
  std::string system;
  std::string size;  // params label, e.g. "2048^2 x 10"
  std::string transport;      // interconnect ("socket"/"shm"/"inproc")
  std::string backend;        // rank execution ("process"/"thread")
  int nprocs = 0;
  double speedup = 0.0;       // vs the same app's sequential virtual time
  double seconds = 0.0;       // modelled parallel seconds
  double host_wall_s = 0.0;   // real wall time of the run (harness cost)
  double host_cpu_s = 0.0;    // summed main-thread CPU across processes
  std::uint64_t messages = 0;
  double kbytes = 0.0;
  // Which update protocol the run used ("off" unless TMK_UPDATE_MODE
  // selected a push mode) — rows for the same (app, system, nprocs)
  // key differ across modes only in traffic/fault counters, so the
  // mode must be a column or the comparison is unreadable. Same for
  // the race-detection mode (TMK_RACECHECK).
  std::string update_mode = "off";
  std::string racecheck = "off";
  // Registry-declared counters (runner/counters.hpp): host-side
  // interconnect cost and DSM protocol observables flow through as one
  // block; the JSON writer emits them per layer, so a new counter is a
  // registry row, not another hand-threaded field here.
  runner::ctr::Block ctrs;
  double checksum = 0.0;

  [[nodiscard]] std::uint64_t ctr(runner::ctr::Id id) const noexcept {
    return ctrs[id];
  }
};

/// Collects rows across benchmark registrations; printed from main().
class Report {
 public:
  static Report& instance() {
    static Report r;
    return r;
  }

  void add(Row row) { rows_.push_back(std::move(row)); }

  void print_speedups(const std::string& title) const {
    std::cout << "\n=== " << title << " ===\n";
    common::TextTable t;
    t.header({"application", "system", "speedup", "time(s)"});
    for (const Row& r : rows_)
      t.row({r.app, r.system, common::TextTable::num(r.speedup, 2),
             common::TextTable::num(r.seconds, 3)});
    t.print(std::cout);
  }

  void print_traffic(const std::string& title) const {
    std::cout << "\n=== " << title << " ===\n";
    common::TextTable t;
    t.header({"application", "system", "messages", "data(KB)"});
    for (const Row& r : rows_)
      t.row({r.app, r.system, std::to_string(r.messages),
             common::TextTable::num(r.kbytes, 0)});
    t.print(std::cout);
  }

  /// Appends this binary's rows to a JSON array on disk (creating it if
  /// absent), so one full bench run accumulates every figure/table row
  /// in a single machine-readable file.
  void write_json(const std::string& path = "BENCH_results.json") const {
    if (rows_.empty()) return;
    std::string existing;
    if (std::ifstream in(path); in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
    // One marker per bench-binary invocation, so rows accumulated
    // across runs/PRs stay distinguishable.
    const std::string run_id =
        std::to_string(std::time(nullptr)) + "-" + std::to_string(getpid());
    std::ostringstream body;
    // Full round-trip precision: the checksum column is a bit-exactness
    // record, not a display value.
    body.precision(std::numeric_limits<double>::max_digits10);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      body << "  {\"run\": \"" << run_id << "\", \"app\": \""
           << json_escape(r.app) << "\", \"system\": \""
           << json_escape(r.system) << "\", \"size\": \""
           << json_escape(r.size) << "\", \"transport\": \""
           << json_escape(r.transport) << "\", \"backend\": \""
           << json_escape(r.backend) << "\", \"nprocs\": " << r.nprocs
           << ", \"speedup\": " << r.speedup
           << ", \"seconds\": " << r.seconds
           << ", \"host_wall_s\": " << r.host_wall_s
           << ", \"host_cpu_s\": " << r.host_cpu_s;
      // Registry-driven columns, grouped by layer to preserve the
      // historical key order: host costs right after host_cpu_s, DSM
      // observables after the mode labels.
      for (const runner::ctr::Desc& d : runner::ctr::kRegistry)
        if (d.layer == runner::ctr::Layer::kHost)
          body << ", \"" << d.json_key << "\": " << r.ctrs[d.id];
      body << ", \"messages\": " << r.messages
           << ", \"kbytes\": " << r.kbytes
           << ", \"update_mode\": \"" << json_escape(r.update_mode)
           << "\", \"racecheck\": \"" << json_escape(r.racecheck) << "\"";
      for (const runner::ctr::Desc& d : runner::ctr::kRegistry)
        if (d.layer == runner::ctr::Layer::kDsm)
          body << ", \"" << d.json_key << "\": " << r.ctrs[d.id];
      body << ", \"checksum\": " << r.checksum << "}";
      if (i + 1 < rows_.size()) body << ",\n";
    }
    std::string out;
    const std::size_t close = existing.rfind(']');
    if (close != std::string::npos) {
      // Merge: drop the closing bracket, append after the last row.
      std::string head = existing.substr(0, close);
      while (!head.empty() &&
             (head.back() == '\n' || head.back() == ' ' ||
              head.back() == '\t'))
        head.pop_back();
      const bool empty_array = !head.empty() && head.back() == '[';
      out = head + (empty_array ? "\n" : ",\n") + body.str() + "\n]\n";
    } else {
      out = "[\n" + body.str() + "\n]\n";
    }
    std::ofstream of(path, std::ios::trunc);
    of << out;
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Row> rows_;
};

/// Messages/bytes counted for a run: DSM traffic for the shared-memory
/// systems, PVMe traffic for the message-passing ones.
inline void fill_traffic(Row& row, apps::System system,
                         const runner::RunResult& r) {
  const mpl::Layer layer = (system == apps::System::kXhpf ||
                            system == apps::System::kPvme)
                               ? mpl::Layer::kPvme
                               : mpl::Layer::kTmk;
  row.messages = r.messages(layer);
  row.kbytes = r.kbytes(layer);
}

/// Records one completed (app, system) run; `seq_seconds` is the app's
/// sequential baseline in modelled seconds.
inline Row record(const std::string& app, apps::System system, int nprocs,
                  double seq_seconds, const runner::RunResult& r,
                  const std::string& size = {}) {
  Row row;
  row.app = app;
  row.system = apps::to_string(system);
  row.size = size;
  row.transport = mpl::to_string(r.transport);
  row.backend = runner::to_string(r.backend);
  row.nprocs = nprocs;
  row.seconds = r.seconds();
  row.speedup = (r.seconds() > 0) ? seq_seconds / r.seconds() : 0.0;
  row.host_wall_s = r.host_wall_s;
  row.host_cpu_s = static_cast<double>(r.total_cpu_ns) * 1e-9;
  row.ctrs = r.total_ctrs;
  row.checksum = r.checksum;
  // Mode labels come from the same typed snapshot the runtime consumed
  // (normalized spelling; garbage values label as the "off" the run
  // actually used).
  const tmk::Config cfg = tmk::Config::from_env();
  row.update_mode = tmk::to_string(cfg.update_mode);
  row.racecheck = tmk::to_string(cfg.racecheck);
  fill_traffic(row, system, r);
  Report::instance().add(row);
  return row;
}

/// "Jacobi 6.99/7.13/7.39/7.55 (SPF/Tmk, Tmk, XHPF, PVMe)" — the paper's
/// reference speedups for the systems the workload implements.
inline std::string paper_reference_line(const apps::Workload& w,
                                        const std::vector<apps::System>& systems) {
  std::string values = w.name + " ";
  std::string names;
  bool first = true;
  for (apps::System s : systems) {
    if (!first) {
      values += '/';
      names += ", ";
    }
    first = false;
    const apps::Workload::PaperSpeedup* v = w.find_paper_speedup(s);
    if (v == nullptr) {
      values += '?';
    } else {
      if (v->estimated) values += '~';  // read off a figure, not printed
      values += common::TextTable::num(v->speedup, 2);
    }
    names += apps::to_string(s);
  }
  return values + " (" + names + ")";
}

/// Footer shared by the speedup benches: one reference line per workload
/// of the class, straight from the registry.
inline void print_paper_reference(apps::WorkloadClass cls) {
  std::cout << "\npaper reference (8 processors):\n";
  for (const apps::Workload& w : apps::all_workloads())
    if (w.cls == cls)
      std::cout << "  " << paper_reference_line(w, w.paper_systems()) << "\n";
}

}  // namespace bench
