// Table 3: 8-processor message totals and data totals (KB) for the
// irregular applications.
//
// Paper values (full sizes):
//          messages: SPF    Tmk    XHPF   PVMe | data KB: SPF   Tmk  XHPF    PVMe
//   IGrid:           3806   1246   34769  320  |          7374  131  140001  640
//   NBF  :           14836  13194  45895  960  |          1543  228  163775  31457
//
// Expected shape: the XHPF broadcast fallback moves orders of magnitude
// more data than everything else; TreadMarks moves *less data than the
// hand MP code* on NBF (diffs ship only the modified words) while
// sending more messages.
#include <benchmark/benchmark.h>

#include "bench_grid.hpp"
#include "bench_opts.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::register_workload_grids(apps::WorkloadClass::kIrregular);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_traffic(
      "Table 3: 8-processor message totals and data totals (KB), "
      "irregular applications");
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
