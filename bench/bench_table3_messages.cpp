// Table 3: 8-processor message totals and data totals (KB) for the
// irregular applications.
//
// Paper values (full sizes):
//          messages: SPF    Tmk    XHPF   PVMe | data KB: SPF   Tmk  XHPF    PVMe
//   IGrid:           3806   1246   34769  320  |          7374  131  140001  640
//   NBF  :           14836  13194  45895  960  |          1543  228  163775  31457
//
// Expected shape: the XHPF broadcast fallback moves orders of magnitude
// more data than everything else; TreadMarks moves *less data than the
// hand MP code* on NBF (diffs ship only the modified words) while
// sending more messages.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_grid.hpp"
#include "bench_sizes.hpp"

namespace {

const std::initializer_list<apps::System> kSystems = {
    apps::System::kSpf, apps::System::kTmk, apps::System::kXhpf,
    apps::System::kPvme};

void BM_Traffic(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("IGrid",
                    [](apps::System s, int np) {
                      return apps::run_igrid(s, bench::igrid_params(), np,
                                             bench::calibrated_options(bench::igrid_scale()));
                    },
                    kSystems);
    bench::run_grid("NBF",
                    [](apps::System s, int np) {
                      return apps::run_nbf(s, bench::nbf_params(), np,
                                           bench::calibrated_options(bench::nbf_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Traffic)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_traffic(
      "Table 3: 8-processor message totals and data totals (KB), "
      "irregular applications");
  benchmark::Shutdown();
  return 0;
}
