// Hot-path microbenchmarks: diff creation/application, the socket
// fabric, and a barrier-heavy end-to-end DSM loop.
//
// Unlike the figure/table benches, which report *modelled* SP/2 time,
// every row here is host wall-clock: this binary measures the cost of
// the simulation harness itself, the thing that bounds how large a
// problem the paper-reproduction benches can afford. Rows accumulate in
// BENCH_results.json (app "hotpath:<path>") so the host-side perf
// trajectory is tracked across PRs alongside the modelled results.
//
// Run ./bench_hotpath from the repository root so rows land in the
// tracked BENCH_results.json; --benchmark_min_time=0.01s gives a quick
// smoke run (used by CI to catch hot-path regressions loudly).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <utility>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "bench_opts.hpp"
#include "common/page.hpp"
#include "common/prng.hpp"
#include "mpl/fabric.hpp"
#include "tmk/diff.hpp"
#include "tmk/runtime.hpp"

namespace {

using Page = std::array<std::byte, common::kPageSize>;
using Clock = std::chrono::steady_clock;

Page random_page(std::uint64_t seed) {
  Page p;
  common::SplitMix64 g(seed);
  for (auto& b : p) b = static_cast<std::byte>(g.next());
  return p;
}

/// Sparse writer: `words` isolated single-word stores, the page-fault
/// pattern of a boundary row in Jacobi or a pivot column in MGS.
Page sparse_mutation(const Page& twin, int words, std::uint64_t seed) {
  Page cur = twin;
  common::SplitMix64 g(seed);
  for (int i = 0; i < words; ++i) {
    const auto w = g.next_below(tmk::kWordsPerPage);
    std::uint32_t v = static_cast<std::uint32_t>(g.next()) | 1u;
    std::uint32_t old;
    std::memcpy(&old, cur.data() + w * tmk::kDiffWord, sizeof(old));
    v ^= old ? 0 : 1;  // guarantee the word actually changes
    if (v == old) v += 1;
    std::memcpy(cur.data() + w * tmk::kDiffWord, &v, sizeof(v));
  }
  return cur;
}

/// google-benchmark re-invokes each function while calibrating the
/// iteration count; keep only the final (longest, most accurate) run
/// per (path, variant).
std::map<std::pair<std::string, std::string>, bench::Row>& final_rows() {
  static std::map<std::pair<std::string, std::string>, bench::Row> rows;
  return rows;
}

/// Records one wall-clock row; micro rows carry per-op seconds.
void add_row(const std::string& path, const std::string& variant,
             double seconds, double checksum, int nprocs = 1,
             mpl::TransportKind transport = mpl::TransportKind::kSocket) {
  bench::Row row;
  row.app = "hotpath:" + path;
  row.system = variant;
  row.size = "wall-clock";
  row.transport = mpl::to_string(transport);
  row.nprocs = nprocs;
  row.seconds = seconds;
  row.checksum = checksum;
  final_rows()[{row.app, row.system}] = row;
}

// ---- diff creation ----------------------------------------------------

void bm_make_diff(benchmark::State& state, const char* variant,
                  const Page& twin, const Page& cur) {
  std::size_t bytes = 0;
  const auto t0 = Clock::now();
  for (auto _ : state) {
    auto d = tmk::make_diff(twin.data(), cur.data());
    bytes = d.size();
    benchmark::DoNotOptimize(d);
  }
  const auto t1 = Clock::now();
  const double per_op =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(state.iterations());
  state.counters["diff_bytes"] = static_cast<double>(bytes);
  add_row("make_diff", variant, per_op, static_cast<double>(bytes));
}

void BM_MakeDiffSparse(benchmark::State& state) {
  const Page twin = random_page(1);
  const Page cur = sparse_mutation(twin, 16, 2);
  bm_make_diff(state, "sparse16", twin, cur);
}
BENCHMARK(BM_MakeDiffSparse);

void BM_MakeDiffDense(benchmark::State& state) {
  const Page twin = random_page(3);
  const Page cur = random_page(4);
  bm_make_diff(state, "dense", twin, cur);
}
BENCHMARK(BM_MakeDiffDense);

void BM_MakeDiffUnchanged(benchmark::State& state) {
  const Page twin = random_page(5);
  bm_make_diff(state, "unchanged", twin, twin);
}
BENCHMARK(BM_MakeDiffUnchanged);

// ---- diff application -------------------------------------------------

void BM_ApplyDiffSparse(benchmark::State& state) {
  const Page twin = random_page(6);
  const Page cur = sparse_mutation(twin, 16, 7);
  const auto d = tmk::make_diff(twin.data(), cur.data());
  Page target = twin;
  const auto t0 = Clock::now();
  for (auto _ : state) {
    tmk::apply_diff(d, target.data());
    benchmark::DoNotOptimize(target);
  }
  const auto t1 = Clock::now();
  const double per_op =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(state.iterations());
  add_row("apply_diff", "sparse16", per_op, static_cast<double>(d.size()));
}
BENCHMARK(BM_ApplyDiffSparse);

// ---- fabric round trip ------------------------------------------------

// Loopback send_app + wait_app through the real transport: frame
// encode, the backend datagram hop (sendmsg/poll/recv for sockets, a
// ring push/pop with no syscalls for shm), reassembly, and the
// pending-queue predicate scan — everything but the wire. The
// socket-vs-shm pair of rows is the per-message cost the transport
// refactor targets.
void bm_fabric(benchmark::State& state, const char* variant,
               std::size_t payload_bytes, mpl::TransportKind kind) {
  mpl::Fabric fabric(1, kind);
  mpl::Endpoint ep(fabric, 0, simx::MachineModel::zero_cost());
  std::vector<std::byte> payload(payload_bytes, std::byte{0x5a});
  const auto t0 = Clock::now();
  for (auto _ : state) {
    ep.send_app(0, mpl::FrameKind::kTestPing, 0, 1, payload);
    auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    benchmark::DoNotOptimize(f);
  }
  const auto t1 = Clock::now();
  const double per_op =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(state.iterations());
  add_row("fabric_roundtrip", variant, per_op,
          static_cast<double>(payload_bytes), 1, kind);
}

void BM_FabricRoundTrip64(benchmark::State& state) {
  bm_fabric(state, "64B", 64, mpl::TransportKind::kSocket);
}
BENCHMARK(BM_FabricRoundTrip64);

void BM_FabricRoundTrip64Shm(benchmark::State& state) {
  bm_fabric(state, "64B-shm", 64, mpl::TransportKind::kShm);
}
BENCHMARK(BM_FabricRoundTrip64Shm);

void BM_FabricRoundTrip4K(benchmark::State& state) {
  bm_fabric(state, "4KiB", common::kPageSize, mpl::TransportKind::kSocket);
}
BENCHMARK(BM_FabricRoundTrip4K);

void BM_FabricRoundTrip4KShm(benchmark::State& state) {
  bm_fabric(state, "4KiB-shm", common::kPageSize, mpl::TransportKind::kShm);
}
BENCHMARK(BM_FabricRoundTrip4KShm);

// ---- end-to-end: barrier-heavy DSM inner loops ------------------------

// Wall-clock of a full reduced-preset run (fork, fault, twin, diff,
// barrier, join) with the zero-cost model: all that remains is the
// harness's own hot-path cost.
runner::SpawnOptions e2e_options(mpl::TransportKind kind) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  o.transport = kind;
  return o;
}

void bm_workload(benchmark::State& state, const char* key, int nprocs,
                 mpl::TransportKind kind, const char* variant) {
  const apps::Workload& w = apps::find_workload(key);
  double checksum = 0.0;
  const auto t0 = Clock::now();
  for (auto _ : state) {
    const auto r = apps::run_workload(w, apps::System::kTmk, nprocs,
                                      e2e_options(kind),
                                      apps::Preset::kReduced);
    checksum = r.checksum;
    benchmark::DoNotOptimize(checksum);
  }
  const auto t1 = Clock::now();
  const double per_run =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(state.iterations());
  add_row(std::string("e2e_") + key + "_tmk", variant, per_run, checksum,
          nprocs, kind);
}

void BM_JacobiTmkReduced(benchmark::State& state) {
  bm_workload(state, "jacobi", 4, mpl::TransportKind::kSocket, "reduced");
}
BENCHMARK(BM_JacobiTmkReduced)->Unit(benchmark::kMillisecond);

void BM_JacobiTmkReducedShm(benchmark::State& state) {
  bm_workload(state, "jacobi", 4, mpl::TransportKind::kShm, "reduced-shm");
}
BENCHMARK(BM_JacobiTmkReducedShm)->Unit(benchmark::kMillisecond);

void BM_MgsTmkReduced(benchmark::State& state) {
  bm_workload(state, "mgs", 4, mpl::TransportKind::kSocket, "reduced");
}
BENCHMARK(BM_MgsTmkReduced)->Unit(benchmark::kMillisecond);

void BM_MgsTmkReducedShm(benchmark::State& state) {
  bm_workload(state, "mgs", 4, mpl::TransportKind::kShm, "reduced-shm");
}
BENCHMARK(BM_MgsTmkReducedShm)->Unit(benchmark::kMillisecond);

// ---- fault machinery: disabled-path parity ----------------------------

// The fault-injection layer is compiled in unconditionally; its
// disabled cost must stay one null-pointer check per send. This leg
// runs a barrier-heavy DSM workload twice — plain, then with
// TMK_FAULT_INJECT parsed but inert (the plan's victim is not in the
// mesh, so no injector installs) — asserts the modelled counters,
// checksum, AND host send-call count are bit-identical, and records
// both wall times in BENCH_results.json so the disabled path's host
// cost is tracked across PRs. Runs on the inproc/thread mesh: the one
// configuration whose counters are bit-reproducible run-to-run (the
// fork backends' lazy diff fetches race, so their per-run byte totals
// legitimately vary — see the chaos suite's parity tests).
double parity_workload(runner::ChildContext& c) {
  tmk::Runtime rt(c);
  constexpr int kPer = 512;
  auto* data = rt.alloc<std::int32_t>(static_cast<std::size_t>(kPer) *
                                      static_cast<std::size_t>(rt.nprocs()));
  double sum = 0;
  for (int it = 0; it < 4; ++it) {
    for (int i = 0; i < kPer; ++i)
      data[rt.rank() * kPer + i] = rt.rank() + it;
    rt.barrier();
    sum = 0;
    for (int i = 0; i < kPer * rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
  }
  return sum;
}

void BM_FaultMachineryDisabledParity(benchmark::State& state) {
  auto opts = e2e_options(mpl::TransportKind::kInproc);
  opts.backend = runner::Backend::kThread;
  opts.shared_heap_bytes = 16ull << 20;
  const auto plain = runner::spawn(4, opts, parity_workload);
  setenv("TMK_FAULT_INJECT", "rank=99,exit-at-barrier=1,hard=1", 1);
  double wall_plain = 0.0, checksum = 0.0;
  const auto t0 = Clock::now();
  for (auto _ : state) {
    const auto r = runner::spawn(4, opts, parity_workload);
    checksum = r.checksum;
    wall_plain = plain.host_wall_s;
    if (r.checksum != plain.checksum ||
        r.total.messages != plain.total.messages ||
        r.total.bytes != plain.total.bytes ||
        r.ctr(runner::ctr::Id::kHostSendCalls) !=
            plain.ctr(runner::ctr::Id::kHostSendCalls)) {
      std::cerr << "FATAL: fault machinery perturbed an injection-disabled "
                   "run (checksum/counter/send-call mismatch vs plain run)\n";
      std::abort();
    }
    benchmark::DoNotOptimize(checksum);
  }
  const auto t1 = Clock::now();
  unsetenv("TMK_FAULT_INJECT");
  const double per_run =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(state.iterations());
  add_row("fault_machinery", "plain", wall_plain, checksum, 4,
          mpl::TransportKind::kInproc);
  add_row("fault_machinery", "armed-inert", per_run, checksum, 4,
          mpl::TransportKind::kInproc);
}
BENCHMARK(BM_FaultMachineryDisabledParity)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  for (const auto& [key, row] : final_rows())
    bench::Report::instance().add(row);
  std::cout << "\n=== hot-path wall-clock (host seconds, not modelled) ==="
            << "\n";
  common::TextTable t;
  t.header({"path", "variant", "seconds/op"});
  for (const auto& r : bench::Report::instance().rows())
    t.row({r.app, r.system, common::TextTable::num(r.seconds, 9)});
  t.print(std::cout);
  bench::Report::instance().write_json();
  return 0;
}
