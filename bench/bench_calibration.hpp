// Per-workload cpu_scale calibration.
//
// The virtual-time model multiplies measured host CPU by cpu_scale to
// map this machine's speed onto the paper's SP/2 thin node. A single
// global factor cannot fit every application: the POWER2 suffered far
// more from IGrid's indirect addressing than a modern out-of-order core
// does, and far less from MGS's dense dot products. So each bench run
// measures the host's real CPU time for the workload's *paper-sized*
// sequential problem once (the registry's Calibration preset), and sets
//     cpu_scale = paper_seq_seconds / host_seq_seconds.
//
// Paper Table 1 gives MGS 56.4 s, 3-D FFT 37.7 s, IGrid 42.6 s, NBF
// 63.9 s. The Jacobi and Shallow entries are illegible in the archival
// scan; they are estimated from MGS's implied ~38 Mflop/s node rate
// (documented in EXPERIMENTS.md). Long calibration runs use a fraction
// of the paper's iterations and extrapolate linearly; the fractions and
// paper seconds live in each workload's registry entry.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "common/cpu_clock.hpp"
#include "common/env.hpp"

namespace bench {

/// Measures (once per workload, memoized) the host-to-SP/2 scale for a
/// registry entry.
inline double scale_for(const apps::Workload& w) {
  static std::map<std::string, double> cache;
  if (const auto it = cache.find(w.key); it != cache.end()) return it->second;
  const apps::Calibration& c = w.calibration;
  const std::uint64_t t0 = common::thread_cpu_ns();
  (void)w.seq(c.params, nullptr);
  const double host_seconds =
      static_cast<double>(common::thread_cpu_ns() - t0) * 1e-9 /
      c.iter_fraction;
  const double scale = c.paper_seconds / host_seconds;
  std::fprintf(stderr,
               "[calibration] %s: host %.3fs (full size) -> cpu_scale %.0f\n",
               w.key.c_str(), host_seconds, scale);
  cache.emplace(w.key, scale);
  return scale;
}

/// paper_options() with the workload's calibrated compute scale.
inline runner::SpawnOptions calibrated_options(const apps::Workload& w) {
  runner::SpawnOptions o = paper_options();
  if (!common::env::is_set("TMK_CPU_SCALE")) o.model.cpu_scale = scale_for(w);
  return o;
}

}  // namespace bench
