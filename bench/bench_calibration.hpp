// Per-application cpu_scale calibration.
//
// The virtual-time model multiplies measured host CPU by cpu_scale to
// map this machine's speed onto the paper's SP/2 thin node. A single
// global factor cannot fit every application: the POWER2 suffered far
// more from IGrid's indirect addressing than a modern out-of-order core
// does, and far less from MGS's dense dot products. So each bench run
// measures the host's real CPU time for the application's *paper-sized*
// sequential problem once, and sets
//     cpu_scale = paper_seq_seconds / host_seq_seconds.
//
// Paper Table 1 gives MGS 56.4 s, 3-D FFT 37.7 s, IGrid 42.6 s, NBF
// 63.9 s. The Jacobi and Shallow entries are illegible in the archival
// scan; they are estimated from MGS's implied ~38 Mflop/s node rate
// (documented in EXPERIMENTS.md). Long calibration runs use a fraction
// of the paper's iterations and extrapolate linearly.
#pragma once

#include <cstdio>

#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/shallow.hpp"
#include "bench_common.hpp"
#include "common/cpu_clock.hpp"

namespace bench {

template <typename Fn>
double calibrate_scale(const char* app, double paper_seconds,
                       double iter_fraction, Fn&& seq_run) {
  const std::uint64_t t0 = common::thread_cpu_ns();
  seq_run();
  const double host_seconds =
      static_cast<double>(common::thread_cpu_ns() - t0) * 1e-9 /
      iter_fraction;
  const double scale = paper_seconds / host_seconds;
  std::fprintf(stderr,
               "[calibration] %s: host %.3fs (full size) -> cpu_scale %.0f\n",
               app, host_seconds, scale);
  return scale;
}

inline double jacobi_scale() {
  static const double scale = calibrate_scale(
      "jacobi", /*paper (est.)=*/55.0, /*fraction=*/0.1, [] {
        apps::JacobiParams p;
        p.n = 2048;
        p.iters = 10;  // 1/10 of the paper's 100
        p.warmup_iters = 0;
        (void)apps::jacobi_seq(p);
      });
  return scale;
}

inline double shallow_scale() {
  static const double scale = calibrate_scale(
      "shallow", /*paper (est.)=*/90.0, /*fraction=*/0.1, [] {
        apps::ShallowParams p;
        p.n = 1023;
        p.iters = 5;  // 1/10 of the paper's 50
        p.warmup_iters = 0;
        (void)apps::shallow_seq(p);
      });
  return scale;
}

inline double mgs_scale() {
  static const double scale =
      calibrate_scale("mgs", /*paper=*/56.4, /*fraction=*/1.0, [] {
        apps::MgsParams p;
        p.n = 1024;
        p.m = 1024;
        (void)apps::mgs_seq(p);
      });
  return scale;
}

inline double fft_scale() {
  static const double scale =
      calibrate_scale("fft", /*paper=*/37.7, /*fraction=*/0.2, [] {
        apps::FftParams p;
        p.nx = 128;
        p.ny = 128;
        p.nz = 64;
        p.iters = 1;  // 1/5 of the paper's 5
        p.warmup_iters = 0;
        (void)apps::fft3d_seq(p);
      });
  return scale;
}

inline double igrid_scale() {
  static const double scale =
      calibrate_scale("igrid", /*paper=*/42.6, /*fraction=*/1.0, [] {
        apps::IGridParams p;
        p.n = 500;
        p.iters = 19;
        p.warmup_iters = 0;
        (void)apps::igrid_seq(p);
      });
  return scale;
}

inline double nbf_scale() {
  static const double scale =
      calibrate_scale("nbf", /*paper=*/63.9, /*fraction=*/1.0, [] {
        apps::NbfParams p;
        p.nmol = 32 * 1024;
        p.iters = 20;
        p.warmup_iters = 0;
        p.partners = 16;
        p.window = 256;
        (void)apps::nbf_seq(p);
      });
  return scale;
}

/// paper_options() with the application's calibrated compute scale.
inline runner::SpawnOptions calibrated_options(double scale) {
  runner::SpawnOptions o = paper_options();
  if (std::getenv("TMK_CPU_SCALE") == nullptr) o.model.cpu_scale = scale;
  return o;
}

}  // namespace bench
