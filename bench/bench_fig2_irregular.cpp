// Figure 2: 8-processor speedups for the irregular applications (IGrid,
// NBF) under the four systems.
//
// Paper values: IGrid SPF/Tmk 7.54, XHPF 3.85, PVMe 7.88 (hand Tmk sits
// between SPF/Tmk and PVMe); NBF SPF/Tmk 5.31, Tmk 5.86, XHPF 3.85,
// PVMe 6.18. Expected shape: the DSM beats the compiler-generated
// message passing by a wide margin (38-89%) and trails hand-coded MP by
// little (4.4-16%).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_calibration.hpp"
#include "bench_common.hpp"
#include "bench_grid.hpp"
#include "bench_sizes.hpp"

namespace {

const std::initializer_list<apps::System> kSystems = {
    apps::System::kSpf, apps::System::kTmk, apps::System::kXhpf,
    apps::System::kPvme};

void BM_IGrid(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("IGrid",
                    [](apps::System s, int np) {
                      return apps::run_igrid(s, bench::igrid_params(), np,
                                             bench::calibrated_options(bench::igrid_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_IGrid)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Nbf(benchmark::State& state) {
  for (auto _ : state) {
    bench::run_grid("NBF",
                    [](apps::System s, int np) {
                      return apps::run_nbf(s, bench::nbf_params(), np,
                                           bench::calibrated_options(bench::nbf_scale()));
                    },
                    kSystems);
  }
}
BENCHMARK(BM_Nbf)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "Figure 2: 8-processor speedups, irregular applications");
  std::cout << "\npaper reference: IGrid 7.54/~7.7/3.85/7.88, "
               "NBF 5.31/5.86/3.85/6.18 (SPF/Tmk, Tmk, XHPF, PVMe)\n";
  benchmark::Shutdown();
  return 0;
}
