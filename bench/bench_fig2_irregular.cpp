// Figure 2: 8-processor speedups for the irregular applications (IGrid,
// NBF) under the four systems.
//
// Expected shape: the DSM beats the compiler-generated message passing
// by a wide margin (38-89%) and trails hand-coded MP by little
// (4.4-16%). The benchmark cases are generated from the workload
// registry: one case per irregular workload.
#include <benchmark/benchmark.h>

#include "bench_grid.hpp"
#include "bench_opts.hpp"

int main(int argc, char** argv) {
  bench::parse_bench_opts(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::register_workload_grids(apps::WorkloadClass::kIrregular);
  benchmark::RunSpecifiedBenchmarks();
  bench::Report::instance().print_speedups(
      "Figure 2: 8-processor speedups, irregular applications");
  bench::print_paper_reference(apps::WorkloadClass::kIrregular);
  bench::Report::instance().write_json();
  benchmark::Shutdown();
  return 0;
}
