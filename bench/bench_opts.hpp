// Command-line options shared by every bench binary.
//
//   --transport={socket,shm,inproc}
//                              interconnect for all runs in the binary
//                              (overrides TMK_TRANSPORT; default socket;
//                              inproc implies the thread backend)
//   --backend={process,thread} execution backend for the ranks
//                              (overrides TMK_BACKEND; default process)
//   --nprocs-list=2,4,8,16,32  process counts for binaries that sweep
//                              process counts (bench_scale); others
//                              ignore it
//
// Call parse_bench_opts(argc, argv) BEFORE benchmark::Initialize: the
// recognized flags are consumed (removed from argv), everything else is
// left for google-benchmark. Unknown values exit with a usage message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "mpl/frame.hpp"
#include "mpl/transport.hpp"
#include "runner/runner.hpp"

namespace bench {

struct Opts {
  mpl::TransportKind transport = mpl::transport_from_env();
  bool transport_set = false;    // --transport (or TMK_TRANSPORT) given
  runner::Backend backend = runner::backend_from_env();
  bool backend_set = false;      // --backend (or TMK_BACKEND) given
  std::vector<int> nprocs_list;  // empty = the binary's default sweep
};

inline Opts& opts() {
  static Opts o;
  return o;
}

[[noreturn]] inline void bench_opts_usage(const char* binary,
                                          const std::string& complaint) {
  std::fprintf(stderr,
               "%s: %s\n"
               "usage: %s [--transport={socket,shm,inproc}]"
               " [--backend={process,thread}]"
               " [--nprocs-list=N1,N2,...]   (1 <= N <= %d)\n"
               "       plus any google-benchmark flags\n",
               binary, complaint.c_str(), binary, mpl::kMaxProcs);
  std::exit(2);
}

inline void parse_bench_opts(int& argc, char** argv) {
  if (const char* env = common::env::raw("TMK_TRANSPORT");
      env != nullptr && mpl::parse_transport(env).has_value())
    opts().transport_set = true;
  if (const char* env = common::env::raw("TMK_BACKEND");
      env != nullptr && runner::parse_backend(env).has_value())
    opts().backend_set = true;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--transport=", 12) == 0) {
      const auto k = mpl::parse_transport(arg + 12);
      if (!k)
        bench_opts_usage(argv[0], std::string("unknown transport '") +
                                      (arg + 12) + "'");
      opts().transport = *k;
      opts().transport_set = true;
      continue;
    }
    if (std::strncmp(arg, "--backend=", 10) == 0) {
      const auto b = runner::parse_backend(arg + 10);
      if (!b)
        bench_opts_usage(argv[0], std::string("unknown backend '") +
                                      (arg + 10) + "'");
      opts().backend = *b;
      opts().backend_set = true;
      continue;
    }
    if (std::strncmp(arg, "--nprocs-list=", 14) == 0) {
      std::vector<int> list;
      const char* p = arg + 14;
      while (*p != '\0') {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 1 || v > mpl::kMaxProcs ||
            (*end != ',' && *end != '\0'))
          bench_opts_usage(argv[0], std::string("bad --nprocs-list '") +
                                        (arg + 14) + "'");
        list.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
      if (list.empty())
        bench_opts_usage(argv[0], "--nprocs-list needs at least one count");
      opts().nprocs_list = std::move(list);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  // The in-process mesh only exists inside one address space. An
  // unstated backend is implied by --transport=inproc; explicitly
  // contradictory flags are an error, like any other bad flag value
  // (silently running a configuration the user did not ask for would
  // poison the recorded bench rows).
  const bool want_inproc = opts().transport == mpl::TransportKind::kInproc;
  const bool want_thread = opts().backend == runner::Backend::kThread;
  if (opts().transport_set && opts().backend_set && want_inproc != want_thread)
    bench_opts_usage(argv[0],
                     "--transport=inproc requires --backend=thread (and the "
                     "thread backend only runs the inproc transport)");
  if (want_inproc && !opts().backend_set)
    opts().backend = runner::Backend::kThread;
  if (want_thread && !opts().transport_set)
    opts().transport = mpl::TransportKind::kInproc;
}

}  // namespace bench
