// Compiler-target example: what SPF-generated code looks like.
//
// The paper's central object of study is compiler-generated shared-memory
// code: every parallel loop is outlined into a subroutine, dispatched to
// workers through the improved fork-join interface (§2.3), with scalar
// reductions through a lock-guarded shared cell (§2.1). This example is a
// hand-written specimen of that generated shape: a dot product over two
// shared vectors.
//
//   ./examples/compiler_target [nprocs]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/runner.hpp"
#include "spf/runtime.hpp"

namespace {

struct Shared {
  float* x = nullptr;
  float* y = nullptr;
  double* dot = nullptr;
  std::size_t n = 0;
};
// The compiler's "common block": per rank, so thread_local — under the
// thread backend every rank binds pointers into its OWN heap.
thread_local Shared g;

struct LoopArgs {
  std::uint64_t n;
};

// "Each parallel loop is encapsulated by SPF into a new subroutine."
void init_loop(spf::Runtime& rt, const void* argp) {
  LoopArgs a;
  std::memcpy(&a, argp, sizeof(a));
  const auto r = rt.own_block(a.n);
  for (std::int64_t i = r.lo; i < r.hi; ++i) {
    g.x[i] = 0.5f + static_cast<float>(i % 7);
    g.y[i] = 2.0f - static_cast<float>(i % 3);
  }
}

void dot_loop(spf::Runtime& rt, const void* argp) {
  LoopArgs a;
  std::memcpy(&a, argp, sizeof(a));
  const auto r = rt.own_block(a.n);
  double local = 0;
  for (std::int64_t i = r.lo; i < r.hi; ++i)
    local += static_cast<double>(g.x[i]) * static_cast<double>(g.y[i]);
  // §2.1: private partial first, then a lock-guarded shared update.
  rt.reduce_add(/*lock_id=*/0, g.dot, local);
}

}  // namespace

int main(int argc, char** argv) {
  const int nprocs = (argc > 1) ? std::atoi(argv[1]) : 4;
  constexpr std::size_t kN = 1 << 18;

  runner::SpawnOptions options;
  options.model = simx::MachineModel::sp2();
  options.shared_heap_bytes = 64ull << 20;

  const auto result = runner::spawn(
      nprocs, options, [](runner::ChildContext& ctx) -> double {
        spf::Runtime rt(ctx);
        g = Shared{};
        g.n = kN;
        g.x = rt.tmk().alloc<float>(kN);
        g.y = rt.tmk().alloc<float>(kN);
        g.dot = rt.tmk().alloc<double>(1);
        const auto init = rt.register_loop(init_loop);
        const auto dot = rt.register_loop(dot_loop);

        // rank 0 runs the "sequential program"; workers serve loops.
        return rt.run([&] {
          const LoopArgs args{kN};
          rt.parallel(init, args);
          *g.dot = 0.0;
          rt.parallel(dot, args);
          return *g.dot;
        });
      });

  double expect = 0;
  for (std::size_t i = 0; i < kN; ++i)
    expect += (0.5 + static_cast<double>(i % 7)) *
              (2.0 - static_cast<double>(i % 3));
  std::printf("dot = %.1f (expected %.1f)\n", result.checksum, expect);
  std::printf("fork-join traffic: %llu messages (2(n-1) per parallel "
              "loop)\n",
              static_cast<unsigned long long>(
                  result.messages(mpl::Layer::kTmk)));
  return 0;
}
