// Quickstart: the TreadMarks API in one page.
//
// Spawns four processes sharing one DSM heap, has each fill its block of
// a shared array, synchronizes with a barrier, uses a lock-guarded shared
// cell for a global reduction, and prints the result with the protocol
// statistics — the whole public surface in ~60 lines.
//
//   ./examples/quickstart [nprocs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

int main(int argc, char** argv) {
  const int nprocs = (argc > 1) ? std::atoi(argv[1]) : 4;
  constexpr std::size_t kPerProc = 4096;

  runner::SpawnOptions options;
  options.model = simx::MachineModel::sp2();
  options.shared_heap_bytes = 64ull << 20;

  const runner::RunResult result = runner::spawn(
      nprocs, options, [](runner::ChildContext& ctx) -> double {
        tmk::Runtime tmk(ctx);

        // Every process performs the identical allocation sequence
        // (the Fortran-common-block discipline): same addresses
        // everywhere.
        double* values = tmk.alloc<double>(
            kPerProc * static_cast<std::size_t>(tmk.nprocs()));
        double* total = tmk.alloc<double>(1);

        // Phase 1: each process writes its own block. The first write to
        // each page takes a SIGSEGV, makes a twin, and proceeds at
        // memory speed.
        const std::size_t lo = kPerProc * static_cast<std::size_t>(tmk.rank());
        for (std::size_t i = 0; i < kPerProc; ++i)
          values[lo + i] = static_cast<double>(tmk.rank() + 1);

        // The barrier publishes the writes: everyone learns which pages
        // changed (write notices); data moves later, on demand.
        tmk.barrier();

        // Phase 2: a lock-guarded reduction into one shared cell. The
        // lock grant carries the consistency information, so the next
        // holder sees the previous holder's update.
        double local = 0.0;
        for (std::size_t i = 0; i < kPerProc; ++i) local += values[lo + i];
        tmk.lock_acquire(0);
        *total += local;
        tmk.lock_release(0);
        tmk.barrier();

        if (tmk.rank() == 0) {
          std::printf("sum = %.0f (expected %.0f)\n", *total,
                      kPerProc * (tmk.nprocs() * (tmk.nprocs() + 1)) / 2.0);
          const tmk::TmkStats& s = tmk.stats();
          std::printf("protocol: %llu write faults, %llu read faults, "
                      "%llu twins, %llu diffs fetched\n",
                      static_cast<unsigned long long>(s.write_faults),
                      static_cast<unsigned long long>(s.read_faults),
                      static_cast<unsigned long long>(s.twins_created),
                      static_cast<unsigned long long>(s.diffs_fetched));
        }
        return *total;
      });

  std::printf("modelled parallel time: %.3f ms; %llu protocol messages, "
              "%.1f KB\n",
              result.seconds() * 1e3,
              static_cast<unsigned long long>(
                  result.messages(mpl::Layer::kTmk)),
              result.kbytes(mpl::Layer::kTmk));
  return 0;
}
