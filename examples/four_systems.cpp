// Four-systems shootout on one workload.
//
// Runs the paper's comparison end-to-end for a single registry workload
// chosen on the command line: sequential baseline, SPF/TreadMarks,
// hand-coded TreadMarks, XHPF message passing, and hand-coded PVMe,
// printing the speedups and traffic the way Figures 1-2 and Tables 2-3
// do. The workload list and every variant come from the registry — this
// file names no application.
//
//   ./examples/four_systems [jacobi|shallow|mgs|fft|igrid|nbf] [nprocs]
//                           [default|reduced|full] [socket|shm]
//
// The transport argument (or TMK_TRANSPORT) picks the host interconnect
// of the simulated mesh; the printed speedups, messages, and checksums
// are identical either way — only the harness's own wall time changes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/table.hpp"

namespace {

apps::Preset parse_preset(const std::string& s) {
  if (s == "reduced") return apps::Preset::kReduced;
  if (s == "full") return apps::Preset::kFull;
  return apps::Preset::kDefault;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string key = (argc > 1) ? argv[1] : "igrid";
  const int nprocs = (argc > 2) ? std::atoi(argv[2]) : 8;
  const apps::Preset preset =
      parse_preset((argc > 3) ? argv[3] : "default");
  mpl::TransportKind transport = mpl::transport_from_env();
  if (argc > 4) {
    const auto parsed = mpl::parse_transport(argv[4]);
    if (!parsed) {
      std::fprintf(stderr, "unknown transport '%s'; expected socket or shm\n",
                   argv[4]);
      return 1;
    }
    transport = *parsed;
  }

  const apps::Workload* workload = nullptr;
  try {
    workload = &apps::find_workload(key);
  } catch (const common::Error&) {
    std::fprintf(stderr, "unknown workload '%s'; available:", key.c_str());
    for (const apps::Workload& w : apps::all_workloads())
      std::fprintf(stderr, " %s", w.key.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const apps::Workload& w = *workload;
  const std::any& params = w.params(preset);

  runner::SpawnOptions options;
  options.model = simx::MachineModel::sp2();
  options.shared_heap_bytes = 512ull << 20;
  options.transport = transport;

  const auto seq =
      apps::run_workload(w, apps::System::kSeq, 1, options, params);
  std::printf(
      "%s (%s, %s, %s transport): sequential model time %.3f s "
      "(checksum %.6g)\n\n",
      w.name.c_str(), w.describe(params).c_str(), apps::to_string(w.cls),
      mpl::to_string(transport), seq.seconds(), seq.checksum);

  common::TextTable t;
  t.header({"system", "speedup", "time(s)", "messages", "data(KB)",
            "checksum ok"});
  for (apps::System s : w.paper_systems()) {
    const auto r = apps::run_workload(w, s, nprocs, options, params);
    const auto layer = (s == apps::System::kXhpf || s == apps::System::kPvme)
                           ? mpl::Layer::kPvme
                           : mpl::Layer::kTmk;
    const bool ok =
        std::abs(r.checksum - seq.checksum) <=
        1e-6 * std::max(1.0, std::abs(seq.checksum));
    t.row({apps::to_string(s),
           common::TextTable::num(seq.seconds() / r.seconds(), 2),
           common::TextTable::num(r.seconds(), 3),
           std::to_string(r.messages(layer)),
           common::TextTable::num(r.kbytes(layer), 0), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  return 0;
}
