// Four-systems shootout on one application.
//
// Runs the paper's comparison end-to-end for a single application chosen
// on the command line: sequential baseline, SPF/TreadMarks, hand-coded
// TreadMarks, XHPF message passing, and hand-coded PVMe, printing the
// speedups and traffic the way Figures 1-2 and Tables 2-3 do.
//
//   ./examples/four_systems [jacobi|shallow|mgs|fft|igrid|nbf] [nprocs]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/shallow.hpp"
#include "common/table.hpp"

namespace {

using RunFn = runner::RunResult (*)(apps::System, int,
                                    const runner::SpawnOptions&);

runner::RunResult run_app(const std::string& app, apps::System s, int np,
                          const runner::SpawnOptions& o) {
  if (app == "jacobi") {
    apps::JacobiParams p;
    p.n = 1024;
    p.iters = 10;
    return apps::run_jacobi(s, p, np, o);
  }
  if (app == "shallow") {
    apps::ShallowParams p;
    p.n = 255;
    p.iters = 6;
    return apps::run_shallow(s, p, np, o);
  }
  if (app == "mgs") {
    apps::MgsParams p;
    p.n = 128;
    p.m = 1024;
    return apps::run_mgs(s, p, np, o);
  }
  if (app == "fft") {
    apps::FftParams p;
    p.nx = 32;
    p.ny = 32;
    p.nz = 32;
    p.iters = 2;
    return apps::run_fft3d(s, p, np, o);
  }
  if (app == "igrid") {
    apps::IGridParams p;
    p.n = 250;
    p.iters = 8;
    return apps::run_igrid(s, p, np, o);
  }
  if (app == "nbf") {
    apps::NbfParams p;
    p.nmol = 8192;
    p.iters = 6;
    return apps::run_nbf(s, p, np, o);
  }
  std::fprintf(stderr, "unknown application '%s'\n", app.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = (argc > 1) ? argv[1] : "igrid";
  const int nprocs = (argc > 2) ? std::atoi(argv[2]) : 8;

  runner::SpawnOptions options;
  options.model = simx::MachineModel::sp2();
  options.shared_heap_bytes = 512ull << 20;

  const auto seq = run_app(app, apps::System::kSeq, 1, options);
  std::printf("%s: sequential model time %.3f s (checksum %.6g)\n\n",
              app.c_str(), seq.seconds(), seq.checksum);

  common::TextTable t;
  t.header({"system", "speedup", "time(s)", "messages", "data(KB)",
            "checksum ok"});
  for (apps::System s : apps::kPaperSystems) {
    const auto r = run_app(app, s, nprocs, options);
    const auto layer = (s == apps::System::kXhpf || s == apps::System::kPvme)
                           ? mpl::Layer::kPvme
                           : mpl::Layer::kTmk;
    const bool ok =
        std::abs(r.checksum - seq.checksum) <=
        1e-6 * std::max(1.0, std::abs(seq.checksum));
    t.row({apps::to_string(s),
           common::TextTable::num(seq.seconds() / r.seconds(), 2),
           common::TextTable::num(r.seconds(), 3),
           std::to_string(r.messages(layer)),
           common::TextTable::num(r.kbytes(layer), 0), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  return 0;
}
