// Unit tests for the virtual-time machine model.
#include <gtest/gtest.h>

#include "sim/machine_model.hpp"
#include "sim/virtual_clock.hpp"

namespace {

TEST(MachineModel, Sp2DefaultsSane) {
  const auto m = simx::MachineModel::sp2();
  EXPECT_GT(m.send_overhead_ns, 0u);
  EXPECT_GT(m.recv_overhead_ns, 0u);
  EXPECT_GT(m.latency_ns, 0u);
  EXPECT_GT(m.gap_ns_per_byte, 0.0);
  EXPECT_GT(m.cpu_scale, 0.0);
}

TEST(MachineModel, WireTimeGrowsWithBytes) {
  const auto m = simx::MachineModel::sp2();
  EXPECT_LT(m.wire_time(0), m.wire_time(4096));
  EXPECT_LT(m.wire_time(4096), m.wire_time(1 << 20));
}

TEST(MachineModel, ZeroCostIsFree) {
  const auto m = simx::MachineModel::zero_cost();
  EXPECT_EQ(m.send_cost(12345), 0u);
  EXPECT_EQ(m.wire_time(12345), 0u);
}

TEST(MachineModel, ScaleCpuMultiplies) {
  simx::MachineModel m;
  m.cpu_scale = 3.0;
  EXPECT_EQ(m.scale_cpu(100), 300u);
}

TEST(VirtualClock, AdvancesWithCompute) {
  simx::VirtualClock c(simx::MachineModel::zero_cost());
  const auto t0 = c.now();
  volatile double x = 0;
  for (int i = 0; i < 2000000; ++i) x = x + i;
  const auto t1 = c.now();
  EXPECT_GT(t1, t0);
}

TEST(VirtualClock, SendChargesOverheadAndLatency) {
  auto m = simx::MachineModel::zero_cost();
  m.send_overhead_ns = 10;
  m.latency_ns = 100;
  m.gap_ns_per_byte = 1.0;
  simx::VirtualClock c(m);
  const auto before = c.now();
  const auto arrival = c.on_send(50, /*self=*/false);
  // Sender advanced by >= overhead; arrival = sender time + latency + gap.
  EXPECT_GE(c.peek(), before + 10);
  EXPECT_EQ(arrival, c.peek() + 100 + 50);
}

TEST(VirtualClock, SelfSendIsFree) {
  auto m = simx::MachineModel::zero_cost();
  m.send_overhead_ns = 10;
  m.latency_ns = 100;
  simx::VirtualClock c(m);
  const auto t = c.now();
  const auto arrival = c.on_send(1000, /*self=*/true);
  EXPECT_LE(arrival, c.now() + 1000);  // only compute drift, no model cost
  EXPECT_GE(arrival, t);
}

TEST(VirtualClock, RecvWaitsForArrival) {
  auto m = simx::MachineModel::zero_cost();
  m.recv_overhead_ns = 7;
  simx::VirtualClock c(m);
  const auto far_future = c.now() + 1'000'000'000ULL;
  c.on_recv(far_future, /*self=*/false);
  EXPECT_GE(c.peek(), far_future + 7);
}

TEST(VirtualClock, RecvDoesNotGoBackwards) {
  auto m = simx::MachineModel::zero_cost();
  m.recv_overhead_ns = 7;
  simx::VirtualClock c(m);
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + i;
  const auto now = c.now();
  c.on_recv(/*arrival_vt=*/1, /*self=*/false);  // stale arrival
  EXPECT_GE(c.peek(), now);
}

TEST(VirtualClock, InterruptChargesFoldIn) {
  simx::VirtualClock c(simx::MachineModel::zero_cost());
  const auto t0 = c.now();
  c.charge_interrupt(5000);
  EXPECT_GE(c.now(), t0 + 5000);
}

TEST(VirtualClock, AdvanceToJumpsForward) {
  simx::VirtualClock c(simx::MachineModel::zero_cost());
  const auto target = c.now() + 123456;
  c.advance_to(target);
  EXPECT_GE(c.peek(), target);
}

TEST(ProtocolSection, DropsHostCpuInsideSection) {
  auto m = simx::MachineModel::zero_cost();
  m.cpu_scale = 1000.0;
  simx::VirtualClock c(m);
  const auto t0 = c.now();
  {
    simx::ProtocolSection protocol(c);
    volatile double x = 0;
    for (int i = 0; i < 3'000'000; ++i) x = x + i;  // protocol "work"
  }
  // Only (tiny) pre/post compute is charged at scale; the loop is not.
  const auto dt = c.now() - t0;
  volatile double y = 0;
  const auto r0 = c.now();
  for (int i = 0; i < 3'000'000; ++i) y = y + i;  // app work, charged
  const auto app_dt = c.now() - r0;
  EXPECT_LT(dt, app_dt / 4);
}

TEST(ProtocolSection, AddModelChargesExplicitly) {
  simx::VirtualClock c(simx::MachineModel::zero_cost());
  const auto t0 = c.now();
  {
    simx::ProtocolSection protocol(c);
    c.add_model(123456);
  }
  EXPECT_GE(c.now(), t0 + 123456);
}

TEST(ProtocolSection, NestingRestoresOuterMode) {
  auto m = simx::MachineModel::zero_cost();
  m.cpu_scale = 1000.0;
  simx::VirtualClock c(m);
  {
    simx::ProtocolSection outer(c);
    { simx::ProtocolSection inner(c); }
    const auto t0 = c.now();
    volatile double x = 0;
    for (int i = 0; i < 1'000'000; ++i) x = x + i;
    // Still in protocol mode after the inner section ends.
    EXPECT_LT(c.now() - t0, 1'000'000u);
  }
}

TEST(MachineModel, ProtocolCostsZeroedInZeroCost) {
  const auto m = simx::MachineModel::zero_cost();
  EXPECT_EQ(m.page_fault_ns, 0u);
  EXPECT_EQ(m.twin_ns, 0u);
  EXPECT_EQ(m.diff_apply_cost(4096), 0u);
  EXPECT_EQ(m.handler_cost(10), 0u);
}

TEST(MachineModel, DiffApplyCostScalesWithBytes) {
  simx::MachineModel m;
  EXPECT_GT(m.diff_apply_cost(8192), m.diff_apply_cost(64));
  EXPECT_GE(m.diff_apply_cost(0), m.diff_apply_ns);
}

}  // namespace
