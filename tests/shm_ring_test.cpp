// SPSC ring unit tests: record framing, wrap-boundary handling with
// randomized message sizes, capacity behaviour, and a two-thread
// producer/consumer stress (the shape ShmTransport uses it in).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "mpl/shm_transport.hpp"
#include "mpl/spsc_ring.hpp"

namespace {

/// A ring over 64-byte-aligned heap memory (control block + data).
class RingStorage {
 public:
  explicit RingStorage(std::uint32_t capacity) {
    const std::size_t bytes = sizeof(mpl::RingCtrl) + capacity;
    mem_ = static_cast<std::byte*>(std::aligned_alloc(64, (bytes + 63) & ~63ul));
    std::memset(mem_, 0, bytes);
    ring_ = mpl::SpscRing(new (mem_) mpl::RingCtrl,
                          mem_ + sizeof(mpl::RingCtrl), capacity);
  }
  ~RingStorage() { std::free(mem_); }
  RingStorage(const RingStorage&) = delete;
  RingStorage& operator=(const RingStorage&) = delete;

  [[nodiscard]] mpl::SpscRing& ring() { return ring_; }

 private:
  std::byte* mem_ = nullptr;
  mpl::SpscRing ring_;
};

mpl::FrameHeader header_for(std::uint32_t seq, std::uint32_t len) {
  mpl::FrameHeader h{};
  h.magic = mpl::kFrameMagic;
  h.kind = static_cast<std::uint16_t>(mpl::FrameKind::kTestPing);
  h.src = 0;
  h.tag = static_cast<std::int32_t>(seq);
  h.req_id = seq;
  h.chunk_len = len;
  h.orig_len = len;
  return h;
}

std::vector<std::byte> payload_for(std::uint32_t seq, std::size_t len) {
  common::SplitMix64 g(0x5eed0000ull + seq);
  std::vector<std::byte> v(len);
  for (auto& b : v) b = static_cast<std::byte>(g.next());
  return v;
}

TEST(SpscRing, RecordGeometry) {
  // Record = 8-byte record header + 40-byte frame header + payload,
  // padded to 8.
  EXPECT_EQ(mpl::SpscRing::record_bytes(0), 48u);
  EXPECT_EQ(mpl::SpscRing::record_bytes(1), 56u);
  EXPECT_EQ(mpl::SpscRing::record_bytes(8), 56u);
  EXPECT_EQ(mpl::SpscRing::record_bytes(9), 64u);
  // The configured capacity admits the largest datagram.
  EXPECT_GE(mpl::kShmRingBytes, mpl::SpscRing::min_capacity(mpl::kMaxChunk));
}

TEST(SpscRing, PushPopRoundTrip) {
  RingStorage s(4096);
  const auto p = payload_for(1, 100);
  ASSERT_TRUE(s.ring().try_push(header_for(1, 100), p));
  EXPECT_FALSE(s.ring().empty());
  std::size_t seen = 0;
  const std::size_t n = s.ring().drain(
      [&](const mpl::FrameHeader& h, std::span<const std::byte> chunk) {
        EXPECT_EQ(h.req_id, 1u);
        ASSERT_EQ(chunk.size(), p.size());
        EXPECT_EQ(std::memcmp(chunk.data(), p.data(), p.size()), 0);
        ++seen;
      });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(s.ring().empty());
}

TEST(SpscRing, FullRingRejectsThenAcceptsAfterDrain) {
  RingStorage s(1024);
  const auto p = payload_for(2, 200);  // record = 256 bytes
  int pushed = 0;
  while (s.ring().try_push(header_for(2, 200), p)) ++pushed;
  EXPECT_EQ(pushed, 4);  // 4 x 256 fills 1024 exactly
  auto discard = [](const mpl::FrameHeader&, std::span<const std::byte>) {};
  EXPECT_EQ(s.ring().drain(discard), 4u);
  EXPECT_TRUE(s.ring().try_push(header_for(2, 200), p));
}

// Progress guarantee at the wrap: an EMPTY ring of min_capacity must
// accept a maximum-size record at EVERY cursor offset. (Regression: a
// 57 KiB diff-reply record at an unlucky offset of a 64 KiB ring could
// never be pushed — contig + record exceeded the capacity — wedging
// the channel forever; min_capacity now demands two records' worth.)
TEST(SpscRing, MaxRecordFitsEmptyRingAtEveryOffset) {
  constexpr std::uint32_t kChunk = 1000;
  const std::uint32_t cap = mpl::SpscRing::min_capacity(kChunk);
  const auto big = payload_for(9, kChunk);
  auto discard = [](const mpl::FrameHeader&, std::span<const std::byte>) {};
  // Walk the cursor through every 8-byte offset with minimal records.
  RingStorage s(cap);
  for (std::uint32_t off = 0; off < cap; off += 48) {
    ASSERT_TRUE(s.ring().try_push(header_for(9, kChunk), big))
        << "wedged at offset " << off;
    s.ring().drain(discard);
    // Advance the cursor by one minimal (empty-payload) record.
    ASSERT_TRUE(s.ring().try_push(header_for(0, 0), {}));
    s.ring().drain(discard);
  }
}

// Randomized sizes with interleaved push/drain so the write position
// crosses the wrap boundary many times at varying offsets; every
// payload must come back bit-exact and in order.
TEST(SpscRing, RandomizedSizesAcrossWrapBoundary) {
  constexpr std::uint32_t kCap = 8192;
  RingStorage s(kCap);
  common::SplitMix64 g(42);
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  std::uint64_t pushed_bytes = 0;
  while (next_pop < 3000) {
    // Burst of pushes with sizes biased to make records land on many
    // different wrap offsets (including zero-length datagrams).
    const int burst = 1 + static_cast<int>(g.next_below(5));
    for (int i = 0; i < burst; ++i) {
      const std::size_t len = g.next_below(1500);
      const auto p = payload_for(next_push, len);
      if (!s.ring().try_push(header_for(next_push, static_cast<std::uint32_t>(len)),
                             p))
        break;  // full: drain below, retry next round
      ++next_push;
      pushed_bytes += len;
    }
    s.ring().drain(
        [&](const mpl::FrameHeader& h, std::span<const std::byte> chunk) {
          ASSERT_EQ(h.req_id, next_pop) << "datagrams reordered";
          const auto expect = payload_for(h.req_id, h.chunk_len);
          ASSERT_EQ(chunk.size(), expect.size());
          // Zero-length datagrams are legal; memcmp(nullptr,...) is not.
          ASSERT_TRUE(chunk.empty() ||
                      std::memcmp(chunk.data(), expect.data(),
                                  chunk.size()) == 0)
              << "payload corrupted at seq " << h.req_id;
          ++next_pop;
        });
  }
  EXPECT_GT(pushed_bytes, 2u * kCap);  // the cursor really wrapped often
}

// Burst staging: staged records are invisible to the consumer until
// publish() makes the whole burst visible with one tail store.
TEST(SpscRing, StagedRecordsInvisibleUntilPublish) {
  RingStorage s(4096);
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const auto p = payload_for(seq, 64);
    ASSERT_TRUE(s.ring().stage(header_for(seq, 64), p));
    EXPECT_TRUE(s.ring().empty()) << "staged record leaked at seq " << seq;
  }
  EXPECT_TRUE(s.ring().has_staged());
  s.ring().publish();
  EXPECT_FALSE(s.ring().has_staged());
  EXPECT_FALSE(s.ring().empty());
  std::uint32_t next = 0;
  s.ring().drain([&](const mpl::FrameHeader& h,
                     std::span<const std::byte> chunk) {
    EXPECT_EQ(h.req_id, next);
    const auto expect = payload_for(h.req_id, h.chunk_len);
    ASSERT_EQ(chunk.size(), expect.size());
    EXPECT_EQ(std::memcmp(chunk.data(), expect.data(), chunk.size()), 0);
    ++next;
  });
  EXPECT_EQ(next, 5u);
  EXPECT_TRUE(s.ring().empty());
}

// A burst whose records cross the wrap boundary: the wrap marker is
// written as part of staging, so one publish hands the consumer records
// on both sides of the wrap, bit-exact and in order.
TEST(SpscRing, BurstAcrossWrapBoundary) {
  constexpr std::uint32_t kCap = 2048;
  RingStorage s(kCap);
  auto discard = [](const mpl::FrameHeader&, std::span<const std::byte>) {};
  // Park the cursor near the end so a multi-record burst must wrap.
  ASSERT_TRUE(s.ring().try_push(header_for(0, 1500), payload_for(0, 1500)));
  ASSERT_EQ(s.ring().drain(discard), 1u);
  std::uint32_t seq = 1;
  for (; seq <= 4; ++seq)
    ASSERT_TRUE(s.ring().stage(header_for(seq, 200), payload_for(seq, 200)));
  EXPECT_TRUE(s.ring().empty());
  s.ring().publish();
  std::uint32_t next = 1;
  s.ring().drain([&](const mpl::FrameHeader& h,
                     std::span<const std::byte> chunk) {
    ASSERT_EQ(h.req_id, next) << "burst reordered across the wrap";
    const auto expect = payload_for(h.req_id, h.chunk_len);
    ASSERT_EQ(chunk.size(), expect.size());
    EXPECT_EQ(std::memcmp(chunk.data(), expect.data(), chunk.size()), 0);
    ++next;
  });
  EXPECT_EQ(next, 5u);
}

// Backpressure mid-burst: when stage() fails on a full ring, what is
// already staged stays staged; publishing it lets the consumer drain
// and the burst continue — the transport's recovery path.
TEST(SpscRing, FullRingBackpressureInsideBurst) {
  RingStorage s(1024);
  const auto p = payload_for(3, 200);  // record = 256 bytes
  std::uint32_t seq = 0;
  for (; seq < 4; ++seq)  // 4 x 256 fills 1024 exactly
    ASSERT_TRUE(s.ring().stage(header_for(seq, 200), p));
  EXPECT_FALSE(s.ring().stage(header_for(seq, 200), p));
  EXPECT_TRUE(s.ring().has_staged());  // earlier records survive the miss
  EXPECT_TRUE(s.ring().empty());
  s.ring().publish();
  auto discard = [](const mpl::FrameHeader&, std::span<const std::byte>) {};
  EXPECT_EQ(s.ring().drain(discard), 4u);
  ASSERT_TRUE(s.ring().stage(header_for(seq, 200), p));
  s.ring().publish();
  EXPECT_EQ(s.ring().drain(discard), 1u);
}

// Two real threads with bursts: the producer stages batches and
// publishes once per batch (spilling mid-burst on a full ring exactly
// as the transport does); the consumer concurrently drains. Runs under
// the TSan CI leg, so the deferred-tail release/acquire pairing is
// race-checked, not just logic-checked.
TEST(SpscRing, TwoThreadBurstStress) {
  constexpr std::uint32_t kCap = 4096;
  constexpr std::uint32_t kMessages = 20000;
  RingStorage s(kCap);
  std::thread producer([&] {
    common::SplitMix64 g(11);
    std::uint32_t seq = 0;
    while (seq < kMessages) {
      const std::uint32_t burst =
          std::min(kMessages - seq, 1 + static_cast<std::uint32_t>(g.next_below(8)));
      for (std::uint32_t i = 0; i < burst; ++i) {
        const std::size_t len = g.next_below(400);
        const auto p = payload_for(seq, len);
        while (!s.ring().stage(header_for(seq, static_cast<std::uint32_t>(len)),
                               p)) {
          // Full mid-burst: publish what is staged so the consumer can
          // make room, then wait for space.
          s.ring().publish();
          s.ring().wait_space(/*timeout_ms=*/1);
        }
        ++seq;
      }
      s.ring().publish();
    }
  });
  std::uint32_t next_pop = 0;
  bool ok = true;
  while (next_pop < kMessages) {
    std::size_t got = s.ring().drain(
        [&](const mpl::FrameHeader& h, std::span<const std::byte> chunk) {
          if (h.req_id != next_pop) ok = false;
          const auto expect = payload_for(h.req_id, h.chunk_len);
          if (chunk.size() != expect.size() ||
              (!chunk.empty() &&
               std::memcmp(chunk.data(), expect.data(), chunk.size()) != 0))
            ok = false;
          ++next_pop;
        });
    if (got == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(s.ring().empty());
}

// Two real threads, the transport's deployment shape. The producer
// blocks on a full ring via the futex path (wait_space), the consumer
// drains with occasional pauses so the full/empty transitions and the
// writer wake-up path all get exercised.
TEST(SpscRing, TwoThreadStress) {
  constexpr std::uint32_t kCap = 4096;
  constexpr std::uint32_t kMessages = 20000;
  RingStorage s(kCap);
  std::thread producer([&] {
    common::SplitMix64 g(7);
    for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
      const std::size_t len = g.next_below(600);
      const auto p = payload_for(seq, len);
      while (!s.ring().try_push(header_for(seq, static_cast<std::uint32_t>(len)),
                                p))
        s.ring().wait_space(/*timeout_ms=*/1);
    }
  });
  std::uint32_t next_pop = 0;
  bool ok = true;
  while (next_pop < kMessages) {
    std::size_t got = s.ring().drain(
        [&](const mpl::FrameHeader& h, std::span<const std::byte> chunk) {
          if (h.req_id != next_pop) ok = false;
          const auto expect = payload_for(h.req_id, h.chunk_len);
          if (chunk.size() != expect.size() ||
              (!chunk.empty() &&
               std::memcmp(chunk.data(), expect.data(), chunk.size()) != 0))
            ok = false;
          ++next_pop;
        });
    if (got == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(s.ring().empty());
}

}  // namespace
