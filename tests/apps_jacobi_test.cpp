// Jacobi integration tests: every system variant must reproduce the
// sequential checksum bit-exactly (the arithmetic order is identical).
#include <gtest/gtest.h>

#include "apps/jacobi.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  return o;
}

struct Case {
  apps::System system;
  int nprocs;
};

class JacobiVariants : public ::testing::TestWithParam<Case> {};

TEST_P(JacobiVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::JacobiParams p;
  p.n = 128;
  p.iters = 4;
  p.warmup_iters = 1;
  const double expect = apps::jacobi_seq(p);
  const auto r = apps::run_jacobi(system, p, nprocs, fast_options());
  EXPECT_DOUBLE_EQ(r.checksum, expect)
      << "system=" << apps::to_string(system) << " nprocs=" << nprocs;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, JacobiVariants,
    ::testing::Values(Case{apps::System::kSpf, 2},
                      Case{apps::System::kSpf, 4},
                      Case{apps::System::kSpf, 8},
                      Case{apps::System::kTmk, 2},
                      Case{apps::System::kTmk, 4},
                      Case{apps::System::kTmk, 8},
                      Case{apps::System::kXhpf, 2},
                      Case{apps::System::kXhpf, 4},
                      Case{apps::System::kXhpf, 8},
                      Case{apps::System::kPvme, 2},
                      Case{apps::System::kPvme, 4},
                      Case{apps::System::kPvme, 8}),
    [](const auto& info) {
      return std::string(apps::to_string(info.param.system) ==
                                 std::string("SPF/Tmk")
                             ? "Spf"
                         : apps::to_string(info.param.system) ==
                                 std::string("Tmk")
                             ? "Tmk"
                         : apps::to_string(info.param.system) ==
                                 std::string("XHPF")
                             ? "Xhpf"
                             : "Pvme") +
             std::to_string(info.param.nprocs);
    });

// The optimized variant needs page-aligned rows (n multiple of 1024).
TEST(JacobiOpt, MatchesSequentialChecksum) {
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 3;
  p.warmup_iters = 1;
  const double expect = apps::jacobi_seq(p);
  const auto r = apps::run_jacobi(apps::System::kSpfOpt, p, 4, fast_options());
  EXPECT_DOUBLE_EQ(r.checksum, expect);
}

TEST(JacobiOpt, PushCutsMessagesVsPlainSpf) {
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto plain =
      apps::run_jacobi(apps::System::kSpf, p, 4, fast_options());
  const auto opt =
      apps::run_jacobi(apps::System::kSpfOpt, p, 4, fast_options());
  EXPECT_LT(opt.messages(mpl::Layer::kTmk), plain.messages(mpl::Layer::kTmk));
}

// Message-count shape of Table 2: MP sends fewest messages; the DSM
// versions pay page-fault round-trips and separate synchronization.
TEST(JacobiShape, MessageOrdering) {
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto spf = apps::run_jacobi(apps::System::kSpf, p, 8, fast_options());
  const auto tmk = apps::run_jacobi(apps::System::kTmk, p, 8, fast_options());
  const auto xhpf =
      apps::run_jacobi(apps::System::kXhpf, p, 8, fast_options());
  const auto pvme =
      apps::run_jacobi(apps::System::kPvme, p, 8, fast_options());

  const auto m_spf = spf.messages(mpl::Layer::kTmk);
  const auto m_tmk = tmk.messages(mpl::Layer::kTmk);
  const auto m_xhpf = xhpf.messages(mpl::Layer::kPvme);
  const auto m_pvme = pvme.messages(mpl::Layer::kPvme);

  EXPECT_GT(m_spf, 0u);
  EXPECT_GE(m_spf, m_tmk);   // compiler version never sends less
  EXPECT_GT(m_tmk, m_xhpf);  // page-granularity + separate sync
  EXPECT_GT(m_xhpf, m_pvme); // conservative per-loop exchanges

  // PVMe: exactly 2 halo messages per interior boundary per iteration.
  EXPECT_EQ(m_pvme, 5u * 2u * 7u);
}

}  // namespace
