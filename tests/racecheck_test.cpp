// Online race detection (TMK_RACECHECK) contracts.
//
// Four surfaces:
//   - the seeded stress workload detects EXACTLY its planted race set
//     (the per-rank exact-set assertion lives inside the variant; these
//     tests additionally pin the aggregated race_reports counter, the
//     checksum contract, and same-seed determinism);
//   - zero false positives: every clean paper workload runs report-free
//     under both checking modes, with checksums intact;
//   - TMK_RACECHECK=off is indistinguishable from an unset environment
//     in every modelled observable (checksum, virtual time, DSM
//     counters, per-layer traffic) — the off==pre-PR bit-identity
//     contract, since unset is the default path the rest of the suite
//     pins;
//   - the deliberate lazy-diffing race whitelisted in tsan.supp is
//     suppressed by construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/race_stress.hpp"
#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"
#include "env_guard.hpp"
#include "runner/counters.hpp"
#include "runner/runner.hpp"
#include "tmk/config.hpp"
#include "tmk/runtime.hpp"

namespace {

using runner::ctr::Id;

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  return o;
}

const apps::Workload& stress() { return apps::find_workload("race_stress"); }

// ---- stress workload: exact detection --------------------------------

TEST(RaceStress, RegisteredInTheSyntheticSection) {
  // Findable by key, runnable through the generic entry point, but not
  // part of the paper's six (all_workloads is pinned elsewhere).
  EXPECT_EQ(stress().name, "Race Stress");
  for (const apps::Workload& w : apps::all_workloads())
    EXPECT_NE(w.key, "race_stress");
  ASSERT_GE(apps::synthetic_workloads().size(), 1u);
}

TEST(RaceStress, DetectsExactPlantedSetAndKeepsTheChecksum) {
  // Pin precise: the expected-count contract below is the full ww+rw
  // set, regardless of which mode a CI racecheck leg put in the env.
  const test::RacecheckEnv guard("precise");
  const apps::Workload& w = stress();
  const auto& params = w.params(apps::Preset::kDefault);
  const double expect = w.seq(params, nullptr);
  const auto p = std::any_cast<apps::RaceStressParams>(params);
  for (int np : {3, 4, 8}) {
    // The variant asserts the per-rank exact set internally; a missed or
    // spurious report fails the spawn. Here: the aggregated counter and
    // the deterministic-content contract (planted ww writers store the
    // same value, so the checksum is exact despite the races).
    const auto r =
        apps::run_workload(w, apps::System::kTmk, np, fast_options(), params);
    EXPECT_EQ(r.ctr(Id::kRaceReports),
              static_cast<std::uint64_t>(apps::race_stress_expected_reports(
                  p, tmk::RaceCheckMode::kPrecise)))
        << "nprocs=" << np;
    EXPECT_DOUBLE_EQ(r.checksum, expect) << "nprocs=" << np;
  }
}

TEST(RaceStress, SameSeedSameReportSetAcrossRuns) {
  const apps::Workload& w = stress();
  const auto& params = w.params(apps::Preset::kDefault);
  const auto a =
      apps::run_workload(w, apps::System::kTmk, 4, fast_options(), params);
  const auto b =
      apps::run_workload(w, apps::System::kTmk, 4, fast_options(), params);
  // The in-variant assertion already pins the set to the seed-derived
  // plan each run; identical aggregate observables close the loop.
  // (Virtual times are deliberately not compared: DSM interrupt charges
  // land at host-timing-dependent virtual moments — same restriction as
  // the transport-equivalence suite.)
  EXPECT_EQ(a.ctr(Id::kRaceReports), b.ctr(Id::kRaceReports));
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(RaceStress, FreshSeedsStillDetectExactly) {
  // The plan is randomized per seed; every seed must still be caught
  // exactly (the variant's internal assertion does the verification).
  const test::RacecheckEnv guard("precise");
  apps::RaceStressParams p;
  for (std::uint64_t seed : {0xdeadbeefull, 42ull, 7ull}) {
    p.seed = seed;
    const double expect = apps::race_stress_seq(p, nullptr);
    const auto r = apps::run_workload(stress(), apps::System::kTmk, 4,
                                      fast_options(), std::any(p));
    EXPECT_EQ(r.ctr(Id::kRaceReports),
              static_cast<std::uint64_t>(apps::race_stress_expected_reports(
                  p, tmk::RaceCheckMode::kPrecise)))
        << "seed=" << seed;
    EXPECT_DOUBLE_EQ(r.checksum, expect) << "seed=" << seed;
  }
}

TEST(RaceStress, SummaryModeFindsThePlantedWriteWriteSubset) {
  // Summary mode tracks writes only (page-granular read witnesses
  // would flag the false sharing the multiple-writer protocol allows,
  // so read/write detection is precise-only): the ww plants are still
  // caught exactly — write masks are diff-word-granular in both modes
  // — and the rw plants go unreported. The variant asserts the exact
  // per-rank per-mode set internally; the counter pins the total.
  const test::RacecheckEnv guard("summary");
  const apps::Workload& w = stress();
  const auto& params = w.params(apps::Preset::kDefault);
  const auto p = std::any_cast<apps::RaceStressParams>(params);
  const auto r =
      apps::run_workload(w, apps::System::kTmk, 4, fast_options(), params);
  EXPECT_EQ(r.ctr(Id::kRaceReports),
            static_cast<std::uint64_t>(apps::race_stress_expected_reports(
                p, tmk::RaceCheckMode::kSummary)));
}

TEST(RaceStress, ThrowKnobFailsTheRun) {
  runner::SpawnOptions opts = fast_options();
  tmk::Config cfg;
  cfg.racecheck = tmk::RaceCheckMode::kPrecise;
  cfg.racecheck_throw = true;
  opts.tmk_config = cfg;
  EXPECT_THROW((void)apps::run_workload(stress(), apps::System::kTmk, 4, opts,
                                        apps::Preset::kDefault),
               common::Error);
}

// ---- clean workloads: zero false positives ---------------------------

class RacecheckClean : public ::testing::TestWithParam<const char*> {};

TEST_P(RacecheckClean, SixWorkloadsRunReportFreeWithChecksumsIntact) {
  const test::RacecheckEnv guard(GetParam());
  for (const apps::Workload& w : apps::all_workloads()) {
    const std::any& params = w.params(w.test_preset);
    const double expect = w.seq(params, nullptr);
    for (apps::System s : {apps::System::kTmk, apps::System::kSpf}) {
      const apps::Variant* v = w.find(s);
      // Only (variant, nprocs) pairs the descriptor declares valid — an
      // empty checksum_nprocs means preset constraints apply.
      if (v == nullptr || v->checksum_nprocs.empty()) continue;
      const auto& nps = v->checksum_nprocs;
      const int np = std::find(nps.begin(), nps.end(), 4) != nps.end()
                         ? 4
                         : nps.front();
      const auto r = apps::run_workload(w, s, np, fast_options(), params);
      EXPECT_EQ(r.ctr(Id::kRaceReports), 0u)
          << w.key << "/" << apps::to_string(s) << " nprocs=" << np
          << " under TMK_RACECHECK=" << GetParam();
      if (v->tolerance > 0) {
        EXPECT_TRUE(common::checksum_close(r.checksum, expect, v->tolerance))
            << w.key << "/" << apps::to_string(s) << ": " << r.checksum
            << " vs " << expect;
      } else {
        EXPECT_DOUBLE_EQ(r.checksum, expect)
            << w.key << "/" << apps::to_string(s);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RacecheckClean,
                         ::testing::Values("summary", "precise"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- off == unset bit-identity ---------------------------------------

// Deterministic model for exact cross-run counter comparisons: SP/2
// communication constants, measured host CPU scaled to zero. Same
// recipe as the transport/update-mode equivalence suites.
runner::SpawnOptions det_options(runner::Backend backend) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.model.cpu_scale = 0.0;
  o.shared_heap_bytes = 64ull << 20;
  o.timeout_sec = 120;
  o.backend = backend;
  if (backend == runner::Backend::kThread)
    o.transport = mpl::TransportKind::kInproc;
  return o;
}

// Barrier-phased ring producer/consumer with a fresh slice per round:
// each round's pull fetches exactly one closed unflushed interval, so
// message and byte counts are bit-stable run to run (lazy-diff flush
// coverage has nothing left to vary on). Lock-free on purpose — lock
// grant order is host-timing dependent.
double ring_schedule(runner::ChildContext& c) {
  tmk::Runtime rt(c);
  const int me = rt.rank();
  const int n = rt.nprocs();
  auto* data = rt.alloc<std::int64_t>(512 * n);  // one page per rank
  rt.barrier();
  double sum = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 32; ++i)
      data[512 * me + 32 * round + i] = 1000 * me + 10 * round + i;
    rt.barrier();
    const int left = (me + n - 1) % n;
    for (int i = 0; i < 32; ++i)
      sum += static_cast<double>(data[512 * left + 32 * round + i]);
    rt.barrier();
  }
  return sum;
}

class RacecheckOff : public ::testing::TestWithParam<runner::Backend> {};

TEST_P(RacecheckOff, BitIdenticalToUnsetEnvironment) {
  // TMK_RACECHECK=off must leave no trace: same wire format (message
  // AND byte counts at every layer — the checking modes append write
  // masks to each notice), same DSM counters, same per-rank checksums
  // as a runtime that never heard of the knob. Unset is the default
  // path the rest of the suite pins, so off==unset is the
  // machine-checkable half of the off==pre-PR contract.
  runner::RunResult unset, off;
  {
    const test::RacecheckEnv guard;  // unset
    unset = runner::spawn(8, det_options(GetParam()), ring_schedule);
  }
  {
    const test::RacecheckEnv guard("off");
    off = runner::spawn(8, det_options(GetParam()), ring_schedule);
  }
  for (std::size_t l = 0; l < unset.total.messages.size(); ++l) {
    EXPECT_EQ(unset.total.messages[l], off.total.messages[l])
        << "layer " << l;
    EXPECT_EQ(unset.total.bytes[l], off.total.bytes[l]) << "layer " << l;
  }
  for (const runner::ctr::Desc& d : runner::ctr::kRegistry) {
    if (d.layer != runner::ctr::Layer::kDsm) continue;  // host = wall clock
    EXPECT_EQ(unset.total_ctrs[d.id], off.total_ctrs[d.id])
        << "counter " << d.json_key;
  }
  ASSERT_EQ(unset.procs.size(), off.procs.size());
  for (std::size_t i = 0; i < unset.procs.size(); ++i)
    EXPECT_DOUBLE_EQ(unset.procs[i].checksum, off.procs[i].checksum)
        << "rank " << i;
  EXPECT_EQ(unset.ctr(Id::kRaceReports), 0u);
  EXPECT_EQ(off.ctr(Id::kRaceReports), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RacecheckOff,
                         ::testing::Values(runner::Backend::kProcess,
                                           runner::Backend::kThread),
                         [](const auto& info) {
                           return std::string(runner::to_string(info.param));
                         });

TEST(RacecheckOff, ChecksumsMatchUnsetAcrossAllSixWorkloads) {
  // The six paper workloads, off vs unset, both backends. DSM traffic
  // counts are host-timing dependent on real applications (lazy-diff
  // flush coverage varies with service-thread timing), so the cross-run
  // contract here is the data: bit-exact per-rank checksums for the
  // barrier-phased workloads, the vs-sequential tolerance for the
  // lock-order-dependent ones (fft/igrid/nbf reassociate reductions).
  const std::vector<std::string> lock_users = {"fft", "igrid", "nbf"};
  for (runner::Backend backend :
       {runner::Backend::kProcess, runner::Backend::kThread}) {
    for (const apps::Workload& w : apps::all_workloads()) {
      const apps::Variant* v = w.find(apps::System::kTmk);
      if (v == nullptr || v->checksum_nprocs.empty()) continue;
      const int np = v->checksum_nprocs.front();
      const std::any& params = w.params(w.test_preset);
      runner::SpawnOptions opts = fast_options();
      opts.backend = backend;
      if (backend == runner::Backend::kThread)
        opts.transport = mpl::TransportKind::kInproc;
      runner::RunResult unset, off;
      {
        const test::RacecheckEnv guard;  // unset
        unset = apps::run_workload(w, apps::System::kTmk, np, opts, params);
      }
      {
        const test::RacecheckEnv guard("off");
        off = apps::run_workload(w, apps::System::kTmk, np, opts, params);
      }
      EXPECT_EQ(unset.ctr(Id::kRaceReports), 0u) << w.key;
      EXPECT_EQ(off.ctr(Id::kRaceReports), 0u) << w.key;
      if (std::find(lock_users.begin(), lock_users.end(), w.key) !=
          lock_users.end()) {
        const double expect = w.seq(params, nullptr);
        for (const auto* r : {&unset, &off}) {
          if (v->tolerance > 0)
            EXPECT_TRUE(
                common::checksum_close(r->checksum, expect, v->tolerance))
                << w.key << ": " << r->checksum << " vs " << expect;
          else
            EXPECT_DOUBLE_EQ(r->checksum, expect) << w.key;
        }
        continue;
      }
      ASSERT_EQ(unset.procs.size(), off.procs.size()) << w.key;
      for (std::size_t i = 0; i < unset.procs.size(); ++i)
        EXPECT_DOUBLE_EQ(unset.procs[i].checksum, off.procs[i].checksum)
            << w.key << " backend " << runner::to_string(backend) << " rank "
            << i;
    }
  }
}

// ---- the tsan.supp benign race is suppressed by construction ---------

TEST(RacecheckBenign, LazyDiffingPullDuringOpenWritesIsNotAReport) {
  // tsan.supp whitelists ONE deliberate host-level race: lazy diffing
  // lets the service thread read a page (twin-vs-current scan while
  // serving a remote pull) that the application thread is still
  // writing. The detector suppresses that same pattern by construction
  // rather than by filter: it never consumes anything the service
  // thread computes from page contents — write masks come from the main
  // thread's own close-time twin scan, read records from the main
  // thread's faults, and every check runs on the main thread under mu_
  // at integration points. This test drives the exact whitelisted
  // interleaving — rank 1 pulls rank 0's lazy diff while rank 0's open
  // interval is mid-write on the same page — and requires silence.
  runner::SpawnOptions opts = fast_options();
  const auto r = runner::spawn(2, opts, [](runner::ChildContext& ctx) {
    tmk::Runtime::Options o;
    o.racecheck = tmk::RaceCheckMode::kPrecise;
    tmk::Runtime rt(ctx, o);
    auto* page = rt.alloc<std::uint64_t>(512);  // one shared page
    rt.barrier();
    // Epoch 0: rank 0 writes cells 0..7. The diff is NOT created here —
    // lazy diffing defers it until someone asks.
    if (rt.rank() == 0)
      for (int i = 0; i < 8; ++i) page[i] = 1000 + i;
    rt.barrier();
    double sum = 0;
    // Epoch 1: rank 0 writes cell 64 (a new open interval on the same
    // page) while rank 1's read fault pulls the epoch-0 diff — the
    // service thread on rank 0 scans the page rank 0 is concurrently
    // writing, i.e. the tsan.supp race. Disjoint cells, so this is
    // NOT an application-level race and must produce no report.
    if (rt.rank() == 0) page[64] = 7;
    if (rt.rank() == 1)
      for (int i = 0; i < 8; ++i) sum += static_cast<double>(page[i]);
    rt.barrier();
    COMMON_CHECK_MSG(rt.race_reports().empty(),
                     "benign lazy-diffing pattern was reported on rank "
                         << rt.rank());
    // The cells rank 1 read are epoch-0 stable regardless of how the
    // pull raced the open write.
    if (rt.rank() == 1) COMMON_CHECK(sum == 1000 + 1001 + 1002 + 1003 +
                                                1004 + 1005 + 1006 + 1007);
    rt.barrier();
    return sum;
  });
  EXPECT_EQ(r.ctr(Id::kRaceReports), 0u);
}

}  // namespace
