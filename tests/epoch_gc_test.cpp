// Epoch-based reclamation (TMK_EPOCH_GC) contracts.
//
// Four surfaces:
//   - the epoch_soak workload keeps its sequential checksum while the
//     collector reclaims (the per-rank accounting invariant — records
//     created == reclaimed + live — is asserted inside the variant on
//     every rank of every run, both GC settings);
//   - the unbounded-growth contract: with the collector off the
//     protocol footprint grows with the epoch count, with it on the
//     phase-aligned footprint stays flat (asserted in-child) and far
//     below the off run's;
//   - pool hygiene at barrier time: a one-epoch twin spike returns to
//     the OS once quiet barriers follow (high-water-mark trim), and
//     fully-consumed per-page extensions fold back to nullptr;
//   - the CI soak (64 ranks, thousands of barrier epochs) — skipped
//     unless TMK_SOAK is set, so tier-1 ctest stays fast.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <tuple>

#include "apps/epoch_soak.hpp"
#include "apps/registry.hpp"
#include "common/check.hpp"
#include "env_guard.hpp"
#include "mpl/transport.hpp"
#include "runner/counters.hpp"
#include "runner/runner.hpp"
#include "tmk/config.hpp"
#include "tmk/runtime.hpp"

namespace {

using runner::ctr::Id;

// Snapshot config instead of env vars: pins the collector's knobs AND
// insulates these tests from the CI matrix legs (update-mode, racecheck)
// that export TMK_* globally.
tmk::Config gc_config(bool on, int interval) {
  tmk::Config c;
  c.epoch_gc = on;
  c.epoch_gc_interval = interval;
  return c;
}

runner::SpawnOptions fast_options(bool gc_on, int gc_interval) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 64ull << 20;
  o.timeout_sec = 300;
  o.tmk_config = gc_config(gc_on, gc_interval);
  return o;
}

const apps::Workload& soak() { return apps::find_workload("epoch_soak"); }

// ---- registration ----------------------------------------------------

TEST(EpochSoak, RegisteredInTheSyntheticSection) {
  EXPECT_EQ(soak().name, "Epoch Soak");
  for (const apps::Workload& w : apps::all_workloads())
    EXPECT_NE(w.key, "epoch_soak");
}

// ---- checksum + reclamation under GC ---------------------------------

TEST(EpochSoak, ChecksumMatchesSequentialWhileReclaiming) {
  const apps::Workload& w = soak();
  const auto& params = w.params(apps::Preset::kReduced);
  const double expect = w.seq(params, nullptr);
  // Interval 8 on 96 epochs: ~12 GC rounds, ~11 reclaim passes. The
  // in-variant accounting invariant rides along on every rank.
  for (int np : {2, 4, 8}) {
    const auto r = apps::run_workload(w, apps::System::kTmk, np,
                                      fast_options(true, 8), params);
    EXPECT_DOUBLE_EQ(r.checksum, expect) << "nprocs=" << np;
    EXPECT_GT(r.ctr(Id::kIntervalsReclaimed), 0u) << "nprocs=" << np;
    EXPECT_GT(r.ctr(Id::kProtocolRssBytes), 0u) << "nprocs=" << np;
  }
}

TEST(EpochSoak, GcOffReclaimsNothingAndKeepsTheChecksum) {
  const apps::Workload& w = soak();
  const auto& params = w.params(apps::Preset::kReduced);
  const double expect = w.seq(params, nullptr);
  const auto r = apps::run_workload(w, apps::System::kTmk, 4,
                                    fast_options(false, 8), params);
  EXPECT_DOUBLE_EQ(r.checksum, expect);
  EXPECT_EQ(r.ctr(Id::kIntervalsReclaimed), 0u);
}

// ---- accounting invariant: both backends, all three transports -------

class EpochGcAccounting
    : public ::testing::TestWithParam<
          std::tuple<runner::Backend, mpl::TransportKind, bool>> {};

TEST_P(EpochGcAccounting, BalancesOnEveryRank) {
  const auto& [backend, transport, gc_on] = GetParam();
  const apps::Workload& w = soak();
  const auto& params = w.params(apps::Preset::kReduced);
  const double expect = w.seq(params, nullptr);
  runner::SpawnOptions opts = fast_options(gc_on, 8);
  opts.backend = backend;
  opts.transport = transport;
  // The variant asserts records_created == records_reclaimed + live on
  // every rank in-child — an imbalance fails the spawn. Here: the
  // aggregated counter direction and the checksum contract.
  const auto r = apps::run_workload(w, apps::System::kTmk, 4, opts, params);
  EXPECT_DOUBLE_EQ(r.checksum, expect);
  if (gc_on)
    EXPECT_GT(r.ctr(Id::kIntervalsReclaimed), 0u);
  else
    EXPECT_EQ(r.ctr(Id::kIntervalsReclaimed), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsTransports, EpochGcAccounting,
    ::testing::Values(
        std::make_tuple(runner::Backend::kProcess,
                        mpl::TransportKind::kSocket, true),
        std::make_tuple(runner::Backend::kProcess, mpl::TransportKind::kShm,
                        true),
        std::make_tuple(runner::Backend::kThread, mpl::TransportKind::kInproc,
                        true),
        std::make_tuple(runner::Backend::kProcess,
                        mpl::TransportKind::kSocket, false),
        std::make_tuple(runner::Backend::kProcess, mpl::TransportKind::kShm,
                        false),
        std::make_tuple(runner::Backend::kThread, mpl::TransportKind::kInproc,
                        false)),
    [](const auto& info) {
      return std::string(runner::to_string(std::get<0>(info.param))) + "_" +
             std::string(mpl::to_string(std::get<1>(info.param))) +
             (std::get<2>(info.param) ? "_on" : "_off");
    });

// ---- growth with GC off, flat with GC on -----------------------------

TEST(EpochGcGrowth, OffGrowsOnStaysFlat) {
  apps::EpochSoakParams p;
  p.epochs = 384;
  p.pages = 8;
  const double expect = apps::epoch_soak_seq(p, nullptr);

  // GC on, interval 16: 24 GC rounds over the run; the variant samples
  // the footprint at phase-aligned points and asserts flatness in-child.
  apps::EpochSoakParams flat = p;
  flat.assert_flat_rss = true;
  const auto on = apps::run_workload(soak(), apps::System::kTmk, 4,
                                     fast_options(true, 16), std::any(flat));
  EXPECT_DOUBLE_EQ(on.checksum, expect);
  EXPECT_GT(on.ctr(Id::kIntervalsReclaimed), 0u);

  // GC off: nothing is reclaimed — 384 epochs of interval records,
  // pending notices, and stashed diffs pile up (the in-variant
  // accounting check pins created == live). The direct footprint
  // comparison lives in OffFootprintDwarfsOnFootprint below.
  const auto off = apps::run_workload(soak(), apps::System::kTmk, 4,
                                      fast_options(false, 16), std::any(p));
  EXPECT_DOUBLE_EQ(off.checksum, expect);
  EXPECT_EQ(off.ctr(Id::kIntervalsReclaimed), 0u);
}

// Direct footprint comparison through rt.mem_stats(): same schedule,
// the GC-off run must end holding a protocol footprint far above the
// GC-on run's (the headline leak this PR exists to fix).
TEST(EpochGcGrowth, OffFootprintDwarfsOnFootprint) {
  auto run = [&](bool gc_on) {
    runner::SpawnOptions opts = fast_options(gc_on, 16);
    return runner::spawn(4, opts, [](runner::ChildContext& ctx) {
      apps::EpochSoakParams p;
      p.epochs = 256;
      p.pages = 8;
      tmk::Runtime rt(ctx);
      auto* heap = rt.alloc<std::uint64_t>(
          static_cast<std::size_t>(p.pages) * 512);
      rt.barrier();
      const int n = rt.nprocs();
      const int me = rt.rank();
      for (int e = 0; e < p.epochs; ++e) {
        for (int q = 0; q < p.pages; ++q)
          if (me == (e + q) % n) heap[q * 512 + (e % 512)] = 1;
        rt.barrier();
      }
      return static_cast<double>(rt.mem_stats().protocol_rss_bytes);
    });
  };
  const auto on = run(true);
  const auto off = run(false);
  for (int r = 0; r < 4; ++r) {
    const double rss_on = on.procs[static_cast<std::size_t>(r)].checksum;
    const double rss_off = off.procs[static_cast<std::size_t>(r)].checksum;
    EXPECT_GT(rss_off, 2.0 * rss_on) << "rank " << r;
  }
}

// ---- pool hygiene: spike-return and PageExt fold ---------------------

TEST(EpochGcPools, TwinSpikeReturnsAndPageExtFoldsAfterQuietBarriers) {
  constexpr int kPages = 32;
  runner::SpawnOptions opts = fast_options(true, 4);
  const auto r = runner::spawn(2, opts, [](runner::ChildContext& ctx) {
    tmk::Runtime rt(ctx);
    auto* heap = rt.alloc<std::uint64_t>(kPages * 512);
    rt.barrier();
    // Spike epoch: rank 0 dirties every page — one twin per page.
    if (rt.rank() == 0)
      for (int q = 0; q < kPages; ++q) heap[q * 512] = q + 1;
    rt.barrier();
    const auto spike = rt.mem_stats();
    if (rt.rank() == 0)
      COMMON_CHECK_MSG(spike.twins_live == kPages,
                       "expected one live twin per dirtied page, got "
                           << spike.twins_live);
    // Quiet epochs: GC rounds (interval 4) validate rank 1's pending
    // notices, drain rank 0's unflushed intervals, retire the twins,
    // and the high-water-mark trim (zero takes per epoch) returns the
    // pooled frames. Fully-consumed extensions fold back to nullptr.
    for (int e = 0; e < 16; ++e) rt.barrier();
    const auto end = rt.mem_stats();
    COMMON_CHECK_MSG(end.twins_live == 0, "rank " << rt.rank() << ": "
                                                  << end.twins_live
                                                  << " twins still live");
    COMMON_CHECK_MSG(end.twin_pool_pages == 0,
                     "rank " << rt.rank() << ": twin pool kept "
                             << end.twin_pool_pages
                             << " frames after quiet barriers");
    COMMON_CHECK_MSG(end.page_ext_live == 0,
                     "rank " << rt.rank() << ": " << end.page_ext_live
                             << " page extensions not folded");
    COMMON_CHECK(end.records_created ==
                 end.records_reclaimed + end.records_live);
    rt.barrier();
    return 1.0;
  });
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 1.0);
  EXPECT_GT(r.ctr(Id::kIntervalsReclaimed), 0u);
}

// ---- race-report cap (TMK_RACECHECK_MAX_REPORTS) ---------------------

TEST(EpochGcRaceCap, StoredReportsAreCappedAndDropsCounted) {
  // Two ranks race on many pages: each planted ww race yields one
  // report per rank. Cap storage at 3 and count the overflow.
  runner::SpawnOptions opts = fast_options(true, 64);
  tmk::Config cfg = gc_config(true, 64);
  cfg.racecheck = tmk::RaceCheckMode::kSummary;
  cfg.racecheck_max_reports = 3;
  opts.tmk_config = cfg;
  constexpr int kRacyPages = 8;
  const auto r = runner::spawn(2, opts, [](runner::ChildContext& ctx) {
    tmk::Runtime rt(ctx);
    auto* heap = rt.alloc<std::uint64_t>(kRacyPages * 512);
    rt.barrier();
    // Both ranks store the same value to the same cell of every page
    // in the same epoch: kRacyPages ww races, deterministic content.
    for (int q = 0; q < kRacyPages; ++q) heap[q * 512] = 7;
    rt.barrier();
    COMMON_CHECK_MSG(rt.race_reports().size() == 3,
                     "rank " << rt.rank() << ": cap not enforced, stored "
                             << rt.race_reports().size());
    rt.barrier();
    return 1.0;
  });
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 1.0);
  // Every race is still counted even when its report is dropped.
  EXPECT_EQ(r.ctr(Id::kRaceReports), 2u * kRacyPages);
  EXPECT_EQ(r.ctr(Id::kRaceReportsDropped), 2u * (kRacyPages - 3));
}

// ---- CI soak: 64 ranks, thousands of barrier epochs ------------------

// Heavy by design (2560 barrier epochs at 64 ranks): run by the CI soak
// job with TMK_SOAK=1 (and by hand), skipped in tier-1 ctest.
TEST(EpochGcSoak64, FlatFootprintOverThousandsOfEpochs) {
  if (std::getenv("TMK_SOAK") == nullptr)
    GTEST_SKIP() << "set TMK_SOAK=1 to run the 64-rank soak";
  const apps::Workload& w = soak();
  const auto& params = w.params(apps::Preset::kFull);  // assert_flat_rss on
  const double expect = w.seq(params, nullptr);
  runner::SpawnOptions opts;
  opts.model = simx::MachineModel::zero_cost();
  opts.backend = runner::Backend::kThread;
  opts.transport = mpl::TransportKind::kInproc;
  opts.shared_heap_bytes = 4ull << 20;  // 64 rank heaps in one process
  opts.timeout_sec = 540;
  opts.tmk_config = gc_config(true, 64);
  const auto r = apps::run_workload(w, apps::System::kTmk, 64, opts, params);
  EXPECT_DOUBLE_EQ(r.checksum, expect);
  EXPECT_GT(r.ctr(Id::kIntervalsReclaimed), 0u);
}

}  // namespace
