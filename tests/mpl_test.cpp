// Transport tests: framing, chunking/reassembly, counters, and
// multi-process delivery through the forked runner.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <numeric>

#include "common/prng.hpp"
#include "mpl/fabric.hpp"
#include "mpl/transport.hpp"
#include "runner/runner.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 1 << 20;
  o.timeout_sec = 120;
  return o;
}

std::vector<std::byte> make_payload(std::size_t n, std::uint64_t seed) {
  common::SplitMix64 g(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(g.next());
  return v;
}

TEST(Frame, LayerClassification) {
  EXPECT_EQ(mpl::layer_of(mpl::FrameKind::kPvmeData), mpl::Layer::kPvme);
  EXPECT_EQ(mpl::layer_of(mpl::FrameKind::kDiffRequest), mpl::Layer::kTmk);
  EXPECT_EQ(mpl::layer_of(mpl::FrameKind::kBarrierArrive), mpl::Layer::kTmk);
  EXPECT_EQ(mpl::layer_of(mpl::FrameKind::kShutdownArrive),
            mpl::Layer::kOther);
  EXPECT_EQ(mpl::layer_of(mpl::FrameKind::kTestPing), mpl::Layer::kOther);
}

TEST(Counters, AccumulateByLayer) {
  mpl::Counters c;
  c.count(mpl::FrameKind::kPvmeData, 100);
  c.count(mpl::FrameKind::kDiffRequest, 50);
  c.count(mpl::FrameKind::kPvmeData, 10);
  EXPECT_EQ(c.messages[static_cast<int>(mpl::Layer::kPvme)], 2u);
  EXPECT_EQ(c.bytes[static_cast<int>(mpl::Layer::kPvme)], 110u);
  EXPECT_EQ(c.messages[static_cast<int>(mpl::Layer::kTmk)], 1u);
  EXPECT_EQ(c.total_messages(), 3u);
  EXPECT_EQ(c.total_bytes(), 160u);
}

TEST(Counters, PlusEquals) {
  mpl::Counters a, b;
  a.count(mpl::FrameKind::kPvmeData, 5);
  b.count(mpl::FrameKind::kPvmeData, 7);
  b.count(mpl::FrameKind::kDiffReply, 3);
  a += b;
  EXPECT_EQ(a.total_messages(), 3u);
  EXPECT_EQ(a.total_bytes(), 15u);
}

// ---- multi-process transport behaviour -------------------------------

/// Every multi-process transport test runs on all three backends: the
/// delivery contract (framing, ordering, reassembly, counters, virtual
/// time) is transport-invariant by design, and this suite is what
/// enforces it. The inproc mesh only exists inside one address space,
/// so its leg runs the ranks on the thread backend.
class EndpointTest : public ::testing::TestWithParam<mpl::TransportKind> {
 protected:
  [[nodiscard]] runner::SpawnOptions popts() const {
    runner::SpawnOptions o = fast_options();
    o.transport = GetParam();
    // Pin the backend each transport actually exists on: otherwise a
    // TMK_BACKEND=thread environment would coerce the socket/shm legs
    // to inproc and this suite would test one transport three times
    // while its test names claim otherwise.
    o.backend = o.transport == mpl::TransportKind::kInproc
                    ? runner::Backend::kThread
                    : runner::Backend::kProcess;
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Transports, EndpointTest,
    ::testing::Values(mpl::TransportKind::kSocket, mpl::TransportKind::kShm,
                      mpl::TransportKind::kInproc),
    [](const ::testing::TestParamInfo<mpl::TransportKind>& info) {
      return std::string(mpl::to_string(info.param));
    });

TEST_P(EndpointTest, PingPongSmall) {
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    const auto payload = make_payload(64, 1);
    if (ep.rank() == 0) {
      ep.send_app(1, mpl::FrameKind::kTestPing, 7, 1, payload);
      auto f = ep.wait_app_kind(mpl::FrameKind::kTestPong);
      return f.payload == payload ? 1.0 : 0.0;
    }
    auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    if (f.tag != 7 || f.src != 0) return 0.0;
    ep.send_app(0, mpl::FrameKind::kTestPong, 7, 1, f.payload);
    return 1.0;
  });
  EXPECT_DOUBLE_EQ(result.checksum, 1.0);
}

TEST_P(EndpointTest, LargeMessageChunksReassemble) {
  // 1 MiB >> kMaxChunk forces multi-chunk reassembly.
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    const std::size_t n = (1 << 20) + 12345;
    const auto payload = make_payload(n, 2);
    if (ep.rank() == 0) {
      ep.send_app(1, mpl::FrameKind::kTestPing, 0, 1, payload);
      return 1.0;
    }
    auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    return f.payload == payload ? 1.0 : 0.0;
  });
  for (const auto& p : result.procs) EXPECT_EQ(p.ok, 1u);
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

// Chunk-boundary property: payloads straddling SEQPACKET datagram
// limits — one byte under/at/over kMaxChunk and multi-chunk sizes —
// must reassemble bit-exactly on the app channel.
TEST_P(EndpointTest, ChunkBoundaryPayloadsReassemble) {
  const std::size_t sizes[] = {mpl::kMaxChunk - 1, mpl::kMaxChunk,
                               mpl::kMaxChunk + 1, 2 * mpl::kMaxChunk,
                               2 * mpl::kMaxChunk + 17};
  auto result =
      runner::spawn(2, popts(), [&sizes](runner::ChildContext& c) {
        auto& ep = c.endpoint;
        double ok = 1.0;
        std::uint32_t req = 1;
        for (const std::size_t n : sizes) {
          const auto payload = make_payload(n, 100 + n);
          if (ep.rank() == 0) {
            ep.send_app(1, mpl::FrameKind::kTestPing, 0, req, payload);
            auto f = ep.wait_app_kind(mpl::FrameKind::kTestPong);
            if (f.payload != payload || f.req_id != req) ok = 0.0;
          } else {
            auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
            if (f.payload != payload) ok = 0.0;
            ep.send_app(0, mpl::FrameKind::kTestPong, 0, f.req_id, f.payload);
          }
          ++req;
        }
        return ok;
      });
  EXPECT_DOUBLE_EQ(result.procs[0].checksum, 1.0);
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

// Same boundary sizes through the service channel: requests straddling
// several datagrams must reassemble before the handler sees them.
TEST_P(EndpointTest, SvcChannelMultiChunkRequestsReassemble) {
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    const std::size_t n = 3 * mpl::kMaxChunk + 5;
    const auto payload = make_payload(n, 9);
    if (ep.rank() == 1) {
      std::atomic<bool> stop{false};
      auto f = ep.next_svc_request(stop);
      if (!f || f->payload != payload) return 0.0;
      ep.send_app_stamped(f->src, mpl::FrameKind::kTestPong, 0, f->req_id,
                          f->payload, f->vt_arrival + 1);
      return 1.0;
    }
    ep.send_svc(1, mpl::FrameKind::kTestPing, 0, 77, payload);
    auto f = ep.wait_app([](const mpl::Frame& fr) {
      return fr.kind == mpl::FrameKind::kTestPong && fr.req_id == 77;
    });
    return f.payload == payload ? 1.0 : 0.0;
  });
  EXPECT_DOUBLE_EQ(result.procs[0].checksum, 1.0);
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

TEST_P(EndpointTest, SimultaneousLargeSendsDoNotDeadlock) {
  // Both ranks send 4 MiB at each other before receiving; the pumping
  // send path must drain to make progress.
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    const std::size_t n = 4 << 20;
    const auto mine = make_payload(n, 10 + static_cast<unsigned>(ep.rank()));
    const auto theirs =
        make_payload(n, 10 + static_cast<unsigned>(1 - ep.rank()));
    ep.send_app(1 - ep.rank(), mpl::FrameKind::kTestPing, 0, 1, mine);
    auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    return f.payload == theirs ? 1.0 : 0.0;
  });
  EXPECT_DOUBLE_EQ(result.procs[0].checksum, 1.0);
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

TEST_P(EndpointTest, PendingQueueFiltersByKind) {
  // Rank 0 sends PING then PONG; rank 1 waits for PONG first — the PING
  // must remain queued and be delivered afterwards.
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    if (ep.rank() == 0) {
      const auto a = make_payload(16, 3);
      const auto b = make_payload(16, 4);
      ep.send_app(1, mpl::FrameKind::kTestPing, 0, 1, a);
      ep.send_app(1, mpl::FrameKind::kTestPong, 0, 2, b);
      return 1.0;
    }
    auto pong = ep.wait_app_kind(mpl::FrameKind::kTestPong);
    auto ping = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    return (pong.payload == make_payload(16, 4) &&
            ping.payload == make_payload(16, 3))
               ? 1.0
               : 0.0;
  });
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

TEST_P(EndpointTest, TagFifoPerSource) {
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    if (ep.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        std::int32_t v = i;
        ep.send_app(1, mpl::FrameKind::kTestPing, 5,
                    static_cast<std::uint32_t>(i),
                    {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
      }
      return 1.0;
    }
    for (int i = 0; i < 50; ++i) {
      auto f = ep.wait_app([](const mpl::Frame& fr) {
        return fr.kind == mpl::FrameKind::kTestPing && fr.tag == 5;
      });
      std::int32_t v;
      std::memcpy(&v, f.payload.data(), sizeof(v));
      if (v != i) return 0.0;  // order violated
    }
    return 1.0;
  });
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

TEST_P(EndpointTest, CountersCountLogicalMessagesOnce) {
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    const std::size_t n = 200 * 1024;  // forces chunking
    if (ep.rank() == 0) {
      ep.send_app(1, mpl::FrameKind::kTestPing, 0, 1, make_payload(n, 5));
    } else {
      (void)ep.wait_app_kind(mpl::FrameKind::kTestPing);
    }
    return 0.0;
  });
  const auto other = static_cast<int>(mpl::Layer::kOther);
  EXPECT_EQ(result.procs[0].counters.messages[other], 1u);
  EXPECT_EQ(result.procs[0].counters.bytes[other], 200u * 1024u);
  EXPECT_EQ(result.procs[1].counters.messages[other], 0u);  // recv free
}

TEST_P(EndpointTest, SelfMessagesUncounted) {
  auto result = runner::spawn(1, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    ep.send_app(0, mpl::FrameKind::kTestPing, 0, 1, make_payload(32, 6));
    auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
    return f.payload.size() == 32 ? 1.0 : 0.0;
  });
  EXPECT_DOUBLE_EQ(result.checksum, 1.0);
  EXPECT_EQ(result.total.total_messages(), 0u);
}

TEST_P(EndpointTest, ManyToOneFanIn) {
  constexpr int kProcs = 8;
  auto result =
      runner::spawn(kProcs, popts(), [](runner::ChildContext& c) {
        auto& ep = c.endpoint;
        if (ep.rank() == 0) {
          double sum = 0;
          for (int i = 1; i < ep.nprocs(); ++i) {
            auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
            double v;
            std::memcpy(&v, f.payload.data(), sizeof(v));
            sum += v;
          }
          return sum;
        }
        const double v = ep.rank();
        ep.send_app(0, mpl::FrameKind::kTestPing, 0, 1,
                    {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
        return 0.0;
      });
  EXPECT_DOUBLE_EQ(result.checksum, 1.0 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST_P(EndpointTest, ServiceThreadRequestReply) {
  // Rank 1 runs a service thread answering one request; rank 0 sends a
  // svc request and waits for the stamped reply.
  auto result = runner::spawn(2, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    if (ep.rank() == 1) {
      std::atomic<bool> stop{false};
      auto f = ep.next_svc_request(stop);
      if (!f || f->kind != mpl::FrameKind::kTestPing) return 0.0;
      ep.send_app_stamped(f->src, mpl::FrameKind::kTestPong, 0, f->req_id,
                          f->payload, f->vt_arrival + 10);
      return 1.0;
    }
    const auto payload = make_payload(100, 8);
    ep.send_svc(1, mpl::FrameKind::kTestPing, 0, 42, payload);
    auto f = ep.wait_app([](const mpl::Frame& fr) {
      return fr.kind == mpl::FrameKind::kTestPong && fr.req_id == 42;
    });
    return f.payload == payload ? 1.0 : 0.0;
  });
  EXPECT_DOUBLE_EQ(result.procs[0].checksum, 1.0);
  EXPECT_DOUBLE_EQ(result.procs[1].checksum, 1.0);
}

// Virtual time: a two-hop relay should accumulate latency at each hop.
TEST_P(EndpointTest, VirtualTimeAccumulatesAlongChain) {
  runner::SpawnOptions opts = popts();
  opts.model.latency_ns = 1'000'000;  // 1 ms
  opts.model.send_overhead_ns = 0;
  opts.model.recv_overhead_ns = 0;
  auto result = runner::spawn(3, opts, [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    std::byte b{1};
    if (ep.rank() == 0) {
      ep.send_app(1, mpl::FrameKind::kTestPing, 0, 1, {&b, 1});
    } else if (ep.rank() == 1) {
      (void)ep.wait_app_kind(mpl::FrameKind::kTestPing);
      ep.send_app(2, mpl::FrameKind::kTestPing, 0, 1, {&b, 1});
    } else {
      (void)ep.wait_app_kind(mpl::FrameKind::kTestPing);
    }
    return 0.0;
  });
  // Rank 2 received after two hops: >= 2 ms of modelled latency.
  EXPECT_GE(result.procs[2].vt_ns, 2'000'000u);
  // And the maximum is what the run reports.
  EXPECT_EQ(result.max_vt_ns,
            std::max({result.procs[0].vt_ns, result.procs[1].vt_ns,
                      result.procs[2].vt_ns}));
}


// Full-width fan-in: kMaxProcs (128) ranks on the thread backend's
// inproc mesh — the configuration the 64/128 scale sweeps run — and 32
// forked processes on the fork transports (the socket path needs the
// RLIMIT_NOFILE headroom bump and a 4*32^2 descriptor mesh; a 128-way
// socket mesh would need 65k descriptors, past common hard limits, and
// the fabric now rejects it loudly instead of wedging).
TEST_P(EndpointTest, ManyToOneFanInMaxProcs) {
  const int n =
      GetParam() == mpl::TransportKind::kInproc ? mpl::kMaxProcs : 32;
  auto result = runner::spawn(n, popts(), [](runner::ChildContext& c) {
    auto& ep = c.endpoint;
    if (ep.rank() == 0) {
      double sum = 0;
      for (int i = 1; i < ep.nprocs(); ++i) {
        auto f = ep.wait_app_kind(mpl::FrameKind::kTestPing);
        double v;
        std::memcpy(&v, f.payload.data(), sizeof(v));
        sum += v;
      }
      return sum;
    }
    const double v = ep.rank();
    ep.send_app(0, mpl::FrameKind::kTestPing, 0, 1,
                {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
    return 0.0;
  });
  EXPECT_DOUBLE_EQ(result.checksum, static_cast<double>(n) *
                                        static_cast<double>(n - 1) / 2.0);
}

}  // namespace
