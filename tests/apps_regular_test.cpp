// Integration tests for the remaining regular applications (Shallow,
// MGS, 3-D FFT): every system variant must reproduce the sequential
// checksum — bit-exactly where the arithmetic order is preserved, within
// tolerance where reductions reassociate (XHPF's distributed norms, the
// FFT's sampled checksum reduction).
#include <gtest/gtest.h>

#include "apps/fft3d.hpp"
#include "apps/mgs.hpp"
#include "apps/shallow.hpp"
#include "common/checksum.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  return o;
}

// ---- Shallow ----------------------------------------------------------

class ShallowVariants
    : public ::testing::TestWithParam<std::pair<apps::System, int>> {};

TEST_P(ShallowVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::ShallowParams p;
  p.n = 96;
  p.iters = 3;
  p.warmup_iters = 1;
  const double expect = apps::shallow_seq(p);
  const auto r = apps::run_shallow(system, p, nprocs, fast_options());
  EXPECT_DOUBLE_EQ(r.checksum, expect)
      << apps::to_string(system) << " nprocs=" << nprocs;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ShallowVariants,
    ::testing::Values(std::pair{apps::System::kSpf, 2},
                      std::pair{apps::System::kSpf, 8},
                      std::pair{apps::System::kTmk, 2},
                      std::pair{apps::System::kTmk, 8},
                      std::pair{apps::System::kXhpf, 3},
                      std::pair{apps::System::kXhpf, 8},
                      std::pair{apps::System::kPvme, 3},
                      std::pair{apps::System::kPvme, 8}));

TEST(ShallowShape, SpfPaysRedundantSynchronization) {
  apps::ShallowParams p;
  p.n = 96;
  p.iters = 4;
  p.warmup_iters = 1;
  const auto spf = apps::run_shallow(apps::System::kSpf, p, 8, fast_options());
  const auto tmk = apps::run_shallow(apps::System::kTmk, p, 8, fast_options());
  // Five fork/join pairs vs three barriers per iteration.
  EXPECT_GT(spf.messages(mpl::Layer::kTmk), tmk.messages(mpl::Layer::kTmk));
}

// ---- MGS --------------------------------------------------------------

class MgsVariants
    : public ::testing::TestWithParam<std::pair<apps::System, int>> {};

TEST_P(MgsVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::MgsParams p;
  p.n = 48;
  p.m = 256;
  const double expect = apps::mgs_seq(p);
  const auto r = apps::run_mgs(system, p, nprocs, fast_options());
  if (system == apps::System::kXhpf) {
    // Distributed-norm rounding differs from the sequential order.
    EXPECT_TRUE(common::checksum_close(r.checksum, expect, 1e-5))
        << r.checksum << " vs " << expect;
  } else {
    EXPECT_DOUBLE_EQ(r.checksum, expect)
        << apps::to_string(system) << " nprocs=" << nprocs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, MgsVariants,
    ::testing::Values(std::pair{apps::System::kSpf, 2},
                      std::pair{apps::System::kSpf, 8},
                      std::pair{apps::System::kTmk, 2},
                      std::pair{apps::System::kTmk, 8},
                      std::pair{apps::System::kXhpf, 4},
                      std::pair{apps::System::kXhpf, 8},
                      std::pair{apps::System::kPvme, 4},
                      std::pair{apps::System::kPvme, 8}));

TEST(MgsOpt, BroadcastVariantMatchesAndSavesMessages) {
  apps::MgsParams p;
  p.n = 32;
  p.m = 1024;  // page-aligned rows for the broadcast optimization
  const double expect = apps::mgs_seq(p);
  const auto plain = apps::run_mgs(apps::System::kTmk, p, 4, fast_options());
  const auto opt = apps::run_mgs(apps::System::kTmkOpt, p, 4, fast_options());
  EXPECT_DOUBLE_EQ(plain.checksum, expect);
  EXPECT_DOUBLE_EQ(opt.checksum, expect);
  // Broadcast merges sync+data: fewer messages than barrier + page-in.
  EXPECT_LT(opt.messages(mpl::Layer::kTmk),
            plain.messages(mpl::Layer::kTmk));
}

TEST(MgsShape, PvmeUsesExactlyNMinus1PerStep) {
  apps::MgsParams p;
  p.n = 32;
  p.m = 256;
  const auto r = apps::run_mgs(apps::System::kPvme, p, 8, fast_options());
  // One flat broadcast per step (the checksum gather is outside the
  // measured window).
  EXPECT_EQ(r.messages(mpl::Layer::kPvme), 32u * 7u);
}

// ---- 3-D FFT ----------------------------------------------------------

class FftVariants
    : public ::testing::TestWithParam<std::pair<apps::System, int>> {};

TEST_P(FftVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::FftParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.iters = 2;
  p.warmup_iters = 0;
  const double expect = apps::fft3d_seq(p);
  const auto r = apps::run_fft3d(system, p, nprocs, fast_options());
  EXPECT_TRUE(common::checksum_close(r.checksum, expect, 1e-9))
      << apps::to_string(system) << " nprocs=" << nprocs << ": "
      << r.checksum << " vs " << expect;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, FftVariants,
    ::testing::Values(std::pair{apps::System::kSpf, 2},
                      std::pair{apps::System::kSpf, 8},
                      std::pair{apps::System::kSpfOpt, 4},
                      std::pair{apps::System::kSpfOpt, 8},
                      std::pair{apps::System::kTmk, 2},
                      std::pair{apps::System::kTmk, 8},
                      std::pair{apps::System::kXhpf, 4},
                      std::pair{apps::System::kXhpf, 8},
                      std::pair{apps::System::kPvme, 4},
                      std::pair{apps::System::kPvme, 8}));

TEST(FftShape, TransposeDominatesDsmMessages) {
  apps::FftParams p;
  p.nx = 32;
  p.ny = 32;
  p.nz = 32;
  p.iters = 2;
  p.warmup_iters = 1;
  const auto tmk = apps::run_fft3d(apps::System::kTmk, p, 8, fast_options());
  const auto pvme = apps::run_fft3d(apps::System::kPvme, p, 8, fast_options());
  // Page-at-a-time transpose vs one aggregated message per pair: the
  // paper reports ~30x; require a clearly large factor.
  EXPECT_GT(tmk.messages(mpl::Layer::kTmk),
            5 * pvme.messages(mpl::Layer::kPvme));
}

TEST(FftOpt, AggregationCollapsesTransposeMessages) {
  apps::FftParams p;
  p.nx = 32;
  p.ny = 32;
  p.nz = 32;
  p.iters = 2;
  p.warmup_iters = 1;
  const auto plain = apps::run_fft3d(apps::System::kSpf, p, 8, fast_options());
  const auto opt =
      apps::run_fft3d(apps::System::kSpfOpt, p, 8, fast_options());
  EXPECT_LT(opt.messages(mpl::Layer::kTmk),
            plain.messages(mpl::Layer::kTmk) / 2);
}

}  // namespace
