// Message-passing library tests: point-to-point semantics, collectives
// against naive oracles, message accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pvme/comm.hpp"
#include "runner/runner.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 1 << 20;
  o.timeout_sec = 120;
  return o;
}

TEST(Pvme, SendRecvScalar) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    if (comm.rank() == 0) {
      double v = 3.25;
      comm.send(1, 10, &v, sizeof(v));
      return 0.0;
    }
    double v = 0;
    comm.recv_exact(0, 10, &v, sizeof(v));
    return v;
  });
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 3.25);
}

TEST(Pvme, TagsSelectMessages) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    if (comm.rank() == 0) {
      double a = 1, b = 2;
      comm.send(1, 100, &a, sizeof(a));
      comm.send(1, 200, &b, sizeof(b));
      return 0.0;
    }
    double b = 0, a = 0;
    comm.recv_exact(0, 200, &b, sizeof(b));  // out of arrival order
    comm.recv_exact(0, 100, &a, sizeof(a));
    return a * 10 + b;
  });
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 12.0);
}

TEST(Pvme, SendRecvLargeVector) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    const std::size_t n = 300'000;
    if (comm.rank() == 0) {
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i % 97);
      comm.send_span<double>(1, 3, v);
      return 0.0;
    }
    std::vector<double> v(n);
    comm.recv_span<double>(0, 3, v);
    double s = 0;
    for (double x : v) s += x;
    return s;
  });
  double expect = 0;
  for (std::size_t i = 0; i < 300'000; ++i) expect += static_cast<double>(i % 97);
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, expect);
}

TEST(Pvme, SendRecvExchangeBothWays) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    double mine = comm.rank() + 1.0;
    double theirs = 0;
    comm.sendrecv(1 - comm.rank(), 7, &mine, sizeof(mine), 7, &theirs,
                  sizeof(theirs));
    return theirs;
  });
  EXPECT_DOUBLE_EQ(r.procs[0].checksum, 2.0);
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 1.0);
}

class PvmeCollectives : public ::testing::TestWithParam<int> {};

TEST_P(PvmeCollectives, BcastFromEveryRoot) {
  const int nprocs = GetParam();
  auto r = runner::spawn(nprocs, fast_options(),
                         [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    double acc = 0;
    for (int root = 0; root < comm.nprocs(); ++root) {
      double v = (comm.rank() == root) ? root * 10.0 : -1.0;
      comm.bcast(root, &v, sizeof(v));
      acc += v;
    }
    return acc;
  });
  double expect = 0;
  for (int root = 0; root < nprocs; ++root) expect += root * 10.0;
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

TEST_P(PvmeCollectives, ReduceAndAllreduce) {
  const int nprocs = GetParam();
  auto r = runner::spawn(nprocs, fast_options(),
                         [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    const double mine = comm.rank() + 1.0;
    const double root_sum = comm.reduce_sum(0, mine);
    const double all = comm.allreduce_sum(mine);
    const double mn = comm.allreduce_min(mine);
    const double mx = comm.allreduce_max(mine);
    if (comm.rank() == 0)
      return root_sum * 1e6 + all * 1e3 + mn * 10 + mx;
    return all * 1e3 + mn * 10 + mx;
  });
  const int n = nprocs;
  const double sum = n * (n + 1) / 2.0;
  EXPECT_DOUBLE_EQ(r.procs[0].checksum,
                   sum * 1e6 + sum * 1e3 + 1.0 * 10 + n);
  for (int i = 1; i < n; ++i)
    EXPECT_DOUBLE_EQ(r.procs[static_cast<std::size_t>(i)].checksum,
                     sum * 1e3 + 1.0 * 10 + n);
}

TEST_P(PvmeCollectives, GatherAndAllgather) {
  const int nprocs = GetParam();
  auto r = runner::spawn(nprocs, fast_options(),
                         [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    const std::int32_t mine = 100 + comm.rank();
    std::vector<std::int32_t> all(
        static_cast<std::size_t>(comm.nprocs()), -1);
    comm.allgather(&mine, sizeof(mine), all.data());
    double s = 0;
    for (int i = 0; i < comm.nprocs(); ++i) {
      if (all[static_cast<std::size_t>(i)] != 100 + i) return -1.0;
      s += all[static_cast<std::size_t>(i)];
    }
    return s;
  });
  double expect = 0;
  for (int i = 0; i < nprocs; ++i) expect += 100 + i;
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

TEST_P(PvmeCollectives, ReduceSumVecElementwise) {
  const int nprocs = GetParam();
  auto r = runner::spawn(nprocs, fast_options(),
                         [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    std::vector<double> v(50);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = static_cast<double>(comm.rank() + 1) * static_cast<double>(i);
    comm.reduce_sum_vec(0, v.data(), v.size());
    if (comm.rank() != 0) return 0.0;
    double s = 0;
    for (double x : v) s += x;
    return s;
  });
  const double ranksum = nprocs * (nprocs + 1) / 2.0;
  const double isum = 49.0 * 50.0 / 2.0;
  EXPECT_DOUBLE_EQ(r.checksum, ranksum * isum);
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, PvmeCollectives,
                         ::testing::Values(2, 3, 4, 8));

TEST(Pvme, BarrierOrdersPhases) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    // Phase 1: everyone sends to rank 0; Phase 2 strictly after.
    if (comm.rank() != 0) {
      double v = comm.rank();
      comm.send(0, 1, &v, sizeof(v));
    }
    comm.barrier();
    if (comm.rank() == 0) {
      double s = 0;
      for (int p = 1; p < comm.nprocs(); ++p) {
        double v;
        comm.recv_exact(p, 1, &v, sizeof(v));
        s += v;
      }
      return s;
    }
    return 0.0;
  });
  EXPECT_DOUBLE_EQ(r.checksum, 6.0);
}

TEST(Pvme, MessageCountsMatchPaperFormulas) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    comm.barrier();                       // 2(n-1) = 14
    double v = 1;
    comm.bcast(0, &v, sizeof(v));         // n-1 = 7
    (void)comm.reduce_sum(0, v);          // n-1 = 7
    return 0.0;
  });
  EXPECT_EQ(r.messages(mpl::Layer::kPvme), 14u + 7u + 7u);
  EXPECT_EQ(r.messages(mpl::Layer::kTmk), 0u);
}

}  // namespace
