// Update-mode equivalence suite (TMK_UPDATE_MODE).
//
// The hybrid update protocol changes HOW diffs travel (pushed at
// barrier departure vs pulled on fault) but must not change WHAT any
// process observes: the lazy-release-consistency contract — checksums,
// final vector clocks, and every modelled data value — is identical in
// all four modes. This suite asserts that contract three ways:
//
//  - `off` is byte-identical to an unset TMK_UPDATE_MODE: same
//    checksums, virtual times, and per-layer message/byte counters on
//    a deterministic controlled schedule. The mode gate must be a true
//    no-op, not merely result-equivalent.
//  - Across modes {off, hint, adaptive, hybrid}, a controlled
//    producer/consumer schedule yields identical per-process data
//    checksums AND identical final vector clocks (pushed diffs carry
//    the same intervals a pull would have).
//  - On registry workloads with barrier-phased neighbor sharing
//    (Jacobi, Shallow) at >= 32 ranks, hybrid mode strictly reduces
//    both Tmk-layer messages and Tmk-layer bytes while every process's
//    checksum is unchanged — the perf claim of the protocol, asserted
//    as a regression floor rather than a benchmark.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <string>

#include "apps/registry.hpp"
#include "env_guard.hpp"
#include "mpl/frame.hpp"
#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

// Deterministic model: SP/2 communication constants, measured host CPU
// scaled to zero — virtual times depend only on the protocol event
// sequence, so the off-vs-unset comparison can be bit-exact.
runner::SpawnOptions det_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.model.cpu_scale = 0.0;
  o.shared_heap_bytes = 64ull << 20;
  o.timeout_sec = 120;
  return o;
}

constexpr int kProcs = 8;
constexpr int kRounds = 6;  // enough for the adaptive predictor to arm

// Fixed producer/consumer schedule with a stable access pattern: each
// rank owns one page, writes a slice per round, and reads its left
// neighbor's page after the barrier. Round after round the same
// consumer pulls the same page, so adaptive/hybrid modes start pushing
// after the first pull — every transfer thereafter exercises the push
// path. The returned digest folds the data checksum together with the
// final vector clock, so a mode that delivered different intervals (or
// dropped one) shows up as a digest mismatch, not just a data race.
double controlled_schedule(runner::ChildContext& c,
                           std::optional<tmk::UpdateMode> mode) {
  tmk::Runtime::Options topt;
  topt.update_mode = mode;
  tmk::Runtime rt(c, topt);
  const int me = rt.rank();
  const int n = rt.nprocs();
  auto* data = rt.alloc<std::int32_t>(1024 * n);  // one page per rank
  rt.barrier();
  double sum = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 64; ++i)
      data[1024 * me + 64 * round + i] = 100 * me + round;
    rt.barrier();
    const int left = (me + n - 1) % n;
    for (int i = 0; i < 64; ++i)
      sum += data[1024 * left + 64 * round + i];
    rt.barrier();
  }
  const tmk::VectorClock vc = rt.clock_snapshot();
  double clock = 0;
  for (int p = 0; p < n; ++p)
    clock = 257.0 * clock + static_cast<double>(vc.get(p));
  return sum + 1e7 * clock;
}

runner::RunResult run_controlled(std::optional<tmk::UpdateMode> mode) {
  return runner::spawn(kProcs, det_options(), [mode](runner::ChildContext& c) {
    return controlled_schedule(c, mode);
  });
}

// ---- off must be a true no-op ----------------------------------------

TEST(UpdateMode, OffIsByteIdenticalToUnset) {
  // Explicit Options{kOff} on one side; genuinely-unset env (no
  // Options override either) on the other. With the CI matrix
  // exporting TMK_UPDATE_MODE globally, the unset guard is what makes
  // this compare default-vs-off rather than ci-mode-vs-off.
  test::EnvGuard unset("TMK_UPDATE_MODE");
  const auto off = run_controlled(tmk::UpdateMode::kOff);
  const auto dflt = run_controlled(std::nullopt);
  // Virtual times are deliberately not compared: DSM interrupt charges
  // land at host-timing-dependent virtual moments even under the
  // deterministic model (same reason the transport suite restricts
  // Tmk vt comparisons). Message/byte counters on this lock-free
  // barrier-phased schedule ARE bit-stable, and the checksum folds the
  // final vector clock.
  for (std::size_t l = 0; l < off.total.messages.size(); ++l) {
    EXPECT_EQ(off.total.messages[l], dflt.total.messages[l]) << "layer " << l;
    EXPECT_EQ(off.total.bytes[l], dflt.total.bytes[l]) << "layer " << l;
  }
  for (int p = 0; p < kProcs; ++p)
    EXPECT_DOUBLE_EQ(off.procs[static_cast<std::size_t>(p)].checksum,
                     dflt.procs[static_cast<std::size_t>(p)].checksum)
        << "proc " << p;
  EXPECT_EQ(off.ctr(runner::ctr::Id::kDiffPush), 0u);
  EXPECT_EQ(dflt.ctr(runner::ctr::Id::kDiffPush), 0u);
}

// ---- data + clock equivalence across all modes -----------------------

TEST(UpdateMode, ChecksumsAndFinalClocksIdenticalAcrossModes) {
  const auto off = run_controlled(tmk::UpdateMode::kOff);
  for (const tmk::UpdateMode m :
       {tmk::UpdateMode::kHint, tmk::UpdateMode::kAdaptive,
        tmk::UpdateMode::kHybrid}) {
    const auto r = run_controlled(m);
    for (int p = 0; p < kProcs; ++p)
      EXPECT_DOUBLE_EQ(off.procs[static_cast<std::size_t>(p)].checksum,
                       r.procs[static_cast<std::size_t>(p)].checksum)
          << "mode " << static_cast<int>(m) << " proc " << p;
  }
}

TEST(UpdateMode, AdaptivePredictorActuallyPushes) {
  const auto off = run_controlled(tmk::UpdateMode::kOff);
  const auto hybrid = run_controlled(tmk::UpdateMode::kHybrid);
  EXPECT_EQ(off.ctr(runner::ctr::Id::kDiffPush), 0u);
  EXPECT_EQ(off.ctr(runner::ctr::Id::kPushHits), 0u);
  // The stable pattern means pushes happen AND land: hits, not waste.
  EXPECT_GT(hybrid.ctr(runner::ctr::Id::kDiffPush), 0u);
  EXPECT_GT(hybrid.ctr(runner::ctr::Id::kPushHits), 0u);
  // A pushed page satisfies the would-be pull, so requests drop.
  EXPECT_LT(hybrid.ctr(runner::ctr::Id::kDiffRequests), off.ctr(runner::ctr::Id::kDiffRequests));
}

// ---- registry workloads: traffic strictly drops at scale -------------

struct DropCase {
  std::string key;
  int nprocs;
};

const std::any& scale_params(const apps::Workload& w) {
  return w.scale_params.has_value() ? w.scale_params
                                    : w.params(apps::Preset::kReduced);
}

class UpdateModeDrop : public ::testing::TestWithParam<DropCase> {};

TEST_P(UpdateModeDrop, HybridReducesTrafficWithChecksumsUnchanged) {
  const DropCase dc = GetParam();
  const apps::Workload* w = nullptr;
  for (const apps::Workload& cand : apps::all_workloads())
    if (cand.key == dc.key) w = &cand;
  ASSERT_NE(w, nullptr) << dc.key;
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.backend = runner::Backend::kThread;  // 32+ ranks without 32 forks
  o.transport = mpl::TransportKind::kInproc;
  o.timeout_sec = 300;
  const std::any& params = scale_params(*w);
  auto run = [&](const char* mode) {
    test::EnvGuard env("TMK_UPDATE_MODE", mode);
    return apps::run_workload(*w, apps::System::kTmk, dc.nprocs, o, params);
  };
  const auto off = run("off");
  const auto hybrid = run("hybrid");
  for (int p = 0; p < dc.nprocs; ++p)
    EXPECT_DOUBLE_EQ(off.procs[static_cast<std::size_t>(p)].checksum,
                     hybrid.procs[static_cast<std::size_t>(p)].checksum)
        << dc.key << " proc " << p;
  const auto tmk_l = mpl::Layer::kTmk;
  EXPECT_LT(hybrid.messages(tmk_l), off.messages(tmk_l)) << dc.key;
  EXPECT_LT(hybrid.kbytes(tmk_l), off.kbytes(tmk_l)) << dc.key;
  // Pushed pages arrive before the fault would have happened.
  EXPECT_LT(hybrid.ctr(runner::ctr::Id::kPageFaults), off.ctr(runner::ctr::Id::kPageFaults)) << dc.key;
}

INSTANTIATE_TEST_SUITE_P(Registry, UpdateModeDrop,
                         // Jacobi at 64: at 32 ranks its byte totals
                         // sit at parity (headers offset the saved
                         // replies); the margin opens with scale.
                         ::testing::Values(DropCase{"jacobi", 64},
                                           DropCase{"shallow", 32}),
                         [](const auto& info) {
                           return info.param.key + "_" +
                                  std::to_string(info.param.nprocs);
                         });

}  // namespace
