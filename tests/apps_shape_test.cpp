// Application-specific shape tests: the paper's qualitative claims about
// message counts and traffic (Tables 2-3, §5, §6) plus the variants
// whose preset constraints keep them out of the registry-driven checksum
// suite (page-aligned kSpfOpt/kTmkOpt rows). Runs reach the apps through
// the generic run_workload() entry point with custom parameters.
#include <gtest/gtest.h>

#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/registry.hpp"
#include "apps/shallow.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"
#include "tmk/config.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  // The traffic ratios below are the PAPER's protocol shapes. Race
  // detection piggybacks write masks on every interval record — real
  // modelled bytes that can triple a lean on-demand-paging workload's
  // Tmk traffic (igrid) and so erode the Table 2/3 margins. Pin the
  // detector off (preserving every other knob from the environment) so
  // the CI racecheck legs don't turn shape assertions into detector
  // wire-cost assertions; the detector's own suite is racecheck_test.
  tmk::Config cfg = tmk::Config::from_env();
  cfg.racecheck = tmk::RaceCheckMode::kOff;
  o.tmk_config = cfg;
  return o;
}

using apps::System;

// ---- Jacobi -----------------------------------------------------------

// The optimized variant needs page-aligned rows (n multiple of 1024).
TEST(JacobiOpt, MatchesSequentialChecksum) {
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 3;
  p.warmup_iters = 1;
  const double expect = apps::jacobi_seq(p);
  const auto run = apps::run_workload(apps::find_workload("jacobi"),
                                      System::kSpfOpt, 4, fast_options(), p);
  EXPECT_DOUBLE_EQ(run.checksum, expect);
}

TEST(JacobiOpt, PushCutsMessagesVsPlainSpf) {
  const apps::Workload& w = apps::find_workload("jacobi");
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto plain = apps::run_workload(w, System::kSpf, 4, fast_options(), p);
  const auto opt =
      apps::run_workload(w, System::kSpfOpt, 4, fast_options(), p);
  EXPECT_LT(opt.messages(mpl::Layer::kTmk), plain.messages(mpl::Layer::kTmk));
}

// Message-count shape of Table 2: MP sends fewest messages; the DSM
// versions pay page-fault round-trips and separate synchronization.
TEST(JacobiShape, MessageOrdering) {
  const apps::Workload& w = apps::find_workload("jacobi");
  apps::JacobiParams p;
  p.n = 1024;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto spf = apps::run_workload(w, System::kSpf, 8, fast_options(), p);
  const auto tmk = apps::run_workload(w, System::kTmk, 8, fast_options(), p);
  const auto xhpf = apps::run_workload(w, System::kXhpf, 8, fast_options(), p);
  const auto pvme = apps::run_workload(w, System::kPvme, 8, fast_options(), p);

  const auto m_spf = spf.messages(mpl::Layer::kTmk);
  const auto m_tmk = tmk.messages(mpl::Layer::kTmk);
  const auto m_xhpf = xhpf.messages(mpl::Layer::kPvme);
  const auto m_pvme = pvme.messages(mpl::Layer::kPvme);

  EXPECT_GT(m_spf, 0u);
  EXPECT_GE(m_spf, m_tmk);   // compiler version never sends less
  EXPECT_GT(m_tmk, m_xhpf);  // page-granularity + separate sync
  EXPECT_GT(m_xhpf, m_pvme); // conservative per-loop exchanges

  // PVMe: exactly 2 halo messages per interior boundary per iteration.
  EXPECT_EQ(m_pvme, 5u * 2u * 7u);
}

// ---- Shallow ----------------------------------------------------------

TEST(ShallowShape, SpfPaysRedundantSynchronization) {
  const apps::Workload& w = apps::find_workload("shallow");
  apps::ShallowParams p;
  p.n = 96;
  p.iters = 4;
  p.warmup_iters = 1;
  const auto spf = apps::run_workload(w, System::kSpf, 8, fast_options(), p);
  const auto tmk = apps::run_workload(w, System::kTmk, 8, fast_options(), p);
  // Five fork/join pairs vs three barriers per iteration.
  EXPECT_GT(spf.messages(mpl::Layer::kTmk), tmk.messages(mpl::Layer::kTmk));
}

// ---- MGS --------------------------------------------------------------

TEST(MgsOpt, BroadcastVariantMatchesAndSavesMessages) {
  const apps::Workload& w = apps::find_workload("mgs");
  apps::MgsParams p;
  p.n = 32;
  p.m = 1024;  // page-aligned rows for the broadcast optimization
  const double expect = apps::mgs_seq(p);
  const auto plain = apps::run_workload(w, System::kTmk, 4, fast_options(), p);
  const auto opt =
      apps::run_workload(w, System::kTmkOpt, 4, fast_options(), p);
  EXPECT_DOUBLE_EQ(plain.checksum, expect);
  EXPECT_DOUBLE_EQ(opt.checksum, expect);
  // Broadcast merges sync+data: fewer messages than barrier + page-in.
  EXPECT_LT(opt.messages(mpl::Layer::kTmk), plain.messages(mpl::Layer::kTmk));
}

TEST(MgsShape, PvmeUsesExactlyNMinus1PerStep) {
  const apps::Workload& w = apps::find_workload("mgs");
  apps::MgsParams p;
  p.n = 32;
  p.m = 256;
  const auto r = apps::run_workload(w, System::kPvme, 8, fast_options(), p);
  // One flat broadcast per step (the checksum gather is outside the
  // measured window).
  EXPECT_EQ(r.messages(mpl::Layer::kPvme), 32u * 7u);
}

// ---- 3-D FFT ----------------------------------------------------------

TEST(FftShape, TransposeDominatesDsmMessages) {
  const apps::Workload& w = apps::find_workload("fft");
  apps::FftParams p;
  p.nx = 32;
  p.ny = 32;
  p.nz = 32;
  p.iters = 2;
  p.warmup_iters = 1;
  const auto tmk = apps::run_workload(w, System::kTmk, 8, fast_options(), p);
  const auto pvme = apps::run_workload(w, System::kPvme, 8, fast_options(), p);
  // Page-at-a-time transpose vs one aggregated message per pair: the
  // paper reports ~30x; require a clearly large factor.
  EXPECT_GT(tmk.messages(mpl::Layer::kTmk),
            5 * pvme.messages(mpl::Layer::kPvme));
}

TEST(FftOpt, AggregationCollapsesTransposeMessages) {
  const apps::Workload& w = apps::find_workload("fft");
  apps::FftParams p;
  p.nx = 32;
  p.ny = 32;
  p.nz = 32;
  p.iters = 2;
  p.warmup_iters = 1;
  const auto plain = apps::run_workload(w, System::kSpf, 8, fast_options(), p);
  const auto opt =
      apps::run_workload(w, System::kSpfOpt, 8, fast_options(), p);
  EXPECT_LT(opt.messages(mpl::Layer::kTmk),
            plain.messages(mpl::Layer::kTmk) / 2);
}

// ---- IGrid ------------------------------------------------------------

TEST(IGridEdge, LargerDisplacementStillCorrect) {
  const apps::Workload& w = apps::find_workload("igrid");
  apps::IGridParams p;
  p.n = 96;
  p.iters = 3;
  p.warmup_iters = 0;
  p.displacement = 3;
  const double expect = apps::igrid_seq(p);
  for (System s : {System::kTmk, System::kPvme}) {
    const auto r = apps::run_workload(w, s, 4, fast_options(), p);
    EXPECT_DOUBLE_EQ(r.checksum, expect) << apps::to_string(s);
  }
}

TEST(IGridShape, XhpfBroadcastsOrdersOfMagnitudeMoreData) {
  const apps::Workload& w = apps::find_workload("igrid");
  apps::IGridParams p;
  p.n = 200;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto tmk = apps::run_workload(w, System::kTmk, 8, fast_options(), p);
  const auto xhpf = apps::run_workload(w, System::kXhpf, 8, fast_options(), p);
  const auto pvme = apps::run_workload(w, System::kPvme, 8, fast_options(), p);

  const double tmk_kb = tmk.kbytes(mpl::Layer::kTmk);
  const double xhpf_kb = xhpf.kbytes(mpl::Layer::kPvme);
  const double pvme_kb = pvme.kbytes(mpl::Layer::kPvme);
  // §6.1: on-demand paging touches only boundary pages; the broadcast
  // fallback ships every partition to everyone.
  EXPECT_GT(xhpf_kb, 50.0 * tmk_kb);
  EXPECT_GT(xhpf_kb, 20.0 * pvme_kb);
}

// ---- NBF --------------------------------------------------------------

TEST(NbfShape, XhpfBroadcastDominatesTraffic) {
  const apps::Workload& w = apps::find_workload("nbf");
  apps::NbfParams p;
  p.nmol = 2048;
  p.iters = 4;
  p.warmup_iters = 1;
  p.window = 64;
  const auto tmk = apps::run_workload(w, System::kTmk, 8, fast_options(), p);
  const auto pvme = apps::run_workload(w, System::kPvme, 8, fast_options(), p);
  const auto xhpf = apps::run_workload(w, System::kXhpf, 8, fast_options(), p);

  // §6.2 / Table 3: XHPF broadcasts whole force buffers and coordinate
  // partitions — orders of magnitude above both hand versions.
  const double tmk_kb = tmk.kbytes(mpl::Layer::kTmk);
  const double pvme_kb = pvme.kbytes(mpl::Layer::kPvme);
  const double xhpf_kb = xhpf.kbytes(mpl::Layer::kPvme);
  EXPECT_GT(xhpf_kb, 20.0 * pvme_kb);
  EXPECT_GT(xhpf_kb, 20.0 * tmk_kb);
  // The DSM pays page-granularity protocol messages: more messages than
  // the aggregated hand MP code.
  EXPECT_GT(tmk.messages(mpl::Layer::kTmk), pvme.messages(mpl::Layer::kPvme));
}

TEST(NbfEdge, WindowTooLargeIsRejected) {
  const apps::Workload& w = apps::find_workload("nbf");
  apps::NbfParams p;
  p.nmol = 256;
  p.window = 200;  // >= block size at 8 procs
  EXPECT_THROW(apps::run_workload(w, System::kTmk, 8, fast_options(), p),
               common::Error);
}

}  // namespace
