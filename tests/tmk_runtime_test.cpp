// Multi-process TreadMarks consistency tests: real forked processes, real
// SIGSEGV-driven page faults, the full lazy-release-consistency protocol.
#include <gtest/gtest.h>

#include <cstring>

#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 64ull << 20;
  o.timeout_sec = 120;
  return o;
}

// Master writes before the barrier; everyone reads after it.
TEST(TmkRuntime, BarrierPublishesWrites) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(8192);
    if (rt.rank() == 0) {
      for (int i = 0; i < 8192; ++i) data[i] = i * 3;
    }
    rt.barrier();
    double sum = 0;
    for (int i = 0; i < 8192; ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  const double expect = 3.0 * (8191.0 * 8192.0 / 2.0);
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

// Each process writes its own page-aligned block; everyone reads all.
TEST(TmkRuntime, DisjointBlockWritersAllVisible) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    constexpr int kPer = 2048;  // ints per proc = 2 pages
    auto* data = rt.alloc<std::int32_t>(kPer * 8);
    rt.barrier();
    for (int i = 0; i < kPer; ++i) data[rt.rank() * kPer + i] = rt.rank() + 1;
    rt.barrier();
    double sum = 0;
    for (int i = 0; i < kPer * rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  EXPECT_DOUBLE_EQ(r.checksum, 2048.0 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

// False sharing: all 8 processes write disjoint words of the SAME page in
// the same interval; the multiple-writer protocol must merge all writes.
TEST(TmkRuntime, FalseSharingMergesConcurrentWriters) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* page = rt.alloc<std::int32_t>(1024);  // exactly one page
    rt.barrier();
    for (int i = rt.rank(); i < 1024; i += rt.nprocs())
      page[i] = 1000 + rt.rank();
    rt.barrier();
    double sum = 0;
    for (int i = 0; i < 1024; ++i) sum += page[i];
    rt.barrier();
    return sum;
  });
  double expect = 0;
  for (int i = 0; i < 1024; ++i) expect += 1000 + (i % 8);
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

// Lock-serialized read-modify-write of one shared cell.
TEST(TmkRuntime, LockProtectsSharedCounter) {
  constexpr int kIters = 25;
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* counter = rt.alloc<std::int64_t>(1);
    rt.barrier();
    for (int i = 0; i < kIters; ++i) {
      rt.lock_acquire(3);
      *counter += 1;
      rt.lock_release(3);
    }
    rt.barrier();
    return static_cast<double>(*counter);
  });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 4.0 * kIters);
}

// Several distinct locks used concurrently, managers spread over procs.
TEST(TmkRuntime, MultipleLocksIndependent) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* cells = rt.alloc<std::int64_t>(512 * 4);  // one page per lock
    rt.barrier();
    for (int round = 0; round < 10; ++round) {
      for (int l = 0; l < 4; ++l) {
        rt.lock_acquire(l);
        cells[512 * l] += 1;
        rt.lock_release(l);
      }
    }
    rt.barrier();
    double sum = 0;
    for (int l = 0; l < 4; ++l) sum += static_cast<double>(cells[512 * l]);
    return sum;
  });
  EXPECT_DOUBLE_EQ(r.checksum, 4.0 * 10 * 4);
}

// A reader that skips epochs must receive the full chain of diffs.
TEST(TmkRuntime, LateReaderGetsAllEpochDiffs) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    for (int epoch = 0; epoch < 5; ++epoch) {
      if (rt.rank() == 0) data[100 + epoch] = epoch + 1;
      rt.barrier();
      // Rank 1 deliberately does not read until the end.
    }
    double sum = 0;
    for (int i = 0; i < 1024; ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 1 + 2 + 3 + 4 + 5);
}

// Ping-pong ownership: two processes alternately rewrite the same page.
TEST(TmkRuntime, AlternatingWritersConverge) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    for (int round = 0; round < 10; ++round) {
      if (round % 2 == rt.rank()) {
        for (int i = 0; i < 64; ++i) data[i] = data[i] + 1;
      }
      rt.barrier();
    }
    double sum = 0;
    for (int i = 0; i < 64; ++i) sum += data[i];
    return sum;
  });
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 64.0 * 10);
}

// Write-first access (no prior read) on an invalid page must still fetch
// pending diffs before the write proceeds.
TEST(TmkRuntime, WriteFaultOnInvalidPagePreservesOthersData) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    if (rt.rank() == 0) {
      for (int i = 0; i < 512; ++i) data[i] = 7;
    }
    rt.barrier();
    if (rt.rank() == 1) {
      // First access is a WRITE to the upper half; rank 0's lower half
      // must survive the twin/merge.
      for (int i = 512; i < 1024; ++i) data[i] = 9;
    }
    rt.barrier();
    double sum = 0;
    for (int i = 0; i < 1024; ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 512.0 * 7 + 512.0 * 9);
}

// Improved fork/join interface: master dispatches three parallel "loops".
TEST(TmkRuntime, ForkJoinRoundTrips) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(4096);
    struct Args {
      std::int32_t scale;
    };
    if (rt.rank() == 0) {
      for (int loop = 0; loop < 3; ++loop) {
        Args a{loop + 1};
        rt.fork_broadcast(static_cast<std::uint32_t>(loop),
                          {reinterpret_cast<const std::byte*>(&a), sizeof(a)});
        for (int i = 0; i < 1024; ++i) data[i] += a.scale;  // master's share
        rt.join_master();
      }
      Args stop{0};
      rt.fork_broadcast(99,
                        {reinterpret_cast<const std::byte*>(&stop),
                         sizeof(stop)});
      double sum = 0;
      for (int i = 0; i < 4096; ++i) sum += data[i];
      return sum;
    }
    for (;;) {
      auto work = rt.wait_fork();
      if (work.func_id == 99) break;
      Args a;
      std::memcpy(&a, work.args.data(), sizeof(a));
      const int lo = 1024 * rt.rank();
      for (int i = lo; i < lo + 1024; ++i) data[i] += a.scale;
      rt.join_worker();
    }
    return 0.0;
  });
  // Each quarter incremented by 1+2+3 = 6.
  EXPECT_DOUBLE_EQ(r.checksum, 4096.0 * 6);
}

// Aggregated validate: one batched fetch instead of page-at-a-time.
TEST(TmkRuntime, ValidatePrefetchesRange) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    constexpr int kInts = 16 * 1024;  // 16 pages
    auto* data = rt.alloc<std::int32_t>(kInts);
    rt.barrier();
    if (rt.rank() == 0)
      for (int i = 0; i < kInts; ++i) data[i] = 2;
    rt.barrier();
    if (rt.rank() == 1) {
      rt.validate(data, kInts * sizeof(std::int32_t));
      // All pages fetched with one request: afterwards reads are local.
      const std::uint64_t before = rt.stats().diff_requests;
      double sum = 0;
      for (int i = 0; i < kInts; ++i) sum += data[i];
      const std::uint64_t after = rt.stats().diff_requests;
      rt.barrier();
      return (after == before) ? sum : -1.0;
    }
    rt.barrier();
    return 0.0;
  });
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 2.0 * 16 * 1024);
}

// Push + accept_push: producer pushes its boundary, consumer reads it
// without any further protocol traffic even after the barrier.
TEST(TmkRuntime, PushSatisfiesFutureWriteNotices) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);  // one page
    rt.barrier();
    if (rt.rank() == 0) {
      for (int i = 0; i < 1024; ++i) data[i] = 5;
      rt.push(1, data, common::kPageSize);
    } else {
      rt.accept_push(0);
    }
    rt.barrier();
    if (rt.rank() == 1) {
      const std::uint64_t faults_before = rt.stats().read_faults;
      double sum = 0;
      for (int i = 0; i < 1024; ++i) sum += data[i];
      const std::uint64_t faults_after = rt.stats().read_faults;
      rt.barrier();
      // The barrier's write notice was pre-applied: no fault, no fetch.
      return (faults_after == faults_before) ? sum : -sum;
    }
    rt.barrier();
    return 0.0;
  });
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 5.0 * 1024);
}

// Broadcast: root's region lands everywhere with n-1 messages.
TEST(TmkRuntime, BcastDeliversToAll) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(2048);  // two pages
    rt.barrier();
    if (rt.rank() == 2)
      for (int i = 0; i < 2048; ++i) data[i] = i;
    rt.bcast(2, data, 2 * common::kPageSize);
    double sum = 0;
    for (int i = 0; i < 2048; ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  const double expect = 2047.0 * 2048.0 / 2.0;
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

// Locks as consistency carriers: updates made under the lock are visible
// to the next holder without any barrier.
TEST(TmkRuntime, LockGrantCarriesConsistency) {
  auto r = runner::spawn(3, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);
    auto* turn = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    // Token passing via the lock: the process whose rank matches *turn
    // writes the next cell. The updates travel only through lock grants
    // within a round; barriers just delimit rounds.
    for (int round = 0; round < rt.nprocs(); ++round) {
      rt.lock_acquire(0);
      if (*turn < rt.nprocs() && *turn % rt.nprocs() == rt.rank()) {
        data[*turn] = *turn + 1;
        *turn += 1;
      }
      rt.lock_release(0);
      rt.barrier();
    }
    double sum = 0;
    for (int i = 0; i < rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  // data[i] = i+1 for i in 0..2 => 1+2+3.
  EXPECT_DOUBLE_EQ(r.checksum, 6.0);
}

TEST(TmkRuntime, SingleProcessDegenerateCase) {
  auto r = runner::spawn(1, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<double>(1000);
    rt.barrier();
    for (int i = 0; i < 1000; ++i) data[i] = i;
    rt.barrier();
    rt.lock_acquire(0);
    data[0] += 1;
    rt.lock_release(0);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) sum += data[i];
    return sum;
  });
  EXPECT_DOUBLE_EQ(r.checksum, 999.0 * 1000.0 / 2.0 + 1.0);
  EXPECT_EQ(r.total.total_messages(), 0u);
}

TEST(TmkRuntime, StatsCountFaultsAndDiffs) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* data = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    if (rt.rank() == 0) {
      data[0] = 1;  // write fault -> twin
      rt.barrier();
      // Lazy diffing: the diff is created when rank 1 requests it; wait
      // for rank 1's read before sampling the stats.
      rt.barrier();
      return static_cast<double>(rt.stats().twins_created +
                                 rt.stats().diffs_created * 100);
    }
    rt.barrier();
    // Volatile read so the fault is not optimized away; compiler fence so
    // the stats loads below are not hoisted above the faulting read.
    const double x = *static_cast<volatile std::int32_t*>(data);
    asm volatile("" ::: "memory");
    const double result =
        static_cast<double>(rt.stats().read_faults +
                            rt.stats().diffs_fetched * 100) *
        (x == 1.0 ? 1.0 : -1.0);
    rt.barrier();
    return result;
  });
  EXPECT_DOUBLE_EQ(r.procs[0].checksum, 101.0);  // 1 twin + 1 lazy diff
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 101.0);  // 1 fault + 1 diff fetched
}

// Worst-case diffs end to end: one page with every second word written
// (512 runs, encodes to exactly one page) and one fully-rewritten page
// (one run, kPageSize + 4 bytes — larger than the page itself). Both
// must flush, ship, and apply correctly, and the creator's stats must
// report the exact encoded sizes.
TEST(TmkRuntime, WorstCaseDiffPatternsFlushAndApply) {
  auto r = runner::spawn(2, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* alt = rt.alloc<std::uint32_t>(1024);   // one page
    auto* full = rt.alloc<std::uint32_t>(1024);  // one page
    rt.barrier();
    if (rt.rank() == 0) {
      for (int i = 0; i < 1024; i += 2) alt[i] = 7u + static_cast<unsigned>(i);
      for (int i = 0; i < 1024; ++i) full[i] = 3u + static_cast<unsigned>(i);
      rt.barrier();
      rt.barrier();  // rank 1 fetched by now (lazy flush done)
      const std::uint64_t bytes = rt.stats().diff_bytes_created;
      const std::uint64_t diffs = rt.stats().diffs_created;
      // alternating: 512 * (4 + 4) = 4096; full: 4 + 4096 = 4100.
      return (diffs == 2 && bytes == 4096 + 4100) ? 1.0 : -1.0;
    }
    rt.barrier();
    double ok = 1.0;
    for (int i = 0; i < 1024; ++i) {
      const std::uint32_t want_alt =
          (i % 2 == 0) ? 7u + static_cast<unsigned>(i) : 0u;
      if (alt[i] != want_alt) ok = -1.0;
      if (full[i] != 3u + static_cast<unsigned>(i)) ok = -1.0;
    }
    rt.barrier();
    return ok;
  });
  EXPECT_DOUBLE_EQ(r.procs[0].checksum, 1.0);
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 1.0);
}

// Barrier message count: 2(n-1) per barrier (§2.2). The paper variants
// run the default (flat, centralized-manager) shape, whose modelled
// cost must stay exactly the paper's.
TEST(TmkRuntime, BarrierCosts2NMinus1Messages) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    rt.barrier();
    rt.barrier();
    rt.barrier();
    return 0.0;
  });
  // 3 counted barriers + shutdown rendezvous (uncounted layer kOther).
  EXPECT_EQ(r.messages(mpl::Layer::kTmk), 3u * 2u * 7u);
}

// The tree barrier sends one arrive and one depart per tree edge, so
// the 2(n-1) message count of the flat shape is arity-invariant: the
// modelled cost the paper variants report does not depend on the
// fan-in shape chosen for host-side latency.
TEST(TmkRuntime, TreeBarrierStillCosts2NMinus1Messages) {
  for (int arity : {1, 2, 3, 5}) {
    auto r = runner::spawn(8, fast_options(),
                           [arity](runner::ChildContext& c) {
                             tmk::Runtime::Options o;
                             o.barrier_arity = arity;
                             tmk::Runtime rt(c, o);
                             rt.barrier();
                             rt.barrier();
                             rt.barrier();
                             return 0.0;
                           });
    EXPECT_EQ(r.messages(mpl::Layer::kTmk), 3u * 2u * 7u)
        << "arity " << arity;
  }
}

// Consistency through the tree: writes published before the barrier are
// visible after it at every arity, including the interval forwarding
// up the tree and the tailored departs down it. Runs the same disjoint
// writer pattern the flat-barrier tests pin, at several arities.
TEST(TmkRuntime, TreeBarrierPublishesWritesAtAnyArity) {
  for (int arity : {1, 2, 4, 7}) {
    auto r = runner::spawn(8, fast_options(),
                           [arity](runner::ChildContext& c) {
                             tmk::Runtime::Options o;
                             o.barrier_arity = arity;
                             tmk::Runtime rt(c, o);
                             constexpr int kPer = 1024;  // one page each
                             auto* data = rt.alloc<std::int32_t>(kPer * 8);
                             rt.barrier();
                             for (int i = 0; i < kPer; ++i)
                               data[rt.rank() * kPer + i] = rt.rank() + 1;
                             rt.barrier();
                             double sum = 0;
                             for (int i = 0; i < kPer * rt.nprocs(); ++i)
                               sum += data[i];
                             rt.barrier();
                             return sum;
                           });
    const double expect = 1024.0 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
    for (const auto& p : r.procs)
      EXPECT_DOUBLE_EQ(p.checksum, expect) << "arity " << arity;
  }
}

// Locks can propagate intervals ACROSS subtrees between barriers; the
// tree fan-in must still deliver every interval exactly once and in
// creator order. The token-passing pattern of LockGrantCarriesConsistency
// at a deep (arity-2) tree exercises that path.
TEST(TmkRuntime, TreeBarrierInteroperatesWithLockConsistency) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime::Options o;
    o.barrier_arity = 2;
    tmk::Runtime rt(c, o);
    auto* data = rt.alloc<std::int32_t>(1024);
    auto* turn = rt.alloc<std::int32_t>(1024);
    rt.barrier();
    for (int round = 0; round < rt.nprocs(); ++round) {
      rt.lock_acquire(0);
      if (*turn < rt.nprocs() && *turn % rt.nprocs() == rt.rank()) {
        data[*turn] = *turn + 1;
        *turn += 1;
      }
      rt.lock_release(0);
      rt.barrier();
    }
    double sum = 0;
    for (int i = 0; i < rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  // data[i] = i+1 for i in 0..7 => 36.
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 36.0);
}

// join_worker reports intervals straight to rank 0, which teaches a
// non-root tree parent nothing; a later tree barrier must report its
// own intervals from the floor its PARENT actually knows, or the
// parent hits an interval gap and aborts. Chain arity (parent = rank-1
// everywhere) makes every non-leaf parent a non-root, and the barrier
// must follow the join with NO fork in between — a fork_broadcast
// would re-teach every worker and mask the gap.
TEST(TmkRuntime, TreeBarrierAfterForkJoinHasNoIntervalGap) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime::Options o;
    o.barrier_arity = 1;
    tmk::Runtime rt(c, o);
    constexpr int kPer = 1024;  // one page per rank
    auto* data = rt.alloc<std::int32_t>(kPer * 4);
    struct Args {
      std::int32_t scale;
    };
    if (rt.rank() == 0) {
      Args a{2};
      rt.fork_broadcast(
          0, {reinterpret_cast<const std::byte*>(&a), sizeof(a)});
      for (int i = 0; i < kPer; ++i) data[i] += a.scale;
      rt.join_master();
    } else {
      auto work = rt.wait_fork();
      Args a;
      std::memcpy(&a, work.args.data(), sizeof(a));
      const int lo = kPer * rt.rank();
      for (int i = lo; i < lo + kPer; ++i) data[i] += a.scale;
      rt.join_worker();
    }
    // New intervals after the join, published through the chain
    // barrier: each rank's contribution must be contiguous with what
    // its chain parent knows — which excludes the join-reported
    // intervals the parent never saw.
    data[kPer * rt.rank()] += rt.rank();
    rt.barrier();
    double sum = 0;
    for (int i = 0; i < kPer * rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
    return sum;
  });
  // Every quarter incremented by 2, plus each rank's extra bump.
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 1024.0 * 4 * 2 + (0 + 1 + 2 + 3));
}

// ---- packed write-notice keys (types.hpp) ----------------------------

// Exhaustive round-trip over every creator the 7-bit field admits,
// crossed with boundary seq and page values.
TEST(PackPreapplied, RoundTripsEveryCreatorAndBoundaryValues) {
  const tmk::Seq seqs[] = {1, 2, 1000, tmk::kPackMaxSeq - 1,
                           tmk::kPackMaxSeq};
  const tmk::PageIndex pages[] = {0, 1, 4095, tmk::kPackMaxPage - 1,
                                  tmk::kPackMaxPage};
  for (int creator = 0; creator < mpl::kMaxProcs; ++creator) {
    for (tmk::Seq seq : seqs) {
      for (tmk::PageIndex page : pages) {
        const auto id = static_cast<tmk::ProcId>(creator);
        const std::uint64_t key = tmk::pack_preapplied(id, seq, page);
        EXPECT_EQ(tmk::preapplied_creator(key), id);
        EXPECT_EQ(tmk::preapplied_seq(key), seq);
        EXPECT_EQ(tmk::preapplied_page(key), page);
        EXPECT_EQ(tmk::preapplied_prefix(key),
                  tmk::pack_preapplied(id, seq, 0) >> tmk::kPackPageBits);
      }
    }
  }
  static_assert(mpl::kMaxProcs <= (1 << tmk::kPackCreatorBits));
}

// The packing is ordering-preserving: keys compare exactly like the
// (creator, seq, page) tuples they encode. Prefix erasure relies on the
// (creator, seq) identity occupying the contiguous high bits, so a
// neighbouring seq or creator must never alias into the page field.
TEST(PackPreapplied, PreservesTupleOrderingForPrefixErasure) {
  struct T {
    tmk::ProcId c;
    tmk::Seq s;
    tmk::PageIndex p;
  };
  const T ts[] = {
      {0, 1, 0},
      {0, 1, tmk::kPackMaxPage},
      {0, 2, 0},
      {0, tmk::kPackMaxSeq, tmk::kPackMaxPage},
      {1, 1, 0},
      {63, 7, 123},
      {63, 7, 124},
      {63, 8, 0},
      {64, 1, 0},
      {127, tmk::kPackMaxSeq, tmk::kPackMaxPage},
  };
  for (std::size_t i = 0; i + 1 < std::size(ts); ++i) {
    const std::uint64_t a = tmk::pack_preapplied(ts[i].c, ts[i].s, ts[i].p);
    const std::uint64_t b =
        tmk::pack_preapplied(ts[i + 1].c, ts[i + 1].s, ts[i + 1].p);
    EXPECT_LT(a, b) << "entry " << i;
    // Same (creator, seq) <=> same prefix.
    const bool same_id =
        ts[i].c == ts[i + 1].c && ts[i].s == ts[i + 1].s;
    EXPECT_EQ(tmk::preapplied_prefix(a) == tmk::preapplied_prefix(b),
              same_id)
        << "entry " << i;
  }
}

// Covered-seq gap regression (fetch_and_apply): a diff reply's blob can
// bake in creator seqs the fetcher has not yet integrated (the reply's
// `covered` exceeds the requested seq, because the creator's lazy flush
// covers every unflushed interval of the page in one blob). When those
// write notices later arrive at a barrier they must NOT re-invalidate
// the page — a refetch would pull the same stale blob over words the
// fetcher has since written under false sharing. The gap is constructed
// deterministically: rank 0 opens a second interval on page A, then
// pushes an unrelated go-page to rank 2. push() closes the interval but
// ships write notices only for the pushed page, so rank 2 is sequenced
// after s2 exists yet still only knows s1 when its fault-time fetch
// runs.
TEST(TmkRuntime, CoveredSeqGapDoesNotRefetchOrClobberLocalWrites) {
  auto r = runner::spawn(3, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    auto* go = rt.alloc<std::int32_t>(1024);  // one page, the signal
    auto* a = rt.alloc<std::int32_t>(1024);   // one page, falsely shared
    rt.barrier();
    if (rt.rank() == 0) {
      for (int i = 0; i < 256; ++i) a[i] = 1;  // interval s1
    }
    rt.barrier();  // everyone learns s1; page invalid at ranks 1, 2
    if (rt.rank() == 0) {
      for (int i = 256; i < 512; ++i) a[i] = 2;  // interval s2 opens
      go[0] = 42;
      rt.push(2, go, common::kPageSize);  // closes s2; no page-A notice
      rt.barrier();
      double sum = 0;
      for (int i = 0; i < 1024; ++i) sum += a[i];
      rt.barrier();
      return sum;
    }
    if (rt.rank() == 1) {
      // Passive witness: learns s1, s2 and rank 2's interval only at
      // the barrier, then pulls the fully merged page.
      rt.barrier();
      double sum = 0;
      for (int i = 0; i < 1024; ++i) sum += a[i];
      rt.barrier();
      return sum;
    }
    // Rank 2: ordered after s2 closed, but ignorant of it.
    rt.accept_push(0);
    if (go[0] != 42) return -1.0;
    // Write fault on the invalid page: the pending fetch requests s1
    // only; the reply's blob covers s1..s2 and the gap seq s2 is
    // recorded as pre-applied. Our own words must survive the apply.
    for (int i = 768; i < 1024; ++i) a[i] = 9;
    if (a[0] != 1 || a[256] != 2) return -2.0;  // baked-in writes visible
    const std::uint64_t before = rt.stats().diff_requests;
    rt.barrier();  // s2's write notice arrives; pre-applied, no refetch
    double sum = 0;
    for (int i = 0; i < 1024; ++i) sum += a[i];
    if (rt.stats().diff_requests != before) return -3.0;  // refetched!
    if (a[900] != 9) return -4.0;  // stale blob clobbered local writes
    rt.barrier();
    return sum;
  });
  const double expect = 256.0 * 1 + 256.0 * 2 + 256.0 * 9;
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

// Fork/join message count: 2(n-1) per parallel loop (§2.3).
TEST(TmkRuntime, ForkJoinCosts2NMinus1Messages) {
  auto r = runner::spawn(8, fast_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    if (rt.rank() == 0) {
      for (int loop = 0; loop < 5; ++loop) {
        rt.fork_broadcast(0, {});
        rt.join_master();
      }
      rt.fork_broadcast(99, {});
    } else {
      for (;;) {
        auto w = rt.wait_fork();
        if (w.func_id == 99) break;
        rt.join_worker();
      }
    }
    return 0.0;
  });
  // 5 loops * 2(n-1) + final dismissal fork (n-1).
  EXPECT_EQ(r.messages(mpl::Layer::kTmk), 5u * 2u * 7u + 7u);
}

}  // namespace
