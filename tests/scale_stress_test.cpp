// High-rank stress suite: the configurations that pin kMaxProcs == 128.
//
// Everything here runs on the thread backend — ranks as threads of this
// process on the inproc ring mesh — which is what makes 64 and 128 rank
// configurations affordable (no fork, no fd mesh) and visible to
// ThreadSanitizer as one program: the TSan CI leg runs this binary as
// its 64-rank barrier/fault stress target. The suite covers the three
// structures the 32 -> 128 widening replaced:
//
//   - the tree barrier (randomized arities, 2..128 ranks),
//   - the binary-search fault dispatch (concurrent SIGSEGV storm at 64
//     ranks),
//   - the 7-bit creator packing (128 concurrent writers publishing
//     write notices through one barrier).
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/registry.hpp"
#include "common/prng.hpp"
#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

runner::SpawnOptions thread_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  // Small per-rank heaps: 128 ranks map 128 of these, and the TSan /
  // ASan legs shadow every touched page.
  o.shared_heap_bytes = 8ull << 20;
  o.timeout_sec = 300;
  o.backend = runner::Backend::kThread;
  o.transport = mpl::TransportKind::kInproc;
  return o;
}

// Barrier correctness at randomized arities across the full rank range:
// each rank publishes a page before the barrier and checks a rotating
// peer's page after it, so every fan-in edge carries real write notices
// and every depart must tailor the child's lacking set correctly.
TEST(ScaleStress, RandomizedArityBarriersUpTo128Ranks) {
  common::SplitMix64 prng(0x128ba771e11ull);
  for (int n : {2, 3, 5, 17, 33, 64, 128}) {
    // Arity in [1, n): 1 degenerates to a chain, n-1 to the flat
    // manager; everything between is a genuine multi-level tree.
    const int arity = 1 + static_cast<int>(prng.next() %
                                           static_cast<std::uint64_t>(n));
    SCOPED_TRACE("n=" + std::to_string(n) +
                 " arity=" + std::to_string(arity));
    constexpr int kRounds = 3;
    auto r = runner::spawn(
        n, thread_options(), [arity](runner::ChildContext& c) {
          tmk::Runtime::Options o;
          o.barrier_arity = arity;
          tmk::Runtime rt(c, o);
          const int np = rt.nprocs();
          auto* data = rt.alloc<std::int32_t>(1024 * np);  // page per rank
          rt.barrier();
          double ok = 1.0;
          for (int round = 0; round < kRounds; ++round) {
            data[1024 * rt.rank()] = 1000 * round + rt.rank();
            rt.barrier();
            const int peer = (rt.rank() + 1 + round) % np;
            if (data[1024 * peer] != 1000 * round + peer) ok = -1.0;
            rt.barrier();
          }
          return ok;
        });
    for (const auto& p : r.procs)
      EXPECT_DOUBLE_EQ(p.checksum, 1.0) << "rank " << p.rank;
  }
}

// 128 concurrent writers of one barrier interval: every rank's write
// notice carries a distinct 7-bit creator, and every rank integrates
// all 127 others — the widest packing and vector-clock configuration
// the system admits.
TEST(ScaleStress, AllCreatorsVisibleAt128Ranks) {
  const int n = mpl::kMaxProcs;
  auto r = runner::spawn(n, thread_options(), [](runner::ChildContext& c) {
    tmk::Runtime rt(c);
    const int np = rt.nprocs();
    auto* data = rt.alloc<std::int32_t>(1024 * np);
    rt.barrier();
    data[1024 * rt.rank()] = rt.rank() + 1;
    rt.barrier();
    // Sparse cross-check: each rank reads 8 spread-out peers, so the
    // 128-rank suite stays wall-clock-affordable under sanitizers
    // while every rank's notice is read somewhere.
    double sum = 0;
    for (int k = 1; k <= 8; ++k) {
      const int peer = (rt.rank() + k * 16 + 1) % np;
      sum += data[1024 * peer] - (peer + 1);
    }
    rt.barrier();
    return sum;
  });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 0.0) << "rank " << p.rank;
}

// Fault storm at 64 ranks: every rank takes write faults on its own
// heap concurrently with 63 others, so the process-wide handler's
// binary-search dispatch (Runtime::owner_of) resolves 64 live heap
// ranges under continuous concurrent faulting — while runtimes of a
// previous run have been torn down and re-registered, which is what
// churns the sorted index.
TEST(ScaleStress, ConcurrentFaultStormAt64Ranks) {
  constexpr int kRanks = 64;
  constexpr int kPages = 8;
  auto r = runner::spawn(
      kRanks, thread_options(), [](runner::ChildContext& c) {
        tmk::Runtime rt(c);
        const int np = rt.nprocs();
        const int me = rt.rank();
        auto* mine = rt.alloc<std::int32_t>(
            static_cast<std::size_t>(np) * kPages * 1024);
        // No barrier before the storm: all ranks fault at once, during
        // and after peer Runtime construction.
        for (int pg = 0; pg < kPages; ++pg)
          mine[(me * kPages + pg) * 1024] = me * 1000 + pg;
        const std::uint64_t faults = rt.stats().write_faults;
        rt.barrier();
        const int peer = (me + 1) % np;
        double ok = faults >= kPages ? 1.0 : -2.0;
        for (int pg = 0; pg < kPages; ++pg)
          if (mine[(peer * kPages + pg) * 1024] != peer * 1000 + pg)
            ok = -1.0;
        rt.barrier();
        return ok;
      });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 1.0) << "rank " << p.rank;
}

// Same storm shape at 64 ranks with a tree barrier behind it — the TSan
// leg's single named target covering both new concurrent structures in
// one run.
TEST(ScaleStress, TreeBarrierFaultStormAt64Ranks) {
  constexpr int kRanks = 64;
  auto r = runner::spawn(
      kRanks, thread_options(), [](runner::ChildContext& c) {
        tmk::Runtime::Options o;
        o.barrier_arity = 4;
        tmk::Runtime rt(c, o);
        const int np = rt.nprocs();
        auto* data = rt.alloc<std::int32_t>(1024 * np);
        rt.barrier();
        double ok = 1.0;
        for (int round = 0; round < 2; ++round) {
          data[1024 * rt.rank()] = 7 * round + rt.rank();
          rt.barrier();
          const int peer = (rt.rank() + 31) % np;
          if (data[1024 * peer] != 7 * round + peer) ok = -1.0;
          rt.barrier();
        }
        return ok;
      });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, 1.0) << "rank " << p.rank;
}

// More ranks than rows: shallow's reduced grid spreads 97 rows over
// 128 ranks — every active rank owns exactly one row and a trailing
// run of ranks owns nothing. Regression for two bugs only reachable
// past 32 ranks: (1) the neighbour exchange and row-n wrap deadlocked
// against an empty last rank (an active rank blocked on a halo its
// empty upper neighbour never sends; rank 0 blocked on the row-n wrap
// the empty last rank never ships); (2) with a one-row rank 0, the
// halo was shipped BEFORE the row-0 wrap rewrote it, handing rank 1 a
// stale boundary. The DSM variant had the same one-row hole: its
// merged-wrap trick let rank 1 read row 0 with no synchronization
// after the master's wrap. The checksum must match the sequential run
// to the variant's (zero) tolerance.
TEST(ScaleStress, ShallowVariantsHandleOneRowAndEmptyTailRanksAt128) {
  const apps::Workload& w = apps::find_workload("shallow");
  runner::SpawnOptions o = thread_options();
  o.shared_heap_bytes = 16ull << 20;  // the DSM leg allocates full grids
  const auto seq =
      apps::run_workload(w, apps::System::kSeq, 1, o, apps::Preset::kReduced);
  for (apps::System sys :
       {apps::System::kPvme, apps::System::kXhpf, apps::System::kTmk}) {
    const auto r = apps::run_workload(w, sys, mpl::kMaxProcs, o,
                                      apps::Preset::kReduced);
    EXPECT_NEAR(r.checksum, seq.checksum,
                w.find(sys)->tolerance + 1e-6 * std::abs(seq.checksum))
        << apps::to_string(sys);
  }
}

}  // namespace
