// Compiler-runtime tests: SPF fork-join dispatch (both interface modes),
// loop scheduling through the dist layer, reductions; XHPF halo exchange
// and the broadcast-partition fallback. (Pure distribution arithmetic is
// covered by dist_test.cpp.)
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dist/dist.hpp"
#include "runner/runner.hpp"
#include "spf/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 64ull << 20;
  o.timeout_sec = 120;
  return o;
}

// ---- SPF dispatch ----------------------------------------------------

struct ScaleArgs {
  std::int32_t n;
  std::int32_t scale;
};

// Per-rank (thread_local): under the thread backend every rank thread
// binds these to pointers into its OWN heap; a shared global would make
// ranks scribble into each other's address ranges.
thread_local std::int32_t* g_spf_data = nullptr;
thread_local double* g_spf_sumcell = nullptr;

void scale_loop(spf::Runtime& rt, const void* argp) {
  ScaleArgs a;
  std::memcpy(&a, argp, sizeof(a));
  const auto r = rt.own_block(static_cast<std::size_t>(a.n));
  for (std::int64_t i = r.lo; i < r.hi; ++i) g_spf_data[i] += a.scale;
}

void sum_reduce_loop(spf::Runtime& rt, const void* argp) {
  ScaleArgs a;
  std::memcpy(&a, argp, sizeof(a));
  const auto r = rt.own_block(static_cast<std::size_t>(a.n));
  double local = 0;
  for (std::int64_t i = r.lo; i < r.hi; ++i) local += g_spf_data[i];
  rt.reduce_add(0, g_spf_sumcell, local);
}

double spf_program(spf::Runtime& rt, int n) {
  // Master-side program: init (sequential), two parallel loops, reduction.
  for (int i = 0; i < n; ++i) g_spf_data[i] = i % 10;
  ScaleArgs a{n, 3};
  rt.parallel(0, a);
  ScaleArgs b{n, 4};
  rt.parallel(1, b);  // reduction loop: scale field unused
  return *g_spf_sumcell;
}

double run_spf_mode(runner::ChildContext& c, spf::DispatchMode mode) {
  spf::Runtime::Options opts;
  opts.mode = mode;
  spf::Runtime rt(c, opts);
  constexpr int kN = 5000;
  g_spf_data = rt.tmk().alloc<std::int32_t>(kN);
  g_spf_sumcell = rt.tmk().alloc<double>(1);
  rt.register_loop(scale_loop);
  rt.register_loop(sum_reduce_loop);
  return rt.run([&rt] { return spf_program(rt, kN); });
}

double spf_expected(int n) {
  double s = 0;
  for (int i = 0; i < n; ++i) s += i % 10 + 3;
  return s;
}

class SpfDispatch
    : public ::testing::TestWithParam<std::pair<int, spf::DispatchMode>> {};

TEST_P(SpfDispatch, ProgramComputesCorrectSum) {
  const auto [nprocs, mode] = GetParam();
  auto r = runner::spawn(nprocs, fast_options(),
                         [mode](runner::ChildContext& c) {
                           return run_spf_mode(c, mode);
                         });
  EXPECT_DOUBLE_EQ(r.checksum, spf_expected(5000));
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, SpfDispatch,
    ::testing::Values(std::pair{1, spf::DispatchMode::kImproved},
                      std::pair{2, spf::DispatchMode::kImproved},
                      std::pair{8, spf::DispatchMode::kImproved},
                      std::pair{2, spf::DispatchMode::kLegacy},
                      std::pair{4, spf::DispatchMode::kLegacy},
                      std::pair{8, spf::DispatchMode::kLegacy}));

// §2.3's headline claim: the improved interface cuts messages per loop
// from 8(n-1) to 2(n-1).
TEST(SpfInterface, ImprovedCutsMessagesFourfold) {
  auto count_for = [](spf::DispatchMode mode) {
    auto r = runner::spawn(8, fast_options(),
                           [mode](runner::ChildContext& c) {
                             return run_spf_mode(c, mode);
                           });
    return r.messages(mpl::Layer::kTmk);
  };
  const auto improved = count_for(spf::DispatchMode::kImproved);
  const auto legacy = count_for(spf::DispatchMode::kLegacy);
  // Improved: 2(n-1) per loop; legacy: 4(n-1) barrier + up to 4 faults
  // per worker per loop. The data loops themselves add equal traffic in
  // both modes, so require a clear but not exact separation.
  EXPECT_LT(improved, legacy);
  EXPECT_GE(legacy - improved, 2u * 7u * 2u);  // >= 2(n-1) saved per loop
}

// ---- XHPF generated communication -----------------------------------
// (xhpf::BlockDist is the dist layer's descriptor; the generated halo
// and broadcast communication below is keyed off it.)

TEST(Xhpf, HaloExchangeMovesBoundaryRows) {
  constexpr std::size_t kRows = 64, kCols = 32;
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    xhpf::Runtime rt(comm);
    xhpf::BlockDist dist(kRows, comm.nprocs());
    std::vector<double> grid(kRows * kCols, -1.0);
    // Fill own rows with rank id.
    for (std::size_t i = dist.lo(comm.rank()); i < dist.hi(comm.rank()); ++i)
      for (std::size_t j = 0; j < kCols; ++j)
        grid[i * kCols + j] = comm.rank();
    rt.halo_exchange_rows(grid.data(), kCols, dist, 100);
    // Check halos contain the neighbours' ranks.
    double ok = 1.0;
    if (comm.rank() > 0) {
      const std::size_t h = dist.lo(comm.rank()) - 1;
      for (std::size_t j = 0; j < kCols; ++j)
        if (grid[h * kCols + j] != comm.rank() - 1) ok = 0.0;
    }
    if (comm.rank() + 1 < comm.nprocs()) {
      const std::size_t h = dist.hi(comm.rank());
      for (std::size_t j = 0; j < kCols; ++j)
        if (grid[h * kCols + j] != comm.rank() + 1) ok = 0.0;
    }
    return ok;
  });
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 1.0);
}

TEST(Xhpf, BroadcastPartitionReplicatesWholeArray) {
  constexpr std::size_t kRows = 40, kCols = 128;
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    xhpf::Runtime rt(comm);
    xhpf::BlockDist dist(kRows, comm.nprocs());
    std::vector<float> grid(kRows * kCols, 0.0f);
    for (std::size_t i = dist.lo(comm.rank()); i < dist.hi(comm.rank()); ++i)
      for (std::size_t j = 0; j < kCols; ++j)
        grid[i * kCols + j] = static_cast<float>(i + j);
    rt.broadcast_partition_rows(grid.data(), kCols, dist, 200);
    double s = 0;
    for (std::size_t i = 0; i < kRows; ++i)
      for (std::size_t j = 0; j < kCols; ++j) s += grid[i * kCols + j];
    return s;
  });
  double expect = 0;
  for (std::size_t i = 0; i < kRows; ++i)
    for (std::size_t j = 0; j < kCols; ++j)
      expect += static_cast<double>(i + j);
  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, expect);
}

TEST(Xhpf, BroadcastPartitionMessageVolumeIsQuadratic) {
  // The §2.4 fallback ships every partition to every process: (n-1) x
  // whole-array bytes per step — the root cause of XHPF's irregular-app
  // collapse in §6.
  constexpr std::size_t kRows = 64, kCols = 256;  // 64 KiB of floats
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    pvme::Comm comm(c.endpoint);
    xhpf::Runtime rt(comm);
    xhpf::BlockDist dist(kRows, comm.nprocs());
    std::vector<float> grid(kRows * kCols, 1.0f);
    rt.broadcast_partition_rows(grid.data(), kCols, dist, 300);
    return 0.0;
  });
  const double bytes = kRows * kCols * sizeof(float);
  EXPECT_EQ(r.total.bytes[static_cast<int>(mpl::Layer::kPvme)],
            static_cast<std::uint64_t>(bytes) * 3u);  // (n-1) copies
  // Chunked at kCompilerChunk: many more messages than a plain bcast.
  EXPECT_GE(r.messages(mpl::Layer::kPvme), 3u * 4u);
}

}  // namespace
