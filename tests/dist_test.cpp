// Property tests for the distribution layer (src/dist): the BLOCK and
// CYCLIC descriptors must tile the iteration space with no gaps or
// overlaps for every shape — including the awkward ones (n == 0,
// n < nprocs, n % nprocs != 0) — and owner() must be the exact inverse
// of lo()/hi().
#include <gtest/gtest.h>

#include <vector>

#include "dist/dist.hpp"

namespace {

const int kProcCounts[] = {1, 2, 3, 5, 7, 8, 13};
const std::size_t kSizes[] = {0, 1, 2, 5, 7, 12, 13, 64, 100, 1000, 1023};

TEST(BlockDist, TilesWithNoGapsOrOverlaps) {
  for (int nprocs : kProcCounts) {
    for (std::size_t n : kSizes) {
      const dist::BlockDist d(n, nprocs);
      std::vector<int> hit(n, 0);
      std::size_t total = 0;
      for (int p = 0; p < nprocs; ++p) {
        ASSERT_LE(d.lo(p), d.hi(p));
        ASSERT_EQ(d.hi(p) - d.lo(p), d.count(p));
        total += d.count(p);
        for (std::size_t i = d.lo(p); i < d.hi(p); ++i) hit[i] += 1;
      }
      ASSERT_EQ(total, n) << "n=" << n << " nprocs=" << nprocs;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hit[i], 1) << "n=" << n << " nprocs=" << nprocs
                             << " i=" << i;
    }
  }
}

TEST(BlockDist, OwnerIsExactInverseOfLoHi) {
  for (int nprocs : kProcCounts) {
    for (std::size_t n : kSizes) {
      const dist::BlockDist d(n, nprocs);
      for (int p = 0; p < nprocs; ++p)
        for (std::size_t i = d.lo(p); i < d.hi(p); ++i)
          ASSERT_EQ(d.owner(i), p)
              << "n=" << n << " nprocs=" << nprocs << " i=" << i;
    }
  }
}

TEST(BlockDist, ContiguousAndOrdered) {
  // Block p+1 starts exactly where block p ends, and the first
  // (n % nprocs) blocks carry the extra element (HPF convention).
  for (int nprocs : kProcCounts) {
    for (std::size_t n : kSizes) {
      const dist::BlockDist d(n, nprocs);
      ASSERT_EQ(d.lo(0), 0u);
      ASSERT_EQ(d.hi(nprocs - 1), n);
      for (int p = 0; p + 1 < nprocs; ++p) {
        ASSERT_EQ(d.hi(p), d.lo(p + 1));
        ASSERT_GE(d.count(p), d.count(p + 1));  // extras lead
        ASSERT_LE(d.count(p), d.count(p + 1) + 1);
      }
    }
  }
}

TEST(BlockDist, Balanced) {
  const dist::BlockDist d(10, 4);  // 10 = 3+3+2+2
  EXPECT_EQ(d.count(0), 3u);
  EXPECT_EQ(d.count(3), 2u);
}

TEST(BlockRange, TilesArbitraryIntervals) {
  for (int nprocs : kProcCounts) {
    for (std::int64_t lo : {-7, 0, 5}) {
      for (std::int64_t len : {0, 1, 5, 64, 1000}) {
        const std::int64_t hi = lo + len;
        std::vector<int> hit(static_cast<std::size_t>(len), 0);
        for (int p = 0; p < nprocs; ++p) {
          const dist::Range r = dist::block_range(lo, hi, p, nprocs);
          ASSERT_LE(lo, r.lo);
          ASSERT_LE(r.hi, hi);
          for (std::int64_t i = r.lo; i < r.hi; ++i)
            hit[static_cast<std::size_t>(i - lo)] += 1;
        }
        for (std::int64_t i = 0; i < len; ++i)
          ASSERT_EQ(hit[static_cast<std::size_t>(i)], 1)
              << "lo=" << lo << " len=" << len << " nprocs=" << nprocs;
      }
    }
  }
}

TEST(BlockRange, MatchesBlockDistOnZeroBase) {
  for (int nprocs : kProcCounts) {
    for (std::size_t n : kSizes) {
      const dist::BlockDist d(n, nprocs);
      for (int p = 0; p < nprocs; ++p) {
        const dist::Range r =
            dist::block_range(0, static_cast<std::int64_t>(n), p, nprocs);
        EXPECT_EQ(static_cast<std::size_t>(r.lo), d.lo(p));
        EXPECT_EQ(static_cast<std::size_t>(r.hi), d.hi(p));
        EXPECT_EQ(r, d.range(p));
      }
    }
  }
}

TEST(CyclicDist, StridedIterationTilesExactly) {
  for (int nprocs : kProcCounts) {
    const std::int64_t lo = 5, hi = 105;
    std::vector<int> hit(static_cast<std::size_t>(hi), 0);
    for (int p = 0; p < nprocs; ++p) {
      for (std::int64_t i = dist::cyclic_begin(lo, p, nprocs); i < hi;
           i += nprocs)
        hit[static_cast<std::size_t>(i)] += 1;
    }
    for (std::int64_t i = lo; i < hi; ++i)
      ASSERT_EQ(hit[static_cast<std::size_t>(i)], 1) << "nprocs=" << nprocs;
  }
}

TEST(CyclicDist, OwnerMatchesBeginStride) {
  for (int nprocs : kProcCounts) {
    const dist::CyclicDist d(200, nprocs);
    for (int p = 0; p < nprocs; ++p)
      for (std::int64_t i = d.begin(0, p); i < 200; i += nprocs)
        ASSERT_EQ(d.owner(static_cast<std::size_t>(i)), p);
  }
}

TEST(CyclicDist, Owner) {
  const dist::CyclicDist d(100, 8);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(7), 7);
  EXPECT_EQ(d.owner(8), 0);
  EXPECT_EQ(d.owner(99), 3);
}

TEST(Range, Helpers) {
  const dist::Range r{3, 7};
  EXPECT_EQ(r.count(), 4);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(6));
  EXPECT_FALSE(r.contains(7));
  EXPECT_TRUE((dist::Range{5, 5}).empty());
}

}  // namespace
