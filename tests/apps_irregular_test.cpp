// Integration tests for the irregular applications (IGrid, NBF) — the
// paper's §6. Besides checksum equivalence, these assert the headline
// shape: the XHPF broadcast fallback moves orders of magnitude more data
// than the DSM, and TreadMarks moves *less data* than even the hand MP
// code (diffs carry only the modified words).
#include <gtest/gtest.h>

#include "apps/igrid.hpp"
#include "apps/nbf.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  return o;
}

// ---- IGrid ------------------------------------------------------------

class IGridVariants
    : public ::testing::TestWithParam<std::pair<apps::System, int>> {};

TEST_P(IGridVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::IGridParams p;
  p.n = 96;
  p.iters = 4;
  p.warmup_iters = 1;
  const double expect = apps::igrid_seq(p);
  const auto r = apps::run_igrid(system, p, nprocs, fast_options());
  EXPECT_DOUBLE_EQ(r.checksum, expect)
      << apps::to_string(system) << " nprocs=" << nprocs;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, IGridVariants,
    ::testing::Values(std::pair{apps::System::kSpf, 2},
                      std::pair{apps::System::kSpf, 8},
                      std::pair{apps::System::kTmk, 2},
                      std::pair{apps::System::kTmk, 8},
                      std::pair{apps::System::kXhpf, 4},
                      std::pair{apps::System::kXhpf, 8},
                      std::pair{apps::System::kPvme, 4},
                      std::pair{apps::System::kPvme, 8}));

TEST(IGridVariantsEdge, LargerDisplacementStillCorrect) {
  apps::IGridParams p;
  p.n = 96;
  p.iters = 3;
  p.warmup_iters = 0;
  p.displacement = 3;
  const double expect = apps::igrid_seq(p);
  for (apps::System s : {apps::System::kTmk, apps::System::kPvme}) {
    const auto r = apps::run_igrid(s, p, 4, fast_options());
    EXPECT_DOUBLE_EQ(r.checksum, expect) << apps::to_string(s);
  }
}

TEST(IGridShape, XhpfBroadcastsOrdersOfMagnitudeMoreData) {
  apps::IGridParams p;
  p.n = 200;
  p.iters = 5;
  p.warmup_iters = 1;
  const auto tmk = apps::run_igrid(apps::System::kTmk, p, 8, fast_options());
  const auto xhpf = apps::run_igrid(apps::System::kXhpf, p, 8, fast_options());
  const auto pvme = apps::run_igrid(apps::System::kPvme, p, 8, fast_options());

  const double tmk_kb = tmk.kbytes(mpl::Layer::kTmk);
  const double xhpf_kb = xhpf.kbytes(mpl::Layer::kPvme);
  const double pvme_kb = pvme.kbytes(mpl::Layer::kPvme);
  // §6.1: on-demand paging touches only boundary pages; the broadcast
  // fallback ships every partition to everyone.
  EXPECT_GT(xhpf_kb, 50.0 * tmk_kb);
  EXPECT_GT(xhpf_kb, 20.0 * pvme_kb);
}

// ---- NBF --------------------------------------------------------------

class NbfVariants
    : public ::testing::TestWithParam<std::pair<apps::System, int>> {};

TEST_P(NbfVariants, MatchesSequentialChecksum) {
  const auto [system, nprocs] = GetParam();
  apps::NbfParams p;
  p.nmol = 1024;
  p.iters = 3;
  p.warmup_iters = 1;
  p.window = 48;
  const double expect = apps::nbf_seq(p);
  const auto r = apps::run_nbf(system, p, nprocs, fast_options());
  if (system == apps::System::kXhpf) {
    // Buffer-sum order differs from the sequential interleaving.
    EXPECT_TRUE(common::checksum_close(r.checksum, expect, 1e-9))
        << r.checksum << " vs " << expect;
  } else {
    EXPECT_DOUBLE_EQ(r.checksum, expect)
        << apps::to_string(system) << " nprocs=" << nprocs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, NbfVariants,
    ::testing::Values(std::pair{apps::System::kSpf, 2},
                      std::pair{apps::System::kSpf, 8},
                      std::pair{apps::System::kTmk, 2},
                      std::pair{apps::System::kTmk, 8},
                      std::pair{apps::System::kXhpf, 4},
                      std::pair{apps::System::kXhpf, 8},
                      std::pair{apps::System::kPvme, 4},
                      std::pair{apps::System::kPvme, 8}));

TEST(NbfShape, XhpfBroadcastDominatesTraffic) {
  apps::NbfParams p;
  p.nmol = 2048;
  p.iters = 4;
  p.warmup_iters = 1;
  p.window = 64;
  const auto tmk = apps::run_nbf(apps::System::kTmk, p, 8, fast_options());
  const auto pvme = apps::run_nbf(apps::System::kPvme, p, 8, fast_options());
  const auto xhpf = apps::run_nbf(apps::System::kXhpf, p, 8, fast_options());

  // §6.2 / Table 3: XHPF broadcasts whole force buffers and coordinate
  // partitions — orders of magnitude above both hand versions.
  const double tmk_kb = tmk.kbytes(mpl::Layer::kTmk);
  const double pvme_kb = pvme.kbytes(mpl::Layer::kPvme);
  const double xhpf_kb = xhpf.kbytes(mpl::Layer::kPvme);
  EXPECT_GT(xhpf_kb, 20.0 * pvme_kb);
  EXPECT_GT(xhpf_kb, 20.0 * tmk_kb);
  // The DSM pays page-granularity protocol messages: more messages than
  // the aggregated hand MP code.
  EXPECT_GT(tmk.messages(mpl::Layer::kTmk),
            pvme.messages(mpl::Layer::kPvme));
}

TEST(NbfEdge, WindowTooLargeIsRejected) {
  apps::NbfParams p;
  p.nmol = 256;
  p.window = 200;  // >= block size at 8 procs
  EXPECT_THROW(apps::run_nbf(apps::System::kTmk, p, 8, fast_options()),
               common::Error);
}

}  // namespace
