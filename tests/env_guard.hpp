// Scoped environment-variable override for tests that toggle runtime
// knobs (e.g. TMK_FABRIC_BURST) between spawns. Restores the prior
// value — including "unset" — on scope exit. Not safe to construct
// while rank threads are running: setenv/getenv are not synchronized,
// so set the guard up BEFORE runner::spawn and let it outlive the run.
#pragma once

#include <cstdlib>
#include <string>

namespace test {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv(name, value, 1);
  }
  /// Unset variant: guarantees the variable is absent for the guard's
  /// lifetime (e.g. to pin a knob's built-in default under a CI job
  /// that exports it globally).
  explicit EnvGuard(const char* name) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_prev_)
      ::setenv(name_.c_str(), prev_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::string prev_;
  bool had_prev_ = false;
};

/// TMK_FABRIC_BURST=1/0 for the guard's lifetime.
class BurstEnv : public EnvGuard {
 public:
  explicit BurstEnv(bool on) : EnvGuard("TMK_FABRIC_BURST", on ? "1" : "0") {}
};

/// TMK_RACECHECK=<mode> ("off"/"summary"/"precise") for the guard's
/// lifetime; the default constructor guarantees it is unset (pinning
/// the detector's built-in off default under a racecheck CI leg).
class RacecheckEnv : public EnvGuard {
 public:
  explicit RacecheckEnv(const char* mode) : EnvGuard("TMK_RACECHECK", mode) {}
  RacecheckEnv() : EnvGuard("TMK_RACECHECK") {}
};

/// TMK_EPOCH_GC=on/off for the guard's lifetime; the default
/// constructor guarantees it is unset (pinning the collector's
/// built-in on default under a CI job that exports it globally).
class EpochGcEnv : public EnvGuard {
 public:
  explicit EpochGcEnv(bool on) : EnvGuard("TMK_EPOCH_GC", on ? "on" : "off") {}
  EpochGcEnv() : EnvGuard("TMK_EPOCH_GC") {}
};

}  // namespace test
