// Unit tests for src/common: alignment math, PRNG determinism, checksums,
// table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include <set>

#include "common/checksum.hpp"
#include "common/cpu_clock.hpp"
#include "common/flat_hash.hpp"
#include "common/page.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"

namespace {

TEST(PageMath, AlignUpBasics) {
  EXPECT_EQ(common::align_up(0, 16), 0u);
  EXPECT_EQ(common::align_up(1, 16), 16u);
  EXPECT_EQ(common::align_up(16, 16), 16u);
  EXPECT_EQ(common::align_up(17, 16), 32u);
}

TEST(PageMath, AlignDownBasics) {
  EXPECT_EQ(common::align_down(0, 16), 0u);
  EXPECT_EQ(common::align_down(15, 16), 0u);
  EXPECT_EQ(common::align_down(16, 16), 16u);
  EXPECT_EQ(common::align_down(31, 16), 16u);
}

TEST(PageMath, PageRounding) {
  EXPECT_EQ(common::page_round_up(0), 0u);
  EXPECT_EQ(common::page_round_up(1), common::kPageSize);
  EXPECT_EQ(common::page_round_up(common::kPageSize + 1),
            2 * common::kPageSize);
}

TEST(PageMath, PageBase) {
  EXPECT_EQ(common::page_base(0x12345678), 0x12345000u);
  EXPECT_EQ(common::page_base(0x12345000), 0x12345000u);
}

class AlignSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlignSweep, UpDownInverse) {
  const std::size_t align = GetParam();
  for (std::size_t n = 0; n < 4 * align; ++n) {
    const std::size_t up = common::align_up(n, align);
    const std::size_t down = common::align_down(n, align);
    EXPECT_GE(up, n);
    EXPECT_LE(down, n);
    EXPECT_EQ(up % align, 0u);
    EXPECT_EQ(down % align, 0u);
    EXPECT_LT(up - n, align);
    EXPECT_LT(n - down, align);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, AlignSweep,
                         ::testing::Values(1, 2, 8, 64, 4096));

TEST(Prng, DeterministicForSeed) {
  common::SplitMix64 a(42);
  common::SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  common::SplitMix64 a(1);
  common::SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, NextBelowInRange) {
  common::SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g.next_below(17), 17u);
  }
}

TEST(Prng, NextDoubleInUnitInterval) {
  common::SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, NextDoubleRange) {
  common::SplitMix64 g(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Checksum, SumMatchesManual) {
  const double data[] = {1.0, 2.5, -3.0};
  EXPECT_DOUBLE_EQ(common::checksum_sum<double>(data), 0.5);
}

TEST(Checksum, WeightedDetectsPermutation) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {3.0f, 2.0f, 1.0f};
  EXPECT_NE(common::checksum_weighted<float>(a),
            common::checksum_weighted<float>(b));
  EXPECT_DOUBLE_EQ(common::checksum_sum<float>(a),
                   common::checksum_sum<float>(b));
}

TEST(Checksum, CloseToleratesTinyError) {
  EXPECT_TRUE(common::checksum_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(common::checksum_close(1.0, 1.001));
}

TEST(Checksum, Fnv1aDistinguishesBytes) {
  const std::byte a[] = {std::byte{1}, std::byte{2}};
  const std::byte b[] = {std::byte{2}, std::byte{1}};
  EXPECT_NE(common::fnv1a(a), common::fnv1a(b));
}

TEST(CpuClock, ThreadCpuMonotone) {
  const auto t0 = common::thread_cpu_ns();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  const auto t1 = common::thread_cpu_ns();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, 0u);
}

TEST(Table, AlignsColumns) {
  common::TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("--"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(common::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(common::TextTable::num(2.0, 0), "2");
}

// ---- FlatSet64 -------------------------------------------------------

TEST(FlatSet64, InsertContainsErase) {
  common::FlatSet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));  // duplicate
  EXPECT_TRUE(set.insert(0));    // zero is a valid key
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.contains(7));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.erase(42));
  EXPECT_FALSE(set.erase(42));
  EXPECT_FALSE(set.contains(42));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatSet64, TombstoneSlotsAreReused) {
  common::FlatSet64 set;
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(set.insert(k));
  for (std::uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(set.erase(k));
  for (std::uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(set.insert(k));
  EXPECT_EQ(set.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(set.contains(k));
}

TEST(FlatSet64, EraseIfFiltersByPredicate) {
  common::FlatSet64 set;
  for (std::uint64_t k = 1; k <= 50; ++k) set.insert(k << 28);
  const std::size_t removed =
      set.erase_if([](std::uint64_t k) { return (k >> 28) % 2 == 0; });
  EXPECT_EQ(removed, 25u);
  EXPECT_EQ(set.size(), 25u);
  EXPECT_TRUE(set.contains(std::uint64_t{1} << 28));
  EXPECT_FALSE(set.contains(std::uint64_t{2} << 28));
}

TEST(FlatSet64, RandomizedAgainstStdSet) {
  common::FlatSet64 flat;
  std::set<std::uint64_t> ref;
  common::SplitMix64 g(123);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = g.next_below(512);  // force collisions
    switch (g.next_below(3)) {
      case 0:
        EXPECT_EQ(flat.insert(key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(flat.contains(key), ref.count(key) > 0);
    }
    EXPECT_EQ(flat.size(), ref.size());
  }
  const std::size_t removed = flat.erase_if(
      [](std::uint64_t k) { return k % 3 == 0; });
  std::size_t expected = 0;
  for (std::uint64_t k : ref)
    if (k % 3 == 0) ++expected;
  EXPECT_EQ(removed, expected);
}

}  // namespace
