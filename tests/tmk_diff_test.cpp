// Unit and property tests for the twin/diff machinery and protocol types.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/page.hpp"
#include "common/prng.hpp"
#include "tmk/diff.hpp"
#include "tmk/types.hpp"

namespace {

using Page = std::array<std::byte, common::kPageSize>;

Page zero_page() {
  Page p{};
  return p;
}

Page random_page(std::uint64_t seed) {
  Page p;
  common::SplitMix64 g(seed);
  for (auto& b : p) b = static_cast<std::byte>(g.next());
  return p;
}

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  const Page a = random_page(1);
  EXPECT_TRUE(tmk::make_diff(a.data(), a.data()).empty());
}

TEST(Diff, SingleWordChange) {
  Page twin = zero_page();
  Page cur = twin;
  std::uint32_t v = 0xdeadbeef;
  std::memcpy(cur.data() + 100, &v, sizeof(v));
  const auto d = tmk::make_diff(twin.data(), cur.data());
  // One run header (4B) + one word (4B).
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(tmk::diff_payload_bytes(d), 4u);

  Page target = zero_page();
  tmk::apply_diff(d, target.data());
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
}

TEST(Diff, FullPageChange) {
  const Page twin = zero_page();
  const Page cur = random_page(2);
  const auto d = tmk::make_diff(twin.data(), cur.data());
  EXPECT_EQ(tmk::diff_payload_bytes(d), common::kPageSize);

  Page target = zero_page();
  tmk::apply_diff(d, target.data());
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
}

TEST(Diff, UnalignedByteChangeCapturedAtWordGranularity) {
  Page twin = random_page(3);
  Page cur = twin;
  cur[1001] = static_cast<std::byte>(static_cast<unsigned>(cur[1001]) ^ 0xFF);
  const auto d = tmk::make_diff(twin.data(), cur.data());
  EXPECT_EQ(tmk::diff_payload_bytes(d), tmk::kDiffWord);
  Page target = twin;
  tmk::apply_diff(d, target.data());
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
}

// Property: for random sparse modifications, apply(make_diff) reconstructs
// the modified page from any base that agrees outside the modified words.
class DiffRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DiffRoundTrip, Reconstructs) {
  common::SplitMix64 g(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    Page twin = random_page(g.next());
    Page cur = twin;
    const int changes = static_cast<int>(g.next_below(200));
    for (int c = 0; c < changes; ++c) {
      const auto w = g.next_below(tmk::kWordsPerPage);
      std::uint32_t v = static_cast<std::uint32_t>(g.next());
      std::memcpy(cur.data() + w * tmk::kDiffWord, &v, sizeof(v));
    }
    const auto d = tmk::make_diff(twin.data(), cur.data());
    Page target = twin;
    tmk::apply_diff(d, target.data());
    EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
    EXPECT_LE(tmk::diff_payload_bytes(d),
              static_cast<std::size_t>(changes) * tmk::kDiffWord);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffRoundTrip, ::testing::Range(1, 9));

// Property: the multiple-writer merge. Two writers modify disjoint words
// of the same page; applying both diffs (in either order) onto the base
// yields both sets of changes.
class DiffMerge : public ::testing::TestWithParam<int> {};

TEST_P(DiffMerge, DisjointWritersCommute) {
  common::SplitMix64 g(static_cast<std::uint64_t>(GetParam()) * 977);
  const Page base = random_page(g.next());

  Page a = base;
  Page b = base;
  // Writer A gets even words, writer B odd words.
  for (int c = 0; c < 100; ++c) {
    const auto w = g.next_below(tmk::kWordsPerPage / 2) * 2;
    std::uint32_t v = static_cast<std::uint32_t>(g.next());
    std::memcpy(a.data() + w * tmk::kDiffWord, &v, sizeof(v));
    const auto w2 = g.next_below(tmk::kWordsPerPage / 2) * 2 + 1;
    std::uint32_t v2 = static_cast<std::uint32_t>(g.next());
    std::memcpy(b.data() + w2 * tmk::kDiffWord, &v2, sizeof(v2));
  }
  const auto da = tmk::make_diff(base.data(), a.data());
  const auto db = tmk::make_diff(base.data(), b.data());

  Page ab = base;
  tmk::apply_diff(da, ab.data());
  tmk::apply_diff(db, ab.data());
  Page ba = base;
  tmk::apply_diff(db, ba.data());
  tmk::apply_diff(da, ba.data());
  EXPECT_EQ(std::memcmp(ab.data(), ba.data(), common::kPageSize), 0);

  // Every word matches a or b (whichever modified it) or the base.
  for (std::size_t w = 0; w < tmk::kWordsPerPage; ++w) {
    std::uint32_t wab, wa, wb, wbase;
    std::memcpy(&wab, ab.data() + w * 4, 4);
    std::memcpy(&wa, a.data() + w * 4, 4);
    std::memcpy(&wb, b.data() + w * 4, 4);
    std::memcpy(&wbase, base.data() + w * 4, 4);
    if (wa != wbase) {
      EXPECT_EQ(wab, wa);
    } else if (wb != wbase) {
      EXPECT_EQ(wab, wb);
    } else {
      EXPECT_EQ(wab, wbase);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffMerge, ::testing::Range(1, 7));

// ---- worst-case encoded size (kMaxDiffBytes) -------------------------

TEST(Diff, AlternatingWordsEncodeToExactlyOnePage) {
  // Every second word changed: the run-header-per-payload-word pattern.
  // 512 runs x (4B header + 4B payload) = kPageSize exactly.
  const Page twin = random_page(40);
  Page cur = twin;
  for (std::size_t w = 0; w < tmk::kWordsPerPage; w += 2) {
    std::uint32_t v;
    std::memcpy(&v, cur.data() + w * 4, 4);
    v ^= 0xffffffffu;
    std::memcpy(cur.data() + w * 4, &v, 4);
  }
  const auto d = tmk::make_diff(twin.data(), cur.data());
  EXPECT_EQ(d.size(), common::kPageSize);
  EXPECT_LE(d.size(), tmk::kMaxDiffBytes);
  Page target = twin;
  tmk::apply_diff(d, target.data());
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
}

TEST(Diff, FullPageRewriteExceedsPageSizeButNotTheBound) {
  // A fully-rewritten page encodes as one run header + the whole page:
  // kPageSize + 4 — the true worst case, larger than the page itself.
  const Page twin = random_page(41);
  Page cur;
  for (std::size_t i = 0; i < common::kPageSize; ++i)
    cur[i] = static_cast<std::byte>(static_cast<unsigned>(twin[i]) ^ 0xA5u);
  const auto d = tmk::make_diff(twin.data(), cur.data());
  EXPECT_EQ(d.size(), tmk::kMaxDiffBytes);
  EXPECT_GT(d.size(), common::kPageSize);
}

TEST(Diff, ReusedOutputBufferNeverReallocates) {
  std::vector<std::byte> out;
  tmk::make_diff_into(random_page(42).data(), random_page(43).data(), out);
  const std::byte* data = out.data();
  const std::size_t cap = out.capacity();
  EXPECT_GE(cap, tmk::kMaxDiffBytes);
  common::SplitMix64 g(44);
  for (int iter = 0; iter < 50; ++iter) {
    const Page twin = random_page(g.next());
    Page cur = twin;
    for (int c = 0; c < 300; ++c) {
      const auto w = g.next_below(tmk::kWordsPerPage);
      std::uint32_t v = static_cast<std::uint32_t>(g.next());
      std::memcpy(cur.data() + w * 4, &v, sizeof(v));
    }
    tmk::make_diff_into(twin.data(), cur.data(), out);
    EXPECT_EQ(out.data(), data);
    EXPECT_EQ(out.capacity(), cap);
  }
}

// Property: diff_payload_bytes equals the number of mutated words times
// the word size, for random word-run mutations.
class DiffPayloadExact : public ::testing::TestWithParam<int> {};

TEST_P(DiffPayloadExact, PayloadMatchesMutatedWordCount) {
  common::SplitMix64 g(static_cast<std::uint64_t>(GetParam()) * 31337);
  for (int iter = 0; iter < 20; ++iter) {
    const Page twin = random_page(g.next());
    Page cur = twin;
    std::set<std::size_t> mutated;
    const int runs = static_cast<int>(g.next_below(20));
    for (int r = 0; r < runs; ++r) {
      const auto start = g.next_below(tmk::kWordsPerPage);
      const auto len = 1 + g.next_below(64);
      for (std::size_t w = start;
           w < std::min<std::size_t>(tmk::kWordsPerPage, start + len); ++w) {
        std::uint32_t v;
        std::memcpy(&v, cur.data() + w * 4, 4);
        v ^= 0x80000001u;  // guaranteed different
        std::memcpy(cur.data() + w * 4, &v, 4);
        // XOR twice returns to the original: track parity.
        if (!mutated.insert(w).second) mutated.erase(w);
      }
    }
    const auto d = tmk::make_diff(twin.data(), cur.data());
    EXPECT_EQ(tmk::diff_payload_bytes(d), mutated.size() * tmk::kDiffWord);
    Page target = twin;
    tmk::apply_diff(d, target.data());
    EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPayloadExact, ::testing::Range(1, 7));

TEST(Diff, AppliedTwiceIsIdempotent) {
  const Page twin = zero_page();
  const Page cur = random_page(5);
  const auto d = tmk::make_diff(twin.data(), cur.data());
  Page target = zero_page();
  tmk::apply_diff(d, target.data());
  tmk::apply_diff(d, target.data());
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), common::kPageSize), 0);
}

// ---- vector clock ----------------------------------------------------

TEST(VectorClock, MergeTakesMax) {
  tmk::VectorClock a, b;
  a.set(0, 3);
  a.set(1, 1);
  b.set(1, 5);
  a.merge(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
}

TEST(VectorClock, DominatedBy) {
  tmk::VectorClock a, b;
  a.set(0, 1);
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  EXPECT_TRUE(a.dominated_by(a));
}

TEST(VectorClock, WeightIsComponentSum) {
  tmk::VectorClock a;
  a.set(0, 2);
  a.set(3, 7);
  EXPECT_EQ(a.weight(), 9u);
}

TEST(VectorClock, WeightOrdersHappensBefore) {
  // If a strictly happens-before b then weight(a) < weight(b).
  tmk::VectorClock a;
  a.set(0, 1);
  a.set(1, 4);
  tmk::VectorClock b = a;
  b.set(2, 1);  // b saw one more interval
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_LT(a.weight(), b.weight());
}

// ---- byte stream -----------------------------------------------------

TEST(ByteStream, RoundTripScalarsAndVc) {
  tmk::ByteWriter w;
  w.put<std::uint32_t>(42);
  w.put<std::uint16_t>(7);
  tmk::VectorClock vc;
  vc.set(0, 1);
  vc.set(3, 9);
  w.put_vc(vc, 4);
  w.put<double>(2.5);

  tmk::ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  EXPECT_EQ(r.get<std::uint16_t>(), 7u);
  const auto vc2 = r.get_vc(4);
  EXPECT_EQ(vc2, vc);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_TRUE(r.done());
}

TEST(ByteStream, UnderflowThrows) {
  tmk::ByteWriter w;
  w.put<std::uint16_t>(1);
  tmk::ByteReader r(w.bytes());
  (void)r.get<std::uint16_t>();
  EXPECT_THROW((void)r.get<std::uint32_t>(), common::Error);
}

TEST(ByteStream, GetBytesSlices) {
  tmk::ByteWriter w;
  const std::byte data[] = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(data);
  tmk::ByteReader r(w.bytes());
  auto s = r.get_bytes(2);
  EXPECT_EQ(static_cast<int>(s[1]), 2);
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
