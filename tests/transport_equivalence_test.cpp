// Cross-transport invariance suite.
//
// The point of the Transport split is that the interconnect is
// invisible to the modelled system: what the paper reports — checksums,
// message and byte counts, modelled execution times — must not depend
// on whether datagrams crossed socketpairs or shared-memory rings.
// This suite runs registry workloads on both backends under a
// deterministic model (communication constants from the SP/2 model,
// compute scaled to zero so host timing noise cannot enter the virtual
// clock) and asserts the strongest invariant each protocol admits:
//
//  - Message-passing variants (kPvme) have a FIXED communication
//    schedule, so everything is asserted bit-identical across
//    transports: checksums, per-layer message/byte counters, and
//    per-process virtual times.
//  - TreadMarks variants are asserted checksum-identical, plus a
//    controlled protocol run asserting barrier/lock/fault counts and
//    message totals. Their full traffic totals are NOT compared
//    bit-wise: lazy diff flushing makes them schedule-dependent on any
//    transport (one flush covers every interval closed before the
//    first request arrives, so a request racing the writer's next
//    barrier can save or cost a message run-to-run), and lock-using
//    workloads (fft, igrid, nbf) additionally order their reductions
//    by contention order — for those the checksum contract against the
//    sequential baseline (tolerance from the variant table) is the
//    invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <tuple>
#include <vector>

#include "apps/registry.hpp"
#include "common/checksum.hpp"
#include "env_guard.hpp"
#include "mpl/transport.hpp"
#include "runner/counters.hpp"
#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

/// Deterministic model: all communication/protocol charges are the
/// SP/2 constants, but measured host CPU is multiplied by zero — the
/// virtual clock then depends only on the protocol event sequence.
runner::SpawnOptions det_options(mpl::TransportKind t) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.model.cpu_scale = 0.0;
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  o.transport = t;
  // This suite compares the two fork-mesh transports against each
  // other; pin the process backend so a TMK_BACKEND=thread environment
  // (which coerces every transport to inproc) cannot collapse the
  // comparison into inproc-vs-inproc. The thread backend has its own
  // equivalence suite (backend_equivalence_test).
  o.backend = runner::Backend::kProcess;
  return o;
}

struct Case {
  const apps::Workload* w = nullptr;
  const apps::Variant* v = nullptr;
  int nprocs = 0;
  /// Lock-order-dependent reductions: checksums differ run-to-run by
  /// reassociation, so only the vs-sequential contract transfers.
  bool lock_dependent = false;
};

std::string case_name(const Case& c) {
  std::string s = c.w->key + "_";
  for (const char* p = apps::to_string(c.v->system); *p != '\0'; ++p)
    if (std::isalnum(static_cast<unsigned char>(*p)))
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  return s + "_" + std::to_string(c.nprocs);
}

// ---- DSM variants: checksum invariance -------------------------------

std::vector<Case> dsm_cases() {
  const std::vector<std::string> lock_users = {"fft", "igrid", "nbf"};
  std::vector<Case> cases;
  for (const apps::Workload& w : apps::all_workloads()) {
    const apps::Variant* v = w.find(apps::System::kTmk);
    if (v == nullptr) v = &w.variants.front();
    if (v->checksum_nprocs.empty()) continue;
    const bool lock_dependent =
        std::find(lock_users.begin(), lock_users.end(), w.key) !=
        lock_users.end();
    cases.push_back({&w, v, v->checksum_nprocs.front(), lock_dependent});
  }
  return cases;
}

class CrossTransportDsm : public ::testing::TestWithParam<Case> {};

TEST_P(CrossTransportDsm, ChecksumsAreTransportInvariant) {
  const Case c = GetParam();
  const std::any& params = c.w->params(c.w->test_preset);
  const auto socket = apps::run_workload(
      *c.w, c.v->system, c.nprocs, det_options(mpl::TransportKind::kSocket),
      params);
  const auto shm = apps::run_workload(*c.w, c.v->system, c.nprocs,
                                      det_options(mpl::TransportKind::kShm),
                                      params);
  if (c.lock_dependent) {
    const double expect = c.w->seq(params, nullptr);
    for (const auto* r : {&socket, &shm}) {
      if (c.v->tolerance > 0)
        EXPECT_TRUE(
            common::checksum_close(r->checksum, expect, c.v->tolerance))
            << c.w->key << ": " << r->checksum << " vs " << expect;
      else
        EXPECT_DOUBLE_EQ(r->checksum, expect) << c.w->key;
    }
    return;
  }
  for (int p = 0; p < c.nprocs; ++p)
    EXPECT_DOUBLE_EQ(socket.procs[static_cast<std::size_t>(p)].checksum,
                     shm.procs[static_cast<std::size_t>(p)].checksum)
        << c.w->key << " proc " << p;
}

INSTANTIATE_TEST_SUITE_P(Registry, CrossTransportDsm,
                         ::testing::ValuesIn(dsm_cases()),
                         [](const auto& info) {
                           return case_name(info.param);
                         });

// ---- message-passing variants: full bit-equality ---------------------

std::vector<Case> mp_cases() {
  std::vector<Case> cases;
  for (const apps::Workload& w : apps::all_workloads()) {
    const apps::Variant* v = w.find(apps::System::kPvme);
    if (v == nullptr || v->checksum_nprocs.empty()) continue;
    cases.push_back({&w, v, v->checksum_nprocs.front(), false});
  }
  return cases;
}

class CrossTransportMp : public ::testing::TestWithParam<Case> {};

TEST_P(CrossTransportMp, ModelledResultsAreBitIdentical) {
  const Case c = GetParam();
  const std::any& params = c.w->params(c.w->test_preset);
  const auto socket = apps::run_workload(
      *c.w, c.v->system, c.nprocs, det_options(mpl::TransportKind::kSocket),
      params);
  const auto shm = apps::run_workload(*c.w, c.v->system, c.nprocs,
                                      det_options(mpl::TransportKind::kShm),
                                      params);
  EXPECT_DOUBLE_EQ(socket.checksum, shm.checksum) << c.w->key;
  EXPECT_EQ(socket.max_vt_ns, shm.max_vt_ns) << c.w->key;
  for (std::size_t l = 0; l < socket.total.messages.size(); ++l) {
    EXPECT_EQ(socket.total.messages[l], shm.total.messages[l])
        << c.w->key << " layer " << l;
    EXPECT_EQ(socket.total.bytes[l], shm.total.bytes[l])
        << c.w->key << " layer " << l;
  }
  for (int p = 0; p < c.nprocs; ++p) {
    EXPECT_EQ(socket.procs[static_cast<std::size_t>(p)].vt_ns,
              shm.procs[static_cast<std::size_t>(p)].vt_ns)
        << c.w->key << " proc " << p;
    EXPECT_DOUBLE_EQ(socket.procs[static_cast<std::size_t>(p)].checksum,
                     shm.procs[static_cast<std::size_t>(p)].checksum)
        << c.w->key << " proc " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, CrossTransportMp,
                         ::testing::ValuesIn(mp_cases()),
                         [](const auto& info) {
                           return case_name(info.param);
                         });

// ---- burst-mode invariance: TMK_FABRIC_BURST on vs off ---------------

// The burst fabric coalesces host-side publishes (staged ring frames,
// vectored sends, one doorbell per burst) but must be invisible to the
// modelled system: frame contents, delivery order per (sender, lane),
// and hence every modelled counter, vector clock, and checksum are
// bit-identical with bursting disabled — on every transport.
class BurstInvarianceMp
    : public ::testing::TestWithParam<std::tuple<Case, mpl::TransportKind>> {};

TEST_P(BurstInvarianceMp, ModelledResultsAreBitIdentical) {
  const auto& [c, t] = GetParam();
  const std::any& params = c.w->params(c.w->test_preset);
  auto run = [&](bool burst) {
    test::BurstEnv env(burst);
    return apps::run_workload(*c.w, c.v->system, c.nprocs, det_options(t),
                              params);
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_DOUBLE_EQ(on.checksum, off.checksum) << c.w->key;
  EXPECT_EQ(on.max_vt_ns, off.max_vt_ns) << c.w->key;
  for (std::size_t l = 0; l < on.total.messages.size(); ++l) {
    EXPECT_EQ(on.total.messages[l], off.total.messages[l])
        << c.w->key << " layer " << l;
    EXPECT_EQ(on.total.bytes[l], off.total.bytes[l])
        << c.w->key << " layer " << l;
  }
  for (int p = 0; p < c.nprocs; ++p) {
    EXPECT_EQ(on.procs[static_cast<std::size_t>(p)].vt_ns,
              off.procs[static_cast<std::size_t>(p)].vt_ns)
        << c.w->key << " proc " << p;
    EXPECT_DOUBLE_EQ(on.procs[static_cast<std::size_t>(p)].checksum,
                     off.procs[static_cast<std::size_t>(p)].checksum)
        << c.w->key << " proc " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BurstInvarianceMp,
    ::testing::Combine(::testing::ValuesIn(mp_cases()),
                       ::testing::Values(mpl::TransportKind::kSocket,
                                         mpl::TransportKind::kShm)),
    [](const auto& info) {
      return case_name(std::get<0>(info.param)) + "_" +
             mpl::to_string(std::get<1>(info.param));
    });

class BurstInvarianceDsm
    : public ::testing::TestWithParam<std::tuple<Case, mpl::TransportKind>> {};

TEST_P(BurstInvarianceDsm, ChecksumsAreBurstInvariant) {
  const auto& [c, t] = GetParam();
  const std::any& params = c.w->params(c.w->test_preset);
  auto run = [&](bool burst) {
    test::BurstEnv env(burst);
    return apps::run_workload(*c.w, c.v->system, c.nprocs, det_options(t),
                              params);
  };
  const auto on = run(true);
  const auto off = run(false);
  if (c.lock_dependent) {
    // Reduction order is contention-dependent either way; both modes
    // must still satisfy the vs-sequential contract.
    const double expect = c.w->seq(params, nullptr);
    for (const auto* r : {&on, &off}) {
      if (c.v->tolerance > 0)
        EXPECT_TRUE(common::checksum_close(r->checksum, expect, c.v->tolerance))
            << c.w->key << ": " << r->checksum << " vs " << expect;
      else
        EXPECT_DOUBLE_EQ(r->checksum, expect) << c.w->key;
    }
    return;
  }
  for (int p = 0; p < c.nprocs; ++p)
    EXPECT_DOUBLE_EQ(on.procs[static_cast<std::size_t>(p)].checksum,
                     off.procs[static_cast<std::size_t>(p)].checksum)
        << c.w->key << " proc " << p;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BurstInvarianceDsm,
    ::testing::Combine(::testing::ValuesIn(dsm_cases()),
                       ::testing::Values(mpl::TransportKind::kSocket,
                                         mpl::TransportKind::kShm)),
    [](const auto& info) {
      return case_name(std::get<0>(info.param)) + "_" +
             mpl::to_string(std::get<1>(info.param));
    });

// ---- epoch-GC wire invariance ----------------------------------------

// Barrier-phased ring producer/consumer with a fresh slice per round
// (same shape as the racecheck off-identity suite): each round's pull
// fetches exactly one closed unflushed interval, so message and byte
// counts are bit-stable run to run — the strongest schedule to pin the
// collector's wire behaviour against.
double gc_ring_schedule(runner::ChildContext& c) {
  tmk::Runtime rt(c);
  const int me = rt.rank();
  const int n = rt.nprocs();
  auto* data = rt.alloc<std::int64_t>(512 * n);  // one page per rank
  rt.barrier();
  double sum = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 32; ++i)
      data[512 * me + 32 * round + i] = 1000 * me + 10 * round + i;
    rt.barrier();
    const int left = (me + n - 1) % n;
    for (int i = 0; i < 32; ++i)
      sum += static_cast<double>(data[512 * left + 32 * round + i]);
    rt.barrier();
  }
  return sum;
}

// TMK_EPOCH_GC=off must be bit-identical to a collector that never
// fires: an enabled collector whose first GC round lies beyond the run
// (default interval 64, the ring runs 13 barriers) adds nothing to the
// wire — same message AND byte counts at every layer, same DSM
// counters, same per-rank checksums. This is the machine-checkable
// half of the off==pre-GC contract: every non-GC barrier is
// byte-identical to the GC-off protocol.
class EpochGcIdleIdentity
    : public ::testing::TestWithParam<mpl::TransportKind> {};

TEST_P(EpochGcIdleIdentity, OffIsBitIdenticalToIdleCollector) {
  runner::RunResult on, off;
  {
    const test::EpochGcEnv guard(true);
    on = runner::spawn(8, det_options(GetParam()), gc_ring_schedule);
  }
  {
    const test::EpochGcEnv guard(false);
    off = runner::spawn(8, det_options(GetParam()), gc_ring_schedule);
  }
  for (std::size_t l = 0; l < on.total.messages.size(); ++l) {
    EXPECT_EQ(on.total.messages[l], off.total.messages[l]) << "layer " << l;
    EXPECT_EQ(on.total.bytes[l], off.total.bytes[l]) << "layer " << l;
  }
  for (const runner::ctr::Desc& d : runner::ctr::kRegistry) {
    if (d.layer != runner::ctr::Layer::kDsm) continue;  // host = wall clock
    // protocol_rss_bytes is a host-side footprint gauge, not a wire
    // observable: an idle-but-enabled collector still trims pools at
    // barriers, so its gauge legitimately reads lower than off's.
    if (d.id == runner::ctr::Id::kProtocolRssBytes) continue;
    EXPECT_EQ(on.total_ctrs[d.id], off.total_ctrs[d.id])
        << "counter " << d.json_key;
  }
  ASSERT_EQ(on.procs.size(), off.procs.size());
  for (std::size_t i = 0; i < on.procs.size(); ++i)
    EXPECT_DOUBLE_EQ(on.procs[i].checksum, off.procs[i].checksum)
        << "rank " << i;
}

INSTANTIATE_TEST_SUITE_P(Transports, EpochGcIdleIdentity,
                         ::testing::Values(mpl::TransportKind::kSocket,
                                           mpl::TransportKind::kShm),
                         [](const auto& info) {
                           return std::string(mpl::to_string(info.param));
                         });

// With the collector ACTIVE (interval 4: GC rounds at barriers 4/8/12,
// reclaim passes at 8 and 12), the horizon piggyback and the validation
// fetches are part of the modelled protocol and must be transport-
// invariant like everything else: same per-layer message/byte counts,
// same reclamation counters, same per-rank checksums on socket and shm.
class EpochGcActiveTransportInvariance
    : public ::testing::TestWithParam<bool> {};

TEST_P(EpochGcActiveTransportInvariance, RingTrafficMatchesAcrossMeshes) {
  const test::EpochGcEnv guard(GetParam());
  const test::EnvGuard interval("TMK_EPOCH_GC_INTERVAL", "4");
  const auto socket =
      runner::spawn(8, det_options(mpl::TransportKind::kSocket),
                    gc_ring_schedule);
  const auto shm = runner::spawn(8, det_options(mpl::TransportKind::kShm),
                                 gc_ring_schedule);
  for (std::size_t l = 0; l < socket.total.messages.size(); ++l) {
    EXPECT_EQ(socket.total.messages[l], shm.total.messages[l])
        << "layer " << l;
    EXPECT_EQ(socket.total.bytes[l], shm.total.bytes[l]) << "layer " << l;
  }
  EXPECT_EQ(socket.ctr(runner::ctr::Id::kIntervalsReclaimed),
            shm.ctr(runner::ctr::Id::kIntervalsReclaimed));
  if (GetParam())
    EXPECT_GT(socket.ctr(runner::ctr::Id::kIntervalsReclaimed), 0u);
  else
    EXPECT_EQ(socket.ctr(runner::ctr::Id::kIntervalsReclaimed), 0u);
  ASSERT_EQ(socket.procs.size(), shm.procs.size());
  for (std::size_t i = 0; i < socket.procs.size(); ++i)
    EXPECT_DOUBLE_EQ(socket.procs[i].checksum, shm.procs[i].checksum)
        << "rank " << i;
}

INSTANTIATE_TEST_SUITE_P(OnOff, EpochGcActiveTransportInvariance,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return std::string(info.param ? "on" : "off");
                         });

// ---- controlled tmk protocol run --------------------------------------

// A fixed barrier/lock/shared-write schedule whose protocol event
// counts are deterministic by construction: every process returns a
// digest of its stats (barriers, lock acquires, write faults), which
// must match across transports. (Message totals are intentionally not
// compared — the manager-side lock chaining makes self-forwards, which
// are uncounted, contention-order-dependent on any transport.)
constexpr int kProcs = 4;
constexpr int kRounds = 5;

TEST(CrossTransportTmk, BarrierLockFaultAndMessageCountsIdentical) {
  auto run = [&](mpl::TransportKind t) {
    return runner::spawn(kProcs, det_options(t), [](runner::ChildContext& c) {
      tmk::Runtime rt(c);
      auto* data = rt.alloc<std::int64_t>(1024 * rt.nprocs());
      auto* cell = rt.alloc<std::int64_t>(1);
      for (int iter = 0; iter < kRounds; ++iter) {
        rt.barrier();
        const int me = rt.rank();
        data[1024 * me + iter] = 100 * me + iter;
        rt.lock_acquire(3);
        *cell += 1;  // contended, but the sum is order-independent
        rt.lock_release(3);
        rt.barrier();
        const int peer = (me + 1) % rt.nprocs();
        if (data[1024 * peer + iter] != 100 * peer + iter) return -1.0;
      }
      rt.barrier();
      if (*cell != kProcs * kRounds) return -2.0;
      return static_cast<double>(rt.stats().barriers) * 1e6 +
             static_cast<double>(rt.stats().lock_acquires) * 1e3 +
             static_cast<double>(rt.stats().write_faults);
    });
  };
  const auto socket = run(mpl::TransportKind::kSocket);
  const auto shm = run(mpl::TransportKind::kShm);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_GT(socket.procs[static_cast<std::size_t>(p)].checksum, 0.0);
    EXPECT_DOUBLE_EQ(socket.procs[static_cast<std::size_t>(p)].checksum,
                     shm.procs[static_cast<std::size_t>(p)].checksum)
        << "proc " << p;
  }
}

}  // namespace
