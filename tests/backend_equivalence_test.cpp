// Cross-backend invariance suite: forked processes vs rank threads.
//
// The thread backend changes everything host-visible about a run — no
// fork, per-rank heaps at distinct addresses, an in-process ring mesh,
// SIGSEGV faults dispatched by address instead of by process — and
// nothing modelled: the Endpoint core and the DSM protocol above it
// are identical. So, exactly like the cross-transport suite (PR 3),
// the modelled results must be backend-invariant, with the strongest
// invariant each protocol admits:
//
//  - Message-passing variants (kPvme) have a FIXED communication
//    schedule: checksums, per-layer message/byte counters, and
//    per-rank virtual times are asserted bit-identical across
//    backends.
//  - TreadMarks variants are asserted checksum-identical per rank,
//    plus a controlled protocol run asserting the barrier/lock/fault
//    digest. Traffic totals stay schedule-dependent (lazy diff
//    flushing) on ANY backend, so they are not compared bit-wise.
//
// Also here: the regression test for the fault-dispatch path — many
// rank threads taking SIGSEGVs concurrently on their own heaps, each
// of which the process-wide handler must route to the owning runtime.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <tuple>

#include "apps/registry.hpp"
#include "env_guard.hpp"
#include "mpl/transport.hpp"
#include "runner/counters.hpp"
#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

/// Deterministic model, as in the cross-transport suite: SP/2 protocol
/// constants, measured host CPU scaled to zero — the virtual clock
/// depends only on the protocol event sequence.
runner::SpawnOptions det_options(runner::Backend b) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::sp2();
  o.model.cpu_scale = 0.0;
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  o.backend = b;
  // Canonical transport per backend; the modelled results do not
  // depend on it (transport_equivalence_test), so any choice here
  // compares backend against backend only.
  o.transport = b == runner::Backend::kThread ? mpl::TransportKind::kInproc
                                              : mpl::TransportKind::kSocket;
  return o;
}

struct Case {
  const char* key;
  apps::System system;
  int nprocs;
};

std::string case_name(const Case& c) {
  std::string s = std::string(c.key) + "_";
  for (const char* p = apps::to_string(c.system); *p != '\0'; ++p)
    if (std::isalnum(static_cast<unsigned char>(*p)))
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  return s + "_" + std::to_string(c.nprocs);
}

runner::RunResult run_case(const Case& c, runner::Backend b) {
  const apps::Workload& w = apps::find_workload(c.key);
  return apps::run_workload(w, c.system, c.nprocs, det_options(b),
                            apps::Preset::kReduced);
}

// ---- DSM variants: per-rank checksum invariance ----------------------

class CrossBackendDsm : public ::testing::TestWithParam<Case> {};

TEST_P(CrossBackendDsm, ChecksumsAreBackendInvariant) {
  const Case c = GetParam();
  const auto process = run_case(c, runner::Backend::kProcess);
  const auto thread = run_case(c, runner::Backend::kThread);
  EXPECT_EQ(process.backend, runner::Backend::kProcess);
  EXPECT_EQ(thread.backend, runner::Backend::kThread);
  EXPECT_EQ(thread.transport, mpl::TransportKind::kInproc);
  for (int p = 0; p < c.nprocs; ++p)
    EXPECT_DOUBLE_EQ(process.procs[static_cast<std::size_t>(p)].checksum,
                     thread.procs[static_cast<std::size_t>(p)].checksum)
        << c.key << " rank " << p;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CrossBackendDsm,
    ::testing::Values(Case{"jacobi", apps::System::kTmk, 4},
                      Case{"mgs", apps::System::kTmk, 2},
                      Case{"jacobi", apps::System::kSpf, 4}),
    [](const auto& info) { return case_name(info.param); });

// ---- message-passing variants: full bit-equality ---------------------

class CrossBackendMp : public ::testing::TestWithParam<Case> {};

TEST_P(CrossBackendMp, ModelledResultsAreBitIdentical) {
  const Case c = GetParam();
  const auto process = run_case(c, runner::Backend::kProcess);
  const auto thread = run_case(c, runner::Backend::kThread);
  EXPECT_DOUBLE_EQ(process.checksum, thread.checksum) << c.key;
  EXPECT_EQ(process.max_vt_ns, thread.max_vt_ns) << c.key;
  for (std::size_t l = 0; l < process.total.messages.size(); ++l) {
    EXPECT_EQ(process.total.messages[l], thread.total.messages[l])
        << c.key << " layer " << l;
    EXPECT_EQ(process.total.bytes[l], thread.total.bytes[l])
        << c.key << " layer " << l;
  }
  for (int p = 0; p < c.nprocs; ++p) {
    EXPECT_EQ(process.procs[static_cast<std::size_t>(p)].vt_ns,
              thread.procs[static_cast<std::size_t>(p)].vt_ns)
        << c.key << " rank " << p;
    EXPECT_DOUBLE_EQ(process.procs[static_cast<std::size_t>(p)].checksum,
                     thread.procs[static_cast<std::size_t>(p)].checksum)
        << c.key << " rank " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CrossBackendMp,
    ::testing::Values(Case{"jacobi", apps::System::kPvme, 4},
                      Case{"mgs", apps::System::kPvme, 4}),
    [](const auto& info) { return case_name(info.param); });

// ---- burst-mode invariance on both backends --------------------------

// TMK_FABRIC_BURST changes only host-side publish batching; the
// modelled results must be bit-identical with it on and off, on the
// thread backend's inproc mesh just as on the fork meshes (the
// cross-transport suite covers socket/shm). The env var is read at
// transport construction, so toggling it between spawns — including
// between thread-backend spawns in one process — takes effect.
class BurstInvariance
    : public ::testing::TestWithParam<std::tuple<Case, runner::Backend>> {};

TEST_P(BurstInvariance, ModelledResultsAreBitIdentical) {
  const auto& [c, b] = GetParam();
  auto run = [&](bool burst) {
    test::BurstEnv env(burst);
    return run_case(c, b);
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_DOUBLE_EQ(on.checksum, off.checksum) << c.key;
  EXPECT_EQ(on.max_vt_ns, off.max_vt_ns) << c.key;
  for (std::size_t l = 0; l < on.total.messages.size(); ++l) {
    EXPECT_EQ(on.total.messages[l], off.total.messages[l])
        << c.key << " layer " << l;
    EXPECT_EQ(on.total.bytes[l], off.total.bytes[l])
        << c.key << " layer " << l;
  }
  for (int p = 0; p < c.nprocs; ++p) {
    EXPECT_EQ(on.procs[static_cast<std::size_t>(p)].vt_ns,
              off.procs[static_cast<std::size_t>(p)].vt_ns)
        << c.key << " rank " << p;
    EXPECT_DOUBLE_EQ(on.procs[static_cast<std::size_t>(p)].checksum,
                     off.procs[static_cast<std::size_t>(p)].checksum)
        << c.key << " rank " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BurstInvariance,
    ::testing::Combine(::testing::Values(Case{"jacobi", apps::System::kPvme, 4},
                                         Case{"mgs", apps::System::kPvme, 4}),
                       ::testing::Values(runner::Backend::kProcess,
                                         runner::Backend::kThread)),
    [](const auto& info) {
      return case_name(std::get<0>(info.param)) + "_" +
             runner::to_string(std::get<1>(info.param));
    });

// DSM twin on the thread backend (traffic totals stay schedule-
// dependent, so only the per-rank checksums transfer — same contract
// as CrossBackendDsm).
TEST(BurstInvarianceDsm, ThreadBackendChecksumsBurstInvariant) {
  const Case c{"jacobi", apps::System::kTmk, 4};
  auto run = [&](bool burst) {
    test::BurstEnv env(burst);
    return run_case(c, runner::Backend::kThread);
  };
  const auto on = run(true);
  const auto off = run(false);
  for (int p = 0; p < c.nprocs; ++p)
    EXPECT_DOUBLE_EQ(on.procs[static_cast<std::size_t>(p)].checksum,
                     off.procs[static_cast<std::size_t>(p)].checksum)
        << c.key << " rank " << p;
}

// ---- epoch-GC invariance across backends ------------------------------

// Same bit-stable ring schedule as the cross-transport epoch-GC legs:
// fresh slice per round, so lazy-diff flush coverage has nothing left
// to vary on and the collector's wire additions are the only variable.
double gc_ring_schedule(runner::ChildContext& c) {
  tmk::Runtime rt(c);
  const int me = rt.rank();
  const int n = rt.nprocs();
  auto* data = rt.alloc<std::int64_t>(512 * n);  // one page per rank
  rt.barrier();
  double sum = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 32; ++i)
      data[512 * me + 32 * round + i] = 1000 * me + 10 * round + i;
    rt.barrier();
    const int left = (me + n - 1) % n;
    for (int i = 0; i < 32; ++i)
      sum += static_cast<double>(data[512 * left + 32 * round + i]);
    rt.barrier();
  }
  return sum;
}

// TMK_EPOCH_GC=off vs an enabled-but-idle collector (first GC round
// beyond the run) on the thread backend's inproc mesh — the third
// transport's leg of the off==pre-GC bit-identity contract (socket and
// shm live in the cross-transport suite).
TEST(EpochGcIdleIdentity, OffIsBitIdenticalToIdleCollectorOnThreadMesh) {
  runner::RunResult on, off;
  {
    const test::EpochGcEnv guard(true);
    on = runner::spawn(8, det_options(runner::Backend::kThread),
                       gc_ring_schedule);
  }
  {
    const test::EpochGcEnv guard(false);
    off = runner::spawn(8, det_options(runner::Backend::kThread),
                        gc_ring_schedule);
  }
  for (std::size_t l = 0; l < on.total.messages.size(); ++l) {
    EXPECT_EQ(on.total.messages[l], off.total.messages[l]) << "layer " << l;
    EXPECT_EQ(on.total.bytes[l], off.total.bytes[l]) << "layer " << l;
  }
  for (const runner::ctr::Desc& d : runner::ctr::kRegistry) {
    if (d.layer != runner::ctr::Layer::kDsm) continue;  // host = wall clock
    // protocol_rss_bytes is a host-side footprint gauge, not a wire
    // observable: an idle-but-enabled collector still trims pools at
    // barriers, so its gauge legitimately reads lower than off's.
    if (d.id == runner::ctr::Id::kProtocolRssBytes) continue;
    EXPECT_EQ(on.total_ctrs[d.id], off.total_ctrs[d.id])
        << "counter " << d.json_key;
  }
  ASSERT_EQ(on.procs.size(), off.procs.size());
  for (std::size_t i = 0; i < on.procs.size(); ++i)
    EXPECT_DOUBLE_EQ(on.procs[i].checksum, off.procs[i].checksum)
        << "rank " << i;
}

// Active collector (interval 4), forked socket mesh vs thread inproc
// mesh: the horizon piggyback, the validation fetches, and the
// reclamation counters must be backend-invariant.
class EpochGcActiveBackendInvariance
    : public ::testing::TestWithParam<bool> {};

TEST_P(EpochGcActiveBackendInvariance, RingTrafficMatchesAcrossBackends) {
  const test::EpochGcEnv guard(GetParam());
  const test::EnvGuard interval("TMK_EPOCH_GC_INTERVAL", "4");
  const auto process = runner::spawn(
      8, det_options(runner::Backend::kProcess), gc_ring_schedule);
  const auto thread = runner::spawn(
      8, det_options(runner::Backend::kThread), gc_ring_schedule);
  for (std::size_t l = 0; l < process.total.messages.size(); ++l) {
    EXPECT_EQ(process.total.messages[l], thread.total.messages[l])
        << "layer " << l;
    EXPECT_EQ(process.total.bytes[l], thread.total.bytes[l])
        << "layer " << l;
  }
  EXPECT_EQ(process.ctr(runner::ctr::Id::kIntervalsReclaimed),
            thread.ctr(runner::ctr::Id::kIntervalsReclaimed));
  if (GetParam())
    EXPECT_GT(process.ctr(runner::ctr::Id::kIntervalsReclaimed), 0u);
  else
    EXPECT_EQ(process.ctr(runner::ctr::Id::kIntervalsReclaimed), 0u);
  ASSERT_EQ(process.procs.size(), thread.procs.size());
  for (std::size_t i = 0; i < process.procs.size(); ++i)
    EXPECT_DOUBLE_EQ(process.procs[i].checksum, thread.procs[i].checksum)
        << "rank " << i;
}

INSTANTIATE_TEST_SUITE_P(OnOff, EpochGcActiveBackendInvariance,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return std::string(info.param ? "on" : "off");
                         });

// ---- controlled tmk protocol run --------------------------------------

// Fixed barrier/lock/shared-write schedule with deterministic protocol
// event counts (the cross-transport twin of this test explains why
// message totals are excluded): the per-rank digest of barriers, lock
// acquires, and write faults must match across backends.
constexpr int kProcs = 4;
constexpr int kRounds = 5;

TEST(CrossBackendTmk, BarrierLockFaultDigestIdentical) {
  auto run = [&](runner::Backend b) {
    return runner::spawn(
        kProcs, det_options(b), [](runner::ChildContext& c) {
          tmk::Runtime rt(c);
          auto* data = rt.alloc<std::int64_t>(1024 * rt.nprocs());
          auto* cell = rt.alloc<std::int64_t>(1);
          for (int iter = 0; iter < kRounds; ++iter) {
            rt.barrier();
            const int me = rt.rank();
            data[1024 * me + iter] = 100 * me + iter;
            rt.lock_acquire(3);
            *cell += 1;
            rt.lock_release(3);
            rt.barrier();
            const int peer = (me + 1) % rt.nprocs();
            if (data[1024 * peer + iter] != 100 * peer + iter) return -1.0;
          }
          rt.barrier();
          if (*cell != kProcs * kRounds) return -2.0;
          return static_cast<double>(rt.stats().barriers) * 1e6 +
                 static_cast<double>(rt.stats().lock_acquires) * 1e3 +
                 static_cast<double>(rt.stats().write_faults);
        });
  };
  const auto process = run(runner::Backend::kProcess);
  const auto thread = run(runner::Backend::kThread);
  for (int p = 0; p < kProcs; ++p) {
    EXPECT_GT(process.procs[static_cast<std::size_t>(p)].checksum, 0.0);
    EXPECT_DOUBLE_EQ(process.procs[static_cast<std::size_t>(p)].checksum,
                     thread.procs[static_cast<std::size_t>(p)].checksum)
        << "rank " << p;
  }
}

// ---- SIGSEGV fault dispatch under concurrency -------------------------

// Regression test for the address-dispatched fault path: all rank
// threads take write faults on their own heaps AT THE SAME TIME (no
// synchronization between the allocations and the fault storm), so
// the process-wide handler must concurrently route each fault to the
// runtime owning the faulted address. A misroute dies loudly inside
// handle_fault ("fault on a non-application thread" / out-of-range) or
// corrupts the per-rank pattern verified below.
TEST(FaultDispatch, ConcurrentFaultsRouteToOwningRuntime) {
  constexpr int kRanks = 4;
  constexpr int kPages = 64;
  constexpr int kIntsPerPage = 1024;  // 4 KiB pages of int32
  runner::SpawnOptions opts = det_options(runner::Backend::kThread);
  opts.model = simx::MachineModel::zero_cost();

  // Rank threads share the test's address space: collect each rank's
  // heap base through a plain array (each rank writes only its slot;
  // the thread join orders the reads after the writes).
  std::array<std::uintptr_t, kRanks> bases{};
  std::array<std::uint64_t, kRanks> write_faults{};

  auto r = runner::spawn(
      kRanks, opts, [&bases, &write_faults](runner::ChildContext& c) {
        tmk::Runtime rt(c);
        bases[static_cast<std::size_t>(rt.rank())] =
            reinterpret_cast<std::uintptr_t>(c.heap_base);
        auto* mine = rt.alloc<std::int32_t>(
            static_cast<std::size_t>(kRanks) * kPages * kIntsPerPage);
        // Fault storm: every page of this rank's block, concurrently
        // with every other rank's storm on ITS heap.
        const int me = rt.rank();
        for (int pg = 0; pg < kPages; ++pg)
          for (int i = 0; i < kIntsPerPage; ++i)
            mine[(me * kPages + pg) * kIntsPerPage + i] =
                me * 1'000'000 + pg * 1000 + (i % 97);
        write_faults[static_cast<std::size_t>(me)] =
            rt.stats().write_faults;
        rt.barrier();
        // Cross-check a peer's block through the DSM (read faults, also
        // address-dispatched).
        const int peer = (me + 1) % rt.nprocs();
        double sum = 0;
        for (int pg = 0; pg < kPages; ++pg)
          for (int i = 0; i < kIntsPerPage; ++i)
            sum += mine[(peer * kPages + pg) * kIntsPerPage + i];
        rt.barrier();
        double expect = 0;
        for (int pg = 0; pg < kPages; ++pg)
          for (int i = 0; i < kIntsPerPage; ++i)
            expect += peer * 1'000'000 + pg * 1000 + (i % 97);
        return sum == expect ? 1.0 : -1.0;
      });

  for (const auto& p : r.procs) EXPECT_DOUBLE_EQ(p.checksum, 1.0);
  // Every rank heap is a distinct, non-overlapping range — the property
  // the dispatch relies on.
  for (int i = 0; i < kRanks; ++i) {
    EXPECT_NE(bases[static_cast<std::size_t>(i)], 0u);
    for (int j = i + 1; j < kRanks; ++j) {
      const auto a = bases[static_cast<std::size_t>(i)];
      const auto b = bases[static_cast<std::size_t>(j)];
      EXPECT_TRUE(a + opts.shared_heap_bytes <= b ||
                  b + opts.shared_heap_bytes <= a)
          << "rank heaps " << i << " and " << j << " overlap";
    }
  }
  // Each rank faulted on every page it wrote — its own, not a peer's.
  for (int i = 0; i < kRanks; ++i)
    EXPECT_GE(write_faults[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(kPages))
        << "rank " << i;
}

}  // namespace
