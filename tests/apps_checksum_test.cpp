// Registry-driven integration tests: every workload in the registry, at
// every system variant and process count its descriptor declares, must
// reproduce the sequential checksum — bit-exactly where the arithmetic
// order is preserved (tolerance 0 in the variant table), within the
// declared relative tolerance where reductions reassociate (XHPF's
// distributed norms, the FFT's sampled checksum reduction, NBF's
// whole-array force-buffer sums).
//
// Adding a workload to the registry automatically enrolls it here; no
// per-application test code exists.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/checksum.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 256ull << 20;
  o.timeout_sec = 300;
  return o;
}

std::string system_token(apps::System s) {
  switch (s) {
    case apps::System::kSeq:
      return "Seq";
    case apps::System::kSpf:
      return "Spf";
    case apps::System::kSpfOpt:
      return "SpfOpt";
    case apps::System::kTmk:
      return "Tmk";
    case apps::System::kTmkOpt:
      return "TmkOpt";
    case apps::System::kXhpf:
      return "Xhpf";
    case apps::System::kPvme:
      return "Pvme";
  }
  return "Unknown";
}

struct Case {
  const apps::Workload* w = nullptr;
  apps::System system = apps::System::kSeq;
  int nprocs = 0;

  friend void PrintTo(const Case& c, std::ostream* os) {
    *os << c.w->key << '/' << apps::to_string(c.system) << '/' << c.nprocs;
  }
};

std::vector<Case> checksum_cases() {
  std::vector<Case> cases;
  for (const apps::Workload& w : apps::all_workloads())
    for (const apps::Variant& v : w.variants)
      for (int np : v.checksum_nprocs) cases.push_back({&w, v.system, np});
  return cases;
}

class WorkloadVariants : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadVariants, MatchesSequentialChecksum) {
  const auto [w, system, nprocs] = GetParam();
  // Cheap workloads opt into their full default sizes (test_preset).
  const std::any& params = w->params(w->test_preset);
  const double expect = w->seq(params, nullptr);
  const auto r = apps::run_workload(*w, system, nprocs, fast_options(), params);
  const apps::Variant* v = w->find(system);
  ASSERT_NE(v, nullptr);
  if (v->tolerance > 0) {
    EXPECT_TRUE(common::checksum_close(r.checksum, expect, v->tolerance))
        << w->name << " " << apps::to_string(system) << " nprocs=" << nprocs
        << ": " << r.checksum << " vs " << expect;
  } else {
    EXPECT_DOUBLE_EQ(r.checksum, expect)
        << w->name << " " << apps::to_string(system) << " nprocs=" << nprocs;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, WorkloadVariants,
                         ::testing::ValuesIn(checksum_cases()),
                         [](const auto& info) {
                           return info.param.w->key + "_" +
                                  system_token(info.param.system) +
                                  std::to_string(info.param.nprocs);
                         });

// ---- registry surface -------------------------------------------------

TEST(Registry, HoldsTheSixPaperWorkloadsInPresentationOrder) {
  const auto workloads = apps::all_workloads();
  ASSERT_EQ(workloads.size(), 6u);
  const char* expected[] = {"jacobi", "shallow", "mgs",
                            "fft",    "igrid",   "nbf"};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(workloads[i].key, expected[i]);
    EXPECT_TRUE(workloads[i].seq);
    EXPECT_TRUE(workloads[i].describe);
    EXPECT_FALSE(workloads[i].variants.empty());
    // Every workload implements the four Figure 1/2 system points.
    EXPECT_EQ(workloads[i].paper_systems().size(), 4u);
  }
  // Regular block first (Figure 1), then irregular (Figure 2).
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(workloads[i].cls, apps::WorkloadClass::kRegular);
  for (std::size_t i = 4; i < 6; ++i)
    EXPECT_EQ(workloads[i].cls, apps::WorkloadClass::kIrregular);
}

TEST(Registry, FindWorkloadByKey) {
  EXPECT_EQ(apps::find_workload("fft").name, "3-D FFT");
  EXPECT_EQ(apps::find_workload("jacobi").cls, apps::WorkloadClass::kRegular);
  EXPECT_THROW((void)apps::find_workload("barnes-hut"), common::Error);
}

TEST(Registry, UnsupportedVariantThrows) {
  // IGrid has no §5 hand-optimized variant.
  const apps::Workload& w = apps::find_workload("igrid");
  EXPECT_EQ(w.find(apps::System::kSpfOpt), nullptr);
  EXPECT_THROW(apps::run_workload(w, apps::System::kSpfOpt, 2, fast_options(),
                                  apps::Preset::kReduced),
               common::Error);
}

TEST(Registry, SeqRunsThroughTheHarness) {
  // run_workload(kSeq) must reproduce the direct in-process baseline.
  for (const apps::Workload& w : apps::all_workloads()) {
    const std::any& params = w.params(apps::Preset::kReduced);
    const double direct = w.seq(params, nullptr);
    const auto r =
        apps::run_workload(w, apps::System::kSeq, 1, fast_options(), params);
    EXPECT_DOUBLE_EQ(r.checksum, direct) << w.name;
  }
}

TEST(Registry, PaperSpeedupsCoverThePaperSystems) {
  for (const apps::Workload& w : apps::all_workloads())
    for (apps::System s : w.paper_systems())
      EXPECT_GT(w.paper_speedup(s), 0.0)
          << w.name << " " << apps::to_string(s);
}

}  // namespace
