// Bench-smoke: the 2 -> 128 thread-backend scale sweep is an acceptance
// surface, not just a reporting convenience — this test drives the real
// bench_scale binary over the high-rank points and asserts the rows it
// appends to BENCH_results.json carry the backend/transport columns the
// perf-trajectory tooling keys on. Skips (rather than fails) when the
// bench binaries are not part of the build (sanitizer CI configures
// with TMK_BUILD_BENCHES=OFF).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string self_dir() {
  return fs::read_symlink("/proc/self/exe").parent_path().string();
}

TEST(BenchSmoke, ScaleSweepAppends64And128RowsWithBackendColumns) {
  const fs::path bench = fs::path(self_dir()) / "bench_scale";
  if (!fs::exists(bench))
    GTEST_SKIP() << "bench_scale not built (TMK_BUILD_BENCHES=OFF)";

  // Fresh working directory so the rows land in a file this test owns.
  const fs::path dir =
      fs::temp_directory_path() /
      ("tmk_bench_smoke." + std::to_string(::getpid()));
  fs::create_directories(dir);
  // Scrub the suite's own TMK_TRANSPORT/TMK_BACKEND (the ctest legs set
  // them): the sweep under test is the thread backend's, and a fork
  // transport in the environment would (correctly) be rejected as
  // contradicting --backend=thread.
  const std::string cmd =
      "cd '" + dir.string() + "' && env -u TMK_TRANSPORT -u TMK_BACKEND '" +
      bench.string() +
      "' --backend=thread --nprocs-list=64,128"
      " --benchmark_filter='jacobi/Tmk' > bench.log 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << "bench_scale failed; see " << (dir / "bench.log");

  std::ifstream in(dir / "BENCH_results.json");
  ASSERT_TRUE(in.good()) << "bench_scale wrote no BENCH_results.json";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // One row per swept nprocs, each carrying the backend and transport
  // fields the thread-backend sweep runs on.
  for (const char* frag :
       {"\"nprocs\": 64", "\"nprocs\": 128", "\"backend\": \"thread\"",
        "\"transport\": \"inproc\"", "\"app\": \"Jacobi\"",
        "\"system\": \"Tmk\"", "\"host_wall_s\": ",
        "\"host_send_calls\": ", "\"host_futex_wakes\": "}) {
    EXPECT_NE(json.find(frag), std::string::npos)
        << "missing " << frag << " in:\n"
        << json;
  }
  fs::remove_all(dir);
}

// The keys of one JSON row, in emission order: a quoted token directly
// followed by ':' is a key; any other quoted token is a string value.
std::vector<std::string> row_keys(const std::string& row) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] != '"') continue;
    const std::size_t end = row.find('"', i + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < row.size() && row[after] == ' ') ++after;
    if (after < row.size() && row[after] == ':')
      keys.push_back(row.substr(i + 1, end - i - 1));
    i = end;
  }
  return keys;
}

TEST(BenchSmoke, JsonRowColumnOrderIsPinned) {
  // The BENCH_results.json schema is an external surface: the perf
  // trajectory tooling diffs rows across PRs positionally. The counter
  // registry (runner/counters.hpp) generates the column blocks, so this
  // pin is what turns "someone reordered kRegistry" from a silent
  // downstream breakage into a test failure.
  const fs::path bench = fs::path(self_dir()) / "bench_scale";
  if (!fs::exists(bench))
    GTEST_SKIP() << "bench_scale not built (TMK_BUILD_BENCHES=OFF)";

  const fs::path dir =
      fs::temp_directory_path() /
      ("tmk_bench_cols." + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string cmd =
      "cd '" + dir.string() + "' && env -u TMK_TRANSPORT -u TMK_BACKEND '" +
      bench.string() +
      "' --backend=thread --nprocs-list=2"
      " --benchmark_filter='jacobi/Tmk' > bench.log 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << "bench_scale failed; see " << (dir / "bench.log");

  std::ifstream in(dir / "BENCH_results.json");
  ASSERT_TRUE(in.good()) << "bench_scale wrote no BENCH_results.json";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  const std::size_t open = json.find('{');
  const std::size_t close = json.find('}', open);
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);

  const std::vector<std::string> golden = {
      "run",           "app",
      "system",        "size",
      "transport",     "backend",
      "nprocs",        "speedup",
      "seconds",       "host_wall_s",
      "host_cpu_s",    "host_send_calls",
      "host_futex_wakes", "messages",
      "kbytes",        "update_mode",
      "racecheck",     "diff_requests",
      "diff_replies",  "diff_push",
      "push_hits",     "push_waste",
      "page_faults",   "race_reports",
      "race_reports_dropped", "intervals_reclaimed",
      "protocol_rss_bytes", "checksum"};
  EXPECT_EQ(row_keys(json.substr(open, close - open + 1)), golden);
  fs::remove_all(dir);
}

}  // namespace
