// Chaos suite: deterministic fault injection (TMK_FAULT_INJECT),
// deadline-aware protocol waits (TMK_WAIT_DEADLINE_MS), and rank-death
// blame quality. Every scenario here must resolve in seconds — the
// whole point of the failure-handling layer is that a dead or wedged
// rank surfaces as a prompt, named diagnostic, never as a global
// watchdog timeout (the ctest TIMEOUT for this binary is deliberately
// tight).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "env_guard.hpp"
#include "mpl/fault_inject.hpp"
#include "runner/runner.hpp"
#include "tmk/runtime.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

runner::SpawnOptions chaos_options(mpl::TransportKind t, runner::Backend b) {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 16ull << 20;
  o.timeout_sec = 90;  // far beyond any acceptable unwind time
  o.transport = t;
  o.backend = b;
  return o;
}

/// A small multi-barrier DSM workload: every rank writes its own slice,
/// everyone reads all of it, four times. Deterministic checksum and
/// modelled counters; crosses enough barriers and sends for every fault
/// plan in this file to fire.
double barrier_workload(runner::ChildContext& c) {
  tmk::Runtime rt(c);
  constexpr int kPer = 512;
  auto* data = rt.alloc<std::int32_t>(
      static_cast<std::size_t>(kPer) * static_cast<std::size_t>(rt.nprocs()));
  double sum = 0;
  for (int it = 0; it < 4; ++it) {
    for (int i = 0; i < kPer; ++i)
      data[rt.rank() * kPer + i] = rt.rank() + it;
    rt.barrier();
    sum = 0;
    for (int i = 0; i < kPer * rt.nprocs(); ++i) sum += data[i];
    rt.barrier();
  }
  return sum;
}

// ---- fault-plan grammar ----------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const auto p = mpl::FaultPlan::parse(
      "seed=7,rank=3,crash-at-send=100,delay-before-publish=50@10,"
      "exit-at-barrier=2,hard=1");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.rank, 3);
  EXPECT_FALSE(p.any_rank);
  EXPECT_EQ(p.crash_at_send, 100u);
  EXPECT_EQ(p.delay_ms, 50u);
  EXPECT_EQ(p.delay_before_send, 10u);
  EXPECT_EQ(p.exit_at_barrier, 2u);
  EXPECT_TRUE(p.hard);
  EXPECT_EQ(p.victim(8), 3);
}

TEST(FaultPlan, AnyRankVictimIsSeedModNprocs) {
  const auto p = mpl::FaultPlan::parse("seed=13,rank=any");
  EXPECT_TRUE(p.any_rank);
  EXPECT_EQ(p.victim(8), 5);
  EXPECT_EQ(p.victim(4), 1);
  // Default seed is 1, so "rank=any" alone deterministically kills
  // rank 1 on any mesh with more than one rank.
  EXPECT_EQ(mpl::FaultPlan::parse("rank=any").victim(32), 1);
}

TEST(FaultPlan, RejectsTyposInsteadOfRunningFaultFree) {
  const auto parse = [](const char* spec) {
    (void)mpl::FaultPlan::parse(spec);
  };
  EXPECT_THROW(parse("rank=1,frobnicate=3"), common::Error);
  EXPECT_THROW(parse("rank=banana"), common::Error);
  EXPECT_THROW(parse("crash-at-send=5"), common::Error);
  EXPECT_THROW(parse("rank=1,crash-at-send=0"), common::Error);
  EXPECT_THROW(parse("rank=1,exit-at-barrier=0"), common::Error);
  EXPECT_THROW(parse("rank=1,delay-before-publish=50"), common::Error);
  EXPECT_THROW(parse("rank"), common::Error);
}

// ---- seeded rank death mid-barrier -----------------------------------

/// Kills the plan's victim entering its second barrier on a 32-rank
/// mesh and requires: spawn throws promptly (survivors unwound by
/// poison, not the 90 s watchdog) and the diagnostic names the victim.
void expect_death_blamed(mpl::TransportKind t, runner::Backend b,
                         const char* plan, const std::string& victim_label) {
  test::EnvGuard fault("TMK_FAULT_INJECT", plan);
  const auto t0 = Clock::now();
  try {
    runner::spawn(32, chaos_options(t, b), barrier_workload);
    FAIL() << "spawn should have thrown under plan " << plan;
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(victim_label), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 45.0)
      << "survivors were not unwound within the poison grace";
}

TEST(Chaos, DeathMidBarrierSocketProcess) {
  expect_death_blamed(mpl::TransportKind::kSocket, runner::Backend::kProcess,
                      "seed=9,rank=any,exit-at-barrier=2,hard=1", "proc 9");
}

TEST(Chaos, DeathMidBarrierShmProcess) {
  expect_death_blamed(mpl::TransportKind::kShm, runner::Backend::kProcess,
                      "seed=21,rank=any,exit-at-barrier=2,hard=1", "proc 21");
}

TEST(Chaos, DeathMidBarrierInprocThread) {
  // Threads share the process, so the victim unwinds (soft) instead of
  // _exit; the run's error must be the victim's own injected fault, not
  // a poisoned survivor's.
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=11,exit-at-barrier=2");
  const auto t0 = Clock::now();
  try {
    runner::spawn(32,
                  chaos_options(mpl::TransportKind::kInproc,
                                runner::Backend::kThread),
                  barrier_workload);
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 11"), std::string::npos) << msg;
    EXPECT_NE(msg.find("injected fault"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exit-at-barrier"), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 45.0);
}

// ---- death with the hybrid update protocol active --------------------

// Under TMK_UPDATE_MODE=hybrid every barrier departure carries staged
// diff pushes and the barrier tree piggybacks push-count tables; a rank
// dying mid-protocol leaves consumers holding stashed pushes and
// expecting counts that will never arrive. That state must unwind
// exactly like a plain death — named blame within the poison grace —
// not wedge a survivor waiting on a push that is never coming.
TEST(Chaos, DeathMidBarrierWithHybridPushesStaged) {
  // By barrier 3 of barrier_workload (everyone reads every slice, so
  // every page's consumer set is all peers) the predictor has armed and
  // the victim has live staged pushes and cached count tables.
  test::EnvGuard mode("TMK_UPDATE_MODE", "hybrid");
  expect_death_blamed(mpl::TransportKind::kShm, runner::Backend::kProcess,
                      "seed=17,rank=any,exit-at-barrier=3,hard=1", "proc 17");
}

TEST(Chaos, CrashDuringPushSendsHybridProcess) {
  // crash-at-send lands among the departure-time push frames once the
  // protocol reaches steady state (15 pushes per barrier on this mesh
  // dwarf the one arrive frame), so the victim dies with a push burst
  // half-sent. Survivors' stashes and count caches must not stall the
  // unwind.
  test::EnvGuard mode("TMK_UPDATE_MODE", "hybrid");
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=3,crash-at-send=40,hard=1");
  const auto t0 = Clock::now();
  try {
    runner::spawn(16,
                  chaos_options(mpl::TransportKind::kShm,
                                runner::Backend::kProcess),
                  barrier_workload);
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("proc 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("status 86"), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 30.0);
}

TEST(Chaos, CrashDuringPushSendsThreadBackend) {
  // Soft variant: the victim unwinds in-process and its own injected
  // fault must be the run's error even with pushes in flight.
  test::EnvGuard mode("TMK_UPDATE_MODE", "hybrid");
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=5,crash-at-send=40");
  try {
    runner::spawn(16,
                  chaos_options(mpl::TransportKind::kInproc,
                                runner::Backend::kThread),
                  barrier_workload);
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("crash-at-send"), std::string::npos) << msg;
  }
}

// ---- other plan shapes -----------------------------------------------

TEST(Chaos, CrashAtNthSendShmProcess) {
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=1,crash-at-send=3,hard=1");
  const auto t0 = Clock::now();
  try {
    runner::spawn(4,
                  chaos_options(mpl::TransportKind::kShm,
                                runner::Backend::kProcess),
                  barrier_workload);
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("proc 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("status 86"), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 30.0);
}

TEST(Chaos, CrashAtNthSendThreadBackend) {
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=2,crash-at-send=5");
  try {
    runner::spawn(4,
                  chaos_options(mpl::TransportKind::kInproc,
                                runner::Backend::kThread),
                  barrier_workload);
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("crash-at-send"), std::string::npos) << msg;
  }
}

TEST(Chaos, DelayBeforePublishStragglesButMatchesCleanRun) {
  const auto opts = chaos_options(mpl::TransportKind::kInproc,
                                  runner::Backend::kThread);
  const auto clean = runner::spawn(4, opts, barrier_workload);
  test::EnvGuard fault("TMK_FAULT_INJECT",
                       "rank=1,delay-before-publish=150@2");
  const auto delayed = runner::spawn(4, opts, barrier_workload);
  // A straggler is not a death: the run completes, and the delay is
  // host-side only — the modelled world is bit-identical.
  EXPECT_DOUBLE_EQ(delayed.checksum, clean.checksum);
  EXPECT_EQ(delayed.total.messages, clean.total.messages);
  EXPECT_EQ(delayed.total.bytes, clean.total.bytes);
}

TEST(Chaos, PlanForAbsentRankLeavesModelledResultsUntouched) {
  const auto opts = chaos_options(mpl::TransportKind::kInproc,
                                  runner::Backend::kThread);
  const auto base = runner::spawn(4, opts, barrier_workload);
  // Victim rank 99 is outside this 4-rank mesh: injection is compiled
  // in and the plan parses, but nobody installs an injector — the
  // modelled counters and checksum must be bit-identical.
  test::EnvGuard fault("TMK_FAULT_INJECT", "rank=99,exit-at-barrier=1,hard=1");
  const auto r = runner::spawn(4, opts, barrier_workload);
  EXPECT_DOUBLE_EQ(r.checksum, base.checksum);
  EXPECT_EQ(r.total.messages, base.total.messages);
  EXPECT_EQ(r.total.bytes, base.total.bytes);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(r.procs[static_cast<std::size_t>(i)].vt_ns > 0,
              base.procs[static_cast<std::size_t>(i)].vt_ns > 0);
}

// ---- deadline blame quality ------------------------------------------

/// Rank 1 wedges (sleeps) instead of reaching the barrier; rank 0's
/// fan-in wait must expire at TMK_WAIT_DEADLINE_MS and the error must
/// carry the blocked rank's id and the wait site on either backend.
void expect_barrier_wedge_blamed(mpl::TransportKind t, runner::Backend b) {
  test::EnvGuard deadline("TMK_WAIT_DEADLINE_MS", "1500");
  const auto t0 = Clock::now();
  try {
    runner::spawn(2, chaos_options(t, b), [](runner::ChildContext& c) {
      tmk::Runtime rt(c);
      if (rt.rank() == 1)
        std::this_thread::sleep_for(std::chrono::seconds(5));
      rt.barrier();
      return 0.0;
    });
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("barrier 0 fan-in"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deadline"), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 30.0) << "deadline did not bound the wait";
}

TEST(ChaosBlame, BarrierWedgeProcessBackend) {
  expect_barrier_wedge_blamed(mpl::TransportKind::kShm,
                              runner::Backend::kProcess);
}

TEST(ChaosBlame, BarrierWedgeThreadBackend) {
  expect_barrier_wedge_blamed(mpl::TransportKind::kInproc,
                              runner::Backend::kThread);
}

/// Rank 1 takes the lock and sits on it; rank 0's acquire must expire
/// at the deadline naming the lock, its manager, and the blocked rank.
void expect_lock_wedge_blamed(mpl::TransportKind t, runner::Backend b) {
  test::EnvGuard deadline("TMK_WAIT_DEADLINE_MS", "1500");
  const auto t0 = Clock::now();
  try {
    runner::spawn(2, chaos_options(t, b), [](runner::ChildContext& c) {
      tmk::Runtime rt(c);
      if (rt.rank() == 1) {
        rt.lock_acquire(0);
        rt.barrier();
        std::this_thread::sleep_for(std::chrono::seconds(5));
        rt.lock_release(0);
      } else {
        rt.barrier();  // rank 1 holds the lock beyond this point
        rt.lock_acquire(0);
        rt.lock_release(0);
      }
      return 0.0;
    });
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lock 0 acquire (manager 0)"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("deadline"), std::string::npos) << msg;
  }
  EXPECT_LT(seconds_since(t0), 30.0) << "deadline did not bound the wait";
}

TEST(ChaosBlame, LockWedgeProcessBackend) {
  expect_lock_wedge_blamed(mpl::TransportKind::kSocket,
                           runner::Backend::kProcess);
}

TEST(ChaosBlame, LockWedgeThreadBackend) {
  expect_lock_wedge_blamed(mpl::TransportKind::kInproc,
                           runner::Backend::kThread);
}

}  // namespace
