// Harness tests: report plumbing, crash propagation, heap inheritance.
#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "runner/runner.hpp"

namespace {

runner::SpawnOptions fast_options() {
  runner::SpawnOptions o;
  o.model = simx::MachineModel::zero_cost();
  o.shared_heap_bytes = 1 << 20;
  o.timeout_sec = 60;
  return o;
}

TEST(Runner, ChecksumComesFromRankZero) {
  auto r = runner::spawn(4, fast_options(), [](runner::ChildContext& c) {
    return c.endpoint.rank() == 0 ? 42.0 : -1.0;
  });
  EXPECT_DOUBLE_EQ(r.checksum, 42.0);
  EXPECT_EQ(r.nprocs, 4);
  EXPECT_EQ(r.procs.size(), 4u);
}

TEST(Runner, PerProcessReportsCarryRank) {
  auto r = runner::spawn(3, fast_options(), [](runner::ChildContext& c) {
    return static_cast<double>(c.endpoint.rank());
  });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.procs[static_cast<std::size_t>(i)].rank,
              static_cast<std::uint32_t>(i));
    EXPECT_DOUBLE_EQ(r.procs[static_cast<std::size_t>(i)].checksum, i);
  }
}

TEST(Runner, ChildExceptionPropagates) {
  EXPECT_THROW(
      runner::spawn(2, fast_options(),
                    [](runner::ChildContext& c) -> double {
                      if (c.endpoint.rank() == 1)
                        throw common::Error("deliberate failure");
                      return 0.0;
                    }),
      common::Error);
}

TEST(Runner, HeapInheritedAtSameAddressAndZeroed) {
  // Fork-backend contract: every child writes its rank at a distinct
  // offset in its *private* copy; children verify the heap starts
  // zeroed and the base pointer is identical (checksummed via the
  // address bits). The thread backend intentionally breaks the
  // same-address half (distinct per-rank heaps), so this pins kProcess.
  auto opts = fast_options();
  opts.backend = runner::Backend::kProcess;
  auto r = runner::spawn(4, opts, [](runner::ChildContext& c) {
    auto* p = static_cast<unsigned char*>(c.heap_base);
    for (int i = 0; i < 1000; ++i)
      if (p[i] != 0) return -1.0;
    p[c.endpoint.rank()] = 0xAB;  // private COW write
    // Another process's write must not be visible here.
    for (int i = 0; i < 4; ++i)
      if (i != c.endpoint.rank() && p[i] != 0) return -2.0;
    return static_cast<double>(reinterpret_cast<std::uintptr_t>(p) & 0xFFFF);
  });
  for (const auto& p : r.procs)
    EXPECT_DOUBLE_EQ(p.checksum, r.procs[0].checksum);
}

TEST(Runner, SequentialHelperMeasuresCpu) {
  auto r = runner::run_sequential(fast_options(), [] {
    volatile double x = 0;
    for (int i = 0; i < 5'000'000; ++i) x = x + i;
    return static_cast<double>(x);
  });
  EXPECT_GT(r.max_vt_ns, 0u);
  EXPECT_GT(r.total_cpu_ns, 0u);
  EXPECT_EQ(r.nprocs, 1);
}

TEST(Runner, CpuScaleMultipliesVirtualTime) {
  auto busy = [] {
    volatile double x = 0;
    for (int i = 0; i < 20'000'000; ++i) x = x + i;
    return 0.0;
  };
  auto base = fast_options();
  base.model.cpu_scale = 1.0;
  auto scaled = fast_options();
  scaled.model.cpu_scale = 8.0;
  const auto r1 = runner::run_sequential(base, busy);
  const auto r8 = runner::run_sequential(scaled, busy);
  // Expect roughly 8x; allow generous slack for measurement noise.
  const double ratio = static_cast<double>(r8.max_vt_ns) /
                       static_cast<double>(r1.max_vt_ns);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

// A child that dies before delivering its report must fail the run
// immediately (with its rank and wait status), not leave the survivors
// blocked on the dead peer until the watchdog fires.
TEST(Runner, ChildDeathWithoutReportFailsFast) {
  auto opts = fast_options();
  opts.timeout_sec = 120;  // watchdog far beyond the fail-fast budget
  // _exit and waitpid-status reporting are fork-backend semantics (a
  // rank thread calling _exit would take the whole test down).
  opts.backend = runner::Backend::kProcess;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    runner::spawn(2, opts, [](runner::ChildContext& c) -> double {
      if (c.endpoint.rank() == 1) _exit(7);  // no report, no unwind
      // Rank 0 blocks on a message that will never arrive.
      (void)c.endpoint.wait_app_kind(mpl::FrameKind::kTestPing);
      return 0.0;
    });
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("proc 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exited with status 7"), std::string::npos) << msg;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 30.0) << "run hung instead of failing fast";
}

TEST(Runner, RejectsTooManyProcs) {
  EXPECT_THROW(runner::spawn(mpl::kMaxProcs + 1, fast_options(),
                             [](runner::ChildContext&) { return 0.0; }),
               common::Error);
}

// ---- thread backend ---------------------------------------------------

runner::SpawnOptions thread_options() {
  auto o = fast_options();
  o.backend = runner::Backend::kThread;
  return o;
}

TEST(RunnerThread, BackendNamesRoundTrip) {
  EXPECT_EQ(runner::parse_backend("process"), runner::Backend::kProcess);
  EXPECT_EQ(runner::parse_backend("thread"), runner::Backend::kThread);
  EXPECT_FALSE(runner::parse_backend("fiber").has_value());
  EXPECT_STREQ(runner::to_string(runner::Backend::kThread), "thread");
  EXPECT_STREQ(runner::to_string(runner::Backend::kProcess), "process");
}

TEST(RunnerThread, RanksRunAsThreadsWithDistinctZeroedHeaps) {
  // Rank threads share the test's address space, so they can publish
  // their heap bases through a plain array (one slot per rank; the
  // joins order the reads).
  std::array<std::uintptr_t, 4> bases{};
  auto opts = thread_options();
  auto r = runner::spawn(4, opts, [&bases](runner::ChildContext& c) {
    auto* p = static_cast<unsigned char*>(c.heap_base);
    for (int i = 0; i < 1000; ++i)
      if (p[i] != 0) return -1.0;  // heap must start zeroed
    p[c.endpoint.rank()] = 0xAB;   // private to this rank's mapping
    bases[static_cast<std::size_t>(c.endpoint.rank())] =
        reinterpret_cast<std::uintptr_t>(p);
    return static_cast<double>(c.endpoint.rank());
  });
  EXPECT_EQ(r.backend, runner::Backend::kThread);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.procs[static_cast<std::size_t>(i)].checksum, i);
    EXPECT_NE(bases[static_cast<std::size_t>(i)], 0u);
    for (int j = i + 1; j < 4; ++j)
      EXPECT_NE(bases[static_cast<std::size_t>(i)],
                bases[static_cast<std::size_t>(j)]);
  }
}

TEST(RunnerThread, CoercesTransportToInproc) {
  auto opts = thread_options();
  opts.transport = mpl::TransportKind::kSocket;
  auto r = runner::spawn(2, opts, [](runner::ChildContext& c) {
    return c.endpoint.transport_kind() == mpl::TransportKind::kInproc ? 1.0
                                                                      : 0.0;
  });
  EXPECT_EQ(r.transport, mpl::TransportKind::kInproc);
  EXPECT_DOUBLE_EQ(r.checksum, 1.0);
  EXPECT_DOUBLE_EQ(r.procs[1].checksum, 1.0);
}

TEST(RunnerThread, RankExceptionPropagates) {
  try {
    runner::spawn(2, thread_options(), [](runner::ChildContext& c) -> double {
      if (c.endpoint.rank() == 1)
        throw common::Error("deliberate thread-rank failure");
      return 0.0;
    });
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deliberate thread-rank failure"), std::string::npos)
        << msg;
  }
}

TEST(RunnerThread, ProcessBackendRejectsInprocTransport) {
  auto opts = fast_options();
  opts.backend = runner::Backend::kProcess;
  opts.transport = mpl::TransportKind::kInproc;
  EXPECT_THROW(
      runner::spawn(2, opts, [](runner::ChildContext&) { return 0.0; }),
      common::Error);
}

// A rank that unwinds with a send burst still open must not strand the
// staged frames: the Endpoint destructor flushes them, so the peer
// waiting on the burst's message completes, and spawn fails loudly with
// the unwinding rank's error — promptly, not via the watchdog.
TEST(RunnerThread, RankExitingMidBurstFlushesAndFailsLoudly) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    runner::spawn(2, thread_options(), [](runner::ChildContext& c) -> double {
      if (c.endpoint.rank() == 1) {
        c.endpoint.begin_burst(0);
        c.endpoint.send_app(0, mpl::FrameKind::kTestPing, 0, 0, {});
        // No flush_burst(): unwind with the frame still staged.
        throw common::Error("deliberate mid-burst exit");
      }
      // Rank 0 blocks on the staged frame; only the destructor flush of
      // rank 1's endpoint can deliver it.
      (void)c.endpoint.wait_app_kind(mpl::FrameKind::kTestPing);
      return 1.0;
    });
    FAIL() << "spawn should have thrown";
  } catch (const common::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deliberate mid-burst exit"), std::string::npos) << msg;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 30.0) << "peers hung on the stranded burst";
}

TEST(RunnerThread, SequentialHelperWorksOnThreads) {
  auto r = runner::run_sequential(thread_options(), [] {
    volatile double x = 0;
    for (int i = 0; i < 1'000'000; ++i) x = x + i;
    return static_cast<double>(x);
  });
  EXPECT_GT(r.max_vt_ns, 0u);
  EXPECT_GT(r.total_cpu_ns, 0u);
  EXPECT_EQ(r.nprocs, 1);
  EXPECT_EQ(r.backend, runner::Backend::kThread);
}

}  // namespace
