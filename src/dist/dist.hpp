// Distribution layer: the single owner-computes vocabulary shared by the
// compiler runtimes (spf, xhpf) and the hand-coded application variants.
//
// A *distribution* maps a one-dimensional iteration/data space [0, n)
// onto `nprocs` processes. Two HPF-style descriptors are provided:
//
//   BlockDist  — contiguous blocks; the first (n % nprocs) processes own
//                one extra element. This is the row partition of every
//                regular application and the unit XHPF's generated
//                communication (halo shifts, broadcast fallback) is
//                expressed over.
//   CyclicDist — element i belongs to process i mod nprocs; the load-
//                balanced choice for triangular loops (MGS).
//
// `Range` is the half-open slice a process iterates; `block_range` /
// `cyclic_begin` are the loop-scheduling entry points the SPF compiler
// emits into encapsulated loop bodies. Everything here is pure index
// arithmetic — no communication — so all runtimes can share it without
// layering concerns.
#pragma once

#include <algorithm>
#include <cstdint>

namespace dist {

/// Half-open index interval [lo, hi) — one process's share of a loop.
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] constexpr std::int64_t count() const noexcept {
    return hi - lo;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return hi <= lo; }
  [[nodiscard]] constexpr bool contains(std::int64_t i) const noexcept {
    return i >= lo && i < hi;
  }

  friend constexpr bool operator==(const Range&, const Range&) = default;
};

/// BLOCK distribution of [0, n) over nprocs, HPF style: the first
/// (n % nprocs) processes own one extra element.
class BlockDist {
 public:
  BlockDist(std::size_t n, int nprocs) noexcept : n_(n), nprocs_(nprocs) {}

  [[nodiscard]] std::size_t lo(int p) const noexcept {
    const std::size_t base = n_ / static_cast<std::size_t>(nprocs_);
    const std::size_t extra = n_ % static_cast<std::size_t>(nprocs_);
    const auto up = static_cast<std::size_t>(p);
    return up * base + std::min(up, extra);
  }
  [[nodiscard]] std::size_t hi(int p) const noexcept {
    return lo(p) + count(p);
  }
  [[nodiscard]] std::size_t count(int p) const noexcept {
    const std::size_t base = n_ / static_cast<std::size_t>(nprocs_);
    const std::size_t extra = n_ % static_cast<std::size_t>(nprocs_);
    return base + (static_cast<std::size_t>(p) < extra ? 1 : 0);
  }
  [[nodiscard]] Range range(int p) const noexcept {
    return {static_cast<std::int64_t>(lo(p)),
            static_cast<std::int64_t>(hi(p))};
  }
  [[nodiscard]] int owner(std::size_t i) const noexcept {
    // Inverse of lo(); O(1) via the two regimes of the distribution.
    const std::size_t base = n_ / static_cast<std::size_t>(nprocs_);
    const std::size_t extra = n_ % static_cast<std::size_t>(nprocs_);
    if (base == 0) return static_cast<int>(i);
    const std::size_t cut = extra * (base + 1);
    if (i < cut) return static_cast<int>(i / (base + 1));
    return static_cast<int>(extra + (i - cut) / base);
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }

 private:
  std::size_t n_;
  int nprocs_;
};

/// CYCLIC distribution of [0, n): element i belongs to i mod nprocs.
class CyclicDist {
 public:
  CyclicDist(std::size_t n, int nprocs) noexcept : n_(n), nprocs_(nprocs) {}
  [[nodiscard]] int owner(std::size_t i) const noexcept {
    return static_cast<int>(i % static_cast<std::size_t>(nprocs_));
  }
  /// First index >= lo owned by `p`; iterate with stride nprocs().
  [[nodiscard]] std::int64_t begin(std::int64_t lo, int p) const noexcept {
    const std::int64_t offset =
        ((p - lo) % nprocs_ + nprocs_) % nprocs_;
    return lo + offset;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }

 private:
  std::size_t n_;
  int nprocs_;
};

/// One halo-exchange edge of a BLOCK-distributed stencil: the calling
/// process's boundary row `row` is read by neighbor `consumer` after
/// every barrier. This is the compiler's static knowledge of the
/// communication pattern — the row partition plus the stencil shape
/// determine it exactly — and is what the DSM's hybrid update protocol
/// is fed through hint_consumers.
struct HaloEdge {
  std::size_t row = 0;
  int consumer = -1;
};

/// The halo edges process `p` exports under `d`, for a stencil that
/// reads `a[i-1]` terms (`reads_prev`: p's last row hi-1 is read by
/// p+1) and/or `a[i+1]` terms (`reads_next`: p's first row lo is read
/// by p-1). Writes at most 2 edges into `out`, returns the count.
/// Periodic (wraparound) boundaries are application-specific and not
/// produced here.
inline int halo_edges(const BlockDist& d, int p, bool reads_prev,
                      bool reads_next, HaloEdge out[2]) noexcept {
  int n = 0;
  if (d.count(p) == 0) return n;
  if (reads_prev && p + 1 < d.nprocs() && d.count(p + 1) > 0)
    out[n++] = {d.hi(p) - 1, p + 1};
  if (reads_next && p > 0 && d.count(p - 1) > 0)
    out[n++] = {d.lo(p), p - 1};
  return n;
}

/// The slice of [lo, hi) process `proc` owns under BLOCK scheduling —
/// the call the SPF compiler emits at the top of every parallel loop.
[[nodiscard]] inline Range block_range(std::int64_t lo, std::int64_t hi,
                                       int proc, int nprocs) noexcept {
  const std::int64_t n = hi - lo;
  if (n <= 0) return {lo, lo};
  const Range r = BlockDist(static_cast<std::size_t>(n), nprocs).range(proc);
  return {lo + r.lo, lo + r.hi};
}

/// First index >= lo owned by `proc` under CYCLIC scheduling; iterate
/// with stride nprocs.
[[nodiscard]] inline std::int64_t cyclic_begin(std::int64_t lo, int proc,
                                               int nprocs) noexcept {
  return CyclicDist(0, nprocs).begin(lo, proc);
}

}  // namespace dist
