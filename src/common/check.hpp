// Error-handling primitives shared by every module.
//
// The runtime spans multiple processes connected by sockets; when an
// invariant breaks we want a loud, location-tagged failure in the process
// that detected it rather than a silent wedge of the whole process mesh.
#pragma once

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

namespace common {

/// Error thrown by all modules in this project on broken invariants or
/// failed system calls. Carries a formatted, location-tagged message.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

[[noreturn]] inline void fail_errno(const char* file, int line,
                                    const char* expr) {
  const int saved = errno;
  std::ostringstream os;
  os << file << ':' << line << ": syscall failed: " << expr << " — "
     << std::strerror(saved) << " (errno " << saved << ')';
  throw Error(os.str());
}

}  // namespace detail

}  // namespace common

/// Always-on invariant check (not compiled out in release builds: the
/// protocol state machines are cheap to verify relative to page copying).
#define COMMON_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::common::detail::fail(__FILE__, __LINE__, #expr, ""); \
  } while (0)

/// Invariant check with a context message (streamed into a string).
#define COMMON_CHECK_MSG(expr, msg)                            \
  do {                                                         \
    if (!(expr)) {                                             \
      std::ostringstream os_;                                  \
      os_ << msg; /* NOLINT */                                 \
      ::common::detail::fail(__FILE__, __LINE__, #expr, os_.str()); \
    }                                                          \
  } while (0)

/// Wraps a syscall that signals failure with a negative return; throws
/// with errno text. Returns the (non-negative) result.
#define COMMON_SYSCALL(expr)                                       \
  ([&]() {                                                         \
    const auto r_ = (expr);                                        \
    if (r_ < 0) ::common::detail::fail_errno(__FILE__, __LINE__, #expr); \
    return r_;                                                     \
  }())
