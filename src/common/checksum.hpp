// Application checksums.
//
// Every variant of an application (sequential, SPF/Tmk, hand Tmk, XHPF,
// PVMe) reduces its output to one double via the same function, so the
// integration tests can assert all five computed the same answer.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

namespace common {

/// Order-independent sum of a block of doubles/floats. Used where the
/// parallel variant may reassociate (reductions): compare with tolerance.
template <typename T>
[[nodiscard]] double checksum_sum(std::span<const T> data) noexcept {
  double s = 0.0;
  for (const T& v : data) s += static_cast<double>(v);
  return s;
}

/// Position-weighted checksum: catches values landing in the wrong place,
/// not just wrong totals. Deterministic for identical element order.
template <typename T>
[[nodiscard]] double checksum_weighted(std::span<const T> data) noexcept {
  double s = 0.0;
  double w = 1.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    s += w * static_cast<double>(data[i]);
    w += 1.0;
    if (w > 65536.0) w = 1.0;
  }
  return s;
}

/// Relative comparison helper for checksums that may differ by FP
/// reassociation only.
[[nodiscard]] inline bool checksum_close(double a, double b,
                                         double rel = 1e-9) noexcept {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= rel * scale;
}

/// FNV-1a over raw bytes, for exact-match invariants (diff round-trips,
/// page images).
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace common
