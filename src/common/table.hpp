// Plain-text table formatting for the benchmark harness.
//
// Each bench binary reprints one of the paper's tables/figures; this
// helper keeps the output aligned and diff-friendly for EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace common {

/// Column-aligned text table. Add a header row, then data rows; print()
/// pads every column to its widest cell.
class TextTable {
 public:
  void header(std::vector<std::string> cells) { header_ = std::move(cells); }

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      if (cells.size() > width.size()) width.resize(cells.size(), 0);
      for (std::size_t i = 0; i < cells.size(); ++i)
        width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << "  " << std::left << std::setw(static_cast<int>(width[i]))
           << cells[i];
      }
      os << '\n';
    };
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(width.size());
    for (std::size_t w : width) rule.emplace_back(std::string(w, '-'));
    emit(rule);
    for (const auto& r : rows_) emit(r);
  }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace common
