// Page-size constants and alignment helpers.
//
// TreadMarks detects shared-memory accesses at the granularity of a
// virtual-memory page; everything in the DSM is expressed in units of
// kPageSize. We use a fixed 4 KiB page (verified against the OS at
// startup) so wire formats and tests are stable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace common {

inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageMask = kPageSize - 1;

/// Rounds `n` up to the next multiple of `align` (a power of two).
[[nodiscard]] constexpr std::size_t align_up(std::size_t n,
                                             std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// Rounds `n` down to a multiple of `align` (a power of two).
[[nodiscard]] constexpr std::size_t align_down(std::size_t n,
                                               std::size_t align) noexcept {
  return n & ~(align - 1);
}

[[nodiscard]] constexpr std::size_t page_round_up(std::size_t n) noexcept {
  return align_up(n, kPageSize);
}

[[nodiscard]] constexpr std::uintptr_t page_base(std::uintptr_t addr) noexcept {
  return addr & ~static_cast<std::uintptr_t>(kPageMask);
}

static_assert(align_up(0, 8) == 0);
static_assert(align_up(1, 8) == 8);
static_assert(align_up(8, 8) == 8);
static_assert(page_round_up(1) == kPageSize);
static_assert(page_round_up(kPageSize) == kPageSize);

}  // namespace common
