// RAII wrapper for POSIX file descriptors.
#pragma once

#include <unistd.h>

#include <utility>

namespace common {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Releases ownership without closing.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace common
