// Deterministic pseudo-random number generation.
//
// All workload generators (IGrid's indirection map, NBF's partner lists,
// FFT input, fuzz tests) draw from this splitmix64 generator so that every
// process in a run — and every system variant of an application — sees the
// identical problem instance from the same seed.
#pragma once

#include <cstdint>

namespace common {

/// splitmix64's finalizer: a full-avalanche 64-bit mix, shared by the
/// PRNG below and the hash containers (FlatSet64, the fabric's
/// reassembly map) so the constants live in exactly one place.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// splitmix64: tiny, fast, high-quality 64-bit generator.
/// (Steele, Lea, Flood — "Fast Splittable Pseudorandom Number Generators".)
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Modulo bias is irrelevant for workload generation.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace common
