// A minimal open-addressing hash set of 64-bit keys.
//
// The Tmk runtime keys protocol facts — "(creator, seq, page) was
// pre-applied via push/bcast" — by packing the triple into one 64-bit
// value; the former std::set<std::tuple<...>> cost a node allocation
// per insert and a pointer chase per lookup on the fault path. This set
// stores keys inline in one contiguous array (two, with the 1-byte
// state array): inserts are allocation-free until the next doubling,
// lookups touch one cache line in the common case.
//
// Linear probing with tombstones; rehashes at 7/8 combined (live +
// tombstone) load. Not a general-purpose container: u64 keys only, no
// iterators (erase_if covers the one scan-and-filter use).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/prng.hpp"

namespace common {

class FlatSet64 {
 public:
  FlatSet64() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Inserts `key`; returns true if it was not present.
  bool insert(std::uint64_t key) {
    if (slots_.empty() || (used_ + 1) * 8 >= slots_.size() * 7) rehash();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    std::size_t first_dead = SIZE_MAX;
    for (;; i = (i + 1) & mask) {
      if (state_[i] == kLive) {
        if (slots_[i] == key) return false;
      } else if (state_[i] == kDead) {
        if (first_dead == SIZE_MAX) first_dead = i;
      } else {  // kFree: key absent
        if (first_dead != SIZE_MAX) {
          i = first_dead;  // reuse the tombstone
        } else {
          ++used_;
        }
        slots_[i] = key;
        state_[i] = kLive;
        ++size_;
        return true;
      }
    }
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kFree) return false;
      if (state_[i] == kLive && slots_[i] == key) return true;
    }
  }

  /// Removes `key`; returns true if it was present.
  bool erase(std::uint64_t key) noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kFree) return false;
      if (state_[i] == kLive && slots_[i] == key) {
        state_[i] = kDead;
        --size_;
        return true;
      }
    }
  }

  /// Removes every key for which `pred(key)` is true; returns the count.
  template <typename Pred>
  std::size_t erase_if(Pred pred) noexcept {
    std::size_t removed = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == kLive && pred(slots_[i])) {
        state_[i] = kDead;
        --size_;
        ++removed;
      }
    }
    return removed;
  }

  void clear() noexcept {
    state_.assign(state_.size(), kFree);
    size_ = 0;
    used_ = 0;
  }

 private:
  enum : std::uint8_t { kFree = 0, kLive = 1, kDead = 2 };

  // Full-avalanche mix, so sequential packed keys spread over the table.
  [[nodiscard]] static std::size_t hash(std::uint64_t x) noexcept {
    return static_cast<std::size_t>(mix64(x));
  }

  void rehash() {
    // Grow only when live keys genuinely fill the table; a rehash forced
    // by tombstone churn rebuilds at the same capacity, so memory stays
    // proportional to peak live size rather than total insert churn.
    std::size_t cap = slots_.empty() ? 16 : slots_.size();
    if ((size_ + 1) * 2 >= cap) cap *= 2;
    std::vector<std::uint64_t> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    slots_.assign(cap, 0);
    state_.assign(cap, kFree);
    size_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i)
      if (old_state[i] == kLive) insert(old_slots[i]);
  }

  std::vector<std::uint64_t> slots_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;  // live keys
  std::size_t used_ = 0;  // live + tombstoned slots
};

}  // namespace common
