// Per-thread CPU-time measurement.
//
// The virtual-time performance model (src/sim) charges each process for
// the CPU cycles it actually burned between runtime events. On a
// time-shared host, CLOCK_THREAD_CPUTIME_ID keeps measuring true compute
// work even when eight DSM processes share one core — which is exactly why
// the reproduction can report credible "8-processor" results on any box.
#pragma once

#include <ctime>
#include <cstdint>

namespace common {

/// Nanoseconds of CPU time consumed by the calling thread.
[[nodiscard]] inline std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Nanoseconds of wall-clock time (monotonic).
[[nodiscard]] inline std::uint64_t wall_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace common
