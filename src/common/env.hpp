// Consolidated TMK_* environment parsing.
//
// Every knob the system reads from the environment goes through this
// header: one authoritative list of known names (typo detection via
// warn_unrecognized_once), validated parsing that warns once on garbage
// instead of silently ignoring it, and per-call reads — never cached
// process-wide — so tests can toggle knobs between spawns under the
// thread backend.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

extern "C" char** environ;  // NOLINT(readability-redundant-declaration)

namespace common::env {

/// Every TMK_-prefixed variable the system understands (build-time
/// options TMK_TSAN / TMK_ASAN are CMake cache names, listed so an
/// exported copy in the environment is not flagged as a typo).
inline constexpr std::string_view kKnown[] = {
    "TMK_TRANSPORT",         // mpl: socket|shm|inproc
    "TMK_BACKEND",           // runner: process|thread
    "TMK_FABRIC_BURST",      // mpl: 0 disables per-peer send bursts
    "TMK_BARRIER_ARITY",     // tmk: barrier fan-in arity (default flat)
    "TMK_CPU_SCALE",         // sim: compute scaling factor (> 0)
    "TMK_FULL_SIZES",        // bench: run paper-size problem presets
    "TMK_UPDATE_MODE",       // tmk: off|hint|adaptive|hybrid diff pushing
    "TMK_PUSH_CREDITS",      // tmk: pushes granted per observed request
    "TMK_RACECHECK",         // tmk: off|summary|precise race detection
    "TMK_RACECHECK_THROW",   // tmk: throw on the first detected race
    "TMK_RACECHECK_MAX_REPORTS",  // tmk: stored RaceReport cap (0 = none)
    "TMK_EPOCH_GC",          // tmk: off|on epoch reclamation of state
    "TMK_EPOCH_GC_INTERVAL",  // tmk: barrier epochs per GC round
    "TMK_EPOCH_GC_BYTES",    // tmk: RSS bytes arming every-barrier GC
    "TMK_FAULT_INJECT",      // mpl: deterministic fault plan (chaos runs)
    "TMK_WAIT_DEADLINE_MS",  // mpl: per-wait budget before a loud abort
    "TMK_TSAN",              // cmake: ThreadSanitizer build
    "TMK_ASAN",              // cmake: AddressSanitizer/UBSan build
};

namespace detail {

/// True the first time `key` is seen in this process — parsing happens
/// per construction, so a bad value would otherwise warn per spawn.
inline bool first_time(const std::string& key) {
  static std::mutex mu;
  static std::vector<std::string> seen;
  const std::lock_guard<std::mutex> g(mu);
  for (const auto& s : seen)
    if (s == key) return false;
  seen.push_back(key);
  return true;
}

inline void warn_value(const char* name, const char* value,
                       const char* expect) {
  if (!first_time(std::string(name) + '=' + value)) return;
  std::fprintf(stderr, "tmk: ignoring %s=%s (%s)\n", name, value, expect);
}

}  // namespace detail

/// Raw lookup for string-valued knobs (TMK_TRANSPORT, TMK_FAULT_INJECT);
/// validation lives with the parser that understands the value.
[[nodiscard]] inline const char* raw(const char* name) noexcept {
  return std::getenv(name);
}

/// Presence switch (TMK_FULL_SIZES, TMK_CPU_SCALE override detection).
[[nodiscard]] inline bool is_set(const char* name) noexcept {
  return std::getenv(name) != nullptr;
}

/// On/off knob: unset -> fallback; set -> a leading '0' disables,
/// anything else enables (the TMK_FABRIC_BURST contract).
[[nodiscard]] inline bool flag_knob(const char* name, bool fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return v[0] != '0';
}

/// Integer knob: nullopt when unset; warns once and returns nullopt on
/// non-numeric text instead of silently reading it as 0.
[[nodiscard]] inline std::optional<long long> int_knob(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') {
    detail::warn_value(name, v, "expected an integer");
    return std::nullopt;
  }
  return n;
}

/// Positive-double knob (TMK_CPU_SCALE): nullopt when unset, malformed,
/// or not > 0 — a non-positive scale was always silently inert, now it
/// warns once.
[[nodiscard]] inline std::optional<double> positive_double_knob(
    const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    detail::warn_value(name, v, "expected a number");
    return std::nullopt;
  }
  if (d <= 0) {
    detail::warn_value(name, v, "expected a value > 0");
    return std::nullopt;
  }
  return d;
}

/// Scans the environment for TMK_-prefixed names outside kKnown and
/// warns once per name: a typoed knob (TMK_TRANSPRT=shm) fails loud
/// instead of silently doing nothing. Called from runner::spawn.
inline void warn_unrecognized_once() {
  for (char** e = ::environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view kv(*e);
    if (!kv.starts_with("TMK_")) continue;
    const std::string_view name = kv.substr(0, kv.find('='));
    bool known = false;
    for (const std::string_view k : kKnown)
      if (k == name) known = true;
    if (known || !detail::first_time(std::string(name))) continue;
    std::fprintf(stderr,
                 "tmk: unrecognized environment variable %.*s "
                 "(possible typo; see the TMK_* table in README.md)\n",
                 static_cast<int>(name.size()), name.data());
  }
}

}  // namespace common::env
