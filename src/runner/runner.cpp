#include "runner/runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/cpu_clock.hpp"
#include "common/env.hpp"
#include "common/fd.hpp"
#include "sim/virtual_clock.hpp"

namespace runner {

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "process") return Backend::kProcess;
  if (name == "thread") return Backend::kThread;
  return std::nullopt;
}

Backend backend_from_env(Backend fallback) noexcept {
  const char* env = common::env::raw("TMK_BACKEND");
  if (env == nullptr) return fallback;
  if (auto b = parse_backend(env)) return *b;
  common::env::detail::warn_value("TMK_BACKEND", env, "expected process|thread");
  return fallback;
}

namespace {

/// Once a rank is known dead, poisoned survivors get this long to
/// unwind through their bounded waits and deliver failure reports
/// before the remaining stragglers are forcibly ended.
constexpr int kPoisonGraceSec = 10;

/// Watchdog deadline shared by both backends: the process backend's
/// report gather polls against it, the thread backend's cv-wait sleeps
/// against it, and a first failure pulls it in to a short grace window.
class RunDeadline {
 public:
  explicit RunDeadline(int timeout_sec)
      : deadline_ns_(common::wall_ns() +
                     static_cast<std::uint64_t>(timeout_sec) *
                         1'000'000'000ULL) {}

  /// Pulls the deadline in to `now + grace_sec` if that is sooner.
  void arm_grace(int grace_sec) noexcept {
    const std::uint64_t grace_end =
        common::wall_ns() +
        static_cast<std::uint64_t>(grace_sec) * 1'000'000'000ULL;
    deadline_ns_ = std::min(deadline_ns_, grace_end);
  }

  [[nodiscard]] bool expired() const noexcept {
    return common::wall_ns() >= deadline_ns_;
  }

  /// Milliseconds left for poll()/wait_for; >= 1 until expiry.
  [[nodiscard]] int remaining_ms() const noexcept {
    const std::uint64_t now = common::wall_ns();
    if (now >= deadline_ns_) return 0;
    return static_cast<int>((deadline_ns_ - now) / 1'000'000ULL) + 1;
  }

 private:
  std::uint64_t deadline_ns_;
};

/// Names the ranks a watchdog caught unfinished, e.g.
/// "ranks still running: 2, 5" — the blamed-rank half of a timeout
/// diagnostic on either backend.
std::string describe_stragglers(const std::vector<char>& done_flags) {
  std::string s;
  for (std::size_t i = 0; i < done_flags.size(); ++i) {
    if (done_flags[i] != 0) continue;
    s += s.empty() ? "ranks still running: " : ", ";
    s += std::to_string(i);
  }
  if (s.empty()) s = "all ranks finished";
  return s;
}

/// Shared heap mapping with RAII unmapping in the parent.
class HeapMapping {
 public:
  explicit HeapMapping(std::size_t bytes) : bytes_(bytes) {
    if (bytes_ == 0) return;
    void* p = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    COMMON_CHECK_MSG(p != MAP_FAILED, "mmap of shared heap failed");
    base_ = p;
  }
  ~HeapMapping() {
    if (base_ != nullptr) munmap(base_, bytes_);
  }
  HeapMapping(const HeapMapping&) = delete;
  HeapMapping& operator=(const HeapMapping&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

void write_report(int fd, const ProcReport& r) {
  const char* p = reinterpret_cast<const char*>(&r);
  std::size_t left = sizeof(r);
  while (left > 0) {
    const ssize_t n = write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful to do
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

[[noreturn]] void child_main(mpl::Fabric& fabric, int rank,
                             const SpawnOptions& options,
                             const tmk::Config& config,
                             const HeapMapping& heap, const ChildFn& fn,
                             int report_fd) {
  ProcReport report;
  report.rank = static_cast<std::uint32_t>(rank);
  // A send to a peer that died mid-run must surface as EPIPE — an
  // unwindable error that still delivers this rank's report — rather
  // than a silent SIGPIPE death.
  signal(SIGPIPE, SIG_IGN);
  try {
    mpl::Endpoint endpoint(fabric, rank, options.model);
    {
      // Close every descriptor that is not ours.
      mpl::Fabric discard = std::move(fabric);
      (void)discard;
    }
    ChildContext ctx{endpoint, heap.base(), heap.bytes(), config};
    const double checksum = fn(ctx);
    report.checksum = checksum;
    report.vt_ns = endpoint.measured_vt();
    report.cpu_ns = common::thread_cpu_ns();
    report.host_transport_ns = endpoint.clock().host_transport_ns();
    report.ctrs = ctx.ctrs;
    report.ctrs[ctr::Id::kHostSendCalls] = endpoint.host_stats().send_calls;
    report.ctrs[ctr::Id::kHostFutexWakes] = endpoint.host_stats().futex_wakes;
    report.counters = endpoint.measured_counters();
    report.ok = 1;
  } catch (const std::exception& e) {
    std::snprintf(report.error, sizeof(report.error), "%s", e.what());
    report.ok = 0;
  } catch (...) {
    std::snprintf(report.error, sizeof(report.error), "unknown exception");
    report.ok = 0;
  }
  write_report(report_fd, report);
  // Child-side printf output (examples) is block-buffered when stdout is
  // a pipe; _exit skips stdio teardown, so flush explicitly.
  std::fflush(nullptr);
  // Skip atexit handlers: this child shares gtest/benchmark state with the
  // parent and must not run their teardown.
  _exit(report.ok != 0u ? 0 : 1);
}

/// Checks every rank's report and sums them into the run-level fields.
/// `who` names a rank in failure messages ("proc" for forked children,
/// "rank" for backend threads). `first_failed` is the chronologically
/// first failed rank (or -1): its error is the root cause and must be
/// the one reported, not whichever poisoned survivor has the lowest id.
void aggregate_reports(RunResult& result, std::uint64_t wall_start_ns,
                       const char* who, int first_failed = -1) {
  if (first_failed >= 0) {
    const auto& rep = result.procs[static_cast<std::size_t>(first_failed)];
    COMMON_CHECK_MSG(rep.ok == 1,
                     who << ' ' << first_failed << " failed: " << rep.error);
  }
  for (int i = 0; i < result.nprocs; ++i) {
    const auto& rep = result.procs[static_cast<std::size_t>(i)];
    COMMON_CHECK_MSG(rep.ok == 1, who << ' ' << i << " failed: " << rep.error);
    result.max_vt_ns = std::max(result.max_vt_ns, rep.vt_ns);
    result.total_cpu_ns += rep.cpu_ns;
    result.total_host_transport_ns += rep.host_transport_ns;
    result.total_ctrs.accumulate(rep.ctrs);
    result.total += rep.counters;
  }
  result.checksum = result.procs[0].checksum;
  result.host_wall_s =
      static_cast<double>(common::wall_ns() - wall_start_ns) * 1e-9;
}

/// Thread backend: every rank is a std::thread of this process, with a
/// private heap mapping at its own address range and the in-process
/// ring transport. No fork, no fds, no report pipes — reports are
/// written in place and published by the thread join.
RunResult spawn_threads(int nprocs, const SpawnOptions& options,
                        const tmk::Config& config, const ChildFn& fn) {
  // Preflight: each rank is two threads (application + DSM service). A
  // 128-rank run wants ~260 threads; raise the RLIMIT_NPROC soft limit
  // toward the hard limit if it is visibly short. If even the raised
  // limit cannot hold this run's own threads, failure is certain —
  // report it here with the configuration attached instead of dying
  // mid-spawn with a bare EAGAIN. (A limit above `need` can still be
  // exhausted by the user's other processes; that stays best-effort.)
  {
    const auto need = static_cast<rlim_t>(nprocs) * 2 + 32;
    rlimit rl{};
    if (getrlimit(RLIMIT_NPROC, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
        rl.rlim_cur < need) {
      rlimit want = rl;
      want.rlim_cur =
          (rl.rlim_max == RLIM_INFINITY || rl.rlim_max > need) ? need
                                                               : rl.rlim_max;
      (void)setrlimit(RLIMIT_NPROC, &want);
      if (getrlimit(RLIMIT_NPROC, &rl) == 0)
        COMMON_CHECK_MSG(rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur >= need,
                         "thread backend at nprocs="
                             << nprocs << " needs ~" << need
                             << " threads but RLIMIT_NPROC caps at "
                             << rl.rlim_cur);
    }
  }
  const std::uint64_t wall_start_ns = common::wall_ns();

  RunResult result;
  result.nprocs = nprocs;
  result.backend = Backend::kThread;
  // A process-private mesh is the only one whose writes all ranks can
  // see; any other request is coerced and the result records it.
  result.transport = mpl::TransportKind::kInproc;
  result.procs.resize(static_cast<std::size_t>(nprocs));

  // Distinct per-rank heaps: each mmap lands at its own address range,
  // which is what lets the process-wide SIGSEGV handler route a fault
  // to the owning rank's DSM runtime. Fresh anonymous mappings give
  // every rank the same all-zero starting pages the fork backend's
  // copy-on-write heap provides.
  std::deque<HeapMapping> heaps;
  mpl::Fabric fabric(nprocs, mpl::TransportKind::kInproc);
  // Death propagation: the first rank to fail poisons the mesh so every
  // survivor's next blocking wait unwinds naming it, instead of the
  // whole suite parking until the watchdog.
  std::unique_ptr<mpl::PeerKiller> killer = fabric.make_peer_killer();

  std::mutex mu;
  std::condition_variable cv;
  int finished = 0;
  int first_failed = -1;
  std::vector<char> done_flags(static_cast<std::size_t>(nprocs), 0);

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(nprocs));
  for (int rank = 0; rank < nprocs; ++rank) {
    HeapMapping& heap = heaps.emplace_back(options.shared_heap_bytes);
    ProcReport& report = result.procs[static_cast<std::size_t>(rank)];
    ranks.emplace_back([&fabric, &options, &config, &fn, &mu, &cv, &finished,
                        &first_failed, &done_flags, &killer, rank,
                        heap_p = &heap, report_p = &report] {
      ProcReport& rep = *report_p;
      rep.rank = static_cast<std::uint32_t>(rank);
      try {
        // The Endpoint (and its transport) must be built on the rank's
        // own thread: the ring mesh keys its sender slots off the
        // constructing thread.
        mpl::Endpoint endpoint(fabric, rank, options.model);
        ChildContext ctx{endpoint, heap_p->base(), heap_p->bytes(), config};
        const double checksum = fn(ctx);
        rep.checksum = checksum;
        rep.vt_ns = endpoint.measured_vt();
        rep.cpu_ns = common::thread_cpu_ns();
        rep.host_transport_ns = endpoint.clock().host_transport_ns();
        rep.ctrs = ctx.ctrs;
        rep.ctrs[ctr::Id::kHostSendCalls] = endpoint.host_stats().send_calls;
        rep.ctrs[ctr::Id::kHostFutexWakes] = endpoint.host_stats().futex_wakes;
        rep.counters = endpoint.measured_counters();
        rep.ok = 1;
      } catch (const std::exception& e) {
        std::snprintf(rep.error, sizeof(rep.error), "%s", e.what());
        rep.ok = 0;
      } catch (...) {
        std::snprintf(rep.error, sizeof(rep.error), "unknown exception");
        rep.ok = 0;
      }
      std::lock_guard<std::mutex> g(mu);
      done_flags[static_cast<std::size_t>(rank)] = 1;
      ++finished;
      if (rep.ok != 1 && first_failed < 0) {
        first_failed = rank;
        if (killer) killer->poison(rank);
      }
      cv.notify_all();
    });
  }

  // Watchdog. A hung rank thread cannot be killed the way a forked
  // child can, and returning while rank threads still reference this
  // frame would corrupt the caller — so a timeout here ends the whole
  // process with a diagnostic (naming the wedged ranks) instead of
  // hanging the suite.
  {
    RunDeadline deadline(options.timeout_sec);
    std::unique_lock<std::mutex> lk(mu);
    while (finished < nprocs) {
      cv.wait_for(lk, std::chrono::milliseconds(deadline.remaining_ms()),
                  [&] { return finished == nprocs; });
      if (finished == nprocs) break;
      if (deadline.expired()) {
        std::fprintf(stderr,
                     "runner: thread-backend run timed out after %ds "
                     "(%d/%d ranks finished; %s); aborting\n",
                     options.timeout_sec, finished, nprocs,
                     describe_stragglers(done_flags).c_str());
        std::fflush(nullptr);
        _exit(124);
      }
    }
  }
  for (std::thread& t : ranks) t.join();

  aggregate_reports(result, wall_start_ns, "rank", first_failed);
  return result;
}

}  // namespace

/// Human-readable waitpid status for run-failure diagnostics.
std::string describe_wait_status(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "wait status " + std::to_string(status);
}

RunResult spawn(int nprocs, const SpawnOptions& options, const ChildFn& fn) {
  COMMON_CHECK(nprocs >= 1 && nprocs <= mpl::kMaxProcs);
  common::env::warn_unrecognized_once();
  // The knob snapshot for this run: resolved here — once per spawn, after
  // any EnvGuard a test set up — so every rank sees identical values.
  const tmk::Config config =
      options.tmk_config.value_or(tmk::Config::from_env());
  if (options.backend == Backend::kThread)
    return spawn_threads(nprocs, options, config, fn);
  COMMON_CHECK_MSG(options.transport != mpl::TransportKind::kInproc,
                   "the inproc transport cannot cross fork(); use the "
                   "thread backend for an in-process mesh");

  const std::uint64_t wall_start_ns = common::wall_ns();
  HeapMapping heap(options.shared_heap_bytes);
  mpl::Fabric fabric(nprocs, options.transport);

  std::vector<common::Fd> report_r(static_cast<std::size_t>(nprocs));
  std::vector<common::Fd> report_w(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    int fds[2];
    COMMON_SYSCALL(pipe(fds));
    report_r[static_cast<std::size_t>(i)].reset(fds[0]);
    report_w[static_cast<std::size_t>(i)].reset(fds[1]);
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(nprocs), -1);
  for (int rank = 0; rank < nprocs; ++rank) {
    const pid_t pid = COMMON_SYSCALL(fork());
    if (pid == 0) {
      // Child: keep only our own report pipe's write end.
      for (int j = 0; j < nprocs; ++j) {
        report_r[static_cast<std::size_t>(j)].reset();
        if (j != rank) report_w[static_cast<std::size_t>(j)].reset();
      }
      child_main(fabric, rank, options, config, heap, fn,
                 report_w[static_cast<std::size_t>(rank)].get());
    }
    pids[static_cast<std::size_t>(rank)] = pid;
  }

  // Parent: build the death-propagation handle (it takes over the shm
  // region view / the poison-pipe write ends), then close all remaining
  // fabric state and write ends so children own the mesh.
  std::unique_ptr<mpl::PeerKiller> killer = fabric.make_peer_killer();
  {
    mpl::Fabric discard = std::move(fabric);
    (void)discard;
  }
  for (auto& w : report_w) w.reset();

  // Gather reports with a watchdog. On the first terminal child failure
  // — EOF on its result pipe before a full report (crash, _exit, abort)
  // or a delivered report with ok == 0 — the parent poisons the mesh so
  // every survivor's next blocking wait unwinds naming the dead rank,
  // and keeps gathering for a short grace window so those failure
  // reports land; stragglers still wedged after the grace are SIGKILLed.
  RunResult result;
  result.nprocs = nprocs;
  result.backend = Backend::kProcess;
  result.transport = options.transport;
  result.procs.resize(static_cast<std::size_t>(nprocs));
  std::vector<std::size_t> got(static_cast<std::size_t>(nprocs), 0);

  RunDeadline deadline(options.timeout_sec);
  bool timed_out = false;
  int failed_rank = -1;

  std::size_t done = 0;
  while (done < static_cast<std::size_t>(nprocs)) {
    std::vector<pollfd> pfds;
    std::vector<int> ranks;
    for (int i = 0; i < nprocs; ++i) {
      if (got[static_cast<std::size_t>(i)] < sizeof(ProcReport)) {
        pfds.push_back({report_r[static_cast<std::size_t>(i)].get(), POLLIN, 0});
        ranks.push_back(i);
      }
    }
    if (deadline.expired()) {
      timed_out = failed_rank < 0;
      break;
    }
    const int r = poll(pfds.data(), pfds.size(), deadline.remaining_ms());
    if (r < 0) {
      if (errno == EINTR) continue;
      COMMON_SYSCALL(r);
    }
    if (r == 0) {
      timed_out = failed_rank < 0;
      break;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (!(pfds[k].revents & (POLLIN | POLLHUP))) continue;
      const int rank = ranks[k];
      auto& rep = result.procs[static_cast<std::size_t>(rank)];
      auto& off = got[static_cast<std::size_t>(rank)];
      char* dst = reinterpret_cast<char*>(&rep) + off;
      const ssize_t n =
          read(pfds[k].fd, dst, sizeof(ProcReport) - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        COMMON_SYSCALL(n);
      }
      if (n == 0) {
        // EOF before a full report: the child is gone without telling
        // us why (crash, bare _exit).
        if (off < sizeof(ProcReport)) {
          rep.ok = 0;
          std::snprintf(rep.error, sizeof(rep.error),
                        "process exited without a report");
          off = sizeof(ProcReport);
          ++done;
        }
      } else {
        off += static_cast<std::size_t>(n);
        if (off == sizeof(ProcReport)) ++done;
      }
      if (off == sizeof(ProcReport) && rep.ok != 1 && failed_rank < 0) {
        failed_rank = rank;
        if (killer) killer->poison(rank);
        deadline.arm_grace(kPoisonGraceSec);
      }
    }
  }

  if (timed_out || done < static_cast<std::size_t>(nprocs)) {
    for (pid_t pid : pids)
      if (pid > 0) kill(pid, SIGKILL);
  }
  std::vector<int> wait_status(static_cast<std::size_t>(nprocs), 0);
  for (int i = 0; i < nprocs; ++i)
    (void)waitpid(pids[static_cast<std::size_t>(i)],
                  &wait_status[static_cast<std::size_t>(i)], 0);

  if (timed_out) {
    std::vector<char> done_flags(static_cast<std::size_t>(nprocs), 0);
    for (int i = 0; i < nprocs; ++i)
      done_flags[static_cast<std::size_t>(i)] =
          got[static_cast<std::size_t>(i)] == sizeof(ProcReport) ? 1 : 0;
    std::string crash;
    for (int i = 0; i < nprocs; ++i) {
      const int status = wait_status[static_cast<std::size_t>(i)];
      if (WIFSIGNALED(status) && WTERMSIG(status) != SIGKILL)
        crash += "proc " + std::to_string(i) + " " +
                 describe_wait_status(status) + "; ";
    }
    COMMON_CHECK_MSG(false, "run timed out after "
                                << options.timeout_sec << "s; "
                                << describe_stragglers(done_flags) << "; "
                                << crash);
  }
  if (failed_rank >= 0) {
    const auto& rep = result.procs[static_cast<std::size_t>(failed_rank)];
    COMMON_CHECK_MSG(
        false, "proc " << failed_rank << " failed ("
                       << describe_wait_status(
                              wait_status[static_cast<std::size_t>(
                                  failed_rank)])
                       << "): " << rep.error
                       << "; surviving processes were aborted");
  }
  aggregate_reports(result, wall_start_ns, "proc");
  return result;
}

RunResult run_sequential(const SpawnOptions& options,
                         const std::function<double()>& fn) {
  SpawnOptions opts = options;
  return spawn(1, opts, [&fn](ChildContext&) { return fn(); });
}

}  // namespace runner
