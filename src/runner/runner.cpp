#include "runner/runner.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <condition_variable>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/cpu_clock.hpp"
#include "common/fd.hpp"
#include "sim/virtual_clock.hpp"

namespace runner {

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "process") return Backend::kProcess;
  if (name == "thread") return Backend::kThread;
  return std::nullopt;
}

Backend backend_from_env(Backend fallback) noexcept {
  const char* env = std::getenv("TMK_BACKEND");
  if (env == nullptr) return fallback;
  if (auto b = parse_backend(env)) return *b;
  return fallback;
}

namespace {

/// Shared heap mapping with RAII unmapping in the parent.
class HeapMapping {
 public:
  explicit HeapMapping(std::size_t bytes) : bytes_(bytes) {
    if (bytes_ == 0) return;
    void* p = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    COMMON_CHECK_MSG(p != MAP_FAILED, "mmap of shared heap failed");
    base_ = p;
  }
  ~HeapMapping() {
    if (base_ != nullptr) munmap(base_, bytes_);
  }
  HeapMapping(const HeapMapping&) = delete;
  HeapMapping& operator=(const HeapMapping&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
};

void write_report(int fd, const ProcReport& r) {
  const char* p = reinterpret_cast<const char*>(&r);
  std::size_t left = sizeof(r);
  while (left > 0) {
    const ssize_t n = write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful to do
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

[[noreturn]] void child_main(mpl::Fabric& fabric, int rank,
                             const SpawnOptions& options,
                             const HeapMapping& heap, const ChildFn& fn,
                             int report_fd) {
  ProcReport report;
  report.rank = static_cast<std::uint32_t>(rank);
  try {
    mpl::Endpoint endpoint(fabric, rank, options.model);
    {
      // Close every descriptor that is not ours.
      mpl::Fabric discard = std::move(fabric);
      (void)discard;
    }
    ChildContext ctx{endpoint, heap.base(), heap.bytes()};
    const double checksum = fn(ctx);
    report.checksum = checksum;
    report.vt_ns = endpoint.measured_vt();
    report.cpu_ns = common::thread_cpu_ns();
    report.host_transport_ns = endpoint.clock().host_transport_ns();
    report.host_send_calls = endpoint.host_stats().send_calls;
    report.host_futex_wakes = endpoint.host_stats().futex_wakes;
    report.counters = endpoint.measured_counters();
    report.ok = 1;
  } catch (const std::exception& e) {
    std::snprintf(report.error, sizeof(report.error), "%s", e.what());
    report.ok = 0;
  } catch (...) {
    std::snprintf(report.error, sizeof(report.error), "unknown exception");
    report.ok = 0;
  }
  write_report(report_fd, report);
  // Child-side printf output (examples) is block-buffered when stdout is
  // a pipe; _exit skips stdio teardown, so flush explicitly.
  std::fflush(nullptr);
  // Skip atexit handlers: this child shares gtest/benchmark state with the
  // parent and must not run their teardown.
  _exit(report.ok != 0u ? 0 : 1);
}

/// Checks every rank's report and sums them into the run-level fields.
/// `who` names a rank in failure messages ("proc" for forked children,
/// "rank" for backend threads).
void aggregate_reports(RunResult& result, std::uint64_t wall_start_ns,
                       const char* who) {
  for (int i = 0; i < result.nprocs; ++i) {
    const auto& rep = result.procs[static_cast<std::size_t>(i)];
    COMMON_CHECK_MSG(rep.ok == 1, who << ' ' << i << " failed: " << rep.error);
    result.max_vt_ns = std::max(result.max_vt_ns, rep.vt_ns);
    result.total_cpu_ns += rep.cpu_ns;
    result.total_host_transport_ns += rep.host_transport_ns;
    result.total_host_send_calls += rep.host_send_calls;
    result.total_host_futex_wakes += rep.host_futex_wakes;
    result.total += rep.counters;
  }
  result.checksum = result.procs[0].checksum;
  result.host_wall_s =
      static_cast<double>(common::wall_ns() - wall_start_ns) * 1e-9;
}

/// Thread backend: every rank is a std::thread of this process, with a
/// private heap mapping at its own address range and the in-process
/// ring transport. No fork, no fds, no report pipes — reports are
/// written in place and published by the thread join.
RunResult spawn_threads(int nprocs, const SpawnOptions& options,
                        const ChildFn& fn) {
  // Preflight: each rank is two threads (application + DSM service). A
  // 128-rank run wants ~260 threads; raise the RLIMIT_NPROC soft limit
  // toward the hard limit if it is visibly short. If even the raised
  // limit cannot hold this run's own threads, failure is certain —
  // report it here with the configuration attached instead of dying
  // mid-spawn with a bare EAGAIN. (A limit above `need` can still be
  // exhausted by the user's other processes; that stays best-effort.)
  {
    const auto need = static_cast<rlim_t>(nprocs) * 2 + 32;
    rlimit rl{};
    if (getrlimit(RLIMIT_NPROC, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
        rl.rlim_cur < need) {
      rlimit want = rl;
      want.rlim_cur =
          (rl.rlim_max == RLIM_INFINITY || rl.rlim_max > need) ? need
                                                               : rl.rlim_max;
      (void)setrlimit(RLIMIT_NPROC, &want);
      if (getrlimit(RLIMIT_NPROC, &rl) == 0)
        COMMON_CHECK_MSG(rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur >= need,
                         "thread backend at nprocs="
                             << nprocs << " needs ~" << need
                             << " threads but RLIMIT_NPROC caps at "
                             << rl.rlim_cur);
    }
  }
  const std::uint64_t wall_start_ns = common::wall_ns();

  RunResult result;
  result.nprocs = nprocs;
  result.backend = Backend::kThread;
  // A process-private mesh is the only one whose writes all ranks can
  // see; any other request is coerced and the result records it.
  result.transport = mpl::TransportKind::kInproc;
  result.procs.resize(static_cast<std::size_t>(nprocs));

  // Distinct per-rank heaps: each mmap lands at its own address range,
  // which is what lets the process-wide SIGSEGV handler route a fault
  // to the owning rank's DSM runtime. Fresh anonymous mappings give
  // every rank the same all-zero starting pages the fork backend's
  // copy-on-write heap provides.
  std::deque<HeapMapping> heaps;
  mpl::Fabric fabric(nprocs, mpl::TransportKind::kInproc);

  std::mutex mu;
  std::condition_variable cv;
  int finished = 0;

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(nprocs));
  for (int rank = 0; rank < nprocs; ++rank) {
    HeapMapping& heap = heaps.emplace_back(options.shared_heap_bytes);
    ProcReport& report = result.procs[static_cast<std::size_t>(rank)];
    ranks.emplace_back([&fabric, &options, &fn, &mu, &cv, &finished, rank,
                        heap_p = &heap, report_p = &report] {
      ProcReport& rep = *report_p;
      rep.rank = static_cast<std::uint32_t>(rank);
      try {
        // The Endpoint (and its transport) must be built on the rank's
        // own thread: the ring mesh keys its sender slots off the
        // constructing thread.
        mpl::Endpoint endpoint(fabric, rank, options.model);
        ChildContext ctx{endpoint, heap_p->base(), heap_p->bytes()};
        const double checksum = fn(ctx);
        rep.checksum = checksum;
        rep.vt_ns = endpoint.measured_vt();
        rep.cpu_ns = common::thread_cpu_ns();
        rep.host_transport_ns = endpoint.clock().host_transport_ns();
        rep.host_send_calls = endpoint.host_stats().send_calls;
        rep.host_futex_wakes = endpoint.host_stats().futex_wakes;
        rep.counters = endpoint.measured_counters();
        rep.ok = 1;
      } catch (const std::exception& e) {
        std::snprintf(rep.error, sizeof(rep.error), "%s", e.what());
        rep.ok = 0;
      } catch (...) {
        std::snprintf(rep.error, sizeof(rep.error), "unknown exception");
        rep.ok = 0;
      }
      std::lock_guard<std::mutex> g(mu);
      ++finished;
      cv.notify_all();
    });
  }

  // Watchdog. A hung rank thread cannot be killed the way a forked
  // child can, and returning while rank threads still reference this
  // frame would corrupt the caller — so a timeout here ends the whole
  // process with a diagnostic instead of hanging the suite.
  {
    std::unique_lock<std::mutex> lk(mu);
    const bool all_done =
        cv.wait_for(lk, std::chrono::seconds(options.timeout_sec),
                    [&] { return finished == nprocs; });
    if (!all_done) {
      std::fprintf(stderr,
                   "runner: thread-backend run timed out after %ds "
                   "(%d/%d ranks finished); aborting\n",
                   options.timeout_sec, finished, nprocs);
      std::fflush(nullptr);
      _exit(124);
    }
  }
  for (std::thread& t : ranks) t.join();

  aggregate_reports(result, wall_start_ns, "rank");
  return result;
}

}  // namespace

/// Human-readable waitpid status for run-failure diagnostics.
std::string describe_wait_status(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "wait status " + std::to_string(status);
}

RunResult spawn(int nprocs, const SpawnOptions& options, const ChildFn& fn) {
  COMMON_CHECK(nprocs >= 1 && nprocs <= mpl::kMaxProcs);
  if (options.backend == Backend::kThread)
    return spawn_threads(nprocs, options, fn);
  COMMON_CHECK_MSG(options.transport != mpl::TransportKind::kInproc,
                   "the inproc transport cannot cross fork(); use the "
                   "thread backend for an in-process mesh");

  const std::uint64_t wall_start_ns = common::wall_ns();
  HeapMapping heap(options.shared_heap_bytes);
  mpl::Fabric fabric(nprocs, options.transport);

  std::vector<common::Fd> report_r(static_cast<std::size_t>(nprocs));
  std::vector<common::Fd> report_w(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    int fds[2];
    COMMON_SYSCALL(pipe(fds));
    report_r[static_cast<std::size_t>(i)].reset(fds[0]);
    report_w[static_cast<std::size_t>(i)].reset(fds[1]);
  }

  std::vector<pid_t> pids(static_cast<std::size_t>(nprocs), -1);
  for (int rank = 0; rank < nprocs; ++rank) {
    const pid_t pid = COMMON_SYSCALL(fork());
    if (pid == 0) {
      // Child: keep only our own report pipe's write end.
      for (int j = 0; j < nprocs; ++j) {
        report_r[static_cast<std::size_t>(j)].reset();
        if (j != rank) report_w[static_cast<std::size_t>(j)].reset();
      }
      child_main(fabric, rank, options, heap, fn,
                 report_w[static_cast<std::size_t>(rank)].get());
    }
    pids[static_cast<std::size_t>(rank)] = pid;
  }

  // Parent: close all fabric and write ends so children own the mesh.
  {
    mpl::Fabric discard = std::move(fabric);
    (void)discard;
  }
  for (auto& w : report_w) w.reset();

  // Gather reports with a watchdog. Any terminal child failure — EOF
  // on its result pipe before a full report (crash, _exit, abort) or a
  // delivered report with ok == 0 — aborts the gather immediately: the
  // surviving children would otherwise block forever on the dead peer
  // and turn one crash into a watchdog timeout.
  RunResult result;
  result.nprocs = nprocs;
  result.backend = Backend::kProcess;
  result.transport = options.transport;
  result.procs.resize(static_cast<std::size_t>(nprocs));
  std::vector<std::size_t> got(static_cast<std::size_t>(nprocs), 0);

  const std::uint64_t deadline_ns =
      common::wall_ns() +
      static_cast<std::uint64_t>(options.timeout_sec) * 1'000'000'000ULL;
  bool timed_out = false;
  int failed_rank = -1;

  std::size_t done = 0;
  while (done < static_cast<std::size_t>(nprocs) && failed_rank < 0) {
    std::vector<pollfd> pfds;
    std::vector<int> ranks;
    for (int i = 0; i < nprocs; ++i) {
      if (got[static_cast<std::size_t>(i)] < sizeof(ProcReport)) {
        pfds.push_back({report_r[static_cast<std::size_t>(i)].get(), POLLIN, 0});
        ranks.push_back(i);
      }
    }
    const std::uint64_t now = common::wall_ns();
    if (now >= deadline_ns) {
      timed_out = true;
      break;
    }
    const int timeout_ms =
        static_cast<int>((deadline_ns - now) / 1'000'000ULL) + 1;
    const int r = poll(pfds.data(), pfds.size(), timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      COMMON_SYSCALL(r);
    }
    if (r == 0) {
      timed_out = true;
      break;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (!(pfds[k].revents & (POLLIN | POLLHUP))) continue;
      const int rank = ranks[k];
      auto& rep = result.procs[static_cast<std::size_t>(rank)];
      auto& off = got[static_cast<std::size_t>(rank)];
      char* dst = reinterpret_cast<char*>(&rep) + off;
      const ssize_t n =
          read(pfds[k].fd, dst, sizeof(ProcReport) - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        COMMON_SYSCALL(n);
      }
      if (n == 0) {
        // EOF before a full report: the child is gone without telling
        // us why (crash, bare _exit). Fail the run now.
        if (off < sizeof(ProcReport)) {
          rep.ok = 0;
          std::snprintf(rep.error, sizeof(rep.error),
                        "process exited without a report");
          off = sizeof(ProcReport);
          ++done;
          failed_rank = rank;
        }
        continue;
      }
      off += static_cast<std::size_t>(n);
      if (off == sizeof(ProcReport)) {
        ++done;
        if (rep.ok != 1) failed_rank = rank;
      }
    }
  }

  if (timed_out || failed_rank >= 0) {
    for (pid_t pid : pids)
      if (pid > 0) kill(pid, SIGKILL);
  }
  std::vector<int> wait_status(static_cast<std::size_t>(nprocs), 0);
  for (int i = 0; i < nprocs; ++i)
    (void)waitpid(pids[static_cast<std::size_t>(i)],
                  &wait_status[static_cast<std::size_t>(i)], 0);

  if (timed_out) {
    std::string crash;
    for (int i = 0; i < nprocs; ++i) {
      const int status = wait_status[static_cast<std::size_t>(i)];
      if (WIFSIGNALED(status) && WTERMSIG(status) != SIGKILL)
        crash += "proc " + std::to_string(i) + " " +
                 describe_wait_status(status) + "; ";
    }
    COMMON_CHECK_MSG(false, "run timed out after " << options.timeout_sec
                                                   << "s; " << crash);
  }
  if (failed_rank >= 0) {
    const auto& rep = result.procs[static_cast<std::size_t>(failed_rank)];
    COMMON_CHECK_MSG(
        false, "proc " << failed_rank << " failed ("
                       << describe_wait_status(
                              wait_status[static_cast<std::size_t>(
                                  failed_rank)])
                       << "): " << rep.error
                       << "; surviving processes were aborted");
  }
  aggregate_reports(result, wall_start_ns, "proc");
  return result;
}

RunResult run_sequential(const SpawnOptions& options,
                         const std::function<double()>& fn) {
  SpawnOptions opts = options;
  return spawn(1, opts, [&fn](ChildContext&) { return fn(); });
}

}  // namespace runner
