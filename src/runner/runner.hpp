// Multi-process run harness.
//
// A "run" launches `nprocs` worker ranks from the calling process, on
// one of two execution backends:
//
//   Backend::kProcess (the original): forks one child per rank. Before
//   forking, the harness maps the DSM shared heap (so every child
//   inherits it at the same virtual address — the zero-page invariant
//   of DESIGN.md §5) and builds the fabric. Each child adopts its
//   endpoint, executes the supplied function, and reports a fixed-size
//   result record through a pipe; children leave via _exit().
//
//   Backend::kThread: runs each rank as a std::thread of the calling
//   process — no fork, no exec, no fd inheritance. Each rank gets its
//   own private heap mapping at a distinct address range (the
//   process-wide SIGSEGV handler dispatches faults by address to the
//   owning rank's DSM runtime), and the mesh is the in-process ring
//   transport (mpl::InprocTransport) regardless of the requested
//   transport. Fast to launch and — unlike fork — visible to
//   ThreadSanitizer as ONE program, which is what lets CI race-check
//   the full coherence protocol.
//
// Either way the caller aggregates per-rank virtual times, CPU times,
// and message counters into a RunResult, and never participates in the
// computation itself, so the harness can be driven from gtest and
// google-benchmark without contaminating their state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mpl/counters.hpp"
#include "mpl/fabric.hpp"
#include "runner/counters.hpp"
#include "sim/machine_model.hpp"
#include "tmk/config.hpp"

namespace runner {

/// How ranks are executed: forked processes or threads of this process.
enum class Backend : std::uint8_t { kProcess = 0, kThread = 1 };

[[nodiscard]] constexpr const char* to_string(Backend b) noexcept {
  return b == Backend::kThread ? "thread" : "process";
}

/// Parses a backend name ("process" or "thread"); nullopt otherwise.
[[nodiscard]] std::optional<Backend> parse_backend(
    std::string_view name) noexcept;

/// The process-wide default: TMK_BACKEND=process|thread when set (and
/// valid), else `fallback`.
[[nodiscard]] Backend backend_from_env(
    Backend fallback = Backend::kProcess) noexcept;

/// Fixed-size per-process report sent over the result pipe.
struct ProcReport {
  std::uint32_t ok = 0;  // 1 = success
  std::uint32_t rank = 0;
  double checksum = 0.0;
  std::uint64_t vt_ns = 0;       // final virtual time
  std::uint64_t cpu_ns = 0;      // raw main-thread CPU
  std::uint64_t host_transport_ns = 0;  // host CPU discarded as transport cost
  // Registered per-run counters (runner/counters.hpp): transport
  // syscall costs plus the DSM protocol observables (zero for non-DSM
  // runs). One block instead of one field per column.
  ctr::Block ctrs{};
  mpl::Counters counters{};
  char error[192] = {};
};
static_assert(std::is_trivially_copyable_v<ProcReport>);

/// Aggregated outcome of one multi-process run.
struct RunResult {
  int nprocs = 0;
  Backend backend = Backend::kProcess;
  mpl::TransportKind transport = mpl::TransportKind::kSocket;
  double checksum = 0.0;           // proc 0's checksum
  std::uint64_t max_vt_ns = 0;     // modelled parallel execution time
  std::uint64_t total_cpu_ns = 0;
  std::uint64_t total_host_transport_ns = 0;
  // Registered counters aggregated over ranks per their declared
  // aggregation (runner/counters.hpp).
  ctr::Block total_ctrs{};
  double host_wall_s = 0.0;        // real wall time of the whole run
  mpl::Counters total{};           // summed over processes
  std::vector<ProcReport> procs;

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(max_vt_ns) * 1e-9;
  }
  /// Run-level value of one registered counter.
  [[nodiscard]] std::uint64_t ctr(ctr::Id id) const noexcept {
    return total_ctrs[id];
  }
  [[nodiscard]] std::uint64_t messages(mpl::Layer l) const noexcept {
    return total.messages[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] double kbytes(mpl::Layer l) const noexcept {
    return static_cast<double>(total.bytes[static_cast<std::size_t>(l)]) /
           1024.0;
  }
};

/// Environment handed to each child process.
struct ChildContext {
  mpl::Endpoint& endpoint;
  void* heap_base = nullptr;       // inherited shared-heap mapping
  std::size_t heap_bytes = 0;
  // The run's TMK_* knob snapshot (tmk/config.hpp): resolved once in
  // spawn() so every rank sees identical values, consumed by
  // tmk::Runtime in place of scattered getenv reads.
  tmk::Config config{};
  // DSM protocol counters, accumulated (+=) by tmk::Runtime::shutdown —
  // a rank may run several Runtimes back to back — and folded into the
  // rank's ProcReport after `fn` returns. Zero for non-DSM runs.
  ctr::Block ctrs{};
};

using ChildFn = std::function<double(ChildContext&)>;

struct SpawnOptions {
  simx::MachineModel model = simx::MachineModel::sp2();
  std::size_t shared_heap_bytes = 512ull * 1024 * 1024;
  int timeout_sec = 600;  // watchdog: kill and fail the run if exceeded
  /// Interconnect the mesh is built on. The modelled results are
  /// transport-invariant; only host-side cost differs. Defaults to
  /// TMK_TRANSPORT=socket|shm|inproc when set, else the socket backend.
  /// The thread backend always runs on the in-process ring transport;
  /// any other request is coerced (and RunResult.transport records the
  /// coercion). The process backends reject kInproc — a process-private
  /// mesh cannot cross a fork.
  mpl::TransportKind transport = mpl::transport_from_env();
  /// Execution backend for the ranks. Defaults to TMK_BACKEND=
  /// process|thread when set, else forked processes.
  Backend backend = backend_from_env();
  /// Programmatic TMK_* knob snapshot override. Left unset, spawn()
  /// builds one via tmk::Config::from_env() at spawn time — after any
  /// EnvGuard a test set up — and hands it to every rank's
  /// ChildContext.
  std::optional<tmk::Config> tmk_config;
};

/// Launches `nprocs` ranks, runs `fn` in each, and aggregates results.
/// Throws common::Error if any rank fails, crashes, or times out.
///
/// Failure semantics (both backends): the first rank to die poisons the
/// mesh (mpl::PeerKiller), so every survivor's next blocking wait
/// unwinds in bounded time with a blame line naming the dead rank and
/// the wait site, instead of parking until the global watchdog. The
/// error reported is the chronologically FIRST failure — the root
/// cause — not a poisoned survivor's. Process backend: the parent
/// keeps gathering reports for a short grace window after poisoning,
/// then SIGKILLs any straggler; the error carries the child's rank and
/// wait status. Thread backend: ranks cannot be killed, so a rank
/// wedged outside any protocol wait still ends the whole test process
/// via the watchdog, whose diagnostic names the unfinished ranks.
RunResult spawn(int nprocs, const SpawnOptions& options, const ChildFn& fn);

/// Convenience for sequential baselines: one process, no communication;
/// returns the checksum and the scaled CPU time as virtual time.
RunResult run_sequential(const SpawnOptions& options,
                         const std::function<double()>& fn);

}  // namespace runner
