// Multi-process run harness.
//
// A "run" forks `nprocs` worker processes from the calling process.
// Before forking, the harness maps the DSM shared heap (so every child
// inherits it at the same virtual address — the zero-page invariant of
// DESIGN.md §5) and builds the socket fabric. Each child adopts its
// endpoint, executes the supplied function, and reports a fixed-size
// result record through a pipe; the parent aggregates per-process virtual
// times, CPU times, and message counters into a RunResult.
//
// The parent never participates in the computation, so the harness can be
// driven from gtest and google-benchmark without contaminating their
// state; children leave via _exit().
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mpl/counters.hpp"
#include "mpl/fabric.hpp"
#include "sim/machine_model.hpp"

namespace runner {

/// Fixed-size per-process report sent over the result pipe.
struct ProcReport {
  std::uint32_t ok = 0;  // 1 = success
  std::uint32_t rank = 0;
  double checksum = 0.0;
  std::uint64_t vt_ns = 0;       // final virtual time
  std::uint64_t cpu_ns = 0;      // raw main-thread CPU
  std::uint64_t host_transport_ns = 0;  // host CPU discarded as transport cost
  mpl::Counters counters{};
  char error[192] = {};
};
static_assert(std::is_trivially_copyable_v<ProcReport>);

/// Aggregated outcome of one multi-process run.
struct RunResult {
  int nprocs = 0;
  mpl::TransportKind transport = mpl::TransportKind::kSocket;
  double checksum = 0.0;           // proc 0's checksum
  std::uint64_t max_vt_ns = 0;     // modelled parallel execution time
  std::uint64_t total_cpu_ns = 0;
  std::uint64_t total_host_transport_ns = 0;
  double host_wall_s = 0.0;        // real wall time of the whole run
  mpl::Counters total{};           // summed over processes
  std::vector<ProcReport> procs;

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(max_vt_ns) * 1e-9;
  }
  [[nodiscard]] std::uint64_t messages(mpl::Layer l) const noexcept {
    return total.messages[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] double kbytes(mpl::Layer l) const noexcept {
    return static_cast<double>(total.bytes[static_cast<std::size_t>(l)]) /
           1024.0;
  }
};

/// Environment handed to each child process.
struct ChildContext {
  mpl::Endpoint& endpoint;
  void* heap_base = nullptr;       // inherited shared-heap mapping
  std::size_t heap_bytes = 0;
};

using ChildFn = std::function<double(ChildContext&)>;

struct SpawnOptions {
  simx::MachineModel model = simx::MachineModel::sp2();
  std::size_t shared_heap_bytes = 512ull * 1024 * 1024;
  int timeout_sec = 600;  // watchdog: kill and fail the run if exceeded
  /// Interconnect the mesh is built on. The modelled results are
  /// transport-invariant; only host-side cost differs. Defaults to
  /// TMK_TRANSPORT=socket|shm when set, else the socket backend.
  mpl::TransportKind transport = mpl::transport_from_env();
};

/// Forks `nprocs` children, runs `fn` in each, and aggregates results.
/// Throws common::Error if any child fails, crashes, or times out. A
/// child that dies before delivering its report (or reports failure)
/// aborts the whole run immediately — the remaining children are
/// killed rather than left blocking on the dead peer until the
/// watchdog — and the error carries the child's rank and wait status.
RunResult spawn(int nprocs, const SpawnOptions& options, const ChildFn& fn);

/// Convenience for sequential baselines: one process, no communication;
/// returns the checksum and the scaled CPU time as virtual time.
RunResult run_sequential(const SpawnOptions& options,
                         const std::function<double()>& fn);

}  // namespace runner
