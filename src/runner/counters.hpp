// Named counter registry: the one place a per-run counter is declared.
//
// Eight PRs of counters (diff/push/futex/send-call/fault columns) were
// each hand-threaded through Transport -> Endpoint -> ProcReport ->
// RunResult -> bench Row -> JSON -> bench_scale: six copies of every
// name, and a seventh edit for each aggregation. This registry replaces
// the per-field plumbing with one declaration row per counter — its
// JSON key, producing layer, and aggregation — and one fixed-size
// trivially-copyable Block that flows through the report pipe, the
// run-level aggregation, and the bench rows generically. Adding a
// counter is one enum entry plus one kRegistry row; everything between
// the producer and BENCH_results.json is untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace runner::ctr {

/// Which layer of the stack produces the counter. Host counters are
/// transport syscall costs (vary with TMK_TRANSPORT/TMK_FABRIC_BURST);
/// DSM counters are protocol observables, burst- and transport-
/// invariant by construction. The JSON writer groups columns by layer,
/// preserving the historical key order.
enum class Layer : std::uint8_t { kHost, kDsm };

/// How per-rank values combine into the run-level total.
enum class Agg : std::uint8_t { kSum, kMax };

enum class Id : std::uint8_t {
  kHostSendCalls,   // transport publishes / send syscalls
  kHostFutexWakes,  // send-side FUTEX_WAKE syscalls
  kDiffRequests,    // diff pull round trips
  kDiffReplies,
  kDiffPush,        // barrier-time pushed diffs (TMK_UPDATE_MODE)
  kPushHits,
  kPushWaste,
  kPageFaults,      // SIGSEGV faults taken
  kRaceReports,     // TMK_RACE_REPORT lines emitted (TMK_RACECHECK)
  kRaceReportsDropped,  // reports past TMK_RACECHECK_MAX_REPORTS
  kIntervalsReclaimed,  // interval records freed by epoch GC
  kProtocolRssBytes,    // peak per-rank protocol-state footprint
  kCount,
};

inline constexpr std::size_t kCount = static_cast<std::size_t>(Id::kCount);

struct Desc {
  Id id;
  std::string_view json_key;  // BENCH_results.json / bench_scale column
  Layer layer;
  Agg agg;
};

inline constexpr std::array<Desc, kCount> kRegistry = {{
    {Id::kHostSendCalls, "host_send_calls", Layer::kHost, Agg::kSum},
    {Id::kHostFutexWakes, "host_futex_wakes", Layer::kHost, Agg::kSum},
    {Id::kDiffRequests, "diff_requests", Layer::kDsm, Agg::kSum},
    {Id::kDiffReplies, "diff_replies", Layer::kDsm, Agg::kSum},
    {Id::kDiffPush, "diff_push", Layer::kDsm, Agg::kSum},
    {Id::kPushHits, "push_hits", Layer::kDsm, Agg::kSum},
    {Id::kPushWaste, "push_waste", Layer::kDsm, Agg::kSum},
    {Id::kPageFaults, "page_faults", Layer::kDsm, Agg::kSum},
    {Id::kRaceReports, "race_reports", Layer::kDsm, Agg::kSum},
    {Id::kRaceReportsDropped, "race_reports_dropped", Layer::kDsm, Agg::kSum},
    {Id::kIntervalsReclaimed, "intervals_reclaimed", Layer::kDsm, Agg::kSum},
    {Id::kProtocolRssBytes, "protocol_rss_bytes", Layer::kDsm, Agg::kMax},
}};

consteval bool registry_matches_enum() {
  for (std::size_t i = 0; i < kCount; ++i)
    if (static_cast<std::size_t>(kRegistry[i].id) != i) return false;
  return true;
}
static_assert(registry_matches_enum(),
              "kRegistry rows must appear in Id order");

/// Fixed-size value block, indexed by Id. Trivially copyable so it can
/// ride the ProcReport result pipe unchanged.
struct Block {
  std::array<std::uint64_t, kCount> v{};

  [[nodiscard]] std::uint64_t& operator[](Id id) noexcept {
    return v[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::uint64_t& operator[](Id id) const noexcept {
    return v[static_cast<std::size_t>(id)];
  }

  /// Folds one rank's block into a run-level total, honoring each
  /// counter's declared aggregation.
  void accumulate(const Block& rank) noexcept {
    for (const Desc& d : kRegistry) {
      std::uint64_t& dst = (*this)[d.id];
      const std::uint64_t src = rank[d.id];
      switch (d.agg) {
        case Agg::kSum: dst += src; break;
        case Agg::kMax: dst = dst > src ? dst : src; break;
      }
    }
  }
};
static_assert(std::is_trivially_copyable_v<Block>);

}  // namespace runner::ctr
