// XHPF compiler runtime (§2.4).
//
// Mirrors the run-time library under APR's Forge XHPF compiler: SPMD
// execution where every process runs the whole program, DO loops are
// distributed by the owner-computes rule over user-supplied data
// decompositions, and communication is generated from the distribution
// descriptors:
//   - analyzable patterns (stencils) become halo shift exchanges;
//   - unanalyzable patterns (indirection arrays) fall back to each
//     processor broadcasting *its entire partition* after the loop,
//     "regardless of whether the data will actually be used" — the §6
//     result that makes XHPF lose badly on irregular applications;
//   - reductions are recognized and compiled to gather/broadcast trees.
//
// Broadcast-fallback traffic is sent in kCompilerChunk-sized pieces,
// mimicking the strided section sends of the real compiler (and matching
// the order-of-magnitude message counts in Tables 2-3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/check.hpp"
#include "dist/dist.hpp"
#include "pvme/comm.hpp"

namespace xhpf {

// The compiler's data decompositions are the shared distribution layer's
// descriptors; the generated communication below is keyed off them.
using BlockDist = dist::BlockDist;
using CyclicDist = dist::CyclicDist;

class Runtime {
 public:
  explicit Runtime(pvme::Comm& comm) noexcept : comm_(comm) {}

  [[nodiscard]] int rank() const noexcept { return comm_.rank(); }
  [[nodiscard]] int nprocs() const noexcept { return comm_.nprocs(); }
  [[nodiscard]] pvme::Comm& comm() noexcept { return comm_; }

  /// The compiler's strided-section message size for generated
  /// communication (broadcast fallback).
  static constexpr std::size_t kCompilerChunk = 16 * 1024;

  /// Halo exchange for a row-BLOCK-distributed 2-D array: every process
  /// sends its first and last owned row to the adjacent owners and
  /// receives their boundary rows into the halo positions.
  template <typename T>
  void halo_exchange_rows(T* array, std::size_t rowlen, const BlockDist& dist,
                          int tag) {
    const int me = rank();
    const std::size_t lo = dist.lo(me);
    const std::size_t hi = dist.hi(me);
    if (lo == hi) return;
    auto row = [&](std::size_t r) { return array + r * rowlen; };
    const std::size_t bytes = rowlen * sizeof(T);
    if (me > 0) comm_.send(me - 1, tag, row(lo), bytes);
    if (me + 1 < nprocs()) comm_.send(me + 1, tag + 1, row(hi - 1), bytes);
    if (me > 0) comm_.recv_exact(me - 1, tag + 1, row(lo - 1), bytes);
    if (me + 1 < nprocs()) comm_.recv_exact(me + 1, tag, row(hi), bytes);
  }

  /// Minimum row size for per-row strided sends; smaller rows are
  /// coalesced into kCompilerChunk messages.
  static constexpr std::size_t kMinStridedRow = 512;

  /// §2.4 fallback: every process broadcasts its whole partition of a
  /// row-distributed array. The compiler emits one send per array row
  /// (a strided section) when rows are big enough, else contiguous
  /// compiler-chunk messages — reproducing XHPF's very large message
  /// counts on irregular applications. After the call every process
  /// holds the entire array.
  template <typename T>
  void broadcast_partition_rows(T* array, std::size_t rowlen,
                                const BlockDist& dist, int tag) {
    const std::size_t row_bytes = rowlen * sizeof(T);
    const std::size_t step =
        (row_bytes >= kMinStridedRow) ? row_bytes : kCompilerChunk;
    for (int p = 0; p < nprocs(); ++p) {
      const std::size_t off = dist.lo(p) * row_bytes;
      const std::size_t len = dist.count(p) * row_bytes;
      auto* base = reinterpret_cast<std::byte*>(array) + off;
      for (std::size_t chunk = 0; chunk < len; chunk += step) {
        const std::size_t clen = std::min(step, len - chunk);
        if (p == rank()) {
          for (int q = 0; q < nprocs(); ++q)
            if (q != p) comm_.send(q, tag, base + chunk, clen);
        } else {
          comm_.recv_exact(p, tag, base + chunk, clen);
        }
      }
    }
  }

  /// Replicated-scalar reduction: the SPMD model reduces to everyone
  /// because the (replicated) sequential code will read the result on all
  /// processes.
  [[nodiscard]] double reduce_sum_replicated(double v) {
    return comm_.allreduce_sum(v);
  }
  [[nodiscard]] double reduce_min_replicated(double v) {
    return comm_.allreduce_min(v);
  }
  [[nodiscard]] double reduce_max_replicated(double v) {
    return comm_.allreduce_max(v);
  }

 private:
  pvme::Comm& comm_;
};

}  // namespace xhpf
