#include "pvme/comm.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace pvme {

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  COMMON_CHECK(dst >= 0 && dst < nprocs());
  ep_.send_app(dst, mpl::FrameKind::kPvmeData, tag, next_req_++,
               {static_cast<const std::byte*>(data), bytes});
}

std::size_t Comm::recv(int src, int tag, void* data, std::size_t capacity) {
  COMMON_CHECK(src >= 0 && src < nprocs());
  mpl::Frame f = ep_.wait_app([src, tag](const mpl::Frame& fr) {
    return fr.kind == mpl::FrameKind::kPvmeData && fr.src == src &&
           fr.tag == tag;
  });
  COMMON_CHECK_MSG(f.payload.size() <= capacity,
                   "recv overflow: got " << f.payload.size() << " into "
                                         << capacity);
  std::memcpy(data, f.payload.data(), f.payload.size());
  return f.payload.size();
}

void Comm::recv_exact(int src, int tag, void* data, std::size_t bytes) {
  const std::size_t got = recv(src, tag, data, bytes);
  COMMON_CHECK_MSG(got == bytes,
                   "recv_exact: expected " << bytes << ", got " << got);
}

void Comm::sendrecv(int peer, int send_tag, const void* send_data,
                    std::size_t send_bytes, int recv_tag, void* recv_data,
                    std::size_t recv_bytes) {
  send(peer, send_tag, send_data, send_bytes);
  recv_exact(peer, recv_tag, recv_data, recv_bytes);
}

void Comm::barrier() {
  if (nprocs() == 1) return;
  if (rank() == 0) {
    for (int i = 1; i < nprocs(); ++i)
      (void)ep_.wait_app_kind(mpl::FrameKind::kPvmeBarrierArrive);
    for (int p = 1; p < nprocs(); ++p)
      ep_.send_app(p, mpl::FrameKind::kPvmeBarrierDepart, 0, 0, {});
  } else {
    ep_.send_app(0, mpl::FrameKind::kPvmeBarrierArrive, 0, 0, {});
    (void)ep_.wait_app_kind_from(mpl::FrameKind::kPvmeBarrierDepart, 0);
  }
}

void Comm::bcast(int root, void* data, std::size_t bytes) {
  if (nprocs() == 1) return;
  if (rank() == root) {
    for (int p = 0; p < nprocs(); ++p)
      if (p != root) send(p, kTagBcast, data, bytes);
  } else {
    recv_exact(root, kTagBcast, data, bytes);
  }
}

template <typename T, typename Op>
T Comm::reduce_scalar(int root, T value, Op op) {
  if (nprocs() == 1) return value;
  if (rank() == root) {
    T acc = value;
    for (int p = 0; p < nprocs(); ++p) {
      if (p == root) continue;
      T v;
      recv_exact(p, kTagReduce, &v, sizeof(v));
      acc = op(acc, v);
    }
    return acc;
  }
  send(root, kTagReduce, &value, sizeof(value));
  return value;
}

double Comm::reduce_sum(int root, double value) {
  return reduce_scalar(root, value,
                       [](double a, double b) { return a + b; });
}

double Comm::allreduce_sum(double value) {
  double r = reduce_sum(0, value);
  bcast(0, &r, sizeof(r));
  return r;
}

double Comm::allreduce_min(double value) {
  double r = reduce_scalar(0, value,
                           [](double a, double b) { return std::min(a, b); });
  bcast(0, &r, sizeof(r));
  return r;
}

double Comm::allreduce_max(double value) {
  double r = reduce_scalar(0, value,
                           [](double a, double b) { return std::max(a, b); });
  bcast(0, &r, sizeof(r));
  return r;
}

namespace {

template <typename T>
void reduce_vec_impl(Comm& comm, int root, T* inout, std::size_t count,
                     int tag) {
  if (comm.nprocs() == 1) return;
  if (comm.rank() == root) {
    std::vector<T> tmp(count);
    for (int p = 0; p < comm.nprocs(); ++p) {
      if (p == root) continue;
      comm.recv_exact(p, tag, tmp.data(), count * sizeof(T));
      for (std::size_t i = 0; i < count; ++i) inout[i] += tmp[i];
    }
  } else {
    comm.send(root, tag, inout, count * sizeof(T));
  }
}

}  // namespace

void Comm::reduce_sum_vec(int root, double* inout, std::size_t count) {
  reduce_vec_impl(*this, root, inout, count, kTagReduce);
}

void Comm::reduce_sum_vec(int root, float* inout, std::size_t count) {
  reduce_vec_impl(*this, root, inout, count, kTagReduce);
}

void Comm::gather(int root, const void* send_data, std::size_t bytes_each,
                  void* recv_data) {
  if (rank() == root) {
    auto* out = static_cast<std::byte*>(recv_data);
    std::memcpy(out + static_cast<std::size_t>(rank()) * bytes_each,
                send_data, bytes_each);
    for (int p = 0; p < nprocs(); ++p) {
      if (p == root) continue;
      recv_exact(p, kTagGather,
                 out + static_cast<std::size_t>(p) * bytes_each, bytes_each);
    }
  } else {
    send(root, kTagGather, send_data, bytes_each);
  }
}

void Comm::allgather(const void* send_data, std::size_t bytes_each,
                     void* recv_data) {
  gather(0, send_data, bytes_each, recv_data);
  bcast(0, recv_data, bytes_each * static_cast<std::size_t>(nprocs()));
}

}  // namespace pvme
