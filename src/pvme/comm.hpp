// Message-passing library modelled on IBM's PVMe (an SP/2-optimized PVM
// implementation, §3), which the paper's hand-coded message-passing
// programs run on. The XHPF runtime also compiles to this layer.
//
// Semantics: typed, tagged, blocking point-to-point messages with FIFO
// order per (source, tag); flat-fanout broadcast (n-1 messages, matching
// the paper's MGS message counts); linear reductions and gathers; and a
// centralized 2(n-1)-message barrier. One logical send is one counted
// message regardless of size — the "single message for both purposes
// [data and synchronization]" advantage §5.1 credits to message passing
// falls out naturally: a receive both delivers data and orders execution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpl/fabric.hpp"

namespace pvme {

class Comm {
 public:
  explicit Comm(mpl::Endpoint& ep) noexcept : ep_(ep) {}

  [[nodiscard]] int rank() const noexcept { return ep_.rank(); }
  [[nodiscard]] int nprocs() const noexcept { return ep_.nprocs(); }
  [[nodiscard]] mpl::Endpoint& endpoint() noexcept { return ep_; }

  // ---- point-to-point ------------------------------------------------

  void send(int dst, int tag, const void* data, std::size_t bytes);

  template <typename T>
  void send_span(int dst, int tag, std::span<const T> data) {
    send(dst, tag, data.data(), data.size_bytes());
  }

  /// Blocking receive of a message from `src` with `tag`; returns the
  /// payload size (must be <= capacity).
  std::size_t recv(int src, int tag, void* data, std::size_t capacity);

  /// Receive whose size is known exactly.
  void recv_exact(int src, int tag, void* data, std::size_t bytes);

  template <typename T>
  void recv_span(int src, int tag, std::span<T> data) {
    recv_exact(src, tag, data.data(), data.size_bytes());
  }

  /// Deadlock-free paired exchange (both sides send, then receive; the
  /// transport pumps, so this is safe for simultaneous large messages).
  void sendrecv(int peer, int send_tag, const void* send_data,
                std::size_t send_bytes, int recv_tag, void* recv_data,
                std::size_t recv_bytes);

  // ---- collectives ---------------------------------------------------

  void barrier();

  /// Flat broadcast from `root` (n-1 messages).
  void bcast(int root, void* data, std::size_t bytes);

  /// Sum-reduction of a scalar to `root`; all ranks must call.
  [[nodiscard]] double reduce_sum(int root, double value);
  [[nodiscard]] double allreduce_sum(double value);
  [[nodiscard]] double allreduce_min(double value);
  [[nodiscard]] double allreduce_max(double value);

  /// Elementwise sum-reduction of a vector into `inout` at root; other
  /// ranks' buffers are unchanged. All ranks must call.
  void reduce_sum_vec(int root, double* inout, std::size_t count);
  void reduce_sum_vec(int root, float* inout, std::size_t count);

  /// Root gathers `bytes_each` bytes from every rank into recv (laid out
  /// by rank); all ranks pass their chunk in `send`.
  void gather(int root, const void* send, std::size_t bytes_each, void* recv);

  /// Everyone ends with all ranks' chunks (gather to root + broadcast —
  /// 2(n-1) messages, the idiom the SPMD XHPF runtime emits).
  void allgather(const void* send, std::size_t bytes_each, void* recv);

 private:
  // Internal collective tags (user tags must be >= 0).
  static constexpr int kTagReduce = -2;
  static constexpr int kTagBcast = -3;
  static constexpr int kTagGather = -4;

  template <typename T, typename Op>
  T reduce_scalar(int root, T value, Op op);

  mpl::Endpoint& ep_;
  std::uint32_t next_req_ = 1;
};

}  // namespace pvme
