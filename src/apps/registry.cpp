#include "apps/registry.hpp"

#include <vector>

#include "apps/epoch_soak.hpp"
#include "apps/fft3d.hpp"
#include "apps/igrid.hpp"
#include "apps/jacobi.hpp"
#include "apps/mgs.hpp"
#include "apps/nbf.hpp"
#include "apps/race_stress.hpp"
#include "apps/shallow.hpp"
#include "common/check.hpp"

namespace apps {

const Variant* Workload::find(System s) const noexcept {
  for (const Variant& v : variants)
    if (v.system == s) return &v;
  return nullptr;
}

std::vector<System> Workload::paper_systems() const {
  std::vector<System> out;
  for (System s : kPaperSystems)
    if (find(s) != nullptr) out.push_back(s);
  return out;
}

const std::any& Workload::params(Preset preset) const noexcept {
  switch (preset) {
    case Preset::kReduced:
      return reduced_params;
    case Preset::kFull:
      return full_params;
    case Preset::kDefault:
      break;
  }
  return default_params;
}

double Workload::paper_speedup(System s) const noexcept {
  const PaperSpeedup* p = find_paper_speedup(s);
  return p != nullptr ? p->speedup : 0.0;
}

const Workload::PaperSpeedup* Workload::find_paper_speedup(
    System s) const noexcept {
  for (const PaperSpeedup& p : paper_speedups)
    if (p.system == s) return &p;
  return nullptr;
}

std::span<const Workload> all_workloads() {
  // Assembled explicitly (not via static registrars) so the iteration
  // order is the paper's presentation order and static-library linking
  // cannot drop entries.
  static const std::vector<Workload> registry = [] {
    std::vector<Workload> w;
    w.push_back(make_jacobi_workload());
    w.push_back(make_shallow_workload());
    w.push_back(make_mgs_workload());
    w.push_back(make_fft3d_workload());
    w.push_back(make_igrid_workload());
    w.push_back(make_nbf_workload());
    return w;
  }();
  return registry;
}

std::span<const Workload> synthetic_workloads() {
  static const std::vector<Workload> registry = [] {
    std::vector<Workload> w;
    w.push_back(make_race_stress_workload());
    w.push_back(make_epoch_soak_workload());
    return w;
  }();
  return registry;
}

const Workload& find_workload(std::string_view key) {
  for (const Workload& w : all_workloads())
    if (w.key == key) return w;
  for (const Workload& w : synthetic_workloads())
    if (w.key == key) return w;
  COMMON_CHECK_MSG(false, "unknown workload '" << key << '\'');
}

runner::RunResult run_workload(const Workload& w, System system, int nprocs,
                               const runner::SpawnOptions& opts,
                               const std::any& params) {
  if (system == System::kSeq) {
    return run_seq_measured(opts, params,
                            [&w](const std::any& a, const SeqHooks* hooks) {
                              return w.seq(a, hooks);
                            });
  }
  const Variant* v = w.find(system);
  COMMON_CHECK_MSG(v != nullptr, w.key << ": unsupported system variant "
                                       << to_string(system));
  return runner::spawn(nprocs, opts, [v, &params](runner::ChildContext& ctx) {
    return v->run(ctx, params);
  });
}

runner::RunResult run_workload(const Workload& w, System system, int nprocs,
                               const runner::SpawnOptions& opts,
                               Preset preset) {
  return run_workload(w, system, nprocs, opts, w.params(preset));
}

runner::RunResult run_workload(std::string_view key, System system,
                               int nprocs, const runner::SpawnOptions& opts,
                               Preset preset) {
  return run_workload(find_workload(key), system, nprocs, opts, preset);
}

}  // namespace apps
