// Shared application-harness vocabulary.
//
// Every application is implemented in (up to) six variants over one
// problem definition, mirroring the paper's four system points plus the
// sequential baseline and the §5 hand-optimized DSM version:
//
//   kSeq    — sequential baseline (Table 1): "obtained by removing all
//             synchronization ... and executing on a single processor"
//   kSpf    — SPF-compiler-style fork-join shared memory on TreadMarks
//   kSpfOpt — kSpf plus the §5 hand optimizations (aggregation, push,
//             broadcast, merged loops) through the extension interface
//   kTmk    — hand-coded TreadMarks (SPMD, barriers, private scratch)
//   kXhpf   — XHPF-compiler-style SPMD message passing
//   kPvme   — hand-coded message passing
//
// All variants of one application compute the same checksum; integration
// tests assert equality against kSeq (exact where the arithmetic order is
// identical, tolerance where reductions reassociate).
#pragma once

#include <functional>
#include <string>

#include "runner/runner.hpp"

namespace apps {

enum class System { kSeq, kSpf, kSpfOpt, kTmk, kTmkOpt, kXhpf, kPvme };

[[nodiscard]] constexpr const char* to_string(System s) noexcept {
  switch (s) {
    case System::kSeq:
      return "seq";
    case System::kSpf:
      return "SPF/Tmk";
    case System::kSpfOpt:
      return "SPF/Tmk+opt";
    case System::kTmk:
      return "Tmk";
    case System::kTmkOpt:
      return "Tmk+opt";
    case System::kXhpf:
      return "XHPF";
    case System::kPvme:
      return "PVMe";
  }
  return "?";
}

/// The four systems of Figures 1-2, in the paper's presentation order.
inline constexpr System kPaperSystems[] = {System::kSpf, System::kTmk,
                                           System::kXhpf, System::kPvme};

/// Measurement hooks for the sequential baselines, so they time exactly
/// the same window as the parallel variants (the paper's "last N
/// iterations"): `start` fires after initialization + warm-up, `end`
/// before any checksum post-processing.
struct SeqHooks {
  std::function<void()> start;
  std::function<void()> end;

  void on_start() const {
    if (start) start();
  }
  void on_end() const {
    if (end) end();
  }
};

/// Glue: runs `seq_fn(params, hooks)` under the harness with the hooks
/// bound to the endpoint's measurement window.
template <typename Params, typename Fn>
runner::RunResult run_seq_measured(const runner::SpawnOptions& opts,
                                   const Params& p, Fn&& seq_fn) {
  return runner::spawn(1, opts, [&](runner::ChildContext& ctx) {
    SeqHooks hooks{
        [&ctx] { ctx.endpoint.mark_measurement_start(); },
        [&ctx] { ctx.endpoint.mark_measurement_end(); }};
    return seq_fn(p, &hooks);
  });
}

}  // namespace apps
