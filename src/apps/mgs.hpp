// Modified Gram-Schmidt (§5.3): computes an orthonormal basis for n
// m-dimensional vectors. At step i the pivot vector i is normalized
// (sequential work), then every vector j > i is made orthogonal to it
// (parallel work). Vectors are CYCLIC-distributed for load balance; all
// processes synchronize once per step.
//
// This is the application where the four systems differ the most on the
// regular side: PVMe broadcasts the pivot in n-1 messages; XHPF's SPMD
// translation makes *all* processors cooperate on the normalization
// (partial-norm reduction + allgather of pivot chunks); the DSM versions
// page the pivot in on demand, and the SPF version additionally ships the
// pivot to the master first, because normalization is sequential code.
// The §5.3 hand optimization (kTmkOpt) replaces barrier + page-in with a
// TreadMarks broadcast that merges synchronization and data.
#pragma once

#include "apps/app_common.hpp"

namespace apps {

struct MgsParams {
  std::size_t n = 64;   // number of vectors
  std::size_t m = 256;  // vector dimension (floats)
  std::uint64_t seed = 12345;
};

double mgs_seq(const MgsParams& p, const SeqHooks* hooks = nullptr);

// Parallel variants; run inside a forked child. Return the checksum on
// every rank (reduced where necessary).
double mgs_spf(runner::ChildContext& ctx, const MgsParams& p);
double mgs_tmk(runner::ChildContext& ctx, const MgsParams& p);
double mgs_tmk_opt(runner::ChildContext& ctx, const MgsParams& p);
double mgs_xhpf(runner::ChildContext& ctx, const MgsParams& p);
double mgs_pvme(runner::ChildContext& ctx, const MgsParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_mgs_workload();

}  // namespace apps
