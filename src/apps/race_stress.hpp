// Seeded race-planting stress workload for the online race detector
// (TMK_RACECHECK). Not one of the paper's six applications: it lives in
// the synthetic section of the registry (apps::synthetic_workloads), so
// figures and traffic tables keep the paper's exact application set
// while tests and CI drive it by key ("race_stress").
//
// Every rank derives the identical plan from the seed: a barrier-phased
// schedule of race-free background writes/reads (the protocol-fuzzer
// part) plus N planted races on dedicated pages — write/write pairs
// where two ranks store the same value to the same word within one
// epoch, and read/write pairs where a reader faults a word another
// rank concurrently writes. The planted values are replayed by the
// sequential baseline, so the checksum contract is exact (tolerance 0),
// and the variant itself asserts that the detector reported EXACTLY the
// planted set on every rank — nothing missed, nothing extra.
#pragma once

#include <cstdint>

#include "apps/app_common.hpp"
#include "tmk/config.hpp"

namespace apps {

struct RaceStressParams {
  std::uint64_t seed = 0x1d5d5cb4c3a2f7b9ull;
  /// Barrier-phased rounds; must be >= 2 so read/write plants have an
  /// establishing epoch before the racing one.
  int epochs = 8;
  /// Race-free pages carrying the background write/read fuzz traffic.
  int background_pages = 8;
  /// Planted write/write races (two reports each, one per writer).
  int ww_plants = 2;
  /// Planted remote-write/local-read races (one report, reader side,
  /// precise mode only — summary tracks writes exclusively).
  /// Needs nprocs >= 3: the invalidating notice must come from a third
  /// rank, or the reader's fault would pull the racing writer's lazy
  /// diff and re-baseline its twin mid-interval.
  int rw_plants = 2;
};

double race_stress_seq(const RaceStressParams& p, const SeqHooks* hooks);
double race_stress_tmk(runner::ChildContext& ctx, const RaceStressParams& p);

/// Total TMK_RACE_REPORT lines a run must emit across all ranks under
/// the given checking mode: 2 per ww plant in both modes, plus 1 per
/// rw plant in precise (summary keeps no read state, so rw plants go
/// unreported there by design). Tests pin RunResult's race_reports
/// counter against it.
[[nodiscard]] int race_stress_expected_reports(const RaceStressParams& p,
                                               tmk::RaceCheckMode mode);

/// Registry descriptor (synthetic section); see registry.hpp.
struct Workload;
Workload make_race_stress_workload();

}  // namespace apps
