// Barrier-epoch soak workload for the epoch GC (TMK_EPOCH_GC). Not one
// of the paper's six applications: it lives in the synthetic section of
// the registry (apps::synthetic_workloads), so figures and traffic
// tables keep the paper's exact application set while tests and CI
// drive it by key ("epoch_soak").
//
// The schedule is the unbounded-growth worst case the collector exists
// for: every epoch, each page is rewritten by a rotating owner and then
// a barrier closes the interval — so every rank integrates one write
// notice per page per epoch, and most pages are deliberately read far
// less often than they are written. Without reclamation that grows
// interval logs, pending-notice lists, and diff maps linearly in the
// epoch count; with TMK_EPOCH_GC=on the protocol footprint must stay
// flat once the first GC rounds have passed, which the tmk variant
// asserts in-child (phase-aligned rt.mem_stats() samples) when
// `assert_flat_rss` is set. The variant also asserts the reclamation
// accounting invariant (records created == reclaimed + live) on every
// rank, every run, whatever the GC setting.
#pragma once

#include <cstdint>

#include "apps/app_common.hpp"

namespace apps {

struct EpochSoakParams {
  std::uint64_t seed = 0x9e0c5a1fb7d3e64dull;
  /// Barrier epochs. Flat-RSS assertions need enough epochs for several
  /// GC rounds (>= ~6x TMK_EPOCH_GC_INTERVAL); shorter runs simply skip
  /// them and keep the accounting checks.
  int epochs = 192;
  /// Shared pages in the rotating write window.
  int pages = 16;
  /// Cells stored per page per epoch (by that epoch's owner rank).
  int writes_per_page = 4;
  /// A rotating non-owner rank reads one cell of each page every this
  /// many epochs — rare enough that most write notices sit pending
  /// until GC validation (or forever, with the collector off).
  int read_every = 16;
  /// In-child bounded-RSS assertion: sample the protocol footprint at
  /// GC-phase-aligned points and require the last sample to stay within
  /// tolerance of the first. Only meaningful with TMK_EPOCH_GC=on (the
  /// variant skips the check when the run's config has the collector
  /// off, where growth is the expected outcome).
  bool assert_flat_rss = false;
};

double epoch_soak_seq(const EpochSoakParams& p, const SeqHooks* hooks);
double epoch_soak_tmk(runner::ChildContext& ctx, const EpochSoakParams& p);

/// Registry descriptor (synthetic section); see registry.hpp.
struct Workload;
Workload make_epoch_soak_workload();

}  // namespace apps
