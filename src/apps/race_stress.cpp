#include "apps/race_stress.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/page.hpp"
#include "common/prng.hpp"
#include "tmk/diff.hpp"
#include "tmk/runtime.hpp"

namespace apps {

namespace {

constexpr int kCellsPerPage =
    static_cast<int>(common::kPageSize / sizeof(std::uint64_t));
// Plant geometry: races land on one cell (one u64) of a 64-byte
// "block"; the block grid spreads plants across the page and keeps the
// rw establishing write in a different block (and word) than the race.
constexpr int kBlocksPerPage = 64;
constexpr int kCellsPerBlock = 8;
constexpr int kBgWritesPerEpoch = 4;

// One planted race on a dedicated page. ww: two ranks store `value`
// into block `block` during `epoch` (same value, so the final content
// — and therefore the checksum — is deterministic no matter whose diff
// applies last). rw: a third rank stores `establish` in epoch-1 (whose
// write notice invalidates the page everywhere, so the reader's access
// faults), then the racing writer stores `value` into `block` while
// the reader faults the same block in `epoch`.
struct Plant {
  bool ww = false;
  int page = 0;   // dedicated page; plants occupy pages [0, nplants)
  int block = 0;  // raced 64-byte block
  int epoch = 0;  // epoch of the racing accesses (rw: establish in epoch-1)
  std::uint64_t value = 0;
  std::uint64_t establish = 0;
  std::uint64_t pick = 0;  // rank-assignment entropy
};

// Rank assignment for one plant at a given nprocs. ww: a/b are the two
// writers. rw: a is the racing writer, b the reader, x the establishing
// third rank — all distinct, which is why rw plants need nprocs >= 3:
// if the establisher were the writer, the reader's fault would pull the
// writer's lazy diff and re-baseline its twin mid-interval (the planted
// write would vanish from the close-time mask); if it were the reader,
// the reader's own copy would stay valid and the read would never fault.
struct PlantRanks {
  int a = 0;
  int b = 0;
  int x = -1;
};

PlantRanks ranks_of(const Plant& t, int n) {
  PlantRanks r;
  if (t.ww) {
    r.a = static_cast<int>(t.pick % static_cast<std::uint64_t>(n));
    r.b = static_cast<int>(
        (r.a + 1 + static_cast<int>((t.pick >> 8) %
                                    static_cast<std::uint64_t>(n - 1))) %
        n);
    return r;
  }
  r.x = static_cast<int>(t.pick % static_cast<std::uint64_t>(n));
  r.a = static_cast<int>(
      (r.x + 1 + static_cast<int>((t.pick >> 8) %
                                  static_cast<std::uint64_t>(n - 1))) %
      n);
  const int k = static_cast<int>((t.pick >> 16) %
                                 static_cast<std::uint64_t>(n - 2));
  int seen = 0;
  for (int c = 0; c < n; ++c) {
    if (c == r.x || c == r.a) continue;
    if (seen == k) {
      r.b = c;
      break;
    }
    ++seen;
  }
  return r;
}

std::vector<Plant> make_plants(const RaceStressParams& p) {
  COMMON_CHECK_MSG(p.epochs >= 2, "race_stress needs epochs >= 2");
  std::vector<Plant> out;
  common::SplitMix64 g(p.seed);
  int page = 0;
  for (int i = 0; i < p.ww_plants; ++i) {
    Plant t;
    t.ww = true;
    t.page = page++;
    t.block = static_cast<int>(g.next_below(kBlocksPerPage));
    t.epoch = static_cast<int>(g.next_below(p.epochs));
    t.value = (g.next() & 0xFFFF) + 1;
    t.pick = g.next();
    out.push_back(t);
  }
  for (int i = 0; i < p.rw_plants; ++i) {
    Plant t;
    t.ww = false;
    t.page = page++;
    t.block = static_cast<int>(g.next_below(kBlocksPerPage));
    t.epoch = 1 + static_cast<int>(g.next_below(p.epochs - 1));
    t.value = (g.next() & 0xFFFF) + 1;
    t.establish = (g.next() & 0xFFFF) + 1;
    t.pick = g.next();
    out.push_back(t);
  }
  return out;
}

// Background fuzz schedule, disjoint from the plant pages and race-free
// by construction: each background page is written (by a rotating owner)
// only in even epochs and read only in odd ones, so every read is
// barrier-ordered after the writes it observes.
std::uint64_t bg_mix(const RaceStressParams& p, int e, int qi, int k) {
  return common::mix64(p.seed + static_cast<std::uint64_t>(e) * 1000003ull +
                       static_cast<std::uint64_t>(qi) * 10007ull +
                       static_cast<std::uint64_t>(k) * 101ull);
}
int bg_cell(const RaceStressParams& p, int e, int qi, int k) {
  return static_cast<int>(bg_mix(p, e, qi, k) %
                          static_cast<std::uint64_t>(kCellsPerPage));
}
std::uint64_t bg_value(const RaceStressParams& p, int e, int qi, int k) {
  return (common::mix64(bg_mix(p, e, qi, k)) & 0xFFFF) + 1;
}

// The exact per-rank report set the detector must produce: one ww
// report on each writer (each integrates the other's write notice) in
// either mode, plus one rw report on the reader in precise mode
// (summary records no reads), every one pinpointing the planted cell.
void check_reports(tmk::Runtime& rt, const RaceStressParams& p,
                   const std::vector<Plant>& plants,
                   tmk::PageIndex base_page) {
  struct Key {
    bool local_write;
    tmk::PageIndex page;
    tmk::RaceMask mask;
    int remote;
    auto operator<=>(const Key&) const = default;
  };
  const int n = rt.nprocs();
  const int me = rt.rank();
  std::vector<Key> expect;
  for (const Plant& t : plants) {
    const PlantRanks r = ranks_of(t, n);
    const tmk::PageIndex page =
        base_page + static_cast<tmk::PageIndex>(t.page);
    // Every overlap pins exactly one diff word (4 bytes): planted
    // values fit 17 bits, so a u64 store onto a zeroed cell changes
    // only its low diff word — the twin scan's write mask is that
    // single word. A ww overlap intersects two such masks; an rw
    // overlap intersects the writer's mask with the read witness, the
    // diff word at the faulting address — the cell start, same word.
    const tmk::RaceMask bit =
        tmk::RaceMask::word_at(static_cast<std::size_t>(t.block) *
                               kCellsPerBlock * sizeof(std::uint64_t));
    if (t.ww) {
      if (me == r.a) expect.push_back({true, page, bit, r.b});
      if (me == r.b) expect.push_back({true, page, bit, r.a});
    } else if (me == r.b && rt.racecheck() == tmk::RaceCheckMode::kPrecise) {
      expect.push_back({false, page, bit, r.a});
    }
  }
  std::vector<Key> got;
  for (const tmk::Runtime::RaceReport& r : rt.race_reports())
    got.push_back({r.local_write, r.page, r.overlap_mask,
                   static_cast<int>(r.remote)});
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  if (expect != got) {
    std::ostringstream os;
    os << "race_stress seed 0x" << std::hex << p.seed << std::dec
       << " rank " << me << ": detector reports differ from the plan;"
       << " expected";
    for (const Key& k : expect)
      os << " {" << (k.local_write ? "ww" : "rw") << " page " << k.page
         << " mask 0x" << k.mask.hex() << " remote " << k.remote << "}";
    os << " got";
    for (const Key& k : got)
      os << " {" << (k.local_write ? "ww" : "rw") << " page " << k.page
         << " mask 0x" << k.mask.hex() << " remote " << k.remote << "}";
    COMMON_CHECK_MSG(false, os.str());
  }
}

std::string describe_params(const RaceStressParams& p) {
  std::ostringstream os;
  os << p.epochs << "ep " << (p.ww_plants + p.rw_plants) << "+"
     << p.background_pages << "pg seed 0x" << std::hex << p.seed;
  return os.str();
}

}  // namespace

// ----------------------------------------------------------------------
// Sequential baseline: replays the deterministic store schedule (plant
// stores included — ww writers store identical values, rw reads touch
// no shared state) and sums every cell.
// ----------------------------------------------------------------------

double race_stress_seq(const RaceStressParams& p, const SeqHooks* hooks) {
  const std::vector<Plant> plants = make_plants(p);
  const int npages = static_cast<int>(plants.size()) + p.background_pages;
  std::vector<std::uint64_t> mem(
      static_cast<std::size_t>(npages) * kCellsPerPage, 0);
  if (hooks) hooks->on_start();
  for (int e = 0; e < p.epochs; ++e) {
    for (const Plant& t : plants) {
      std::uint64_t* pg = mem.data() +
                          static_cast<std::size_t>(t.page) * kCellsPerPage;
      if (t.ww) {
        if (e == t.epoch) pg[t.block * kCellsPerBlock] = t.value;
      } else {
        if (e == t.epoch - 1)
          pg[((t.block + 1) % kBlocksPerPage) * kCellsPerBlock] = t.establish;
        if (e == t.epoch) pg[t.block * kCellsPerBlock] = t.value;
      }
    }
    if (e % 2 == 0) {
      for (int qi = 0; qi < p.background_pages; ++qi) {
        std::uint64_t* pg =
            mem.data() +
            (static_cast<std::size_t>(plants.size()) + qi) * kCellsPerPage;
        for (int k = 0; k < kBgWritesPerEpoch; ++k)
          pg[bg_cell(p, e, qi, k)] = bg_value(p, e, qi, k);
      }
    }
  }
  if (hooks) hooks->on_end();
  double sum = 0;
  for (const std::uint64_t v : mem) sum += static_cast<double>(v);
  return sum;
}

// ----------------------------------------------------------------------
// TreadMarks variant: same schedule over shared pages, detection live.
// ----------------------------------------------------------------------

double race_stress_tmk(runner::ChildContext& ctx, const RaceStressParams& p) {
  tmk::Runtime::Options o;
  // Detection must be live for the exact-set assertion: honor a checking
  // mode from the run's knob snapshot (the CI racecheck legs), else
  // force precise. Write masks are always diff-word-granular, so the
  // planted ww cells are caught exactly in both modes; rw plants are
  // expected only in precise mode (check_reports filters per mode).
  o.racecheck = ctx.config.racecheck == tmk::RaceCheckMode::kOff
                    ? tmk::RaceCheckMode::kPrecise
                    : ctx.config.racecheck;
  tmk::Runtime rt(ctx, o);
  const int n = rt.nprocs();
  const int me = rt.rank();
  COMMON_CHECK_MSG(n >= 2, "race_stress needs nprocs >= 2");
  COMMON_CHECK_MSG(p.rw_plants == 0 || n >= 3,
                   "race_stress rw plants need nprocs >= 3");
  const std::vector<Plant> plants = make_plants(p);
  const int npages = static_cast<int>(plants.size()) + p.background_pages;
  auto* heap = rt.alloc<std::uint64_t>(
      static_cast<std::size_t>(npages) * kCellsPerPage);
  const tmk::PageIndex base_page = static_cast<tmk::PageIndex>(
      (reinterpret_cast<const std::byte*>(heap) -
       static_cast<const std::byte*>(rt.heap_base())) /
      common::kPageSize);
  rt.barrier();

  rt.endpoint().mark_measurement_start();
  volatile std::uint64_t sink = 0;
  for (int e = 0; e < p.epochs; ++e) {
    for (const Plant& t : plants) {
      const PlantRanks r = ranks_of(t, n);
      std::uint64_t* pg =
          heap + static_cast<std::size_t>(t.page) * kCellsPerPage;
      if (t.ww) {
        if (e == t.epoch && (me == r.a || me == r.b))
          pg[t.block * kCellsPerBlock] = t.value;
      } else {
        if (e == t.epoch - 1 && me == r.x)
          pg[((t.block + 1) % kBlocksPerPage) * kCellsPerBlock] = t.establish;
        if (e == t.epoch && me == r.a)
          pg[t.block * kCellsPerBlock] = t.value;
        if (e == t.epoch && me == r.b)
          sink = sink + pg[t.block * kCellsPerBlock];
      }
    }
    for (int qi = 0; qi < p.background_pages; ++qi) {
      std::uint64_t* pg =
          heap + (static_cast<std::size_t>(plants.size()) + qi) *
                     kCellsPerPage;
      if (e % 2 == 0) {
        if (me == (e / 2 + qi) % n)
          for (int k = 0; k < kBgWritesPerEpoch; ++k)
            pg[bg_cell(p, e, qi, k)] = bg_value(p, e, qi, k);
      } else {
        if (me == (e + qi) % n) sink = sink + pg[0];
      }
    }
    rt.barrier();
  }
  rt.endpoint().mark_measurement_end();

  // The loop's final barrier integrated the last epoch's notices, so
  // the report set is complete here.
  check_reports(rt, p, plants, base_page);

  double sum = 0;
  if (me == 0)
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(npages) * kCellsPerPage; ++i)
      sum += static_cast<double>(heap[i]);
  rt.barrier();
  return sum;
}

int race_stress_expected_reports(const RaceStressParams& p,
                                 tmk::RaceCheckMode mode) {
  const int rw = mode == tmk::RaceCheckMode::kPrecise ? p.rw_plants : 0;
  return 2 * p.ww_plants + rw;
}

// ----------------------------------------------------------------------

Workload make_race_stress_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "Race Stress";
  w.key = "race_stress";
  w.cls = WorkloadClass::kIrregular;
  w.seq = detail::make_seq<RaceStressParams>(&race_stress_seq);
  w.describe = [](const std::any& a) {
    return describe_params(std::any_cast<const RaceStressParams&>(a));
  };
  // rw plants need a third rank (see PlantRanks), hence no nprocs=2.
  w.variants = {
      make_variant<RaceStressParams>(System::kTmk, &race_stress_tmk, 0.0,
                                     {3, 4, 8}),
  };
  RaceStressParams dflt;
  w.default_params = dflt;
  RaceStressParams reduced;
  reduced.epochs = 6;
  reduced.background_pages = 4;
  reduced.ww_plants = 1;
  reduced.rw_plants = 1;
  w.reduced_params = reduced;
  RaceStressParams full;
  full.epochs = 16;
  full.background_pages = 16;
  full.ww_plants = 4;
  full.rw_plants = 4;
  w.full_params = full;
  w.test_preset = Preset::kDefault;
  return w;
}

}  // namespace apps
