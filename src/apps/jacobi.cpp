#include "apps/jacobi.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dist/dist.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

// Deterministic checksum shared by all variants: per-row sums added in
// row order, so block-partitioned variants reproduce it bit-exactly.
double rowsum(const float* row, std::size_t n) {
  double s = 0;
  for (std::size_t j = 0; j < n; ++j) s += row[j];
  return s;
}

void init_rows(float* grid, std::size_t n, std::size_t lo, std::size_t hi) {
  // Edges one, interior zero (interior is already zero in fresh storage;
  // written explicitly for private arrays reused across phases).
  for (std::size_t r = lo; r < hi; ++r) {
    float* row = grid + r * n;
    if (r == 0 || r == n - 1) {
      for (std::size_t j = 0; j < n; ++j) row[j] = 1.0f;
    } else {
      row[0] = 1.0f;
      row[n - 1] = 1.0f;
    }
  }
}

void stencil_rows(const float* data, float* scratch, std::size_t n,
                  std::size_t lo, std::size_t hi) {
  for (std::size_t r = std::max<std::size_t>(lo, 1);
       r < std::min<std::size_t>(hi, n - 1); ++r) {
    const float* up = data + (r - 1) * n;
    const float* mid = data + r * n;
    const float* down = data + (r + 1) * n;
    float* out = scratch + r * n;
    for (std::size_t j = 1; j + 1 < n; ++j)
      out[j] = 0.25f * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
  }
}

void copy_back_rows(float* data, const float* scratch, std::size_t n,
                    std::size_t lo, std::size_t hi) {
  for (std::size_t r = std::max<std::size_t>(lo, 1);
       r < std::min<std::size_t>(hi, n - 1); ++r) {
    float* dst = data + r * n;
    const float* src = scratch + r * n;
    std::memcpy(dst + 1, src + 1, (n - 2) * sizeof(float));
  }
}

}  // namespace

// ----------------------------------------------------------------------
// Sequential baseline
// ----------------------------------------------------------------------

double jacobi_seq(const JacobiParams& p, const SeqHooks* hooks) {
  const std::size_t n = p.n;
  std::vector<float> data(n * n, 0.0f);
  std::vector<float> scratch(n * n, 0.0f);
  init_rows(data.data(), n, 0, n);
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (hooks && it == p.warmup_iters) hooks->on_start();
    stencil_rows(data.data(), scratch.data(), n, 0, n);
    copy_back_rows(data.data(), scratch.data(), n, 0, n);
  }
  if (hooks) hooks->on_end();
  double sum = 0;
  for (std::size_t r = 0; r < n; ++r) sum += rowsum(data.data() + r * n, n);
  return sum;
}

// ----------------------------------------------------------------------
// SPF-compiler-style shared memory (plus hand-optimized variant)
// ----------------------------------------------------------------------

namespace {

struct SpfJacobiState {
  float* data = nullptr;     // shared
  float* scratch = nullptr;  // shared — the compiler shares it (§5.1)
  std::size_t n = 0;
  bool push_aggregation = false;  // the §5.1 hand optimization
  bool pushed_before = false;     // has a push from the previous iteration
};
thread_local SpfJacobiState g_jac;  // per-rank (see fft3d.cpp)

struct JacobiLoopArgs {
  std::uint64_t n;
};

dist::Range own_rows(const spf::Runtime& rt, std::size_t n) {
  return rt.own_block(n);
}

void jacobi_phase1(spf::Runtime& rt, const void*) {
  const auto r = own_rows(rt, g_jac.n);
  if (g_jac.push_aggregation && g_jac.pushed_before) {
    // Accept the boundary rows the neighbours pushed at the end of the
    // previous iteration instead of page-faulting them in.
    if (rt.rank() > 0) rt.tmk().accept_push(rt.rank() - 1);
    if (rt.rank() + 1 < rt.nprocs()) rt.tmk().accept_push(rt.rank() + 1);
  }
  stencil_rows(g_jac.data, g_jac.scratch, g_jac.n,
               static_cast<std::size_t>(r.lo), static_cast<std::size_t>(r.hi));
}

void jacobi_phase2(spf::Runtime& rt, const void*) {
  const auto r = own_rows(rt, g_jac.n);
  copy_back_rows(g_jac.data, g_jac.scratch, g_jac.n,
                 static_cast<std::size_t>(r.lo),
                 static_cast<std::size_t>(r.hi));
  if (g_jac.push_aggregation) {
    // Aggregated push of the freshly written boundary rows (one message
    // per neighbour instead of fault round-trips).
    const std::size_t n = g_jac.n;
    const std::size_t row_bytes = n * sizeof(float);
    if (rt.rank() > 0)
      rt.tmk().push(rt.rank() - 1,
                    g_jac.data + static_cast<std::size_t>(r.lo) * n,
                    row_bytes);
    if (rt.rank() + 1 < rt.nprocs())
      rt.tmk().push(rt.rank() + 1,
                    g_jac.data + (static_cast<std::size_t>(r.hi) - 1) * n,
                    row_bytes);
    g_jac.pushed_before = true;
  }
}

void mark_start_loop(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void mark_end_loop(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

double jacobi_spf_impl(runner::ChildContext& ctx, const JacobiParams& p,
                       bool optimized,
                       spf::DispatchMode mode = spf::DispatchMode::kImproved) {
  spf::Runtime::Options spf_opts;
  spf_opts.mode = mode;
  spf::Runtime rt(ctx, spf_opts);
  const std::size_t n = p.n;
  if (optimized) {
    COMMON_CHECK_MSG(n * sizeof(float) % common::kPageSize == 0,
                     "jacobi spf_opt requires page-aligned rows");
  }
  g_jac = SpfJacobiState{};
  g_jac.data = rt.tmk().alloc<float>(n * n);
  g_jac.scratch = rt.tmk().alloc<float>(n * n);
  g_jac.n = n;
  g_jac.push_aggregation = optimized;

  const auto phase1 = rt.register_loop(jacobi_phase1);
  const auto phase2 = rt.register_loop(jacobi_phase2);
  const auto mark_s = rt.register_loop(mark_start_loop);
  const auto mark_e = rt.register_loop(mark_end_loop);

  return rt.run([&] {
    // Sequential code: the master initializes the shared array.
    init_rows(g_jac.data, n, 0, n);
    const JacobiLoopArgs args{n};
    for (int it = 0; it < p.warmup_iters; ++it) {
      rt.parallel(phase1, args);
      rt.parallel(phase2, args);
    }
    rt.parallel(mark_s, args);
    for (int it = 0; it < p.iters; ++it) {
      rt.parallel(phase1, args);
      rt.parallel(phase2, args);
    }
    rt.parallel(mark_e, args);
    double sum = 0;
    for (std::size_t r = 0; r < n; ++r) sum += rowsum(g_jac.data + r * n, n);
    return sum;
  });
}

}  // namespace

// ----------------------------------------------------------------------
// Hand-coded TreadMarks: private scratch, SPMD with barriers
// ----------------------------------------------------------------------

double jacobi_tmk(runner::ChildContext& ctx, const JacobiParams& p) {
  tmk::Runtime rt(ctx);
  const std::size_t n = p.n;
  float* data = rt.alloc<float>(n * n);  // shared
  std::vector<float> scratch(n * n, 0.0f);  // private (the §5.1 difference)

  const dist::BlockDist rows(n, rt.nprocs());
  const std::size_t lo = rows.lo(rt.rank());
  const std::size_t hi = rows.hi(rt.rank());

  // The 5-point stencil's halo pattern is static: each neighbor reads
  // one boundary row after every barrier. Exporting it as consumer
  // hints lets the hybrid update protocol push the boundary-page diffs
  // at the barrier instead of serving neighbor faults (a no-op when
  // TMK_UPDATE_MODE is off or adaptive-only).
  dist::HaloEdge edges[2];
  const int nedges = dist::halo_edges(rows, rt.rank(), /*reads_prev=*/true,
                                      /*reads_next=*/true, edges);
  for (int i = 0; i < nedges; ++i)
    rt.hint_consumers(data + edges[i].row * n, n * sizeof(float),
                      edges[i].consumer);

  init_rows(data, n, lo, hi);  // each process initializes its own rows
  rt.barrier();

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) rt.endpoint().mark_measurement_start();
    stencil_rows(data, scratch.data(), n, lo, hi);
    rt.barrier();  // anti-dependence before the copy-back (§5.1)
    copy_back_rows(data, scratch.data(), n, lo, hi);
    rt.barrier();
  }
  rt.endpoint().mark_measurement_end();

  double sum = 0;
  if (rt.rank() == 0)
    for (std::size_t r = 0; r < n; ++r) sum += rowsum(data + r * n, n);
  rt.barrier();
  return sum;
}

// ----------------------------------------------------------------------
// Message passing (hand PVMe and compiler XHPF)
// ----------------------------------------------------------------------

namespace {

// Both MP variants keep a private slab of rows [lo-1, hi+1) with halo
// rows; `xhpf_conservative` adds the compiler's per-loop end-of-loop
// exchange of every written distributed array (§2.4's placement), which
// roughly doubles the message count relative to the hand version.
double jacobi_mp_impl(runner::ChildContext& ctx, const JacobiParams& p,
                      bool xhpf_conservative) {
  pvme::Comm comm(ctx.endpoint);
  const std::size_t n = p.n;
  const dist::BlockDist rows(n, comm.nprocs());
  const std::size_t lo = rows.lo(comm.rank());
  const std::size_t hi = rows.hi(comm.rank());
  const std::size_t slab_lo = (lo > 0) ? lo - 1 : lo;
  const std::size_t slab_hi = (hi < n) ? hi + 1 : hi;
  const std::size_t slab_rows = slab_hi - slab_lo;

  std::vector<float> data(slab_rows * n, 0.0f);
  std::vector<float> scratch(slab_rows * n, 0.0f);
  auto row = [&](std::size_t r) { return data.data() + (r - slab_lo) * n; };
  auto srow = [&](std::size_t r) {
    return scratch.data() + (r - slab_lo) * n;
  };

  // Own rows only; halo rows are filled by the first exchange.
  for (std::size_t r = lo; r < hi; ++r) {
    float* dst = row(r);
    std::memset(dst, 0, n * sizeof(float));
    if (r == 0 || r == n - 1) {
      for (std::size_t j = 0; j < n; ++j) dst[j] = 1.0f;
    } else {
      dst[0] = 1.0f;
      dst[n - 1] = 1.0f;
    }
  }

  const std::size_t row_bytes = n * sizeof(float);
  auto exchange_data_halos = [&](int tag) {
    if (lo >= hi) return;
    if (comm.rank() > 0) comm.send(comm.rank() - 1, tag, row(lo), row_bytes);
    if (comm.rank() + 1 < comm.nprocs())
      comm.send(comm.rank() + 1, tag + 1, row(hi - 1), row_bytes);
    if (comm.rank() > 0)
      comm.recv_exact(comm.rank() - 1, tag + 1, row(lo - 1), row_bytes);
    if (comm.rank() + 1 < comm.nprocs())
      comm.recv_exact(comm.rank() + 1, tag, row(hi), row_bytes);
  };
  auto exchange_scratch_halos = [&](int tag) {
    if (lo >= hi) return;
    if (comm.rank() > 0) comm.send(comm.rank() - 1, tag, srow(lo), row_bytes);
    if (comm.rank() + 1 < comm.nprocs())
      comm.send(comm.rank() + 1, tag + 1, srow(hi - 1), row_bytes);
    if (comm.rank() > 0)
      comm.recv_exact(comm.rank() - 1, tag + 1, srow(lo - 1), row_bytes);
    if (comm.rank() + 1 < comm.nprocs())
      comm.recv_exact(comm.rank() + 1, tag, srow(hi), row_bytes);
  };

  exchange_data_halos(10);  // initial halo fill
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();  // align the measurement point across processes
      comm.endpoint().mark_measurement_start();
    }
    stencil_rows(data.data() - slab_lo * n, scratch.data() - slab_lo * n, n,
                 lo, hi);
    copy_back_rows(data.data() - slab_lo * n, scratch.data() - slab_lo * n, n,
                   lo, hi);
    if (xhpf_conservative) {
      // Compiler placement: exchange after every loop that wrote a
      // distributed array, whether or not the halo is ever read.
      exchange_scratch_halos(20);
      exchange_data_halos(10);
    } else {
      // Hand placement: one exchange of exactly what the next iteration
      // reads. Data + synchronization in the same message.
      exchange_data_halos(10);
    }
  }
  comm.endpoint().mark_measurement_end();

  // Checksum: per-row sums gathered in rank (= row) order.
  std::vector<double> sums(hi - lo);
  for (std::size_t r = lo; r < hi; ++r) sums[r - lo] = rowsum(row(r), n);
  if (comm.rank() == 0) {
    double total = 0;
    for (double s : sums) total += s;
    for (int q = 1; q < comm.nprocs(); ++q) {
      std::vector<double> theirs(rows.count(q));
      comm.recv_exact(q, 99, theirs.data(), theirs.size() * sizeof(double));
      for (double s : theirs) total += s;
    }
    return total;
  }
  comm.send(0, 99, sums.data(), sums.size() * sizeof(double));
  return 0.0;
}

double jacobi_pvme(runner::ChildContext& ctx, const JacobiParams& p) {
  return jacobi_mp_impl(ctx, p, /*xhpf_conservative=*/false);
}

double jacobi_xhpf(runner::ChildContext& ctx, const JacobiParams& p) {
  return jacobi_mp_impl(ctx, p, /*xhpf_conservative=*/true);
}

double jacobi_spf_opt(runner::ChildContext& ctx, const JacobiParams& p) {
  return jacobi_spf_impl(ctx, p, /*optimized=*/true);
}

}  // namespace

double jacobi_spf(runner::ChildContext& ctx, const JacobiParams& p) {
  return jacobi_spf_impl(ctx, p, /*optimized=*/false);
}

double jacobi_spf_legacy(runner::ChildContext& ctx, const JacobiParams& p) {
  return jacobi_spf_impl(ctx, p, /*optimized=*/false,
                         spf::DispatchMode::kLegacy);
}

// ----------------------------------------------------------------------

Workload make_jacobi_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "Jacobi";
  w.key = "jacobi";
  w.cls = WorkloadClass::kRegular;
  w.seq = detail::make_seq<JacobiParams>(&jacobi_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const JacobiParams&>(a);
    return std::to_string(p.n) + "^2 x " + std::to_string(p.iters);
  };
  // kSpfOpt needs page-aligned rows (n a multiple of 1024), so the
  // reduced preset cannot drive it; apps_shape_test covers it.
  w.variants = {
      make_variant<JacobiParams>(System::kSpf, &jacobi_spf, 0.0, {2, 4, 8},
                                 {2, 4, 8, 16, 32, 64, 128}),
      make_variant<JacobiParams>(System::kSpfOpt, &jacobi_spf_opt, 0.0, {}),
      make_variant<JacobiParams>(System::kTmk, &jacobi_tmk, 0.0, {2, 4, 8},
                                 {2, 4, 8, 16, 32, 64, 128}),
      make_variant<JacobiParams>(System::kXhpf, &jacobi_xhpf, 0.0, {2, 4, 8},
                                 {2, 4, 8, 16, 32, 64, 128}),
      make_variant<JacobiParams>(System::kPvme, &jacobi_pvme, 0.0, {2, 4, 8},
                                 {2, 4, 8, 16, 32, 64, 128}),
  };
  JacobiParams dflt;  // paper grid, reduced iterations
  dflt.n = 2048;
  dflt.iters = 10;
  dflt.warmup_iters = 1;
  w.default_params = dflt;
  JacobiParams reduced;
  reduced.n = 128;
  reduced.iters = 4;
  reduced.warmup_iters = 1;
  w.reduced_params = reduced;
  JacobiParams scale;  // reduced grid, many iterations: messaging-dense
  scale.n = 128;
  scale.iters = 128;
  scale.warmup_iters = 1;
  w.scale_params = scale;
  JacobiParams full;  // paper: 2048 x 2048, 100 timed iterations
  full.n = 2048;
  full.iters = 100;
  full.warmup_iters = 1;
  w.full_params = full;
  // The optimized harness runs the paper grid fast enough for ctest.
  w.test_preset = Preset::kDefault;
  JacobiParams calib;  // 1/10 of the paper's iterations
  calib.n = 2048;
  calib.iters = 10;
  calib.warmup_iters = 0;
  w.calibration = {/*paper (est.)=*/55.0, /*iter_fraction=*/0.1, calib};
  w.paper_speedups = {{System::kSpf, 6.99},
                      {System::kSpfOpt, 7.23},
                      {System::kTmk, 7.13},
                      {System::kXhpf, 7.39},
                      {System::kPvme, 7.55}};
  return w;
}

}  // namespace apps
