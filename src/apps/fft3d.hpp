// 3-D FFT (§5.4): the NAS-FT-style kernel. Each iteration reinitializes
// the complex array from a deterministic source, applies an inverse 3-D
// FFT (three 1-D radix-2 passes), normalizes, and folds 1024 sampled
// elements into a checksum.
//
// The array is [z][y][x] row-major. Passes 1-3 (init, x-FFT, y-FFT) are
// partitioned on z; the z-FFT needs whole z-lines, so the computation
// repartitions on y — the "transpose". The hand TreadMarks version has
// exactly two barriers per iteration (after the transpose point and
// after the checksum, §5.4); the transpose is where DSM pays page-at-a-
// time faulting ("the number of messages ... about 30 times higher"),
// which the §5.4 aggregation optimization (kSpfOpt, batched validate)
// collapses into one request per writer. The MP versions run an explicit
// packed all-to-all: one message per pair for PVMe, compiler-chunked for
// XHPF.
#pragma once

#include "apps/app_common.hpp"

namespace apps {

struct FftParams {
  std::size_t nx = 16, ny = 16, nz = 16;  // powers of two
  int iters = 2;
  int warmup_iters = 1;
  std::uint64_t seed = 31337;
};

double fft3d_seq(const FftParams& p, const SeqHooks* hooks = nullptr);

// Parallel variants; run inside a forked child. Return the checksum on
// every rank (reduced where necessary).
double fft3d_spf(runner::ChildContext& ctx, const FftParams& p);
double fft3d_spf_opt(runner::ChildContext& ctx, const FftParams& p);
double fft3d_tmk(runner::ChildContext& ctx, const FftParams& p);
double fft3d_xhpf(runner::ChildContext& ctx, const FftParams& p);
double fft3d_pvme(runner::ChildContext& ctx, const FftParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_fft3d_workload();

}  // namespace apps
