#include "apps/shallow.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dist/dist.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

// Model constants, sized so a few dozen iterations stay well-conditioned
// in float.
constexpr float kFsdx = 0.25f;
constexpr float kFsdy = 0.20f;
constexpr float kC1 = 0.002f;   // vorticity coupling
constexpr float kC2 = 0.01f;    // pressure gradient
constexpr float kC3 = 0.008f;   // divergence
constexpr float kAlpha = 0.1f;  // Robert/Asselin time filter

// The 13 arrays of the benchmark, stored as one indexable family so the
// variants can loop over them uniformly.
enum Field : int {
  kU = 0, kV, kP, kUnew, kVnew, kPnew, kUold, kVold, kPold,
  kCu, kCv, kZ, kH, kNumFields
};

struct Grids {
  float* f[kNumFields] = {};
  std::size_t dim = 0;  // (n+1)

  [[nodiscard]] float* row(Field a, std::size_t i) const {
    return f[a] + i * dim;
  }
  [[nodiscard]] float& at(Field a, std::size_t i, std::size_t j) const {
    return f[a][i * dim + j];
  }
};

float init_u(std::size_t i, std::size_t j) {
  return 0.3f * static_cast<float>((i + 2 * j) % 5);
}
float init_v(std::size_t i, std::size_t j) {
  return 0.25f * static_cast<float>((2 * i + j) % 5);
}
float init_p(std::size_t i, std::size_t j) {
  return 50.0f + 0.5f * static_cast<float>((i * j) % 7);
}

void init_rows(const Grids& g, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = 0; j < g.dim; ++j) {
      g.at(kU, i, j) = init_u(i, j);
      g.at(kV, i, j) = init_v(i, j);
      g.at(kP, i, j) = init_p(i, j);
      g.at(kUold, i, j) = g.at(kU, i, j);
      g.at(kVold, i, j) = g.at(kV, i, j);
      g.at(kPold, i, j) = g.at(kP, i, j);
    }
  }
}

// Step 1 (rows [lo, hi) ∩ [1, n]): fluxes cu, cv, vorticity z, height h,
// reading u, v, p at (i, j), (i-1, j), (i, j-1). Column wrap (j = 0 from
// j = n) is folded in at the end of each row.
void step1_rows(const Grids& g, std::size_t n, std::size_t lo,
                std::size_t hi) {
  for (std::size_t i = std::max<std::size_t>(lo, 1);
       i < std::min(hi, n + 1); ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      g.at(kCu, i, j) =
          0.5f * (g.at(kP, i, j) + g.at(kP, i - 1, j)) * g.at(kU, i, j);
      g.at(kCv, i, j) =
          0.5f * (g.at(kP, i, j) + g.at(kP, i, j - 1)) * g.at(kV, i, j);
      g.at(kZ, i, j) =
          (kFsdx * (g.at(kV, i, j) - g.at(kV, i - 1, j)) -
           kFsdy * (g.at(kU, i, j) - g.at(kU, i, j - 1))) /
          (g.at(kP, i - 1, j - 1) + g.at(kP, i, j - 1) + g.at(kP, i, j) +
           g.at(kP, i - 1, j));
      g.at(kH, i, j) =
          g.at(kP, i, j) +
          0.25f * (g.at(kU, i, j) * g.at(kU, i, j) +
                   g.at(kU, i - 1, j) * g.at(kU, i - 1, j) +
                   g.at(kV, i, j) * g.at(kV, i, j) +
                   g.at(kV, i, j - 1) * g.at(kV, i, j - 1));
    }
    for (Field a : {kCu, kCv, kZ, kH}) g.at(a, i, 0) = g.at(a, i, n);
  }
}

// Row wrap after step 1: row 0 of cu, cv, z, h copied from row n,
// columns [cl, ch).
void wrap1_cols(const Grids& g, std::size_t n, std::size_t cl,
                std::size_t ch) {
  for (Field a : {kCu, kCv, kZ, kH})
    for (std::size_t j = cl; j < ch; ++j) g.at(a, 0, j) = g.at(a, n, j);
}

// Step 2: time update of unew, vnew, pnew from the *old* fields and the
// step-1 fields, same one-sided stencil; column wrap folded in.
void step2_rows(const Grids& g, std::size_t n, std::size_t lo,
                std::size_t hi) {
  for (std::size_t i = std::max<std::size_t>(lo, 1);
       i < std::min(hi, n + 1); ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      g.at(kUnew, i, j) =
          g.at(kUold, i, j) +
          kC1 * (g.at(kZ, i, j) + g.at(kZ, i - 1, j)) *
              (g.at(kCv, i, j) + g.at(kCv, i, j - 1)) -
          kC2 * (g.at(kH, i, j) - g.at(kH, i - 1, j));
      g.at(kVnew, i, j) =
          g.at(kVold, i, j) -
          kC1 * (g.at(kZ, i, j) + g.at(kZ, i, j - 1)) *
              (g.at(kCu, i, j) + g.at(kCu, i - 1, j)) -
          kC2 * (g.at(kH, i, j) - g.at(kH, i, j - 1));
      g.at(kPnew, i, j) =
          g.at(kPold, i, j) - kC3 * (g.at(kCu, i, j) - g.at(kCu, i - 1, j)) -
          kC3 * (g.at(kCv, i, j) - g.at(kCv, i, j - 1));
    }
    for (Field a : {kUnew, kVnew, kPnew}) g.at(a, i, 0) = g.at(a, i, n);
  }
}

void wrap2_cols(const Grids& g, std::size_t n, std::size_t cl,
                std::size_t ch) {
  for (Field a : {kUnew, kVnew, kPnew})
    for (std::size_t j = cl; j < ch; ++j) g.at(a, 0, j) = g.at(a, n, j);
}

// Step 3: elementwise time smoothing over rows [lo, hi); no neighbours.
void step3_rows(const Grids& g, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = 0; j < g.dim; ++j) {
      const float u = g.at(kU, i, j);
      const float v = g.at(kV, i, j);
      const float p = g.at(kP, i, j);
      g.at(kUold, i, j) =
          u + kAlpha * (g.at(kUnew, i, j) - 2.0f * u + g.at(kUold, i, j));
      g.at(kVold, i, j) =
          v + kAlpha * (g.at(kVnew, i, j) - 2.0f * v + g.at(kVold, i, j));
      g.at(kPold, i, j) =
          p + kAlpha * (g.at(kPnew, i, j) - 2.0f * p + g.at(kPold, i, j));
      g.at(kU, i, j) = g.at(kUnew, i, j);
      g.at(kV, i, j) = g.at(kVnew, i, j);
      g.at(kP, i, j) = g.at(kPnew, i, j);
    }
  }
}

// Checksum: row-ordered sums over u, v, p.
double checksum_rows(const Grids& g, std::size_t lo, std::size_t hi) {
  double total = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < g.dim; ++j)
      s += g.at(kU, i, j) + g.at(kV, i, j) + g.at(kP, i, j);
    total += s;
  }
  return total;
}

}  // namespace

double shallow_seq(const ShallowParams& p, const SeqHooks* hooks) {
  const std::size_t dim = p.n + 1;
  std::vector<float> storage(static_cast<std::size_t>(kNumFields) * dim * dim,
                             0.0f);
  Grids g;
  g.dim = dim;
  for (int a = 0; a < kNumFields; ++a) g.f[a] = storage.data() + a * dim * dim;
  init_rows(g, 0, dim);
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (hooks && it == p.warmup_iters) hooks->on_start();
    step1_rows(g, p.n, 0, dim);
    wrap1_cols(g, p.n, 0, dim);
    step2_rows(g, p.n, 0, dim);
    wrap2_cols(g, p.n, 0, dim);
    step3_rows(g, 0, dim);
  }
  if (hooks) hooks->on_end();
  return checksum_rows(g, 0, dim);
}

// ----------------------------------------------------------------------
// SPF: five fork/join pairs per iteration (three steps + two parallelized
// row-wrap copy loops).
// ----------------------------------------------------------------------

namespace {

struct SpfShallowState {
  Grids g;
  std::size_t n = 0;
};
thread_local SpfShallowState g_sw;  // per-rank (see fft3d.cpp)

dist::Range sw_rows(const spf::Runtime& rt) {
  return rt.own_block(g_sw.g.dim);
}

void sw_step1(spf::Runtime& rt, const void*) {
  const auto r = sw_rows(rt);
  step1_rows(g_sw.g, g_sw.n, static_cast<std::size_t>(r.lo),
             static_cast<std::size_t>(r.hi));
}
void sw_wrap1(spf::Runtime& rt, const void*) {
  // Parallelized over columns: every process copies a slice of row 0 from
  // row n — faulting the opposite edge of the grid in.
  const auto c = rt.own_block(g_sw.g.dim);
  wrap1_cols(g_sw.g, g_sw.n, static_cast<std::size_t>(c.lo),
             static_cast<std::size_t>(c.hi));
}
void sw_step2(spf::Runtime& rt, const void*) {
  const auto r = sw_rows(rt);
  step2_rows(g_sw.g, g_sw.n, static_cast<std::size_t>(r.lo),
             static_cast<std::size_t>(r.hi));
}
void sw_wrap2(spf::Runtime& rt, const void*) {
  const auto c = rt.own_block(g_sw.g.dim);
  wrap2_cols(g_sw.g, g_sw.n, static_cast<std::size_t>(c.lo),
             static_cast<std::size_t>(c.hi));
}
void sw_step3(spf::Runtime& rt, const void*) {
  const auto r = sw_rows(rt);
  step3_rows(g_sw.g, static_cast<std::size_t>(r.lo),
             static_cast<std::size_t>(r.hi));
}
void sw_mark_start(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void sw_mark_end(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

}  // namespace

double shallow_spf(runner::ChildContext& ctx, const ShallowParams& p) {
  spf::Runtime rt(ctx);
  const std::size_t dim = p.n + 1;
  g_sw = SpfShallowState{};
  g_sw.n = p.n;
  g_sw.g.dim = dim;
  for (int a = 0; a < kNumFields; ++a)
    g_sw.g.f[a] = rt.tmk().alloc<float>(dim * dim);

  const auto l1 = rt.register_loop(sw_step1);
  const auto lw1 = rt.register_loop(sw_wrap1);
  const auto l2 = rt.register_loop(sw_step2);
  const auto lw2 = rt.register_loop(sw_wrap2);
  const auto l3 = rt.register_loop(sw_step3);
  const auto ms = rt.register_loop(sw_mark_start);
  const auto me = rt.register_loop(sw_mark_end);

  return rt.run([&] {
    init_rows(g_sw.g, 0, dim);  // sequential master code
    for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
      if (it == p.warmup_iters) rt.parallel(ms, std::uint32_t{0});
      rt.parallel(l1, std::uint32_t{0});
      rt.parallel(lw1, std::uint32_t{0});
      rt.parallel(l2, std::uint32_t{0});
      rt.parallel(lw2, std::uint32_t{0});
      rt.parallel(l3, std::uint32_t{0});
    }
    rt.parallel(me, std::uint32_t{0});
    return checksum_rows(g_sw.g, 0, dim);
  });
}

// ----------------------------------------------------------------------
// Hand-coded TreadMarks: wraps merged into the master's slack between
// barriers; three barriers per iteration.
// ----------------------------------------------------------------------

double shallow_tmk(runner::ChildContext& ctx, const ShallowParams& p) {
  tmk::Runtime rt(ctx);
  const std::size_t dim = p.n + 1;
  Grids g;
  g.dim = dim;
  for (int a = 0; a < kNumFields; ++a) g.f[a] = rt.alloc<float>(dim * dim);

  const dist::BlockDist rows(dim, rt.nprocs());
  const std::size_t lo = rows.lo(rt.rank());
  const std::size_t hi = rows.hi(rt.rank());

  // Static halo pattern for the hybrid update protocol (no-ops unless
  // TMK_UPDATE_MODE uses hints). All stencils here are one-sided
  // (i-1, j): only the LAST own row is read, by the next rank, for the
  // seven fields that cross the boundary (u/v/p in step 1, the step-1
  // products cu/cv/z/h in step 2).
  const std::size_t row_bytes = dim * sizeof(float);
  dist::HaloEdge edges[2];
  const int nedges = dist::halo_edges(rows, rt.rank(), /*reads_prev=*/true,
                                      /*reads_next=*/false, edges);
  for (int i = 0; i < nedges; ++i)
    for (Field a : {kU, kV, kP, kCu, kCv, kZ, kH})
      rt.hint_consumers(g.row(a, edges[i].row), row_bytes,
                        edges[i].consumer);
  // Periodic wraps: rank 0 copies row n into row 0 for the step-1 and
  // step-2 products, so row n's owner exports it to rank 0.
  if (rt.rank() == rows.owner(p.n) && rt.rank() != 0)
    for (Field a : {kCu, kCv, kZ, kH, kUnew, kVnew, kPnew})
      rt.hint_consumers(g.row(a, p.n), row_bytes, 0);
  // One-row slabs hand row 1 to rank 1, whose step-2 stencil then reads
  // the freshly wrapped row 0 remotely (the wrap_read_is_remote path).
  if (rt.rank() == 0 && rt.nprocs() > 1 && rows.count(0) < 2 &&
      rows.owner(1) != 0)
    for (Field a : {kCu, kCv, kZ, kH})
      rt.hint_consumers(g.row(a, 0), row_bytes, rows.owner(1));

  init_rows(g, lo, hi);  // each process initializes its own rows
  rt.barrier();

  // The merged-wrap trick below assumes the master also owns row 1 —
  // the only row whose step-2 stencil reads row 0. One-row slabs (more
  // than dim/2 ranks) hand row 1 to rank 1, which then needs a real
  // synchronization after the wrap; every rank computes the same
  // predicate from the distribution, so the schedule stays collective.
  // Paper-size decompositions take the original barrier-free path.
  const bool wrap_read_is_remote = rt.nprocs() > 1 && rows.count(0) < 2;

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) rt.endpoint().mark_measurement_start();
    step1_rows(g, p.n, lo, hi);
    rt.barrier();
    // Master wraps row 0 (it owns it) while others start step 2; when
    // the master also owns row 1 — every realistic decomposition — it
    // is the only reader of row 0 in step 2 and no extra barrier is
    // needed.
    if (rt.rank() == 0) wrap1_cols(g, p.n, 0, dim);
    if (wrap_read_is_remote) rt.barrier();
    step2_rows(g, p.n, lo, hi);
    rt.barrier();
    if (rt.rank() == 0) wrap2_cols(g, p.n, 0, dim);
    step3_rows(g, lo, hi);
    rt.barrier();
  }
  rt.endpoint().mark_measurement_end();

  double result = 0;
  if (rt.rank() == 0) result = checksum_rows(g, 0, dim);
  rt.barrier();
  return result;
}

// ----------------------------------------------------------------------
// Message passing: slab storage with a one-row lower halo; the row-0 wrap
// needs row n, so the last owner ships it to rank 0 each phase.
// ----------------------------------------------------------------------

namespace {

double shallow_mp_impl(runner::ChildContext& ctx, const ShallowParams& p,
                       bool xhpf_conservative) {
  pvme::Comm comm(ctx.endpoint);
  const std::size_t dim = p.n + 1;
  const dist::BlockDist rows(dim, comm.nprocs());
  const int me = comm.rank();
  const int np = comm.nprocs();
  const std::size_t lo = rows.lo(me);
  const std::size_t hi = rows.hi(me);
  // More ranks than rows (the 128-rank sweeps on the 97-row scale grid)
  // leaves a trailing run of ranks that own nothing; the neighbour
  // exchange and the row-n wrap run over the contiguous active prefix,
  // or an active rank would block on a halo its empty neighbour never
  // sends. nactive == np whenever every rank owns rows, so smaller
  // configurations are bit-identical to the original schedule.
  int nactive = np;
  while (nactive > 0 && rows.count(nactive - 1) == 0) --nactive;
  const int last = nactive - 1;

  // Full-size private arrays; only own rows + the one-row halo are used.
  std::vector<float> storage(static_cast<std::size_t>(kNumFields) * dim * dim,
                             0.0f);
  Grids g;
  g.dim = dim;
  for (int a = 0; a < kNumFields; ++a) g.f[a] = storage.data() + a * dim * dim;
  init_rows(g, (lo > 0) ? lo - 1 : lo, hi);  // own rows + initial halo

  const std::size_t row_bytes = dim * sizeof(float);

  // Sends own top row of `fields` to the upper neighbour's halo; the §5.2
  // hand version aggregates all fields of one phase into one message.
  auto send_halo_up = [&](std::initializer_list<Field> fields, int tag) {
    if (lo >= hi) return;
    if (me + 1 < nactive) {
      std::vector<float> buf;
      buf.reserve(fields.size() * dim);
      for (Field a : fields)
        buf.insert(buf.end(), g.row(a, hi - 1), g.row(a, hi - 1) + dim);
      comm.send(me + 1, tag, buf.data(), buf.size() * sizeof(float));
    }
    if (me > 0) {
      std::vector<float> buf(fields.size() * dim);
      comm.recv_exact(me - 1, tag, buf.data(), buf.size() * sizeof(float));
      std::size_t k = 0;
      for (Field a : fields) {
        std::memcpy(g.row(a, lo - 1), buf.data() + k * dim, row_bytes);
        ++k;
      }
    }
  };

  // XHPF's compiler-placed exchange: bidirectional, one message per array.
  auto exchange_bidir = [&](std::initializer_list<Field> fields, int tag) {
    int t = tag;
    for (Field a : fields) {
      if (lo < hi) {
        if (me > 0) comm.send(me - 1, t, g.row(a, lo), row_bytes);
        if (me + 1 < nactive)
          comm.send(me + 1, t + 1, g.row(a, hi - 1), row_bytes);
        if (me > 0) comm.recv_exact(me - 1, t + 1, g.row(a, lo - 1), row_bytes);
        if (me + 1 < nactive)
          comm.recv_exact(me + 1, t, g.row(a, hi), row_bytes);
      }
      t += 2;
    }
  };

  // The wrap needs row n at rank 0.
  auto ship_row_n = [&](std::initializer_list<Field> fields, int tag) {
    if (nactive == 1) return;  // rank 0 owns row n itself
    if (me == last && lo < hi) {
      std::vector<float> buf;
      for (Field a : fields)
        buf.insert(buf.end(), g.row(a, p.n), g.row(a, p.n) + dim);
      comm.send(0, tag, buf.data(), buf.size() * sizeof(float));
    } else if (me == 0) {
      std::vector<float> buf(fields.size() * dim);
      comm.recv_exact(last, tag, buf.data(), buf.size() * sizeof(float));
      std::size_t k = 0;
      for (Field a : fields) {
        std::memcpy(g.row(a, p.n), buf.data() + k * dim, row_bytes);
        ++k;
      }
    }
  };

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    step1_rows(g, p.n, lo, hi);
    // Row-n wrap BEFORE the halo exchange: when rank 0 owns only row 0
    // (one-row slabs at high rank counts), the row it ships upward IS
    // the wrap row — sending it pre-wrap hands rank 1 a stale halo.
    // For multi-row slabs the order is immaterial (the wrap only
    // rewrites row 0, which then never travels), so the smaller
    // configurations' message contents are unchanged.
    ship_row_n({kCu, kCv, kZ, kH}, 110);
    if (me == 0) wrap1_cols(g, p.n, 0, dim);
    if (xhpf_conservative) {
      exchange_bidir({kCu, kCv, kZ, kH}, 100);
    } else {
      send_halo_up({kCu, kCv, kZ, kH}, 100);
    }
    step2_rows(g, p.n, lo, hi);
    ship_row_n({kUnew, kVnew, kPnew}, 130);
    if (me == 0) wrap2_cols(g, p.n, 0, dim);
    if (xhpf_conservative) exchange_bidir({kUnew, kVnew, kPnew}, 120);
    step3_rows(g, lo, hi);
    if (xhpf_conservative) {
      exchange_bidir({kU, kV, kP, kUold, kVold, kPold}, 140);
    } else {
      send_halo_up({kU, kV, kP}, 140);
    }
  }
  comm.endpoint().mark_measurement_end();

  // Row-ordered checksum gather.
  std::vector<double> sums(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < dim; ++j)
      s += g.at(kU, i, j) + g.at(kV, i, j) + g.at(kP, i, j);
    sums[i - lo] = s;
  }
  if (me == 0) {
    double total = 0;
    for (double s : sums) total += s;
    for (int q = 1; q < np; ++q) {
      std::vector<double> theirs(rows.count(q));
      if (!theirs.empty())
        comm.recv_exact(q, 99, theirs.data(),
                        theirs.size() * sizeof(double));
      for (double s : theirs) total += s;
    }
    return total;
  }
  if (!sums.empty())
    comm.send(0, 99, sums.data(), sums.size() * sizeof(double));
  return 0.0;
}

}  // namespace

double shallow_pvme(runner::ChildContext& ctx, const ShallowParams& p) {
  return shallow_mp_impl(ctx, p, /*xhpf_conservative=*/false);
}

double shallow_xhpf(runner::ChildContext& ctx, const ShallowParams& p) {
  return shallow_mp_impl(ctx, p, /*xhpf_conservative=*/true);
}

// ----------------------------------------------------------------------

Workload make_shallow_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "Shallow";
  w.key = "shallow";
  w.cls = WorkloadClass::kRegular;
  w.seq = detail::make_seq<ShallowParams>(&shallow_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const ShallowParams&>(a);
    return std::to_string(p.n + 1) + "^2 x " + std::to_string(p.iters);
  };
  w.variants = {
      make_variant<ShallowParams>(System::kSpf, &shallow_spf, 0.0, {2, 8},
                                  {2, 4, 8, 16, 32, 64, 128}),
      make_variant<ShallowParams>(System::kTmk, &shallow_tmk, 0.0, {2, 8},
                                  {2, 4, 8, 16, 32, 64, 128}),
      make_variant<ShallowParams>(System::kXhpf, &shallow_xhpf, 0.0, {3, 8},
                                  {2, 4, 8, 16, 32, 64, 128}),
      make_variant<ShallowParams>(System::kPvme, &shallow_pvme, 0.0, {3, 8},
                                  {2, 4, 8, 16, 32, 64, 128}),
  };
  ShallowParams dflt;  // paper grid (page-aligned rows), fewer iterations
  dflt.n = 1023;
  dflt.iters = 8;
  dflt.warmup_iters = 1;
  w.default_params = dflt;
  ShallowParams reduced;
  reduced.n = 96;
  reduced.iters = 3;
  reduced.warmup_iters = 1;
  w.reduced_params = reduced;
  ShallowParams scale;  // reduced grid, many iterations: messaging-dense
  scale.n = 96;
  scale.iters = 64;
  scale.warmup_iters = 1;
  w.scale_params = scale;
  ShallowParams full;  // paper: 1024 x 1024, 50 timed iterations
  full.n = 1023;
  full.iters = 50;
  full.warmup_iters = 1;
  w.full_params = full;
  ShallowParams calib;  // 1/10 of the paper's iterations
  calib.n = 1023;
  calib.iters = 5;
  calib.warmup_iters = 0;
  w.calibration = {/*paper (est.)=*/90.0, /*iter_fraction=*/0.1, calib};
  w.paper_speedups = {{System::kSpf, 5.71},
                      {System::kTmk, 6.21},
                      {System::kXhpf, 6.60},
                      {System::kPvme, 6.77}};
  return w;
}

}  // namespace apps
