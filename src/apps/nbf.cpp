#include "apps/nbf.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dist/dist.hpp"
#include "common/prng.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

constexpr double kDt = 0.01;

// Partner lists: each molecule i > 0 gets `partners` indices drawn from
// [i - window, i). Deterministic, identical on every process.
std::vector<std::int32_t> make_partners(const NbfParams& p) {
  std::vector<std::int32_t> list(p.nmol * static_cast<std::size_t>(p.partners),
                                 -1);
  for (std::size_t i = 1; i < p.nmol; ++i) {
    common::SplitMix64 g(p.seed + i);
    const std::size_t reach = std::min<std::size_t>(p.window, i);
    for (int k = 0; k < p.partners; ++k) {
      const std::size_t off = 1 + g.next_below(reach);
      list[i * static_cast<std::size_t>(p.partners) +
           static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(i - off);
    }
  }
  return list;
}

void init_positions(double* pos, const NbfParams& p, std::size_t lo,
                    std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    common::SplitMix64 g(p.seed * 3 + i);
    pos[3 * i + 0] = g.next_double(0.0, 10.0);
    pos[3 * i + 1] = g.next_double(0.0, 10.0);
    pos[3 * i + 2] = g.next_double(0.0, 10.0);
  }
}

// Pairwise force magnitude: smooth, bounded, strictly repulsive.
inline double force_scale(double r2) {
  const double q = r2 + 1.0;
  return 1.0 / q - 0.5 / (q * q);
}

// Force loop over molecules [lo, hi): own-force contributions go directly
// into `f` (indexed globally); contributions to partners below `cut` go
// into `spill` (also indexed globally) — the per-processor accumulation
// buffer of §6.2. With cut <= lo the caller separates local and remote.
void force_range(const double* pos, const std::int32_t* partners,
                 int partners_per_mol, std::size_t lo, std::size_t hi,
                 std::size_t cut, double* f, double* spill) {
  for (std::size_t i = lo; i < hi; ++i) {
    double fx = 0, fy = 0, fz = 0;
    for (int k = 0; k < partners_per_mol; ++k) {
      const std::int32_t j =
          partners[i * static_cast<std::size_t>(partners_per_mol) +
                   static_cast<std::size_t>(k)];
      if (j < 0) continue;
      const auto ju = static_cast<std::size_t>(j);
      const double dx = pos[3 * i] - pos[3 * ju];
      const double dy = pos[3 * i + 1] - pos[3 * ju + 1];
      const double dz = pos[3 * i + 2] - pos[3 * ju + 2];
      const double s = force_scale(dx * dx + dy * dy + dz * dz);
      fx += s * dx;
      fy += s * dy;
      fz += s * dz;
      double* out = (ju >= cut) ? f : spill;
      out[3 * ju] -= s * dx;
      out[3 * ju + 1] -= s * dy;
      out[3 * ju + 2] -= s * dz;
    }
    f[3 * i] += fx;
    f[3 * i + 1] += fy;
    f[3 * i + 2] += fz;
  }
}

void integrate(double* pos, double* f, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    pos[3 * i] += kDt * f[3 * i];
    pos[3 * i + 1] += kDt * f[3 * i + 1];
    pos[3 * i + 2] += kDt * f[3 * i + 2];
    f[3 * i] = f[3 * i + 1] = f[3 * i + 2] = 0.0;
  }
}

double checksum_positions(const double* pos, std::size_t nmol) {
  double s = 0;
  for (std::size_t i = 0; i < 3 * nmol; ++i) s += pos[i];
  return s;
}

void check_window(const NbfParams& p, int nprocs) {
  const std::size_t block = p.nmol / static_cast<std::size_t>(nprocs);
  COMMON_CHECK_MSG(p.window < block,
                   "nbf requires window < molecules per process ("
                       << p.window << " vs " << block << ")");
}

}  // namespace

double nbf_seq(const NbfParams& p, const SeqHooks* hooks) {
  const auto partners = make_partners(p);
  std::vector<double> pos(3 * p.nmol), f(3 * p.nmol, 0.0);
  init_positions(pos.data(), p, 0, p.nmol);
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (hooks && it == p.warmup_iters) hooks->on_start();
    force_range(pos.data(), partners.data(), p.partners, 0, p.nmol,
                /*cut=*/0, f.data(), /*spill=*/nullptr);
    integrate(pos.data(), f.data(), 0, p.nmol);
  }
  if (hooks) hooks->on_end();
  return checksum_positions(pos.data(), p.nmol);
}

// ----------------------------------------------------------------------
// SPF: coordinates, forces, AND the per-process buffers all live in
// shared memory (every array touched by a parallel loop is shared).
// ----------------------------------------------------------------------

namespace {

struct SpfNbfState {
  double* pos = nullptr;
  double* f = nullptr;
  double* buf = nullptr;  // nprocs x 3*nmol spill buffers
  std::int32_t* partners = nullptr;
  NbfParams p;
};
thread_local SpfNbfState g_nbf;  // per-rank (see fft3d.cpp)

dist::Range nbf_block(const spf::Runtime& rt, std::size_t nmol) {
  return rt.own_block(nmol);
}

void nbf_force_loop(spf::Runtime& rt, const void*) {
  const auto r = nbf_block(rt, g_nbf.p.nmol);
  const auto lo = static_cast<std::size_t>(r.lo);
  const auto hi = static_cast<std::size_t>(r.hi);
  double* spill = g_nbf.buf + static_cast<std::size_t>(rt.rank()) * 3 *
                                  g_nbf.p.nmol;
  // Zero the spill window this process can write (below its block).
  const std::size_t w_lo = (lo >= g_nbf.p.window) ? lo - g_nbf.p.window : 0;
  for (std::size_t i = w_lo; i < lo; ++i)
    spill[3 * i] = spill[3 * i + 1] = spill[3 * i + 2] = 0.0;
  force_range(g_nbf.pos, g_nbf.partners, g_nbf.p.partners, lo, hi, lo,
              g_nbf.f, spill);
}

void nbf_update_loop(spf::Runtime& rt, const void*) {
  const auto r = nbf_block(rt, g_nbf.p.nmol);
  const auto lo = static_cast<std::size_t>(r.lo);
  const auto hi = static_cast<std::size_t>(r.hi);
  // Sum remote contributions in ascending process order (bit-exact with
  // the sequential i-order: remote contributors all have larger i).
  for (int q = 0; q < rt.nprocs(); ++q) {
    if (q == rt.rank()) continue;
    const double* spill = g_nbf.buf + static_cast<std::size_t>(q) * 3 *
                                          g_nbf.p.nmol;
    const auto q_lo = rt.block(g_nbf.p.nmol).lo(q);
    const std::size_t w_lo =
        (q_lo >= g_nbf.p.window) ? q_lo - g_nbf.p.window : 0;
    for (std::size_t i = std::max(w_lo, lo); i < std::min(q_lo, hi); ++i) {
      g_nbf.f[3 * i] += spill[3 * i];
      g_nbf.f[3 * i + 1] += spill[3 * i + 1];
      g_nbf.f[3 * i + 2] += spill[3 * i + 2];
    }
  }
  integrate(g_nbf.pos, g_nbf.f, lo, hi);
}

void nbf_mark_start(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void nbf_mark_end(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

}  // namespace

double nbf_spf(runner::ChildContext& ctx, const NbfParams& p) {
  spf::Runtime rt(ctx);
  check_window(p, rt.nprocs());
  g_nbf = SpfNbfState{};
  g_nbf.p = p;
  g_nbf.pos = rt.tmk().alloc<double>(3 * p.nmol);
  g_nbf.f = rt.tmk().alloc<double>(3 * p.nmol);
  g_nbf.buf = rt.tmk().alloc<double>(
      static_cast<std::size_t>(rt.nprocs()) * 3 * p.nmol);
  g_nbf.partners = rt.tmk().alloc<std::int32_t>(
      p.nmol * static_cast<std::size_t>(p.partners));

  const auto force = rt.register_loop(nbf_force_loop);
  const auto update = rt.register_loop(nbf_update_loop);
  const auto mark_s = rt.register_loop(nbf_mark_start);
  const auto mark_e = rt.register_loop(nbf_mark_end);

  return rt.run([&] {
    const auto partners = make_partners(p);
    std::memcpy(g_nbf.partners, partners.data(),
                partners.size() * sizeof(std::int32_t));
    init_positions(g_nbf.pos, p, 0, p.nmol);
    for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
      if (it == p.warmup_iters) rt.parallel(mark_s, std::uint32_t{0});
      rt.parallel(force, std::uint32_t{0});
      rt.parallel(update, std::uint32_t{0});
    }
    rt.parallel(mark_e, std::uint32_t{0});
    return checksum_positions(g_nbf.pos, p.nmol);
  });
}

// ----------------------------------------------------------------------
// Hand-coded TreadMarks: forces kept in private memory (only the owner
// touches them); coordinates and spill buffers shared.
// ----------------------------------------------------------------------

double nbf_tmk(runner::ChildContext& ctx, const NbfParams& p) {
  tmk::Runtime rt(ctx);
  check_window(p, rt.nprocs());
  double* pos = rt.alloc<double>(3 * p.nmol);
  double* buf = rt.alloc<double>(static_cast<std::size_t>(rt.nprocs()) * 3 *
                                 p.nmol);
  std::vector<double> f(3 * p.nmol, 0.0);  // private

  const auto partners = make_partners(p);  // replicated setup, no traffic
  const dist::BlockDist mols(p.nmol, rt.nprocs());
  const std::size_t lo = mols.lo(rt.rank());
  const std::size_t hi = mols.hi(rt.rank());
  init_positions(pos, p, lo, hi);
  rt.barrier();

  double* spill = buf + static_cast<std::size_t>(rt.rank()) * 3 * p.nmol;
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) rt.endpoint().mark_measurement_start();
    const std::size_t w_lo = (lo >= p.window) ? lo - p.window : 0;
    for (std::size_t i = w_lo; i < lo; ++i)
      spill[3 * i] = spill[3 * i + 1] = spill[3 * i + 2] = 0.0;
    force_range(pos, partners.data(), p.partners, lo, hi, lo, f.data(),
                spill);
    rt.barrier();  // publish spill buffers
    for (int q = 0; q < rt.nprocs(); ++q) {
      if (q == rt.rank()) continue;
      const double* qs = buf + static_cast<std::size_t>(q) * 3 * p.nmol;
      const std::size_t q_lo = mols.lo(q);
      const std::size_t qw_lo = (q_lo >= p.window) ? q_lo - p.window : 0;
      for (std::size_t i = std::max(qw_lo, lo); i < std::min(q_lo, hi); ++i) {
        f[3 * i] += qs[3 * i];
        f[3 * i + 1] += qs[3 * i + 1];
        f[3 * i + 2] += qs[3 * i + 2];
      }
    }
    integrate(pos, f.data(), lo, hi);
    rt.barrier();  // publish coordinates
  }
  rt.endpoint().mark_measurement_end();

  double result = 0;
  if (rt.rank() == 0) result = checksum_positions(pos, p.nmol);
  rt.barrier();
  return result;
}

// ----------------------------------------------------------------------
// Message passing
// ----------------------------------------------------------------------

double nbf_pvme(runner::ChildContext& ctx, const NbfParams& p) {
  pvme::Comm comm(ctx.endpoint);
  check_window(p, comm.nprocs());
  const int me = comm.rank();
  const int np = comm.nprocs();
  const dist::BlockDist mols(p.nmol, np);
  const std::size_t lo = mols.lo(me);
  const std::size_t hi = mols.hi(me);

  const auto partners = make_partners(p);
  // Windowed exchange: the hand coder knows partner indices reach at most
  // `window` below a block, so only the upper neighbour's top window of
  // coordinates is needed — one aggregated message per pair per
  // iteration, data + synchronization combined.
  std::vector<double> pos(3 * p.nmol, 0.0);
  std::vector<double> f(3 * p.nmol, 0.0);
  std::vector<double> spill(3 * p.nmol, 0.0);
  init_positions(pos.data(), p, lo, hi);

  auto refresh_positions = [&] {
    // Send my top `window` coordinates to the upper neighbour's halo.
    if (me + 1 < np)
      comm.send(me + 1, 50, pos.data() + 3 * (hi - p.window),
                3 * p.window * sizeof(double));
    if (me > 0)
      comm.recv_exact(me - 1, 50, pos.data() + 3 * (lo - p.window),
                      3 * p.window * sizeof(double));
  };
  refresh_positions();

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    const std::size_t w_lo = (lo >= p.window) ? lo - p.window : 0;
    for (std::size_t i = w_lo; i < lo; ++i)
      spill[3 * i] = spill[3 * i + 1] = spill[3 * i + 2] = 0.0;
    force_range(pos.data(), partners.data(), p.partners, lo, hi, lo,
                f.data(), spill.data());
    // Window of contributions to the lower neighbour, one message.
    if (me > 0)
      comm.send(me - 1, 60, spill.data() + 3 * w_lo,
                3 * (lo - w_lo) * sizeof(double));
    if (me + 1 < np) {
      const std::size_t nb_lo = mols.lo(me + 1);
      const std::size_t nb_w = (nb_lo >= p.window) ? nb_lo - p.window : 0;
      std::vector<double> in(3 * (nb_lo - nb_w));
      comm.recv_exact(me + 1, 60, in.data(), in.size() * sizeof(double));
      for (std::size_t i = std::max(nb_w, lo); i < std::min(nb_lo, hi); ++i) {
        f[3 * i] += in[3 * (i - nb_w)];
        f[3 * i + 1] += in[3 * (i - nb_w) + 1];
        f[3 * i + 2] += in[3 * (i - nb_w) + 2];
      }
    }
    integrate(pos.data(), f.data(), lo, hi);
    refresh_positions();
  }
  comm.endpoint().mark_measurement_end();
  // Checksum: gather blocks to rank 0 (outside the measured window).
  if (me == 0) {
    for (int q = 1; q < np; ++q)
      comm.recv_exact(q, 90, pos.data() + 3 * mols.lo(q),
                      3 * mols.count(q) * sizeof(double));
    return checksum_positions(pos.data(), p.nmol);
  }
  comm.send(0, 90, pos.data() + 3 * lo, 3 * (hi - lo) * sizeof(double));
  return 0.0;
}

double nbf_xhpf(runner::ChildContext& ctx, const NbfParams& p) {
  pvme::Comm comm(ctx.endpoint);
  xhpf::Runtime xr(comm);
  check_window(p, comm.nprocs());
  const int me = comm.rank();
  const int np = comm.nprocs();
  const dist::BlockDist mols(p.nmol, np);
  const std::size_t lo = mols.lo(me);
  const std::size_t hi = mols.hi(me);

  const auto partners = make_partners(p);
  std::vector<double> pos(3 * p.nmol, 0.0);
  std::vector<double> f(3 * p.nmol, 0.0);
  // The compiler cannot see the partner window, so the spill buffer is a
  // whole-array accumulator, broadcast in full every iteration (§6.2).
  std::vector<std::vector<double>> bufs(static_cast<std::size_t>(np));
  for (auto& b : bufs) b.assign(3 * p.nmol, 0.0);
  init_positions(pos.data(), p, lo, hi);
  xr.broadcast_partition_rows(pos.data(), 3, mols, 70);

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    auto& mine = bufs[static_cast<std::size_t>(me)];
    std::fill(mine.begin(), mine.end(), 0.0);
    // All contributions (own and partner) go through the buffer — the
    // compiler cannot prove any index is local.
    force_range(pos.data(), partners.data(), p.partners, lo, hi,
                /*cut=*/0, /*f=*/mine.data(), /*spill=*/nullptr);
    // Broadcast the whole local force buffer, chunked compiler-style.
    for (int q = 0; q < np; ++q) {
      auto& b = bufs[static_cast<std::size_t>(q)];
      const std::size_t bytes = b.size() * sizeof(double);
      for (std::size_t off = 0; off < bytes;
           off += xhpf::Runtime::kCompilerChunk) {
        const std::size_t len =
            std::min(xhpf::Runtime::kCompilerChunk, bytes - off);
        if (q == me) {
          for (int dst = 0; dst < np; ++dst)
            if (dst != me)
              comm.send(dst, 71,
                        reinterpret_cast<std::byte*>(b.data()) + off, len);
        } else {
          comm.recv_exact(q, 71,
                          reinterpret_cast<std::byte*>(b.data()) + off, len);
        }
      }
    }
    // Owner sums all buffers for its block (ascending q), integrates.
    for (std::size_t i = lo; i < hi; ++i) {
      double fx = 0, fy = 0, fz = 0;
      for (int q = 0; q < np; ++q) {
        const auto& b = bufs[static_cast<std::size_t>(q)];
        fx += b[3 * i];
        fy += b[3 * i + 1];
        fz += b[3 * i + 2];
      }
      f[3 * i] = fx;
      f[3 * i + 1] = fy;
      f[3 * i + 2] = fz;
    }
    integrate(pos.data(), f.data(), lo, hi);
    // "...and the coordinates of all its molecules."
    xr.broadcast_partition_rows(pos.data(), 3, mols, 70);
  }
  comm.endpoint().mark_measurement_end();
  return me == 0 ? checksum_positions(pos.data(), p.nmol) : 0.0;
}

// ----------------------------------------------------------------------

Workload make_nbf_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "NBF";
  w.key = "nbf";
  w.cls = WorkloadClass::kIrregular;
  w.seq = detail::make_seq<NbfParams>(&nbf_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const NbfParams&>(a);
    return std::to_string(p.nmol) + " mol x " + std::to_string(p.iters);
  };
  // XHPF sums whole-array force buffers in a different interleaving than
  // the sequential order, hence the tolerance.
  w.variants = {
      make_variant<NbfParams>(System::kSpf, &nbf_spf, 0.0, {2, 8}),
      make_variant<NbfParams>(System::kTmk, &nbf_tmk, 0.0, {2, 8}),
      make_variant<NbfParams>(System::kXhpf, &nbf_xhpf, 1e-9, {4, 8}),
      make_variant<NbfParams>(System::kPvme, &nbf_pvme, 0.0, {4, 8}),
  };
  NbfParams dflt;  // paper molecule count, fewer iterations
  dflt.nmol = 32 * 1024;
  dflt.iters = 8;
  dflt.partners = 16;
  dflt.window = 256;
  dflt.warmup_iters = 1;
  w.default_params = dflt;
  NbfParams reduced;
  reduced.nmol = 1024;
  reduced.iters = 3;
  reduced.window = 48;
  reduced.warmup_iters = 1;
  w.reduced_params = reduced;
  NbfParams full = dflt;  // paper: 32K molecules, 20 timed iterations
  full.iters = 20;
  w.full_params = full;
  NbfParams calib = full;
  calib.warmup_iters = 0;
  w.calibration = {/*paper=*/63.9, /*iter_fraction=*/1.0, calib};
  w.paper_speedups = {{System::kSpf, 5.31},
                      {System::kTmk, 5.86},
                      {System::kXhpf, 3.85},
                      {System::kPvme, 6.18}};
  return w;
}

}  // namespace apps
