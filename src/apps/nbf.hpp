// NBF (§6.2): the non-bonded-force kernel of a molecular dynamics
// simulation. Every molecule carries a run-time partner list (indices of
// nearby molecules); each iteration walks the lists accumulating
// equal-and-opposite forces on both partners, sums the per-processor
// contribution buffers, and integrates the coordinates.
//
// Molecules are block-partitioned. Partner indices point at most
// `window` below the owner, so cross-processor force contributions and
// coordinate reads touch only a boundary window — which is why TreadMarks
// moves kilobytes (only the modified words of the boundary pages, §6.2)
// while the hand MP code ships whole windows and XHPF broadcasts whole
// force buffers and coordinate partitions ("it therefore makes each
// processor broadcast its local force buffer, and the coordinates of all
// its molecules").
#pragma once

#include "apps/app_common.hpp"

namespace apps {

struct NbfParams {
  std::size_t nmol = 2048;  // molecules
  int iters = 5;            // timed iterations
  int warmup_iters = 1;
  int partners = 8;         // per molecule
  std::size_t window = 64;  // max distance of a partner index below i
  std::uint64_t seed = 4242;
};

double nbf_seq(const NbfParams& p, const SeqHooks* hooks = nullptr);

// Parallel variants; run inside a forked child. Return the checksum on
// every rank (reduced where necessary).
double nbf_spf(runner::ChildContext& ctx, const NbfParams& p);
double nbf_tmk(runner::ChildContext& ctx, const NbfParams& p);
double nbf_xhpf(runner::ChildContext& ctx, const NbfParams& p);
double nbf_pvme(runner::ChildContext& ctx, const NbfParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_nbf_workload();

}  // namespace apps
