#include "apps/fft3d.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dist/dist.hpp"
#include "common/prng.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

using Cplx = std::complex<double>;

// Iterative radix-2 inverse FFT (no normalization; the normalize pass is
// its own loop, as in the paper's six-loop structure).
void fft1d_inverse(Cplx* a, std::size_t n) {
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * M_PI / static_cast<double>(len);  // +: inverse
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

// Deterministic per-element, per-iteration source data.
Cplx source_value(const FftParams& p, std::size_t z, std::size_t y,
                  std::size_t x, int iter) {
  common::SplitMix64 g(p.seed ^ (z * p.ny * p.nx + y * p.nx + x) * 0x9e37ULL ^
                       (static_cast<std::uint64_t>(iter) << 32));
  return {g.next_double() - 0.5, g.next_double() - 0.5};
}

struct Dims {
  std::size_t nx, ny, nz;
  [[nodiscard]] std::size_t total() const { return nx * ny * nz; }
  [[nodiscard]] std::size_t idx(std::size_t z, std::size_t y,
                                std::size_t x) const {
    return (z * ny + y) * nx + x;
  }
};

// Checksum samples: 1024 pseudo-random flat indices, k-ascending.
std::size_t sample_index(const Dims& d, std::size_t k) {
  return (k * 2654435761ULL + 12345) % d.total();
}
constexpr std::size_t kSamples = 1024;

double fold_checksum(double re, double im) { return re + 1.37 * im; }

// ---- shared per-pass kernels (identical arithmetic in all variants) ----

void init_pass_z(Cplx* a, const Dims& d, const FftParams& p, int iter,
                 std::size_t z_lo, std::size_t z_hi) {
  for (std::size_t z = z_lo; z < z_hi; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        a[d.idx(z, y, x)] = source_value(p, z, y, x, iter);
}

void fftx_pass_z(Cplx* a, const Dims& d, std::size_t z_lo, std::size_t z_hi) {
  for (std::size_t z = z_lo; z < z_hi; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      fft1d_inverse(a + d.idx(z, y, 0), d.nx);
}

void ffty_pass_z(Cplx* a, const Dims& d, std::size_t z_lo, std::size_t z_hi) {
  std::vector<Cplx> line(d.ny);
  for (std::size_t z = z_lo; z < z_hi; ++z) {
    for (std::size_t x = 0; x < d.nx; ++x) {
      for (std::size_t y = 0; y < d.ny; ++y) line[y] = a[d.idx(z, y, x)];
      fft1d_inverse(line.data(), d.ny);
      for (std::size_t y = 0; y < d.ny; ++y) a[d.idx(z, y, x)] = line[y];
    }
  }
}

// z-FFT over the [z][y][x] layout (shared-memory variants): gathers
// strided z-lines for the owned y range.
void fftz_pass_y(Cplx* a, const Dims& d, std::size_t y_lo, std::size_t y_hi) {
  std::vector<Cplx> line(d.nz);
  for (std::size_t y = y_lo; y < y_hi; ++y) {
    for (std::size_t x = 0; x < d.nx; ++x) {
      for (std::size_t z = 0; z < d.nz; ++z) line[z] = a[d.idx(z, y, x)];
      fft1d_inverse(line.data(), d.nz);
      for (std::size_t z = 0; z < d.nz; ++z) a[d.idx(z, y, x)] = line[z];
    }
  }
}

void normalize_pass_y(Cplx* a, const Dims& d, std::size_t y_lo,
                      std::size_t y_hi) {
  const double s = 1.0 / static_cast<double>(d.total());
  for (std::size_t y = y_lo; y < y_hi; ++y)
    for (std::size_t z = 0; z < d.nz; ++z)
      for (std::size_t x = 0; x < d.nx; ++x) a[d.idx(z, y, x)] *= s;
}

// Partial checksum over samples whose y coordinate falls in [y_lo, y_hi).
void checksum_pass_y(const Cplx* a, const Dims& d, std::size_t y_lo,
                     std::size_t y_hi, double& re, double& im) {
  for (std::size_t k = 0; k < kSamples; ++k) {
    const std::size_t f = sample_index(d, k);
    const std::size_t y = (f / d.nx) % d.ny;
    if (y < y_lo || y >= y_hi) continue;
    re += a[f].real();
    im += a[f].imag();
  }
}

}  // namespace

double fft3d_seq(const FftParams& p, const SeqHooks* hooks) {
  const Dims d{p.nx, p.ny, p.nz};
  std::vector<Cplx> a(d.total());
  double checksum = 0;
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (hooks && it == p.warmup_iters) hooks->on_start();
    init_pass_z(a.data(), d, p, it, 0, d.nz);
    fftx_pass_z(a.data(), d, 0, d.nz);
    ffty_pass_z(a.data(), d, 0, d.nz);
    fftz_pass_y(a.data(), d, 0, d.ny);
    normalize_pass_y(a.data(), d, 0, d.ny);
    double re = 0, im = 0;
    checksum_pass_y(a.data(), d, 0, d.ny, re, im);
    checksum += fold_checksum(re, im);
  }
  if (hooks) hooks->on_end();
  return checksum;
}

// ----------------------------------------------------------------------
// Shared-memory variants
// ----------------------------------------------------------------------

namespace {

struct SpfFftState {
  Cplx* a = nullptr;
  double* red = nullptr;  // shared reduction cells: re, im
  Dims d{};
  FftParams p{};
  bool aggregate = false;  // §5.4 optimization
};
// Per-rank: each rank thread (thread backend) or process (fork backend)
// binds its own copy of the compiler's "common block".
thread_local SpfFftState g_fft;

struct FftArgs {
  std::int32_t iter;
};

std::pair<std::size_t, std::size_t> zchunk(int rank, int nprocs,
                                           std::size_t nz) {
  const dist::BlockDist planes(nz, nprocs);
  return {planes.lo(rank), planes.hi(rank)};
}
std::pair<std::size_t, std::size_t> ychunk(int rank, int nprocs,
                                           std::size_t ny) {
  const dist::BlockDist planes(ny, nprocs);
  return {planes.lo(rank), planes.hi(rank)};
}

// Aggregated validate of the pages this process's y-slab touches (one
// strided range per z plane).
void validate_y_slab(tmk::Runtime& rt, std::size_t y_lo, std::size_t y_hi) {
  std::vector<tmk::Runtime::Range> ranges;
  ranges.reserve(g_fft.d.nz);
  for (std::size_t z = 0; z < g_fft.d.nz; ++z) {
    ranges.push_back({g_fft.a + g_fft.d.idx(z, y_lo, 0),
                      (y_hi - y_lo) * g_fft.d.nx * sizeof(Cplx)});
  }
  rt.validate_ranges(ranges);
}

void fft_init_loop(spf::Runtime& rt, const void* argp) {
  FftArgs args;
  std::memcpy(&args, argp, sizeof(args));
  const auto [lo, hi] = zchunk(rt.rank(), rt.nprocs(), g_fft.d.nz);
  if (g_fft.aggregate) {
    rt.tmk().validate(g_fft.a + g_fft.d.idx(lo, 0, 0),
                      (hi - lo) * g_fft.d.ny * g_fft.d.nx * sizeof(Cplx));
  }
  init_pass_z(g_fft.a, g_fft.d, g_fft.p, args.iter, lo, hi);
}
void fft_x_loop(spf::Runtime& rt, const void*) {
  const auto [lo, hi] = zchunk(rt.rank(), rt.nprocs(), g_fft.d.nz);
  fftx_pass_z(g_fft.a, g_fft.d, lo, hi);
}
void fft_y_loop(spf::Runtime& rt, const void*) {
  const auto [lo, hi] = zchunk(rt.rank(), rt.nprocs(), g_fft.d.nz);
  ffty_pass_z(g_fft.a, g_fft.d, lo, hi);
}
void fft_z_loop(spf::Runtime& rt, const void*) {
  const auto [lo, hi] = ychunk(rt.rank(), rt.nprocs(), g_fft.d.ny);
  if (g_fft.aggregate) validate_y_slab(rt.tmk(), lo, hi);
  fftz_pass_y(g_fft.a, g_fft.d, lo, hi);
}
void fft_norm_loop(spf::Runtime& rt, const void*) {
  const auto [lo, hi] = ychunk(rt.rank(), rt.nprocs(), g_fft.d.ny);
  // Pages straddling two y-slabs were re-invalidated by the neighbour's
  // z-FFT writes; the optimized variant batches the refetch here too.
  if (g_fft.aggregate) validate_y_slab(rt.tmk(), lo, hi);
  normalize_pass_y(g_fft.a, g_fft.d, lo, hi);
}
void fft_checksum_loop(spf::Runtime& rt, const void*) {
  const auto [lo, hi] = ychunk(rt.rank(), rt.nprocs(), g_fft.d.ny);
  if (g_fft.aggregate) validate_y_slab(rt.tmk(), lo, hi);
  double re = 0, im = 0;
  checksum_pass_y(g_fft.a, g_fft.d, lo, hi, re, im);
  rt.tmk().lock_acquire(2);
  g_fft.red[0] += re;
  g_fft.red[1] += im;
  rt.tmk().lock_release(2);
}
void fft_mark_start(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void fft_mark_end(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

double fft3d_spf_impl(runner::ChildContext& ctx, const FftParams& p,
                      bool aggregate) {
  spf::Runtime rt(ctx);
  g_fft = SpfFftState{};
  g_fft.d = Dims{p.nx, p.ny, p.nz};
  g_fft.p = p;
  g_fft.aggregate = aggregate;
  g_fft.a = rt.tmk().alloc<Cplx>(g_fft.d.total());
  g_fft.red = rt.tmk().alloc<double>(2);

  const auto li = rt.register_loop(fft_init_loop);
  const auto lx = rt.register_loop(fft_x_loop);
  const auto ly = rt.register_loop(fft_y_loop);
  const auto lz = rt.register_loop(fft_z_loop);
  const auto ln = rt.register_loop(fft_norm_loop);
  const auto lc = rt.register_loop(fft_checksum_loop);
  const auto ms = rt.register_loop(fft_mark_start);
  const auto me = rt.register_loop(fft_mark_end);

  return rt.run([&] {
    double checksum = 0;
    for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
      if (it == p.warmup_iters) rt.parallel(ms, FftArgs{0});
      g_fft.red[0] = 0;
      g_fft.red[1] = 0;
      rt.parallel(li, FftArgs{it});
      rt.parallel(lx, FftArgs{it});
      rt.parallel(ly, FftArgs{it});
      rt.parallel(lz, FftArgs{it});
      rt.parallel(ln, FftArgs{it});
      rt.parallel(lc, FftArgs{it});
      checksum += fold_checksum(g_fft.red[0], g_fft.red[1]);
    }
    rt.parallel(me, FftArgs{0});
    return checksum;
  });
}

}  // namespace

double fft3d_spf(runner::ChildContext& ctx, const FftParams& p) {
  return fft3d_spf_impl(ctx, p, /*aggregate=*/false);
}
double fft3d_spf_opt(runner::ChildContext& ctx, const FftParams& p) {
  return fft3d_spf_impl(ctx, p, /*aggregate=*/true);
}

// Hand-coded TreadMarks: two barriers per iteration (after the transpose
// point, after the checksum); per-process partial cells instead of a lock.
double fft3d_tmk(runner::ChildContext& ctx, const FftParams& p) {
  tmk::Runtime rt(ctx);
  const Dims d{p.nx, p.ny, p.nz};
  Cplx* a = rt.alloc<Cplx>(d.total());
  double* partials = rt.alloc<double>(2 * static_cast<std::size_t>(rt.nprocs()));

  const auto [z_lo, z_hi] = zchunk(rt.rank(), rt.nprocs(), d.nz);
  const auto [y_lo, y_hi] = ychunk(rt.rank(), rt.nprocs(), d.ny);
  rt.barrier();

  double checksum = 0;
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) rt.endpoint().mark_measurement_start();
    init_pass_z(a, d, p, it, z_lo, z_hi);
    fftx_pass_z(a, d, z_lo, z_hi);
    ffty_pass_z(a, d, z_lo, z_hi);
    rt.barrier();  // the transpose point
    fftz_pass_y(a, d, y_lo, y_hi);
    normalize_pass_y(a, d, y_lo, y_hi);
    double re = 0, im = 0;
    checksum_pass_y(a, d, y_lo, y_hi, re, im);
    partials[2 * rt.rank()] = re;
    partials[2 * rt.rank() + 1] = im;
    rt.barrier();  // after the checksum
    double sre = 0, sim = 0;
    for (int q = 0; q < rt.nprocs(); ++q) {
      sre += partials[2 * q];
      sim += partials[2 * q + 1];
    }
    checksum += fold_checksum(sre, sim);
  }
  rt.endpoint().mark_measurement_end();
  rt.barrier();
  return checksum;
}

// ----------------------------------------------------------------------
// Message passing: explicit packed transpose. PVMe sends one message per
// pair; XHPF the same bytes in compiler-sized chunks.
// ----------------------------------------------------------------------

namespace {

double fft3d_mp_impl(runner::ChildContext& ctx, const FftParams& p,
                     bool xhpf_chunked) {
  pvme::Comm comm(ctx.endpoint);
  const Dims d{p.nx, p.ny, p.nz};
  const int me = comm.rank();
  const int np = comm.nprocs();
  const dist::BlockDist zdist(d.nz, np);
  const dist::BlockDist ydist(d.ny, np);
  const std::size_t z_lo = zdist.lo(me), z_hi = zdist.hi(me);
  const std::size_t y_lo = ydist.lo(me), y_hi = ydist.hi(me);

  // Full-size scratch keeps the pass kernels' indexing identical; only
  // the owned slabs are populated.
  std::vector<Cplx> az(d.total());  // z-partitioned phase
  // y-partitioned phase, [y][z][x] layout.
  std::vector<Cplx> ay((y_hi - y_lo) * d.nz * d.nx);
  auto ay_at = [&](std::size_t y, std::size_t z, std::size_t x) -> Cplx& {
    return ay[((y - y_lo) * d.nz + z) * d.nx + x];
  };

  auto transpose = [&](int tag) {
    // Pack per destination: all (z, y, x-row) with z owned here and y
    // owned there, in (z, y) order.
    for (int q = 0; q < np; ++q) {
      if (q == me) continue;
      std::vector<Cplx> buf;
      buf.reserve((z_hi - z_lo) * ydist.count(q) * d.nx);
      for (std::size_t z = z_lo; z < z_hi; ++z)
        for (std::size_t y = ydist.lo(q); y < ydist.hi(q); ++y)
          buf.insert(buf.end(), &az[d.idx(z, y, 0)],
                     &az[d.idx(z, y, 0)] + d.nx);
      const auto* bytes = reinterpret_cast<const std::byte*>(buf.data());
      const std::size_t len = buf.size() * sizeof(Cplx);
      if (xhpf_chunked) {
        for (std::size_t off = 0; off < len;
             off += xhpf::Runtime::kCompilerChunk)
          comm.send(q, tag,
                    bytes + off,
                    std::min(xhpf::Runtime::kCompilerChunk, len - off));
      } else {
        comm.send(q, tag, bytes, len);
      }
    }
    // Local block.
    for (std::size_t z = z_lo; z < z_hi; ++z)
      for (std::size_t y = y_lo; y < y_hi; ++y)
        for (std::size_t x = 0; x < d.nx; ++x)
          ay_at(y, z, x) = az[d.idx(z, y, x)];
    // Receive from every other owner.
    for (int q = 0; q < np; ++q) {
      if (q == me) continue;
      std::vector<Cplx> buf(zdist.count(q) * (y_hi - y_lo) * d.nx);
      auto* bytes = reinterpret_cast<std::byte*>(buf.data());
      const std::size_t len = buf.size() * sizeof(Cplx);
      if (xhpf_chunked) {
        for (std::size_t off = 0; off < len;
             off += xhpf::Runtime::kCompilerChunk)
          comm.recv_exact(q, tag, bytes + off,
                          std::min(xhpf::Runtime::kCompilerChunk, len - off));
      } else {
        comm.recv_exact(q, tag, bytes, len);
      }
      std::size_t k = 0;
      for (std::size_t z = zdist.lo(q); z < zdist.hi(q); ++z)
        for (std::size_t y = y_lo; y < y_hi; ++y)
          for (std::size_t x = 0; x < d.nx; ++x) ay_at(y, z, x) = buf[k++];
    }
  };

  double checksum = 0;
  std::vector<Cplx> line(d.nz);
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    init_pass_z(az.data(), d, p, it, z_lo, z_hi);
    fftx_pass_z(az.data(), d, z_lo, z_hi);
    ffty_pass_z(az.data(), d, z_lo, z_hi);
    transpose(30 + (it & 1));
    for (std::size_t y = y_lo; y < y_hi; ++y) {
      for (std::size_t x = 0; x < d.nx; ++x) {
        for (std::size_t z = 0; z < d.nz; ++z) line[z] = ay_at(y, z, x);
        fft1d_inverse(line.data(), d.nz);
        for (std::size_t z = 0; z < d.nz; ++z) ay_at(y, z, x) = line[z];
      }
    }
    const double s = 1.0 / static_cast<double>(d.total());
    for (Cplx& v : ay) v *= s;
    double re = 0, im = 0;
    for (std::size_t k = 0; k < kSamples; ++k) {
      const std::size_t f = sample_index(d, k);
      const std::size_t y = (f / d.nx) % d.ny;
      if (y < y_lo || y >= y_hi) continue;
      const std::size_t z = f / (d.nx * d.ny);
      const std::size_t x = f % d.nx;
      re += ay_at(y, z, x).real();
      im += ay_at(y, z, x).imag();
    }
    const double sre = comm.allreduce_sum(re);
    const double sim = comm.allreduce_sum(im);
    checksum += fold_checksum(sre, sim);
  }
  comm.endpoint().mark_measurement_end();
  return checksum;
}

}  // namespace

double fft3d_pvme(runner::ChildContext& ctx, const FftParams& p) {
  return fft3d_mp_impl(ctx, p, /*xhpf_chunked=*/false);
}
double fft3d_xhpf(runner::ChildContext& ctx, const FftParams& p) {
  return fft3d_mp_impl(ctx, p, /*xhpf_chunked=*/true);
}

// ----------------------------------------------------------------------

Workload make_fft3d_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "3-D FFT";
  w.key = "fft";
  w.cls = WorkloadClass::kRegular;
  w.seq = detail::make_seq<FftParams>(&fft3d_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const FftParams&>(a);
    return std::to_string(p.nx) + "x" + std::to_string(p.ny) + "x" +
           std::to_string(p.nz) + " x " + std::to_string(p.iters);
  };
  // The sampled checksum reduction reassociates in every parallel
  // variant, hence the uniform tolerance.
  w.variants = {
      make_variant<FftParams>(System::kSpf, &fft3d_spf, 1e-9, {2, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<FftParams>(System::kSpfOpt, &fft3d_spf_opt, 1e-9, {4, 8}),
      make_variant<FftParams>(System::kTmk, &fft3d_tmk, 1e-9, {2, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<FftParams>(System::kXhpf, &fft3d_xhpf, 1e-9, {4, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<FftParams>(System::kPvme, &fft3d_pvme, 1e-9, {4, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
  };
  FftParams dflt;  // paper grid, fewer iterations
  dflt.nx = 128;
  dflt.ny = 128;
  dflt.nz = 64;
  dflt.iters = 2;
  dflt.warmup_iters = 1;
  w.default_params = dflt;
  FftParams reduced;
  reduced.nx = 16;
  reduced.ny = 16;
  reduced.nz = 16;
  reduced.iters = 2;
  reduced.warmup_iters = 0;
  w.reduced_params = reduced;
  FftParams scale;  // all-to-all transpose every iteration
  scale.nx = 16;
  scale.ny = 16;
  scale.nz = 16;
  scale.iters = 16;
  scale.warmup_iters = 1;
  w.scale_params = scale;
  FftParams full = dflt;  // paper: 128 x 128 x 64, 5 timed iterations
  full.iters = 5;
  w.full_params = full;
  FftParams calib = dflt;  // 1/5 of the paper's iterations
  calib.iters = 1;
  calib.warmup_iters = 0;
  w.calibration = {/*paper=*/37.7, /*iter_fraction=*/0.2, calib};
  w.paper_speedups = {{System::kSpf, 2.65},
                      {System::kSpfOpt, 5.05},
                      {System::kTmk, 3.06},
                      {System::kXhpf, 4.44},
                      {System::kPvme, 5.12}};
  return w;
}

}  // namespace apps
