// Shallow (§5.2): the NCAR shallow-water benchmark. Thirteen equal-sized
// two-dimensional arrays in wrap-around format; each iteration runs three
// steps (flux/vorticity, time update, time smoothing), each a main loop
// over the grid followed by wrap-around copying of the boundary row
// (contiguous — sequential or its own parallel loop) and boundary column
// (strided — folded into the owner's main loop here).
//
// System differences reproduced:
//   - SPF brackets *five* parallel loops per iteration (three steps plus
//     two row-wrap copy loops) in fork/join pairs — the "redundant
//     synchronization"; the row-wrap loops also make every process fault
//     in the opposite edge of the grid.
//   - Hand Tmk merges the wraps into the master's slack and needs three
//     barriers per iteration.
//   - XHPF conservatively halo-exchanges every written distributed array
//     after every loop; hand PVMe sends one aggregated boundary message
//     per neighbour per phase.
#pragma once

#include "apps/app_common.hpp"

namespace apps {

struct ShallowParams {
  std::size_t n = 256;  // interior edge; arrays are (n+1) x (n+1)
  int iters = 6;
  int warmup_iters = 1;
};

double shallow_seq(const ShallowParams& p, const SeqHooks* hooks = nullptr);

// Parallel variants; run inside a forked child. Return the checksum on
// every rank (reduced where necessary).
double shallow_spf(runner::ChildContext& ctx, const ShallowParams& p);
double shallow_tmk(runner::ChildContext& ctx, const ShallowParams& p);
double shallow_xhpf(runner::ChildContext& ctx, const ShallowParams& p);
double shallow_pvme(runner::ChildContext& ctx, const ShallowParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_shallow_workload();

}  // namespace apps
