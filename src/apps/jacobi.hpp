// Jacobi (§5.1): iterative 4-point-stencil PDE solver on two n x n float
// arrays (data + scratch), row-block partitioned. The boundary of the
// grid holds ones, the interior starts at zero; each iteration writes the
// stencil average into scratch, then copies scratch back into data.
//
// Communication structure: nearest-neighbour exchange of one boundary row
// per side per iteration. The shared-memory versions pay two barriers per
// iteration (the copy-back anti-dependence, §5.1); the SPF version also
// keeps the scratch array in shared memory because it is touched by a
// parallel loop. The measured window excludes initialization and one
// warm-up iteration (the paper times the last 100 of 101).
#pragma once

#include <cstdint>

#include "apps/app_common.hpp"

namespace apps {

struct JacobiParams {
  std::size_t n = 512;      // grid edge (floats)
  int iters = 10;           // timed iterations
  int warmup_iters = 1;     // untimed, cache-warming
};

/// Pure sequential baseline; returns the checksum.
double jacobi_seq(const JacobiParams& p, const SeqHooks* hooks = nullptr);

/// SPF variant under the improved interface; exposed (with the legacy
/// mapping below) for the §2.3 interface ablation bench. All other
/// variants are reached through the workload registry.
double jacobi_spf(runner::ChildContext& ctx, const JacobiParams& p);

/// SPF variant forced onto the original fork-join mapping (full barriers
/// plus paged-in control variables) — the §2.3 interface ablation.
double jacobi_spf_legacy(runner::ChildContext& ctx, const JacobiParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_jacobi_workload();

}  // namespace apps
