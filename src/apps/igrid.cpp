#include "apps/igrid.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dist/dist.hpp"
#include "common/prng.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

// The indirection map: each cell's stencil is centred on a displaced
// image of itself, with |displacement| bounded by p.displacement in each
// dimension — run-time data the compilers cannot see through, but the
// hand MP coder knows the bound and sizes halos accordingly.
struct Map {
  std::vector<std::int32_t> mi, mj;
  std::size_t n;
};

Map make_map(const IGridParams& p) {
  Map m;
  m.n = p.n;
  m.mi.resize(p.n * p.n);
  m.mj.resize(p.n * p.n);
  common::SplitMix64 g(p.seed);
  const int h = p.displacement;
  const auto lim = static_cast<std::int32_t>(p.n) - 1;
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.n; ++j) {
      const int di = static_cast<int>(g.next_below(2 * h + 1)) - h;
      const int dj = static_cast<int>(g.next_below(2 * h + 1)) - h;
      m.mi[i * p.n + j] = std::clamp(static_cast<std::int32_t>(i) + di,
                                     std::int32_t{0}, lim);
      m.mj[i * p.n + j] = std::clamp(static_cast<std::int32_t>(j) + dj,
                                     std::int32_t{0}, lim);
    }
  }
  return m;
}

void init_grid(float* g, std::size_t n) {
  for (std::size_t k = 0; k < n * n; ++k) g[k] = 1.0f;
  g[(n / 2) * n + n / 2] = 100.0f;           // centre spike
  g[(3 * n / 4) * n + 3 * n / 4] = 100.0f;   // lower-right spike
}

// One step over rows [lo, hi): nine-point stencil through the map.
void step_rows(const float* old_grid, float* new_grid,
               const std::int32_t* mi, const std::int32_t* mj, std::size_t n,
               std::size_t lo, std::size_t hi) {
  const auto lim = static_cast<std::int64_t>(n) - 1;
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t ci = mi[i * n + j];
      const std::int64_t cj = mj[i * n + j];
      float acc = 0.0f;
      for (std::int64_t a = -1; a <= 1; ++a) {
        const std::int64_t r = std::clamp<std::int64_t>(ci + a, 0, lim);
        for (std::int64_t b = -1; b <= 1; ++b) {
          const std::int64_t c = std::clamp<std::int64_t>(cj + b, 0, lim);
          acc += old_grid[static_cast<std::size_t>(r) * n +
                          static_cast<std::size_t>(c)];
        }
      }
      new_grid[i * n + j] = acc * (1.0f / 9.0f);
    }
  }
}

// Final reduction: max, min, and sum over the middle square, folded into
// one double. Row-ordered summation keeps it bit-exact across variants.
struct SquareStats {
  double mx = -1e30, mn = 1e30, sum = 0.0;
};

SquareStats square_stats_rows(const float* g, std::size_t n, std::size_t lo,
                              std::size_t hi, std::size_t sq_lo,
                              std::size_t sq_hi) {
  SquareStats s;
  for (std::size_t i = std::max(lo, sq_lo); i < std::min(hi, sq_hi); ++i) {
    for (std::size_t j = sq_lo; j < sq_hi; ++j) {
      const double v = g[i * n + j];
      s.mx = std::max(s.mx, v);
      s.mn = std::min(s.mn, v);
      s.sum += v;
    }
  }
  return s;
}

double fold_stats(const SquareStats& s) {
  return s.sum + 1e3 * s.mx + 7.0 * s.mn;
}

void square_bounds(std::size_t n, std::size_t& lo, std::size_t& hi) {
  const std::size_t side = std::min<std::size_t>(40, n / 2);
  lo = n / 2 - side / 2;
  hi = lo + side;
}

}  // namespace

double igrid_seq(const IGridParams& p, const SeqHooks* hooks) {
  const Map map = make_map(p);
  std::vector<float> a(p.n * p.n), b(p.n * p.n);
  init_grid(a.data(), p.n);
  float* old_g = a.data();
  float* new_g = b.data();
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (hooks && it == p.warmup_iters) hooks->on_start();
    step_rows(old_g, new_g, map.mi.data(), map.mj.data(), p.n, 0, p.n);
    std::swap(old_g, new_g);
  }
  if (hooks) hooks->on_end();
  std::size_t sq_lo, sq_hi;
  square_bounds(p.n, sq_lo, sq_hi);
  return fold_stats(square_stats_rows(old_g, p.n, 0, p.n, sq_lo, sq_hi));
}

// ----------------------------------------------------------------------
// SPF: both grids and the map live in shared memory; the encapsulated
// loop receives which buffer is "old" through its argument block (the
// compiler passes the loop's array arguments by descriptor), and the
// final reductions go through a lock-guarded shared cell.
// ----------------------------------------------------------------------

namespace {

struct SpfIGridState {
  float* buf[2] = {nullptr, nullptr};
  std::int32_t* mi = nullptr;
  std::int32_t* mj = nullptr;
  double* red = nullptr;  // shared cells: sum, max, min
  std::size_t n = 0;
};
thread_local SpfIGridState g_ig;  // per-rank (see fft3d.cpp)

struct IGridLoopArgs {
  std::uint32_t flip;  // buf[flip] is "old", buf[1-flip] is "new"
};

void igrid_step_loop(spf::Runtime& rt, const void* argp) {
  IGridLoopArgs args;
  std::memcpy(&args, argp, sizeof(args));
  const auto r = rt.own_block(g_ig.n);
  step_rows(g_ig.buf[args.flip], g_ig.buf[1 - args.flip], g_ig.mi, g_ig.mj,
            g_ig.n, static_cast<std::size_t>(r.lo),
            static_cast<std::size_t>(r.hi));
}

void igrid_reduce_loop(spf::Runtime& rt, const void* argp) {
  IGridLoopArgs args;
  std::memcpy(&args, argp, sizeof(args));
  const auto range = rt.own_block(g_ig.n);
  std::size_t sq_lo, sq_hi;
  square_bounds(g_ig.n, sq_lo, sq_hi);
  const SquareStats s = square_stats_rows(
      g_ig.buf[args.flip], g_ig.n, static_cast<std::size_t>(range.lo),
      static_cast<std::size_t>(range.hi), sq_lo, sq_hi);
  // §6.1: "the max-min finding and checksum computation are recognized as
  // reductions" — lock-guarded shared cells.
  rt.tmk().lock_acquire(1);
  g_ig.red[0] += s.sum;
  g_ig.red[1] = std::max(g_ig.red[1], s.mx);
  g_ig.red[2] = std::min(g_ig.red[2], s.mn);
  rt.tmk().lock_release(1);
}

void igrid_mark_start(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void igrid_mark_end(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

}  // namespace

double igrid_spf(runner::ChildContext& ctx, const IGridParams& p) {
  spf::Runtime rt(ctx);
  g_ig = SpfIGridState{};
  g_ig.n = p.n;
  g_ig.buf[0] = rt.tmk().alloc<float>(p.n * p.n);
  g_ig.buf[1] = rt.tmk().alloc<float>(p.n * p.n);
  g_ig.mi = rt.tmk().alloc<std::int32_t>(p.n * p.n);
  g_ig.mj = rt.tmk().alloc<std::int32_t>(p.n * p.n);
  g_ig.red = rt.tmk().alloc<double>(3);

  const auto step = rt.register_loop(igrid_step_loop);
  const auto reduce = rt.register_loop(igrid_reduce_loop);
  const auto mark_s = rt.register_loop(igrid_mark_start);
  const auto mark_e = rt.register_loop(igrid_mark_end);

  return rt.run([&] {
    // Sequential master code: build the map, initialize the grid.
    const Map map = make_map(p);
    std::memcpy(g_ig.mi, map.mi.data(), map.mi.size() * sizeof(std::int32_t));
    std::memcpy(g_ig.mj, map.mj.data(), map.mj.size() * sizeof(std::int32_t));
    init_grid(g_ig.buf[0], p.n);
    std::uint32_t flip = 0;
    for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
      if (it == p.warmup_iters) rt.parallel(mark_s, IGridLoopArgs{0});
      rt.parallel(step, IGridLoopArgs{flip});
      flip = 1 - flip;  // sequential array switch by descriptor
    }
    g_ig.red[0] = 0.0;
    g_ig.red[1] = -1e30;
    g_ig.red[2] = 1e30;
    rt.parallel(reduce, IGridLoopArgs{flip});
    rt.parallel(mark_e, IGridLoopArgs{0});
    SquareStats s;
    s.sum = g_ig.red[0];
    s.mx = g_ig.red[1];
    s.mn = g_ig.red[2];
    return fold_stats(s);
  });
}

// ----------------------------------------------------------------------
// Hand-coded TreadMarks: pointer swap, one barrier per step, on-demand
// boundary faulting.
// ----------------------------------------------------------------------

double igrid_tmk(runner::ChildContext& ctx, const IGridParams& p) {
  tmk::Runtime rt(ctx);
  float* a = rt.alloc<float>(p.n * p.n);
  float* b = rt.alloc<float>(p.n * p.n);
  std::int32_t* mi = rt.alloc<std::int32_t>(p.n * p.n);
  std::int32_t* mj = rt.alloc<std::int32_t>(p.n * p.n);

  const dist::BlockDist rows(p.n, rt.nprocs());
  const std::size_t lo = rows.lo(rt.rank());
  const std::size_t hi = rows.hi(rt.rank());

  if (rt.rank() == 0) {
    const Map map = make_map(p);
    std::memcpy(mi, map.mi.data(), map.mi.size() * sizeof(std::int32_t));
    std::memcpy(mj, map.mj.data(), map.mj.size() * sizeof(std::int32_t));
    init_grid(a, p.n);
  }
  rt.barrier();

  float* old_g = a;
  float* new_g = b;
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) rt.endpoint().mark_measurement_start();
    step_rows(old_g, new_g, mi, mj, p.n, lo, hi);
    rt.barrier();
    std::swap(old_g, new_g);
  }
  rt.endpoint().mark_measurement_end();

  std::size_t sq_lo, sq_hi;
  square_bounds(p.n, sq_lo, sq_hi);
  double result = 0;
  if (rt.rank() == 0)
    result = fold_stats(square_stats_rows(old_g, p.n, 0, p.n, sq_lo, sq_hi));
  rt.barrier();
  return result;
}

// ----------------------------------------------------------------------
// Message passing
// ----------------------------------------------------------------------

double igrid_xhpf(runner::ChildContext& ctx, const IGridParams& p) {
  pvme::Comm comm(ctx.endpoint);
  xhpf::Runtime xr(comm);
  const std::size_t n = p.n;
  const dist::BlockDist rows(n, comm.nprocs());

  // Replicated full arrays (the compiler cannot partition what it cannot
  // analyze); the map is computed redundantly (replicated sequential
  // code, no communication).
  const Map map = make_map(p);
  std::vector<float> a(n * n), b(n * n);
  init_grid(a.data(), n);
  float* old_g = a.data();
  float* new_g = b.data();

  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    step_rows(old_g, new_g, map.mi.data(), map.mj.data(), n,
              rows.lo(comm.rank()), rows.hi(comm.rank()));
    // §2.4 fallback: every process broadcasts its whole block at the end
    // of each step, because the compiler does not know what will be read.
    xr.broadcast_partition_rows(new_g, n, rows, 40 + (it & 1));
    std::swap(old_g, new_g);
  }
  comm.endpoint().mark_measurement_end();

  std::size_t sq_lo, sq_hi;
  square_bounds(n, sq_lo, sq_hi);
  // Replicated arrays: the reductions are local after the broadcasts.
  return fold_stats(square_stats_rows(old_g, n, 0, n, sq_lo, sq_hi));
}

double igrid_pvme(runner::ChildContext& ctx, const IGridParams& p) {
  pvme::Comm comm(ctx.endpoint);
  const std::size_t n = p.n;
  const dist::BlockDist rows(n, comm.nprocs());
  const std::size_t lo = rows.lo(comm.rank());
  const std::size_t hi = rows.hi(comm.rank());
  // The hand coder knows the map displaces at most `displacement` rows,
  // so a halo of h = displacement + 1 rows per side suffices.
  const std::size_t h = static_cast<std::size_t>(p.displacement) + 1;

  const Map map = make_map(p);  // replicated setup
  std::vector<float> a(n * n), b(n * n);  // full-size storage, own+halo used
  init_grid(a.data(), n);
  float* old_g = a.data();
  float* new_g = b.data();

  const int me = comm.rank();
  const int np = comm.nprocs();
  auto exchange_halo = [&](float* g, int tag) {
    const std::size_t down_rows = std::min(h, hi - lo);
    if (me > 0)
      comm.send(me - 1, tag, g + lo * n, down_rows * n * sizeof(float));
    if (me + 1 < np)
      comm.send(me + 1, tag + 1, g + (hi - down_rows) * n,
                down_rows * n * sizeof(float));
    if (me > 0) {
      const std::size_t lo_halo = (lo >= h) ? lo - h : 0;
      comm.recv_exact(me - 1, tag + 1, g + lo_halo * n,
                      (lo - lo_halo) * n * sizeof(float));
    }
    if (me + 1 < np) {
      const std::size_t hi_halo = std::min(hi + h, n);
      comm.recv_exact(me + 1, tag, g + hi * n,
                      (hi_halo - hi) * n * sizeof(float));
    }
  };

  exchange_halo(old_g, 10);
  for (int it = 0; it < p.warmup_iters + p.iters; ++it) {
    if (it == p.warmup_iters) {
      comm.barrier();
      comm.endpoint().mark_measurement_start();
    }
    step_rows(old_g, new_g, map.mi.data(), map.mj.data(), n, lo, hi);
    exchange_halo(new_g, 10 + 2 * (1 + (it & 1)));
    std::swap(old_g, new_g);
  }
  comm.endpoint().mark_measurement_end();

  std::size_t sq_lo, sq_hi;
  square_bounds(n, sq_lo, sq_hi);
  const SquareStats mine =
      square_stats_rows(old_g, n, lo, hi, sq_lo, sq_hi);
  // Gather partial stats to rank 0 in rank (= row) order.
  if (me == 0) {
    SquareStats total = mine;
    for (int q = 1; q < np; ++q) {
      SquareStats s;
      comm.recv_exact(q, 99, &s, sizeof(s));
      total.mx = std::max(total.mx, s.mx);
      total.mn = std::min(total.mn, s.mn);
      total.sum += s.sum;
    }
    return fold_stats(total);
  }
  comm.send(0, 99, &mine, sizeof(mine));
  return 0.0;
}

// ----------------------------------------------------------------------

Workload make_igrid_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "IGrid";
  w.key = "igrid";
  w.cls = WorkloadClass::kIrregular;
  w.seq = detail::make_seq<IGridParams>(&igrid_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const IGridParams&>(a);
    return std::to_string(p.n) + "^2 x " + std::to_string(p.iters);
  };
  w.variants = {
      make_variant<IGridParams>(System::kSpf, &igrid_spf, 0.0, {2, 8}),
      make_variant<IGridParams>(System::kTmk, &igrid_tmk, 0.0, {2, 8}),
      make_variant<IGridParams>(System::kXhpf, &igrid_xhpf, 0.0, {4, 8}),
      make_variant<IGridParams>(System::kPvme, &igrid_pvme, 0.0, {4, 8}),
  };
  IGridParams dflt;  // paper grid, fewer steps
  dflt.n = 500;
  dflt.iters = 10;
  dflt.warmup_iters = 1;
  w.default_params = dflt;
  IGridParams reduced;
  reduced.n = 96;
  reduced.iters = 4;
  reduced.warmup_iters = 1;
  w.reduced_params = reduced;
  IGridParams full;  // paper: 500 x 500, 19 timed steps
  full.n = 500;
  full.iters = 19;
  full.warmup_iters = 1;
  w.full_params = full;
  IGridParams calib;
  calib.n = 500;
  calib.iters = 19;
  calib.warmup_iters = 0;
  w.calibration = {/*paper=*/42.6, /*iter_fraction=*/1.0, calib};
  // The paper prints no hand-Tmk number for IGrid; ~7.7 is read off
  // Figure 2 (between SPF/Tmk and PVMe), hence the estimate marker.
  w.paper_speedups = {{System::kSpf, 7.54},
                      {System::kTmk, 7.70, /*estimated=*/true},
                      {System::kXhpf, 3.85},
                      {System::kPvme, 7.88}};
  return w;
}

}  // namespace apps
