// Workload registry: the data-driven catalogue of the paper's
// applications and their system variants.
//
// Each application contributes one type-erased `Workload` descriptor:
// its name, problem-parameter presets (bench default, integration-test
// reduced, paper full size), regular-vs-irregular class (Figure 1 vs
// Figure 2), a sequential baseline, and a variant table keyed by
// `apps::System`. The generic `run_workload()` entry point replaces the
// per-application six-way dispatch switches: benches, tests, and
// examples iterate `all_workloads()` instead of naming applications, so
// adding a seventh application (or a fifth system point to an existing
// one) is a one-file change — implement the variants, fill in a
// descriptor, and append it to the table in registry.cpp.
#pragma once

#include <any>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "apps/app_common.hpp"

namespace apps {

/// The paper's application taxonomy: regular applications (Figure 1,
/// Table 2 — analyzable access patterns) vs irregular ones (Figure 2,
/// Table 3 — run-time indirection that defeats both compilers).
enum class WorkloadClass { kRegular, kIrregular };

[[nodiscard]] constexpr const char* to_string(WorkloadClass c) noexcept {
  return c == WorkloadClass::kRegular ? "regular" : "irregular";
}

/// Named problem-parameter presets carried by every workload.
enum class Preset {
  kDefault,  // bench sizes: paper dimensions, reduced iteration counts
  kReduced,  // integration-test sizes: small enough for the ctest suite
  kFull,     // the paper's Table 1 sizes (TMK_FULL_SIZES=1)
};

/// One (workload, system) implementation plus its test contract.
struct Variant {
  System system = System::kSeq;
  /// Runs inside a forked child; returns the checksum on every rank.
  std::function<double(runner::ChildContext&, const std::any&)> run;
  /// Checksum tolerance vs the sequential baseline: 0 = bit-exact
  /// (identical arithmetic order), else relative (reassociated
  /// reductions).
  double tolerance = 0.0;
  /// Process counts the registry-driven checksum suite exercises; empty
  /// means the variant has preset constraints (e.g. page-aligned rows)
  /// and is covered by a dedicated test instead.
  std::vector<int> checksum_nprocs;
  /// Process counts bench_scale sweeps this variant at (the paper stops
  /// at 8; entries up to mpl::kMaxProcs extend it). Empty = not swept.
  std::vector<int> scale_nprocs;
};

/// How to map this host's CPU speed onto the paper's SP/2 node for this
/// workload: run the full-size sequential problem (at `iter_fraction` of
/// the paper's iterations) and divide into `paper_seconds`.
struct Calibration {
  double paper_seconds = 0.0;  // Table 1, or the EXPERIMENTS.md estimate
  double iter_fraction = 1.0;
  std::any params;
};

struct Workload {
  std::string name;  // presentation name, e.g. "3-D FFT"
  std::string key;   // lookup key, e.g. "fft"
  WorkloadClass cls = WorkloadClass::kRegular;

  /// Sequential baseline over the type-erased params; hooks bracket the
  /// measured window.
  std::function<double(const std::any&, const SeqHooks*)> seq;
  /// Human-readable size label for a params value, e.g. "2048^2 x 10".
  std::function<std::string(const std::any&)> describe;

  std::vector<Variant> variants;  // paper presentation order

  std::any default_params;
  std::any reduced_params;
  std::any full_params;
  /// Message-dense sizes for the transport scale sweeps (bench_scale):
  /// test-scale dimensions with amplified iteration counts, so host-
  /// side transport cost — not process spawn or raw compute — dominates
  /// the wall clock. Falls back to reduced_params when empty.
  std::any scale_params;
  /// Preset the registry-driven checksum suite runs at. Defaults to the
  /// reduced sizes; workloads cheap enough under the optimized harness
  /// (jacobi, mgs) opt into the full default sizes so integration tests
  /// exercise the paper's real dimensions.
  Preset test_preset = Preset::kReduced;
  Calibration calibration;

  /// One paper reference speedup (8 processors); `estimated` marks
  /// values read off a figure rather than printed in the paper.
  struct PaperSpeedup {
    System system = System::kSeq;
    double speedup = 0.0;
    bool estimated = false;
  };

  /// The paper's 8-processor speedups (Figures 1-2 and the §5
  /// hand-optimization study), for bench footers and sanity checks.
  std::vector<PaperSpeedup> paper_speedups;

  [[nodiscard]] const Variant* find(System s) const noexcept;
  [[nodiscard]] bool supports(System s) const noexcept {
    return s == System::kSeq || find(s) != nullptr;
  }
  /// The subset of kPaperSystems this workload implements, paper order.
  [[nodiscard]] std::vector<System> paper_systems() const;
  [[nodiscard]] const std::any& params(Preset preset) const noexcept;
  /// Paper reference speedup for a system; 0 when the paper has none.
  [[nodiscard]] double paper_speedup(System s) const noexcept;
  [[nodiscard]] const PaperSpeedup* find_paper_speedup(System s) const noexcept;
};

/// All six workloads in the paper's presentation order (regular block
/// first, then irregular).
[[nodiscard]] std::span<const Workload> all_workloads();

/// Synthetic diagnostic workloads: findable by key and runnable through
/// run_workload exactly like the paper's six, but kept out of
/// all_workloads() so figures, traffic tables, and the registry-driven
/// checksum suite preserve the paper's exact application set.
/// Currently: "race_stress", the seeded race-planting stress workload
/// for the TMK_RACECHECK detector, and "epoch_soak", the barrier-epoch
/// protocol-memory soak for the TMK_EPOCH_GC collector.
[[nodiscard]] std::span<const Workload> synthetic_workloads();

/// Lookup by key ("jacobi", "shallow", "mgs", "fft", "igrid", "nbf",
/// plus the synthetic keys); throws common::Error on an unknown key.
[[nodiscard]] const Workload& find_workload(std::string_view key);

/// The single generic entry point: runs one (workload, system, nprocs)
/// configuration under the multi-process harness. kSeq ignores nprocs.
/// Throws common::Error if the workload has no such variant.
runner::RunResult run_workload(const Workload& w, System system, int nprocs,
                               const runner::SpawnOptions& opts,
                               const std::any& params);
runner::RunResult run_workload(const Workload& w, System system, int nprocs,
                               const runner::SpawnOptions& opts,
                               Preset preset = Preset::kDefault);
runner::RunResult run_workload(std::string_view key, System system,
                               int nprocs, const runner::SpawnOptions& opts,
                               Preset preset = Preset::kDefault);

namespace detail {

/// Adapts a typed variant function to the registry's type-erased shape.
template <typename Params>
Variant make_variant(System system,
                     double (*fn)(runner::ChildContext&, const Params&),
                     double tolerance, std::vector<int> checksum_nprocs,
                     std::vector<int> scale_nprocs = {}) {
  Variant v;
  v.system = system;
  v.run = [fn](runner::ChildContext& ctx, const std::any& a) {
    return fn(ctx, std::any_cast<const Params&>(a));
  };
  v.tolerance = tolerance;
  v.checksum_nprocs = std::move(checksum_nprocs);
  v.scale_nprocs = std::move(scale_nprocs);
  return v;
}

template <typename Params>
std::function<double(const std::any&, const SeqHooks*)> make_seq(
    double (*fn)(const Params&, const SeqHooks*)) {
  return [fn](const std::any& a, const SeqHooks* hooks) {
    return fn(std::any_cast<const Params&>(a), hooks);
  };
}

}  // namespace detail

}  // namespace apps
