// IGrid (§6.1): a 9-point stencil relaxation whose neighbours are reached
// through an indirection map established at run time, so neither compiler
// can analyze the access pattern. The grid starts at one with two spikes
// (centre and lower-right); each step recomputes every cell from the nine
// cells around its displaced image and switches the two arrays. At the
// end, max / min / sum over a 40x40 square in the middle of the grid.
//
// This is the application class where the DSM wins: TreadMarks fetches
// exactly the boundary pages a process touches (on-demand + caching),
// while XHPF must broadcast each processor's whole partition every step
// ("regardless of whether the data will actually be used", §2.4). The
// hand-coded MP version exploits the map's bounded displacement with halo
// exchanges; the SPF version pays for the sequential master-executed
// array switch (no locality between parallel loops and sequential code,
// §7).
#pragma once

#include "apps/app_common.hpp"

namespace apps {

struct IGridParams {
  std::size_t n = 250;     // grid edge
  int iters = 8;           // timed steps
  int warmup_iters = 1;
  int displacement = 1;    // max indirection displacement (rows/cols)
  std::uint64_t seed = 777;
};

double igrid_seq(const IGridParams& p, const SeqHooks* hooks = nullptr);

// Parallel variants; run inside a forked child. Return the checksum on
// every rank (reduced where necessary).
double igrid_spf(runner::ChildContext& ctx, const IGridParams& p);
double igrid_tmk(runner::ChildContext& ctx, const IGridParams& p);
double igrid_xhpf(runner::ChildContext& ctx, const IGridParams& p);
double igrid_pvme(runner::ChildContext& ctx, const IGridParams& p);

/// Registry descriptor (name, presets, variant table); see registry.hpp.
struct Workload;
Workload make_igrid_workload();

}  // namespace apps
