#include "apps/epoch_soak.hpp"

#include <sstream>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/page.hpp"
#include "common/prng.hpp"
#include "tmk/runtime.hpp"

namespace apps {

namespace {

constexpr int kCellsPerPage =
    static_cast<int>(common::kPageSize / sizeof(std::uint64_t));

// Deterministic store schedule, rank-count independent: the (cell,
// value) pairs depend only on (epoch, page, k); nprocs decides merely
// WHICH rank performs them (the rotating owner), so the sequential
// baseline replays the identical stores without knowing nprocs.
std::uint64_t soak_mix(const EpochSoakParams& p, int e, int q, int k) {
  return common::mix64(p.seed + static_cast<std::uint64_t>(e) * 1000003ull +
                       static_cast<std::uint64_t>(q) * 10007ull +
                       static_cast<std::uint64_t>(k) * 101ull);
}
int soak_cell(const EpochSoakParams& p, int e, int q, int k) {
  return static_cast<int>(soak_mix(p, e, q, k) %
                          static_cast<std::uint64_t>(kCellsPerPage));
}
std::uint64_t soak_value(const EpochSoakParams& p, int e, int q, int k) {
  return (common::mix64(soak_mix(p, e, q, k)) & 0xFFFF) + 1;
}

std::string describe_params(const EpochSoakParams& p) {
  std::ostringstream os;
  os << p.epochs << "ep " << p.pages << "pg seed 0x" << std::hex << p.seed;
  return os.str();
}

}  // namespace

// ----------------------------------------------------------------------
// Sequential baseline: replays the store schedule and sums every cell.
// ----------------------------------------------------------------------

double epoch_soak_seq(const EpochSoakParams& p, const SeqHooks* hooks) {
  std::vector<std::uint64_t> mem(
      static_cast<std::size_t>(p.pages) * kCellsPerPage, 0);
  if (hooks) hooks->on_start();
  for (int e = 0; e < p.epochs; ++e)
    for (int q = 0; q < p.pages; ++q) {
      std::uint64_t* pg = mem.data() +
                          static_cast<std::size_t>(q) * kCellsPerPage;
      for (int k = 0; k < p.writes_per_page; ++k)
        pg[soak_cell(p, e, q, k)] = soak_value(p, e, q, k);
    }
  if (hooks) hooks->on_end();
  double sum = 0;
  for (const std::uint64_t v : mem) sum += static_cast<double>(v);
  return sum;
}

// ----------------------------------------------------------------------
// TreadMarks variant: the same schedule over shared pages, one barrier
// per epoch, with in-child protocol-memory assertions.
// ----------------------------------------------------------------------

double epoch_soak_tmk(runner::ChildContext& ctx, const EpochSoakParams& p) {
  tmk::Runtime rt(ctx);
  const int n = rt.nprocs();
  const int me = rt.rank();
  auto* heap = rt.alloc<std::uint64_t>(
      static_cast<std::size_t>(p.pages) * kCellsPerPage);
  rt.barrier();

  const bool gc_on = ctx.config.epoch_gc;
  const int interval = ctx.config.epoch_gc_interval;
  // Phase-aligned footprint samples: taken right after the barrier that
  // completed a GC round (barriers so far = alloc barrier + epochs run),
  // skipping the warm-up rounds — the collector reclaims one round
  // behind its snapshots, so steady state starts at the third round.
  std::vector<std::uint64_t> rss_samples;

  rt.endpoint().mark_measurement_start();
  volatile std::uint64_t sink = 0;
  for (int e = 0; e < p.epochs; ++e) {
    for (int q = 0; q < p.pages; ++q) {
      std::uint64_t* pg = heap + static_cast<std::size_t>(q) * kCellsPerPage;
      if (me == (e + q) % n)
        for (int k = 0; k < p.writes_per_page; ++k)
          pg[soak_cell(p, e, q, k)] = soak_value(p, e, q, k);
      // Rare rotating reader: most epochs leave every page's fresh write
      // notice pending on every non-owner — the growth class the
      // collector's validation pass exists to drain.
      if (p.read_every > 0 && e % p.read_every == 0 &&
          me == (e + q + 1) % n)
        sink = sink + pg[0];
    }
    rt.barrier();
    const int barriers = e + 2;  // alloc barrier + epochs so far
    if (p.assert_flat_rss && gc_on && interval > 0 &&
        barriers % interval == 0 && barriers >= 3 * interval)
      rss_samples.push_back(rt.mem_stats().protocol_rss_bytes);
  }
  rt.endpoint().mark_measurement_end();

  // Reclamation accounting must balance on every rank, every run,
  // whatever the GC setting (with the collector off, reclaimed is 0 and
  // created == live).
  const tmk::Runtime::MemStats ms = rt.mem_stats();
  COMMON_CHECK_MSG(
      ms.records_created == ms.records_reclaimed + ms.records_live,
      "epoch_soak rank " << me << ": interval accounting broken: created "
                         << ms.records_created << " != reclaimed "
                         << ms.records_reclaimed << " + live "
                         << ms.records_live);
  if (!gc_on)
    COMMON_CHECK_MSG(ms.records_reclaimed == 0,
                     "epoch_soak rank " << me
                                        << ": reclaimed records with the "
                                           "collector off");

  if (rss_samples.size() >= 2) {
    // Steady state must be flat: the last phase-aligned sample stays
    // within noise of the first (small slack absorbs container
    // capacity doubling and pool jitter).
    const std::uint64_t first = rss_samples.front();
    const std::uint64_t last = rss_samples.back();
    COMMON_CHECK_MSG(last <= first + first / 4 + (128u << 10),
                     "epoch_soak rank "
                         << me << ": protocol footprint grew under GC: "
                         << first << " -> " << last << " bytes across "
                         << rss_samples.size() << " GC rounds");
  }

  double sum = 0;
  if (me == 0)
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(p.pages) * kCellsPerPage; ++i)
      sum += static_cast<double>(heap[i]);
  rt.barrier();
  return sum;
}

// ----------------------------------------------------------------------

Workload make_epoch_soak_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "Epoch Soak";
  w.key = "epoch_soak";
  w.cls = WorkloadClass::kIrregular;
  w.seq = detail::make_seq<EpochSoakParams>(&epoch_soak_seq);
  w.describe = [](const std::any& a) {
    return describe_params(std::any_cast<const EpochSoakParams&>(a));
  };
  w.variants = {
      make_variant<EpochSoakParams>(System::kTmk, &epoch_soak_tmk, 0.0,
                                    {2, 4, 8}),
  };
  EpochSoakParams dflt;
  w.default_params = dflt;
  EpochSoakParams reduced;
  reduced.epochs = 96;
  reduced.pages = 8;
  w.reduced_params = reduced;
  EpochSoakParams full;
  full.epochs = 2560;
  full.assert_flat_rss = true;
  w.full_params = full;
  w.test_preset = Preset::kReduced;
  return w;
}

}  // namespace apps
