#include "apps/mgs.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"
#include "dist/dist.hpp"
#include "pvme/comm.hpp"
#include "spf/runtime.hpp"
#include "tmk/runtime.hpp"
#include "xhpf/runtime.hpp"

namespace apps {

namespace {

float init_value(const MgsParams& p, std::size_t i, std::size_t j) {
  common::SplitMix64 g(p.seed + i * p.m + j);
  // Diagonal boost keeps the basis well-conditioned in float.
  return static_cast<float>(g.next_double()) + (i == j ? 4.0f : 0.0f);
}

double dot_rows(const float* a, const float* b, std::size_t m) {
  double s = 0;
  for (std::size_t k = 0; k < m; ++k)
    s += static_cast<double>(a[k]) * static_cast<double>(b[k]);
  return s;
}

void normalize_row(float* row, std::size_t m) {
  const double norm = std::sqrt(dot_rows(row, row, m));
  const float inv = static_cast<float>(1.0 / norm);
  for (std::size_t k = 0; k < m; ++k) row[k] *= inv;
}

void orthogonalize(float* target, const float* pivot, std::size_t m) {
  const float d = static_cast<float>(dot_rows(pivot, target, m));
  for (std::size_t k = 0; k < m; ++k) target[k] -= d * pivot[k];
}

double checksum_rows(const float* a, std::size_t n, std::size_t m) {
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < m; ++j) s += a[i * m + j];
    total += s;
  }
  return total;
}

}  // namespace

double mgs_seq(const MgsParams& p, const SeqHooks* hooks) {
  std::vector<float> a(p.n * p.m);
  for (std::size_t i = 0; i < p.n; ++i)
    for (std::size_t j = 0; j < p.m; ++j) a[i * p.m + j] = init_value(p, i, j);
  if (hooks) hooks->on_start();
  for (std::size_t i = 0; i < p.n; ++i) {
    normalize_row(&a[i * p.m], p.m);
    for (std::size_t j = i + 1; j < p.n; ++j)
      orthogonalize(&a[j * p.m], &a[i * p.m], p.m);
  }
  if (hooks) hooks->on_end();
  return checksum_rows(a.data(), p.n, p.m);
}

// ----------------------------------------------------------------------
// SPF: normalization is sequential code, so it always runs on the master,
// pulling the pivot row away from its owner every step (§5.3).
// ----------------------------------------------------------------------

namespace {

struct SpfMgsState {
  float* a = nullptr;
  std::size_t n = 0, m = 0;
};
thread_local SpfMgsState g_mgs;  // per-rank (see fft3d.cpp)

struct MgsLoopArgs {
  std::uint64_t i;
};

void mgs_update_loop(spf::Runtime& rt, const void* argp) {
  MgsLoopArgs args;
  std::memcpy(&args, argp, sizeof(args));
  const float* pivot = g_mgs.a + args.i * g_mgs.m;
  for (std::int64_t j =
           rt.own_cyclic_begin(static_cast<std::int64_t>(args.i) + 1);
       j < static_cast<std::int64_t>(g_mgs.n); j += rt.nprocs()) {
    orthogonalize(g_mgs.a + static_cast<std::size_t>(j) * g_mgs.m, pivot,
                  g_mgs.m);
  }
}

void mgs_mark_start(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_start();
}
void mgs_mark_end(spf::Runtime& rt, const void*) {
  rt.tmk().endpoint().mark_measurement_end();
}

}  // namespace

double mgs_spf(runner::ChildContext& ctx, const MgsParams& p) {
  spf::Runtime rt(ctx);
  g_mgs = SpfMgsState{};
  g_mgs.a = rt.tmk().alloc<float>(p.n * p.m);
  g_mgs.n = p.n;
  g_mgs.m = p.m;
  const auto update = rt.register_loop(mgs_update_loop);
  const auto mark_s = rt.register_loop(mgs_mark_start);
  const auto mark_e = rt.register_loop(mgs_mark_end);
  return rt.run([&] {
    for (std::size_t i = 0; i < p.n; ++i)
      for (std::size_t j = 0; j < p.m; ++j)
        g_mgs.a[i * p.m + j] = init_value(p, i, j);
    rt.parallel(mark_s, MgsLoopArgs{0});
    for (std::size_t i = 0; i < p.n; ++i) {
      normalize_row(g_mgs.a + i * p.m, p.m);  // sequential -> master
      rt.parallel(update, MgsLoopArgs{i});
    }
    rt.parallel(mark_e, MgsLoopArgs{0});
    return checksum_rows(g_mgs.a, p.n, p.m);
  });
}

// ----------------------------------------------------------------------
// Hand-coded TreadMarks: the owner normalizes its own vector in place
// (the locality the SPF version lacks); one barrier per step publishes it.
// ----------------------------------------------------------------------

namespace {

double mgs_tmk_impl(runner::ChildContext& ctx, const MgsParams& p,
                    bool use_bcast) {
  tmk::Runtime rt(ctx);
  const std::size_t row_bytes = p.m * sizeof(float);
  if (use_bcast) {
    COMMON_CHECK_MSG(row_bytes % common::kPageSize == 0,
                     "mgs tmk_opt requires page-aligned rows");
  }
  float* a = rt.alloc<float>(p.n * p.m);

  const int me = rt.rank();
  const int np = rt.nprocs();
  const dist::CyclicDist vecs(p.n, np);
  for (std::size_t i = static_cast<std::size_t>(me); i < p.n;
       i += static_cast<std::size_t>(np))
    for (std::size_t j = 0; j < p.m; ++j) a[i * p.m + j] = init_value(p, i, j);
  rt.barrier();
  rt.endpoint().mark_measurement_start();

  for (std::size_t i = 0; i < p.n; ++i) {
    const int owner = vecs.owner(i);
    if (owner == me) normalize_row(a + i * p.m, p.m);
    if (use_bcast) {
      // §5.3 optimization: merged synchronization + data. The broadcast
      // both publishes the pivot and orders the step.
      rt.bcast(owner, a + i * p.m, row_bytes);
    } else {
      rt.barrier();
    }
    const float* pivot = a + i * p.m;
    for (std::int64_t j =
             dist::cyclic_begin(static_cast<std::int64_t>(i) + 1, me, np);
         j < static_cast<std::int64_t>(p.n); j += np) {
      orthogonalize(a + static_cast<std::size_t>(j) * p.m, pivot, p.m);
    }
  }
  rt.endpoint().mark_measurement_end();
  rt.barrier();
  double sum = 0;
  if (me == 0) sum = checksum_rows(a, p.n, p.m);
  rt.barrier();
  return sum;
}

}  // namespace

double mgs_tmk(runner::ChildContext& ctx, const MgsParams& p) {
  return mgs_tmk_impl(ctx, p, /*use_bcast=*/false);
}

double mgs_tmk_opt(runner::ChildContext& ctx, const MgsParams& p) {
  return mgs_tmk_impl(ctx, p, /*use_bcast=*/true);
}

// ----------------------------------------------------------------------
// Message passing
// ----------------------------------------------------------------------

double mgs_pvme(runner::ChildContext& ctx, const MgsParams& p) {
  pvme::Comm comm(ctx.endpoint);
  const int me = comm.rank();
  const int np = comm.nprocs();
  // Own cyclic rows only, plus one pivot buffer.
  std::vector<float> rows;
  std::vector<std::size_t> own;  // global indices, ascending
  for (std::size_t i = static_cast<std::size_t>(me); i < p.n;
       i += static_cast<std::size_t>(np))
    own.push_back(i);
  rows.resize(own.size() * p.m);
  for (std::size_t k = 0; k < own.size(); ++k)
    for (std::size_t j = 0; j < p.m; ++j)
      rows[k * p.m + j] = init_value(p, own[k], j);
  std::vector<float> pivot(p.m);
  const dist::CyclicDist vecs(p.n, np);

  comm.barrier();
  comm.endpoint().mark_measurement_start();

  for (std::size_t i = 0; i < p.n; ++i) {
    const int owner = vecs.owner(i);
    float* pv = pivot.data();
    if (owner == me) {
      pv = rows.data() + (i / static_cast<std::size_t>(np)) * p.m;
      normalize_row(pv, p.m);
    }
    // One broadcast carries both the data and the step ordering.
    comm.bcast(owner, pv, p.m * sizeof(float));
    for (std::size_t k = 0; k < own.size(); ++k) {
      if (own[k] > i) orthogonalize(rows.data() + k * p.m, pv, p.m);
    }
  }
  comm.endpoint().mark_measurement_end();

  // Checksum: row sums reassembled in global row order at rank 0.
  std::vector<double> sums(own.size());
  for (std::size_t k = 0; k < own.size(); ++k) {
    double s = 0;
    for (std::size_t j = 0; j < p.m; ++j) s += rows[k * p.m + j];
    sums[k] = s;
  }
  if (me == 0) {
    std::vector<std::vector<double>> all(static_cast<std::size_t>(np));
    all[0] = sums;
    for (int q = 1; q < np; ++q) {
      const std::size_t cnt = (p.n + static_cast<std::size_t>(np) -
                               static_cast<std::size_t>(q) - 1) /
                              static_cast<std::size_t>(np);
      all[static_cast<std::size_t>(q)].resize(cnt);
      if (cnt > 0)
        comm.recv_exact(q, 99, all[static_cast<std::size_t>(q)].data(),
                        cnt * sizeof(double));
    }
    double total = 0;
    for (std::size_t i = 0; i < p.n; ++i)
      total += all[i % static_cast<std::size_t>(np)]
                  [i / static_cast<std::size_t>(np)];
    return total;
  }
  if (!sums.empty()) comm.send(0, 99, sums.data(), sums.size() * sizeof(double));
  else comm.send(0, 99, nullptr, 0);
  return 0.0;
}

double mgs_xhpf(runner::ChildContext& ctx, const MgsParams& p) {
  pvme::Comm comm(ctx.endpoint);
  xhpf::Runtime xr(comm);
  const int me = comm.rank();
  const int np = comm.nprocs();
  // SPMD with replicated storage: every process holds the whole matrix
  // but only its cyclic rows are authoritative.
  std::vector<float> a(p.n * p.m, 0.0f);
  for (std::size_t i = static_cast<std::size_t>(me); i < p.n;
       i += static_cast<std::size_t>(np))
    for (std::size_t j = 0; j < p.m; ++j) a[i * p.m + j] = init_value(p, i, j);

  const dist::CyclicDist vecs(p.n, np);
  const dist::BlockDist elems(p.m, np);  // element-block of the normalize loop

  comm.barrier();
  comm.endpoint().mark_measurement_start();

  for (std::size_t i = 0; i < p.n; ++i) {
    const int owner = vecs.owner(i);
    float* pivot = a.data() + i * p.m;
    // (1) The sequential normalization references a non-owned row: the
    //     compiler materializes it everywhere first.
    comm.bcast(owner, pivot, p.m * sizeof(float));
    // (2) The norm is a recognized reduction: partial sums per element
    //     block + allreduce — "all processors participate" (§5.3).
    double partial = 0;
    for (std::size_t k = elems.lo(me); k < elems.hi(me); ++k)
      partial += static_cast<double>(pivot[k]) * static_cast<double>(pivot[k]);
    const double norm2 = comm.allreduce_sum(partial);
    const float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (std::size_t k = 0; k < p.m; ++k) pivot[k] *= inv;  // replicated
    // (3) The sequential code wrote a distributed row; the compiler
    //     conservatively re-communicates it before the parallel loop.
    comm.bcast(owner, pivot, p.m * sizeof(float));
    // (4) Owner-computes update of the cyclic rows.
    for (std::size_t j = i + 1; j < p.n; ++j) {
      if (vecs.owner(j) != me) continue;
      orthogonalize(a.data() + j * p.m, pivot, p.m);
    }
  }
  comm.endpoint().mark_measurement_end();

  // Row sums gathered in global row order.
  if (me == 0) {
    // Rows not owned locally are stale except pivots; fetch owned sums.
    std::vector<double> total_by_row(p.n, 0.0);
    for (std::size_t i = 0; i < p.n; ++i) {
      if (vecs.owner(i) == 0) {
        double s = 0;
        for (std::size_t j = 0; j < p.m; ++j) s += a[i * p.m + j];
        total_by_row[i] = s;
      }
    }
    for (int q = 1; q < np; ++q) {
      for (std::size_t i = static_cast<std::size_t>(q); i < p.n;
           i += static_cast<std::size_t>(np)) {
        double s;
        comm.recv_exact(q, 99, &s, sizeof(s));
        total_by_row[i] = s;
      }
    }
    double total = 0;
    for (double s : total_by_row) total += s;
    return total;
  }
  for (std::size_t i = static_cast<std::size_t>(me); i < p.n;
       i += static_cast<std::size_t>(np)) {
    double s = 0;
    for (std::size_t j = 0; j < p.m; ++j) s += a[i * p.m + j];
    comm.send(0, 99, &s, sizeof(s));
  }
  return 0.0;
}

// ----------------------------------------------------------------------

Workload make_mgs_workload() {
  using detail::make_variant;
  Workload w;
  w.name = "MGS";
  w.key = "mgs";
  w.cls = WorkloadClass::kRegular;
  w.seq = detail::make_seq<MgsParams>(&mgs_seq);
  w.describe = [](const std::any& a) {
    const auto& p = std::any_cast<const MgsParams&>(a);
    return std::to_string(p.n) + " x " + std::to_string(p.m);
  };
  // XHPF's distributed norm reassociates the reduction (§5.3), hence the
  // tolerance. kTmkOpt needs page-aligned rows (m a multiple of 1024),
  // so the reduced preset cannot drive it; apps_shape_test covers it.
  w.variants = {
      make_variant<MgsParams>(System::kSpf, &mgs_spf, 0.0, {2, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<MgsParams>(System::kTmk, &mgs_tmk, 0.0, {2, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<MgsParams>(System::kTmkOpt, &mgs_tmk_opt, 0.0, {}),
      make_variant<MgsParams>(System::kXhpf, &mgs_xhpf, 1e-5, {4, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
      make_variant<MgsParams>(System::kPvme, &mgs_pvme, 0.0, {4, 8},
                              {2, 4, 8, 16, 32, 64, 128}),
  };
  MgsParams dflt;  // the paper's size (step count == iteration count)
  dflt.n = 1024;
  dflt.m = 1024;
  w.default_params = dflt;
  MgsParams reduced;
  reduced.n = 48;
  reduced.m = 256;
  w.reduced_params = reduced;
  MgsParams scale;  // one broadcast per step: messaging-dense at n steps
  scale.n = 192;
  scale.m = 256;
  w.scale_params = scale;
  w.full_params = dflt;  // paper: 1024 x 1024
  // The optimized harness runs the paper size fast enough for ctest.
  w.test_preset = Preset::kDefault;
  w.calibration = {/*paper=*/56.4, /*iter_fraction=*/1.0, dflt};
  w.paper_speedups = {{System::kSpf, 3.35},
                      {System::kTmk, 4.19},
                      {System::kTmkOpt, 5.09},
                      {System::kXhpf, 5.06},
                      {System::kPvme, 6.55}};
  return w;
}

}  // namespace apps
