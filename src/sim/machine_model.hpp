// Machine performance model.
//
// The paper ran on an 8-node IBM SP/2 (thin nodes, AIX 3.2.5, the
// high-performance switch, user-level MPL). We run eight processes on one
// host, so wall-clock time cannot express parallel speedup. Instead every
// process keeps a *virtual clock* (see virtual_clock.hpp) advanced by
//   - its measured per-thread CPU time, scaled by `cpu_scale` so the
//     compute:communication ratio lands in the SP/2 regime, and
//   - modelled communication costs in the LogGP family: per-message send
//     and receive overheads, wire latency, and a per-byte gap.
//
// The constants below are SP/2-era figures: MPL user-space messaging cost
// tens of microseconds per message and sustained roughly 35 MB/s
// point-to-point; TreadMarks' own SP/2 measurements report small-message
// round-trips of ~100-200 us. The defaults deliberately land in that
// range. `cpu_scale` compensates for a 2020s core being ~40x faster than
// a 66 MHz POWER2 node on stencil code; it can be overridden through the
// TMK_CPU_SCALE environment variable for sensitivity studies.
#pragma once

#include <cstdint>

#include "common/env.hpp"

namespace simx {

/// LogGP-style cost model; all times in nanoseconds.
struct MachineModel {
  /// CPU occupancy on the sender per message (user-level PVM/MPL-era
  /// protocol stacks cost tens of microseconds per message each side).
  std::uint64_t send_overhead_ns = 50'000;
  /// CPU occupancy on the receiver per message.
  std::uint64_t recv_overhead_ns = 50'000;
  /// Wire latency between any two nodes (the SP/2 switch is flat).
  std::uint64_t latency_ns = 60'000;
  /// Per-byte gap: 1 / bandwidth. 35 MB/s -> ~28.6 ns/B.
  double gap_ns_per_byte = 1e9 / (35.0 * 1024 * 1024);
  /// Multiplier applied to measured thread CPU time, mapping this host's
  /// compute speed onto the modelled node's. The bench harness calibrates
  /// this per application against the paper's Table 1 sequential times
  /// (see bench/bench_calibration.hpp); 300 is a stencil-code default.
  double cpu_scale = 300.0;

  // ---- DSM protocol operation costs ----------------------------------
  // Host CPU spent inside the DSM runtime is NOT scaled by cpu_scale —
  // the host:SP/2 cost ratio of signals and page copies differs wildly
  // from that of floating-point loops. Instead the runtime charges these
  // SP/2-era constants (TreadMarks reports twin 166us / diff 313us on a
  // DECstation-5000/240; a POWER2 thin node runs them roughly twice as
  // fast). "The overhead of detecting modifications (twinning, diffing,
  // and page faults)" — §5.1 — is exactly this set.

  /// Kernel signal delivery + mprotect + handler dispatch per page fault.
  std::uint64_t page_fault_ns = 25'000;
  /// Making a twin (4 KiB copy + bookkeeping).
  std::uint64_t twin_ns = 80'000;
  /// Creating one diff (word-compare of page and twin, encode).
  std::uint64_t diff_create_ns = 150'000;
  /// Applying one fetched diff: fixed part...
  std::uint64_t diff_apply_ns = 20'000;
  /// ...plus this much per KiB of diff payload.
  std::uint64_t diff_apply_ns_per_kb = 10'000;
  /// Service-thread handler: fixed dispatch cost per request...
  std::uint64_t handler_base_ns = 30'000;
  /// ...plus this much per diff/lock record touched.
  std::uint64_t handler_per_item_ns = 5'000;

  [[nodiscard]] std::uint64_t diff_apply_cost(std::size_t bytes) const
      noexcept {
    return diff_apply_ns + (static_cast<std::uint64_t>(bytes) *
                            diff_apply_ns_per_kb) / 1024;
  }
  [[nodiscard]] std::uint64_t handler_cost(std::size_t items) const noexcept {
    return handler_base_ns + items * handler_per_item_ns;
  }

  /// Cost charged to a process for a message of `bytes` payload it sends.
  [[nodiscard]] std::uint64_t send_cost(std::size_t bytes) const noexcept {
    // The sender touches every byte once (user-level copy out).
    return send_overhead_ns +
           static_cast<std::uint64_t>(static_cast<double>(bytes) * 0.2 *
                                      gap_ns_per_byte);
  }

  /// Wire time after which a message of `bytes` becomes visible remotely.
  [[nodiscard]] std::uint64_t wire_time(std::size_t bytes) const noexcept {
    return latency_ns + static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                                   gap_ns_per_byte);
  }

  /// Scales a raw thread-CPU delta into virtual nanoseconds.
  [[nodiscard]] std::uint64_t scale_cpu(std::uint64_t cpu_ns) const noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(cpu_ns) * cpu_scale);
  }

  /// The SP/2 defaults, with TMK_CPU_SCALE honoured if set.
  [[nodiscard]] static MachineModel sp2() {
    MachineModel m;
    if (const auto v = common::env::positive_double_knob("TMK_CPU_SCALE"))
      m.cpu_scale = *v;
    return m;
  }

  /// A model with all communication free — used by unit tests that verify
  /// protocol behaviour without caring about timing.
  [[nodiscard]] static MachineModel zero_cost() noexcept {
    MachineModel m;
    m.send_overhead_ns = 0;
    m.recv_overhead_ns = 0;
    m.latency_ns = 0;
    m.gap_ns_per_byte = 0.0;
    m.cpu_scale = 1.0;
    m.page_fault_ns = 0;
    m.twin_ns = 0;
    m.diff_create_ns = 0;
    m.diff_apply_ns = 0;
    m.diff_apply_ns_per_kb = 0;
    m.handler_base_ns = 0;
    m.handler_per_item_ns = 0;
    return m;
  }
};

}  // namespace simx
