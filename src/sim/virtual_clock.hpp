// Per-process virtual clock.
//
// Drives the trace-driven performance simulation described in DESIGN.md §2:
// between runtime events the clock absorbs the thread's measured CPU time
// (scaled); at communication events it follows LogGP rules. Every frame on
// the wire carries the sender's virtual timestamp, so a blocking receive
// computes max(local progress, remote arrival).
//
// The service thread answers remote requests (diff fetches, lock forwards)
// while the main thread computes. Its handler cost is charged two ways:
//   - to the requester, through the response timestamp, and
//   - to the serving process, through `interrupt_ns_`, folded into its
//     main clock at the next event (TreadMarks' SIGIO handlers steal the
//     same cycles).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/cpu_clock.hpp"
#include "sim/machine_model.hpp"

namespace simx {

class VirtualClock {
 public:
  explicit VirtualClock(MachineModel model) noexcept
      : model_(model), last_cpu_ns_(common::thread_cpu_ns()) {}

  /// Folds compute time since the previous event into the clock.
  /// Must only be called from the owning (main) thread. In protocol mode
  /// (inside the DSM runtime) host CPU is discarded — protocol work is
  /// charged through explicit model constants instead.
  void fold_compute() noexcept {
    // In protocol mode the window is discarded and last_cpu_ns_ is
    // reset on section exit, so the (genuine syscall) thread-CPU read
    // can be skipped entirely — messaging inside the DSM runtime then
    // costs no clock_gettime at all.
    if (!protocol_mode_) {
      const std::uint64_t now = common::thread_cpu_ns();
      vt_ns_ += model_.scale_cpu(now - last_cpu_ns_);
      last_cpu_ns_ = now;
    }
    vt_ns_ += interrupt_ns_.exchange(0, std::memory_order_relaxed);
  }

  /// Adds an explicitly modelled cost (protocol operations).
  void add_model(std::uint64_t ns) noexcept { vt_ns_ += ns; }

  /// Protocol-mode nesting control; use ProtocolSection.
  /// `exclude_host_ns` is subtracted from the folded window: the host's
  /// own trap-delivery cost precedes a fault handler's entry and must not
  /// be scaled as application compute.
  bool set_protocol_mode(bool on, std::uint64_t exclude_host_ns = 0) noexcept {
    const std::uint64_t now = common::thread_cpu_ns();
    if (!protocol_mode_) {
      const std::uint64_t window = now - last_cpu_ns_;
      vt_ns_ += model_.scale_cpu(window > exclude_host_ns
                                     ? window - exclude_host_ns
                                     : 0);
    }
    last_cpu_ns_ = now;
    vt_ns_ += interrupt_ns_.exchange(0, std::memory_order_relaxed);
    const bool prev = protocol_mode_;
    protocol_mode_ = on;
    return prev;
  }

  /// Charges a send and returns the virtual time at which the payload
  /// becomes visible at the destination. `self` marks loopback messages,
  /// which are free (a manager process talking to itself).
  [[nodiscard]] std::uint64_t on_send(std::size_t bytes, bool self) noexcept {
    fold_compute();
    if (self) return vt_ns_;
    vt_ns_ += model_.send_cost(bytes);
    return vt_ns_ + model_.wire_time(bytes);
  }

  /// Blocks (logically) until `arrival_vt`, then charges receive overhead.
  /// Host CPU burned since the last event is *dropped*, not folded: the
  /// caller folds real compute before starting to wait (see wait_app),
  /// and the polling/draining syscall time in between is host transport
  /// overhead already modelled by recv_overhead_ns.
  void on_recv(std::uint64_t arrival_vt, bool self) noexcept {
    skip_transport();
    vt_ns_ = std::max(vt_ns_, arrival_vt);
    if (!self) vt_ns_ += model_.recv_overhead_ns;
    vt_ns_ += interrupt_ns_.exchange(0, std::memory_order_relaxed);
  }

  /// Discards host CPU burned since the last event (transport syscalls,
  /// ring copies, pumping): modelled costs already cover it. A no-op in
  /// protocol mode, where the whole window is dropped at section exit
  /// anyway. The discarded cycles are tallied per transport-visible
  /// window in `host_transport_ns_` — a host-cost diagnostic the scale
  /// benches report per backend; it never feeds the virtual time, so
  /// modelled results stay transport-invariant.
  void skip_transport() noexcept {
    if (!protocol_mode_) {
      const std::uint64_t now = common::thread_cpu_ns();
      host_transport_ns_ += now - last_cpu_ns_;
      last_cpu_ns_ = now;
    }
  }

  /// Host CPU discarded by skip_transport so far: the main thread's
  /// real cost of moving bytes (outside DSM protocol sections, whose
  /// windows are indivisible and excluded).
  [[nodiscard]] std::uint64_t host_transport_ns() const noexcept {
    return host_transport_ns_;
  }

  /// Jump the clock forward to at least `vt` (used when a collective
  /// decides a departure time for all participants).
  void advance_to(std::uint64_t vt) noexcept {
    fold_compute();
    vt_ns_ = std::max(vt_ns_, vt);
  }

  /// Adds service-handler cycles observed on the service thread.
  /// Thread-safe; called by the service thread.
  void charge_interrupt(std::uint64_t ns) noexcept {
    interrupt_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t now() noexcept {
    fold_compute();
    return vt_ns_;
  }

  /// Reads the clock without folding (safe from any thread, approximate).
  [[nodiscard]] std::uint64_t peek() const noexcept { return vt_ns_; }

  [[nodiscard]] const MachineModel& model() const noexcept { return model_; }

 private:
  MachineModel model_;
  std::uint64_t vt_ns_ = 0;
  std::uint64_t last_cpu_ns_ = 0;
  std::uint64_t host_transport_ns_ = 0;
  bool protocol_mode_ = false;
  std::atomic<std::uint64_t> interrupt_ns_{0};
};

/// RAII guard marking a DSM-runtime section on the main thread: host CPU
/// inside the section is dropped in favour of the model's explicit
/// protocol charges. Nestable.
class ProtocolSection {
 public:
  explicit ProtocolSection(VirtualClock& clock,
                           std::uint64_t exclude_host_ns = 0) noexcept
      : clock_(clock),
        prev_(clock.set_protocol_mode(true, exclude_host_ns)) {}
  ~ProtocolSection() { clock_.set_protocol_mode(prev_); }
  ProtocolSection(const ProtocolSection&) = delete;
  ProtocolSection& operator=(const ProtocolSection&) = delete;

 private:
  VirtualClock& clock_;
  bool prev_;
};

}  // namespace simx
