// SPF compiler runtime (§2.1, §2.3).
//
// Mirrors the run-time library that APR's Forge SPF source-to-source
// compiler emits calls to: a fork-join model where a master process
// executes all sequential code and dispatches encapsulated parallel-loop
// subroutines to workers. Applications written against this runtime are
// structured exactly as compiler-generated code:
//   - every parallel loop is a standalone function registered in a table
//     (SPF "encapsulates each parallel loop into a new subroutine");
//   - a synchronization pair brackets *every* loop, needed or not (the
//     "redundant synchronization" §5 charges the compiler with);
//   - all arrays touched by any parallel loop live in shared memory,
//     padded to page boundaries — including scratch arrays a hand coder
//     would keep private (§5.1's Jacobi finding);
//   - scalar reductions go through a lock-guarded shared cell (§2.1).
//
// Two dispatch modes reproduce the §2.3 interface study:
//   kImproved — barrier departure/arrival split, loop-control variables
//               piggybacked: 2(n-1) messages per loop;
//   kLegacy   — full barriers around the loop plus two shared control
//               pages the workers page-fault in: 8(n-1) messages per loop.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dist/dist.hpp"
#include "tmk/runtime.hpp"

namespace spf {

class Runtime;

/// A compiler-encapsulated parallel loop body. Executes this process's
/// share of the iteration space (the function itself partitions using
/// the dist layer's block_range/cyclic_begin with rank()/nprocs()).
using LoopFn = void (*)(Runtime&, const void* args);

enum class DispatchMode : std::uint8_t { kImproved, kLegacy };

class Runtime {
 public:
  struct Options {
    DispatchMode mode = DispatchMode::kImproved;
    tmk::Runtime::Options tmk;
  };

  Runtime(runner::ChildContext& ctx, Options options);
  explicit Runtime(runner::ChildContext& ctx) : Runtime(ctx, Options()) {}

  [[nodiscard]] int rank() const noexcept { return tmk_.rank(); }
  [[nodiscard]] int nprocs() const noexcept { return tmk_.nprocs(); }
  [[nodiscard]] tmk::Runtime& tmk() noexcept { return tmk_; }

  /// Registers a parallel-loop subroutine; must be called in the same
  /// order on every process (the compiler emits one global table).
  std::uint32_t register_loop(LoopFn fn);

  /// Runs the program: rank 0 executes `master_program` (the sequential
  /// parts plus parallel() calls); other ranks serve loops until the
  /// master finishes. Returns the master's result (0.0 on workers).
  double run(const std::function<double()>& master_program);

  /// Master-side: dispatches loop `loop_id` with an argument block to all
  /// processes (including itself) and waits for completion.
  void parallel(std::uint32_t loop_id, const void* args, std::size_t bytes);

  template <typename Args>
  void parallel(std::uint32_t loop_id, const Args& args) {
    static_assert(std::is_trivially_copyable_v<Args>);
    parallel(loop_id, &args, sizeof(args));
  }

  /// Lock-guarded contribution to a shared reduction cell (§2.1): the
  /// caller accumulated `local` privately over its iterations.
  void reduce_add(int lock_id, double* shared_cell, double local);

  // ---- iteration-space partitioning (the compiler's BLOCK/CYCLIC) ----
  //
  // Thin owner-computes views over the shared dist layer, bound to this
  // process's rank. Loop bodies call these instead of re-deriving the
  // partition arithmetic.

  /// The BLOCK decomposition of [0, n) over this run's processes.
  [[nodiscard]] dist::BlockDist block(std::size_t n) const noexcept {
    return dist::BlockDist(n, nprocs());
  }

  /// This process's BLOCK slice of [0, n).
  [[nodiscard]] dist::Range own_block(std::size_t n) const noexcept {
    return block(n).range(rank());
  }

  /// First index >= lo this process owns under CYCLIC scheduling;
  /// iterate with stride nprocs().
  [[nodiscard]] std::int64_t own_cyclic_begin(std::int64_t lo) const noexcept {
    return dist::cyclic_begin(lo, rank(), nprocs());
  }

 private:
  void worker_loop();
  void dispatch_improved(std::uint32_t loop_id, const void* args,
                         std::size_t bytes);
  void dispatch_legacy(std::uint32_t loop_id, const void* args,
                       std::size_t bytes);

  static constexpr std::uint32_t kExitFunc = 0xffffffffu;
  static constexpr std::size_t kMaxArgs = common::kPageSize;

  tmk::Runtime tmk_;
  Options options_;
  std::vector<LoopFn> loops_;

  // Legacy-mode control block: the paper notes the loop index and the
  // subroutine parameters "reside in different shared pages, incurring
  // two requests" per loop — so they are two distinct shared pages here.
  std::uint32_t* legacy_func_page_ = nullptr;
  std::byte* legacy_args_page_ = nullptr;
};

}  // namespace spf
