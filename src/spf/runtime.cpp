#include "spf/runtime.hpp"

#include <cstring>

#include "common/check.hpp"

namespace spf {

Runtime::Runtime(runner::ChildContext& ctx, Options options)
    : tmk_(ctx, options.tmk), options_(options) {
  // The legacy interface's control block is allocated first so its two
  // pages have the same addresses in every process regardless of what
  // the application allocates afterwards.
  legacy_func_page_ = tmk_.alloc<std::uint32_t>(1, /*page_align=*/true);
  legacy_args_page_ =
      static_cast<std::byte*>(tmk_.alloc_bytes(kMaxArgs, /*page_align=*/true));
}

std::uint32_t Runtime::register_loop(LoopFn fn) {
  loops_.push_back(fn);
  return static_cast<std::uint32_t>(loops_.size() - 1);
}

double Runtime::run(const std::function<double()>& master_program) {
  if (rank() == 0) {
    const double result = master_program();
    // Dismiss the workers.
    if (nprocs() > 1) {
      if (options_.mode == DispatchMode::kImproved) {
        tmk_.fork_broadcast(kExitFunc, {});
      } else {
        *legacy_func_page_ = kExitFunc;
        tmk_.barrier();
      }
    }
    return result;
  }
  worker_loop();
  return 0.0;
}

void Runtime::worker_loop() {
  for (;;) {
    std::uint32_t func_id;
    std::vector<std::byte> args;
    if (options_.mode == DispatchMode::kImproved) {
      tmk::Runtime::ForkWork work = tmk_.wait_fork();
      func_id = work.func_id;
      args = std::move(work.args);
      if (func_id == kExitFunc) return;
      loops_[func_id](*this, args.data());
      tmk_.join_worker();
    } else {
      // Legacy: wait at the barrier for the master to publish work, then
      // page-fault the two control pages in.
      tmk_.barrier();
      func_id = *legacy_func_page_;
      if (func_id == kExitFunc) return;
      loops_[func_id](*this, legacy_args_page_);
      tmk_.barrier();
    }
  }
}

void Runtime::parallel(std::uint32_t loop_id, const void* args,
                       std::size_t bytes) {
  COMMON_CHECK_MSG(rank() == 0, "parallel() is master-only");
  COMMON_CHECK(loop_id < loops_.size());
  COMMON_CHECK(bytes <= kMaxArgs);
  if (options_.mode == DispatchMode::kImproved) {
    dispatch_improved(loop_id, args, bytes);
  } else {
    dispatch_legacy(loop_id, args, bytes);
  }
}

void Runtime::dispatch_improved(std::uint32_t loop_id, const void* args,
                                std::size_t bytes) {
  tmk_.fork_broadcast(loop_id,
                      {static_cast<const std::byte*>(args), bytes});
  loops_[loop_id](*this, args);
  tmk_.join_master();
}

void Runtime::dispatch_legacy(std::uint32_t loop_id, const void* args,
                              std::size_t bytes) {
  // The master writes the loop index and the parameters into two shared
  // pages; the barrier publishes them; every worker faults both in.
  *legacy_func_page_ = loop_id;
  if (bytes > 0) std::memcpy(legacy_args_page_, args, bytes);
  tmk_.barrier();
  loops_[loop_id](*this, args);  // master uses its private copy
  tmk_.barrier();
}

void Runtime::reduce_add(int lock_id, double* shared_cell, double local) {
  tmk_.lock_acquire(lock_id);
  *shared_cell += local;
  tmk_.lock_release(lock_id);
}

}  // namespace spf
