// In-process mailbox transport: the thread backend's interconnect.
//
// The same per-(src, dst, lane, sending-thread) SPSC ring mesh as
// ShmTransport (spsc_ring.hpp), but over plain process-private memory:
// every rank is a thread of ONE address space, so there is no fork to
// inherit through, no fd plumbing, and no MAP_SHARED — the fabric is a
// single private anonymous mapping owned by the parent-side state,
// which stays alive until every rank thread has joined. Futex-based
// blocking works unchanged on private memory, so the steady-state
// datagram path is as syscall-free as the shm backend's.
//
// Because all ranks share the address space, adopt() may be called for
// every rank (concurrently, from the rank threads); the transports are
// non-owning views and the InprocFabricState releases the region when
// the run harness destroys the Fabric after joining the rank threads.
#pragma once

#include <memory>

#include "mpl/shm_transport.hpp"
#include "mpl/transport.hpp"

namespace mpl {

class InprocTransport final : public ShmTransport {
 public:
  /// Non-owning view of an initialized ring region; lifetime is managed
  /// by the InprocFabricState that created it.
  InprocTransport(void* base, int nprocs, int rank)
      : ShmTransport(base, nprocs, rank, /*owns_region=*/false,
                     TransportKind::kInproc) {}
};

/// Allocates and initializes a process-private ring region; adopt() may
/// be called once per rank, from any thread. The region is released
/// when the state is destroyed — after every transport view is gone.
[[nodiscard]] std::unique_ptr<FabricState> make_inproc_fabric(int nprocs);

}  // namespace mpl
