// Process mesh: transport-agnostic endpoint core.
//
// The parent process builds the interconnect (a Fabric) *before* forking
// the DSM processes, so every child inherits it. Per ordered pair
// (i -> j) there are two one-directional channels:
//
//   svc[i->j] : anything process i sends to j's *service* thread
//               (diff/page requests, lock requests and forwards)
//   app[i->j] : anything process i sends to j's *main* thread
//               (replies, grants, barrier and fork/join traffic, pvme data)
//
// How chunks cross the host is a Transport concern (transport.hpp):
// socketpairs or shared-memory rings, selected per run. Everything
// protocol-visible lives HERE, in the Endpoint — framing, chunked
// reassembly keyed by (src, kind, tag, req_id), logical-message
// counters, and virtual-clock charges — which is why modelled results
// (message counts, bytes, virtual times, checksums) are identical
// across transports by construction.
//
// All transports are non-blocking on the send side. Main-thread sends
// that would block first drain incoming app traffic into the Inbox
// ("pumping"), which makes all-to-all patterns deadlock-free without a
// rendezvous protocol.
//
// Hot-path discipline: receives reuse a payload-buffer pool, sends hand
// the caller's buffer straight to the transport (no staging copy), and
// the wait predicates are non-owning function references — steady-state
// traffic allocates only when a payload outgrows every pooled buffer.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "mpl/counters.hpp"
#include "mpl/frame.hpp"
#include "mpl/transport.hpp"
#include "sim/virtual_clock.hpp"

namespace mpl {

/// Non-owning reference to a `bool(const Frame&)` predicate: wait_app
/// callers pass capturing lambdas without materializing a std::function
/// (and without its potential heap allocation) per receive.
class FramePredicate {
 public:
  template <typename F>
  FramePredicate(const F& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](const void* o, const Frame& fr) {
          return (*static_cast<const F*>(o))(fr);
        }) {}

  bool operator()(const Frame& f) const { return call_(obj_, f); }

 private:
  const void* obj_;
  bool (*call_)(const void*, const Frame&);
};

/// Recycled payload-buffer pool plus its demand signal: `takes` counts
/// buffers drawn since the last Endpoint::trim_buffer_pools(), so the
/// trim can shrink a post-spike surplus (one giant all-to-all phase,
/// say) down to what the steady state actually re-uses.
struct BufferPool {
  std::vector<std::vector<std::byte>> bufs;
  std::size_t takes = 0;
};

/// Parent-side bundle of the whole interconnect. Children call
/// Endpoint's constructor with their rank (which adopts their slice);
/// destroying the Fabric afterwards releases every resource that rank
/// does not own.
class Fabric {
 public:
  explicit Fabric(int nprocs, TransportKind kind = TransportKind::kSocket);
  Fabric(Fabric&&) noexcept = default;
  Fabric& operator=(Fabric&&) noexcept = default;

  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] TransportKind kind() const noexcept { return kind_; }

  /// Builds this rank's Transport, consuming its slice of the parent
  /// state. Called (once) from the child, via Endpoint.
  [[nodiscard]] std::unique_ptr<Transport> adopt(int rank);

  /// Parent-side death-propagation handle (see PeerKiller). Call before
  /// discarding the Fabric — the killer takes over the resources it
  /// needs (the shm region view, the poison-pipe write ends).
  [[nodiscard]] std::unique_ptr<PeerKiller> make_peer_killer();

 private:
  int nprocs_ = 0;
  TransportKind kind_ = TransportKind::kSocket;
  std::unique_ptr<FabricState> state_;
};

/// One process's view of the fabric. Construct in the child with adopt().
class Endpoint {
 public:
  /// Takes this rank's transport out of the fabric. The caller should
  /// then destroy the Fabric object to release all foreign resources.
  Endpoint(Fabric& fabric, int rank, simx::MachineModel model);

  /// Flushes any burst left open (so no frame is ever stranded in the
  /// transport — a rank unwinding mid-burst must not hang its peers),
  /// then releases the transport.
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] simx::VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] TransportKind transport_kind() const noexcept {
    return transport_->kind();
  }
  [[nodiscard]] Counters counters() const noexcept {
    return counters_.snapshot();
  }
  /// Host-side interconnect cost (send publishes, futex wakes) this
  /// rank has accumulated. Purely a host observable — never modelled.
  [[nodiscard]] HostStats host_stats() const noexcept {
    return transport_->host_stats();
  }

  // ---- per-peer send bursts (main thread) ----
  //
  // A multi-frame operation toward one peer — a barrier arrival carrying
  // write notices, the departs of a tree barrier, a lock grant with
  // piggybacked intervals — can be handed to the transport as ONE unit:
  //
  //   ep.begin_burst(dst);
  //   ep.send_app(...); ep.send_svc(...);   // frames are batched
  //   ep.flush_burst();                      // one publish, one doorbell
  //
  // Bursts change HOST cost only: modelled clocks and counters are
  // charged per logical message exactly as without bursting. The burst
  // is auto-flushed at every operation boundary that could block on a
  // peer (wait_app, a send to a different destination, destruction), so
  // forgetting flush_burst() affects batching, never correctness.
  // Disabled entirely (every call a no-op) when TMK_FABRIC_BURST=0.

  /// Opens (or switches) the current send burst toward `dst`.
  void begin_burst(int dst);

  /// Publishes every batched frame and closes the burst. No-op when no
  /// burst is open.
  void flush_burst();

  // ---- main-thread send paths ----

  /// Sends a logical message to `dst`'s main thread. Charges the virtual
  /// clock and the message counters. Pumps incoming app traffic if the
  /// channel is full.
  void send_app(int dst, FrameKind kind, std::int32_t tag,
                std::uint32_t req_id, std::span<const std::byte> payload);

  /// Sends a logical message to `dst`'s service thread (main thread).
  void send_svc(int dst, FrameKind kind, std::int32_t tag,
                std::uint32_t req_id, std::span<const std::byte> payload);

  // ---- service-thread send paths (timestamp supplied by caller) ----

  /// Service thread: send to `dst`'s main thread with an explicit modelled
  /// arrival time (the service thread must not touch the main clock).
  void send_app_stamped(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload,
                        std::uint64_t vt_arrival);

  /// Service thread: send to `dst`'s service thread.
  void send_svc_stamped(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload,
                        std::uint64_t vt_arrival);

  /// Models the arrival time of a `bytes`-byte reply issued by the service
  /// thread at virtual time `base` (request arrival + handler time).
  [[nodiscard]] std::uint64_t stamp_reply(std::uint64_t base, int dst,
                                          std::size_t bytes) const noexcept {
    if (dst == rank_) return base;
    return base + clock_.model().send_cost(bytes) +
           clock_.model().wire_time(bytes);
  }

  // ---- main-thread receive path ----

  /// Blocks until a frame matching `pred` is available on any app channel
  /// (earlier non-matching frames are queued for later consumers), then
  /// returns it. Charges the virtual clock for the receive.
  Frame wait_app(FramePredicate pred);

  /// Convenience: wait for a specific kind (any source, any tag).
  Frame wait_app_kind(FrameKind kind);

  /// Convenience: wait for a specific kind from a specific source.
  Frame wait_app_kind_from(FrameKind kind, int src);

  /// Non-blocking drain of app channels into the pending queue.
  void pump();

  /// True if a frame matching `pred` is already queued.
  [[nodiscard]] bool has_pending(FramePredicate pred) const;

  /// Returns a consumed frame's payload buffer to the receive pool, so
  /// steady-state traffic recycles capacity instead of re-allocating.
  /// Optional: an un-recycled payload is simply freed. Main thread only.
  void recycle_buffer(std::vector<std::byte>&& buf);

  /// Service-thread counterpart of recycle_buffer() for frames consumed
  /// by svc handlers.
  void recycle_svc_buffer(std::vector<std::byte>&& buf);

  /// High-water-mark trim of the app-side receive pool: drops pooled
  /// buffers beyond the number actually taken since the previous trim
  /// (the DSM calls this at barriers). Main thread only — the svc pool
  /// is service-thread-owned and stays bounded by its fixed cap.
  void trim_buffer_pools();

  // ---- failure handling -----------------------------------------------
  //
  // Every main-thread blocking point (wait_app's drain loop, a blocked
  // send or burst flush) re-checks, once per kMaxWaitSliceMs:
  //   - this rank's own injected fault (unwind instead of wedging);
  //   - the runner's peer-death poison (abort naming the dead rank);
  //   - the optional wait deadline (TMK_WAIT_DEADLINE_MS; 0 = off).
  // On poison or deadline expiry the rank dumps a machine-readable
  // protocol snapshot ("TMK_CRASH_REPORT {json}" on stderr) and throws
  // a short common::Error naming this rank, the wait site, and the dead
  // rank — so every survivor of a peer death unwinds in bounded time
  // with a blame line, instead of parking until a global watchdog.

  /// Labels the protocol operation the main thread is about to block in
  /// ("barrier 3 fan-in", "lock 7 acquire (manager 1)", ...); the label
  /// appears in crash reports and blame errors. The pointee must
  /// outlive the call (it is copied into a bounded buffer).
  void set_wait_site(const char* site) noexcept;
  [[nodiscard]] const char* wait_site() const noexcept { return wait_site_; }

  /// Registers a protocol-state dumper for crash reports (the DSM
  /// runtime dumps its vector clock, barrier phase, and lock table).
  /// The writer must emit plain text WITHOUT double quotes (it lands
  /// inside a JSON string) and must tolerate being called from the main
  /// thread while the service thread runs. Pass nullptr to clear.
  void set_forensics(void (*writer)(void* ctx, std::ostream& os),
                     void* ctx) noexcept {
    forensics_writer_ = writer;
    forensics_ctx_ = ctx;
  }

  /// Runtime hook at barrier entry: drives the exit-at-barrier fault.
  void fault_barrier_entered() { transport_->barrier_entered(); }

  /// True once this rank's own injected fault has fired.
  [[nodiscard]] bool self_dead() const noexcept {
    return transport_->self_dead();
  }

  // ---- service-thread receive path ----

  /// Blocks until a frame arrives on any svc channel or `stop` becomes
  /// true (checked whenever the transport's wait is woken). Returns
  /// nullopt on stop.
  std::optional<Frame> next_svc_request(const std::atomic<bool>& stop);

  /// Wakes the service thread (so it can observe `stop`).
  void wake_service();

  // ---- measurement window ---------------------------------------------
  // The paper times the steady-state iterations, excluding initialization
  // and the first (cache-warming) iteration. mark_measurement_start()
  // snapshots the virtual clock and counters; the harness reports values
  // relative to the snapshot. Call it at the same logical point (right
  // after a barrier) in every process.

  void mark_measurement_start() {
    measure_vt_start_ = clock_.now();
    measure_counters_start_ = counters_.snapshot();
  }

  /// Ends the window (e.g. before an untimed checksum-gathering phase).
  void mark_measurement_end() {
    measure_vt_end_ = clock_.now();
    measure_counters_end_ = counters_.snapshot();
    measure_ended_ = true;
  }

  [[nodiscard]] std::uint64_t measured_vt() noexcept {
    const std::uint64_t end = measure_ended_ ? measure_vt_end_ : clock_.now();
    return end - measure_vt_start_;
  }
  [[nodiscard]] Counters measured_counters() const noexcept {
    const Counters end =
        measure_ended_ ? measure_counters_end_ : counters_.snapshot();
    return end.since(measure_counters_start_);
  }

 private:
  // Per-channel reassembly state. Only multi-chunk messages (payloads
  // over kMaxChunk) ever touch the map; single-datagram frames complete
  // on the fast path in feed(). The map key precomposes (src, kind, tag,
  // req_id) into two 64-bit words — the full 96 bits of identity, hashed
  // in one multiply instead of a std::map tuple comparison chain.
  struct Assembler {
    struct Key {
      std::uint64_t hi;  // src << 16 | kind
      std::uint64_t lo;  // u32(tag) << 32 | req_id
      [[nodiscard]] bool operator==(const Key&) const = default;
    };
    struct KeyHash {
      [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
        std::uint64_t x = (k.hi * 0x9e3779b97f4a7c15ull) ^ k.lo;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
      }
    };
    std::unordered_map<Key, Frame, KeyHash> partial;

    // Feeds one datagram; returns a completed frame if this chunk was the
    // last one. Completed payloads draw capacity from `pool`.
    std::optional<Frame> feed(const FrameHeader& h,
                              std::span<const std::byte> chunk,
                              BufferPool& pool);
  };

  void send_chunks(Lane lane, int dst, bool pump_while_blocked,
                   FrameKind kind, std::int32_t tag, std::uint32_t req_id,
                   std::span<const std::byte> payload,
                   std::uint64_t vt_arrival);
  void count_if_remote(int dst, FrameKind kind, std::size_t bytes) noexcept;

  // Drains ready app datagrams; appends completed frames to pending_.
  // If `block`, waits until at least one frame completes.
  void drain_app(bool block);

  /// Main-thread health re-check between wait slices: throws when this
  /// rank's fault fired, fail_wait()s on peer poison or an expired
  /// deadline. `start_ns` is when this blocking point started waiting.
  void check_wait_health(std::uint64_t start_ns);

  /// Dumps the TMK_CRASH_REPORT line and throws the blame error.
  [[noreturn]] void fail_wait(const char* reason, int dead_rank,
                              std::uint64_t start_ns);

  int rank_;
  int nprocs_;
  simx::VirtualClock clock_;
  AtomicCounters counters_;

  std::unique_ptr<Transport> transport_;

  // Recycled payload buffers. app side: main thread only. svc side:
  // service thread only (frames handed to handlers that run on the
  // service thread).
  BufferPool app_buffer_pool_;
  BufferPool svc_buffer_pool_;

  Assembler app_assembler_;
  Assembler svc_assembler_;
  std::deque<Frame> pending_;
  std::deque<Frame> svc_pending_;

  std::uint64_t measure_vt_start_ = 0;
  std::uint64_t measure_vt_end_ = 0;
  Counters measure_counters_start_{};
  Counters measure_counters_end_{};
  bool measure_ended_ = false;

  // Burst state (main thread only; the service thread's sends batch at
  // most within one send_chunks call). burst_lane_used_ tracks which
  // transport lanes the open burst has touched, so flush only visits
  // those.
  bool burst_enabled_ = true;
  int burst_dst_ = -1;
  bool burst_lane_used_[2] = {false, false};

  // Failure-handling state (main thread only, except the forensics
  // writer pointer which is set once before the service thread starts).
  long long wait_deadline_ms_ = 0;  // 0 = no deadline
  char wait_site_[64] = "startup";
  void (*forensics_writer_)(void*, std::ostream&) = nullptr;
  void* forensics_ctx_ = nullptr;
  // Last app-lane frame kind seen per source (0xffff = none yet): the
  // crash report's "how far did each peer get" breadcrumb.
  std::vector<std::uint16_t> last_frame_kind_;
};

}  // namespace mpl
