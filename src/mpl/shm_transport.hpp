// Shared-memory mailbox transport: syscall-free datagram delivery.
//
// One MAP_SHARED | MAP_ANONYMOUS region is mapped by the parent before
// forking, so every child inherits it at the same address. Inside it,
// per (src, dst, lane, sending-thread) there is a lock-free SPSC ring
// (spsc_ring.hpp) — four rings per ordered pair, so the main and
// service threads of one process never share a producer cursor, and
// per-thread FIFO matches what two threads sendmsg()ing one SEQPACKET
// socket provide. Per (dst, lane) there is additionally a futex
// doorbell: senders bump a sequence word after each push and issue
// FUTEX_WAKE only when the receiver has advertised itself asleep, so
// the steady-state send/receive path performs no syscalls at all —
// the property Richie et al.'s Epiphany mailbox DSM demonstrates and
// the reason the modelled 16/32-process sweeps become affordable.
//
// Memory footprint: nprocs^2 * 4 rings of 128 KiB — ~8.6 GiB of address
// space at 128 processes, but MAP_NORESERVE and touched lazily: a ring
// materializes pages only when it first carries a datagram. Per
// (dst, lane) the region also keeps an active-source bitmask; senders
// publish a ring's bit on first use and the receiver's drain walks only
// set bits, so both the page footprint AND the per-drain work scale
// with the pairs that actually communicate, not with nprocs^2.
//
// Failure propagation: the region header carries a poison bitmask of
// dead ranks. The runner's PeerKiller (make_shm_killer) sets the dead
// rank's bit and bumps every doorbell, so parked survivors wake, see
// the bit through poll_poison, and unwind naming the dead rank.
#pragma once

#include <memory>
#include <vector>

#include "mpl/spsc_ring.hpp"
#include "mpl/transport.hpp"

namespace mpl {

/// Ring data capacity. Must be at least SpscRing::min_capacity of the
/// largest datagram (kMaxChunk payload + framing, TWICE over — see
/// min_capacity's wrap analysis) so chunking stays identical across
/// transports and a maximum-size push can always make progress.
inline constexpr std::uint32_t kShmRingBytes = 128 * 1024;
static_assert(kShmRingBytes >= SpscRing::min_capacity(kMaxChunk));

/// Bytes of shared mapping an nprocs mesh needs.
[[nodiscard]] std::size_t shm_region_bytes(int nprocs) noexcept;

/// Writes the region prologue (magic, nprocs, ring geometry) into a
/// zeroed `shm_region_bytes(nprocs)` block. Zero pages are a valid
/// empty state for every doorbell, poison word, and ring, so this is
/// all the initialization a fresh region needs. Shared by the
/// fork-inherited MAP_SHARED fabric and the in-process fabric
/// (inproc_transport.hpp).
void init_ring_region(void* base, int nprocs) noexcept;

/// Builds a PeerKiller over an initialized ring region: poison(k) sets
/// rank k's dead bit and wakes every parked receiver. When
/// `owns_region` is set the killer unmaps the caller's view when
/// destroyed (the process backend's parent hands its view over); the
/// thread backend's killer is a plain non-owning view.
[[nodiscard]] std::unique_ptr<PeerKiller> make_shm_killer(void* base,
                                                          int nprocs,
                                                          bool owns_region);

class ShmTransport : public Transport {
 public:
  /// `base` is the inherited region (already initialized by the
  /// parent-side fabric state). When `owns_region` is set — the normal
  /// case for an adopting process — the destructor unmaps this
  /// process's view, so in-process uses (benches, the thread backend's
  /// InprocTransport) do not leak the mapping. `kind` lets the
  /// in-process reuse report itself distinctly.
  ShmTransport(void* base, int nprocs, int rank, bool owns_region,
               TransportKind kind = TransportKind::kShm);
  ~ShmTransport() override;

  struct Doorbell;  // shared-memory futex doorbell, defined in the .cpp

  [[nodiscard]] TransportKind kind() const noexcept override {
    return kind_;
  }
  [[nodiscard]] HostStats host_stats() const noexcept override;
  void describe_channels(std::ostream& os) override;

 protected:
  bool do_try_send(Lane lane, int dst, const FrameHeader& h,
                   std::span<const std::byte> chunk) override;
  void do_wait_send(Lane lane, int dst, int timeout_ms) override;
  std::size_t do_drain(Lane lane, const ChunkSink& sink) override;
  [[nodiscard]] std::uint32_t do_recv_token(Lane lane) override;
  void do_wait_recv(Lane lane, std::uint32_t token, int timeout_ms) override;
  void do_wake_service() override;
  void do_begin_burst(Lane lane, int dst) override;
  [[nodiscard]] bool do_try_flush_burst(Lane lane, int dst) override;
  [[nodiscard]] int poll_poison() noexcept override;

 private:
  [[nodiscard]] int sender_slot() const noexcept;
  [[nodiscard]] SpscRing& out_ring(Lane lane, int slot, int dst) noexcept;
  [[nodiscard]] Doorbell& doorbell(int rank, Lane lane) noexcept;
  [[nodiscard]] std::atomic<std::uint64_t>* active_mask(int rank,
                                                        Lane lane) noexcept;
  void announce_ring(Lane lane, int slot, int dst) noexcept;
  void ring_doorbell(int dst, Lane lane) noexcept;
  void publish_staged(Lane lane, int slot, int dst) noexcept;

  void* base_;
  bool owns_region_;
  TransportKind kind_;
  unsigned long main_thread_;  // pthread_t of the constructing thread
  // Ring views: outgoing indexed [slot][lane][dst], incoming
  // [lane][src * 2 + slot]. Slot 0 = main thread, slot 1 = the (single)
  // service thread. Views are plain pointer math over the region — no
  // ring's shared pages are touched until it actually carries traffic.
  std::vector<SpscRing> out_[2][2];
  std::vector<SpscRing> in_[2];
  // Local "already announced in the region's active mask" flags per
  // [slot][lane], so the once-per-ring fetch_or is not repeated on
  // every send. Slot 0 is only touched by the main thread, slot 1 only
  // by the service thread.
  std::vector<std::uint8_t> announced_[2][2];
  // Open-burst destination per [slot][lane] (-1 = none). While a burst
  // is open, try_sends toward it stage into the ring without a tail
  // store or doorbell; try_flush_burst publishes the whole batch with
  // one release store and one doorbell bump. Each slot is owned by its
  // single sending thread.
  int burst_dst_[2][2] = {{-1, -1}, {-1, -1}};
  // Burst mode also arms a receive-side spin before the futex sleep
  // (TMK_FABRIC_BURST=0 restores the sleep-only wait). The per-lane
  // budget adapts: a wait satisfied while spinning grows it, a wait
  // that had to sleep anyway shrinks it, so oversubscribed hosts (more
  // rank threads than cores) degrade back toward pure futex waits.
  // Each lane's budget is touched only by that lane's receiving thread.
  bool burst_enabled_ = true;
  int spin_budget_[2] = {0, 0};
  // Host-side cost counters (HostStats): both sending threads bump
  // them, so they are relaxed atomics.
  std::atomic<std::uint64_t> host_send_calls_{0};
  std::atomic<std::uint64_t> host_futex_wakes_{0};
};

/// Parent-side: maps and initializes the region, hands out transports.
[[nodiscard]] std::unique_ptr<FabricState> make_shm_fabric(int nprocs);

}  // namespace mpl
