#include "mpl/fault_inject.hpp"

#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "common/env.hpp"

namespace mpl {

namespace {

/// Parses the integer in `v` (the whole string); throws on garbage.
std::uint64_t parse_u64(std::string_view key, std::string_view v) {
  COMMON_CHECK_MSG(!v.empty(), "TMK_FAULT_INJECT: empty value for " << key);
  std::uint64_t n = 0;
  for (const char c : v) {
    COMMON_CHECK_MSG(c >= '0' && c <= '9', "TMK_FAULT_INJECT: bad value '"
                                               << v << "' for " << key);
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan p;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view kv = spec.substr(0, comma);
    spec = (comma == std::string_view::npos) ? std::string_view{}
                                             : spec.substr(comma + 1);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    COMMON_CHECK_MSG(eq != std::string_view::npos,
                     "TMK_FAULT_INJECT: expected key=value, got '" << kv
                                                                   << "'");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    if (key == "seed") {
      p.seed = parse_u64(key, val);
    } else if (key == "rank") {
      if (val == "any") {
        p.any_rank = true;
      } else {
        p.rank = static_cast<int>(parse_u64(key, val));
      }
    } else if (key == "crash-at-send") {
      p.crash_at_send = parse_u64(key, val);
      COMMON_CHECK_MSG(p.crash_at_send > 0,
                       "TMK_FAULT_INJECT: crash-at-send is 1-based");
    } else if (key == "delay-before-publish") {
      const std::size_t at = val.find('@');
      COMMON_CHECK_MSG(at != std::string_view::npos,
                       "TMK_FAULT_INJECT: delay-before-publish wants MS@N");
      p.delay_ms =
          static_cast<std::uint32_t>(parse_u64(key, val.substr(0, at)));
      p.delay_before_send = parse_u64(key, val.substr(at + 1));
      COMMON_CHECK_MSG(p.delay_before_send > 0,
                       "TMK_FAULT_INJECT: delay-before-publish is 1-based");
    } else if (key == "exit-at-barrier") {
      p.exit_at_barrier = static_cast<std::uint32_t>(parse_u64(key, val));
      COMMON_CHECK_MSG(p.exit_at_barrier > 0,
                       "TMK_FAULT_INJECT: exit-at-barrier is 1-based");
    } else if (key == "hard") {
      p.hard = !val.empty() && val[0] != '0';
    } else {
      COMMON_CHECK_MSG(false, "TMK_FAULT_INJECT: unknown key '" << key
                                                                << "'");
    }
  }
  COMMON_CHECK_MSG(p.any_rank || p.rank >= 0,
                   "TMK_FAULT_INJECT: a plan needs rank=<k> or rank=any");
  return p;
}

void FaultInjector::before_send() {
  if (dead_.load(std::memory_order_acquire)) return;
  const std::uint64_t next = sends_.load(std::memory_order_relaxed) + 1;
  if (plan_.delay_before_send != 0 && next >= plan_.delay_before_send &&
      !delay_done_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "TMK_FAULT_INJECT: rank %d parking %u ms before datagram "
                 "%llu\n",
                 rank_, plan_.delay_ms,
                 static_cast<unsigned long long>(next));
    timespec ts{};
    ts.tv_sec = plan_.delay_ms / 1000;
    ts.tv_nsec = static_cast<long>(plan_.delay_ms % 1000) * 1'000'000L;
    while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
  }
  if (plan_.crash_at_send != 0 && next >= plan_.crash_at_send) {
    char what[96];
    std::snprintf(what, sizeof(what),
                  "crash-at-send=%llu (about to publish datagram %llu)",
                  static_cast<unsigned long long>(plan_.crash_at_send),
                  static_cast<unsigned long long>(next));
    die(what);
  }
}

void FaultInjector::on_barrier() {
  if (plan_.exit_at_barrier == 0 || dead_.load(std::memory_order_acquire))
    return;
  const std::uint32_t k = barriers_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (k >= plan_.exit_at_barrier) {
    char what[64];
    std::snprintf(what, sizeof(what), "exit-at-barrier=%u (entering barrier %u)",
                  plan_.exit_at_barrier, k);
    die(what);
  }
}

void FaultInjector::die(const char* what) {
  // The first thread to fire claims dead_ and records the cause; a
  // concurrent second firing still dies below with its own `what`, it
  // just does not write cause_ (avoiding a data race on the buffer).
  bool expected = false;
  if (dead_.compare_exchange_strong(expected, true,
                                    std::memory_order_acq_rel)) {
    std::snprintf(cause_, sizeof(cause_), "%s", what);
    cause_ready_.store(true, std::memory_order_release);
  }
  std::fprintf(stderr, "TMK_FAULT_INJECT: rank %d injected fault: %s\n",
               rank_, what);
  std::fflush(nullptr);
  if (plan_.hard) _exit(86);
  throw common::Error("rank " + std::to_string(rank_) +
                      " injected fault: " + what);
}

std::unique_ptr<FaultInjector> fault_injector_from_env(int rank, int nprocs) {
  const char* spec = common::env::raw("TMK_FAULT_INJECT");
  if (spec == nullptr || spec[0] == '\0') return nullptr;
  const FaultPlan plan = FaultPlan::parse(spec);
  if (plan.victim(nprocs) != rank) return nullptr;
  return std::make_unique<FaultInjector>(plan, rank);
}

}  // namespace mpl
