// Wire format of the process-mesh transport.
//
// Named `mpl` after IBM's user-level Message Passing Library, which both
// TreadMarks and the XHPF runtime used on the SP/2 (§3 of the paper).
// Every logical message is split into one or more datagram chunks; every
// chunk carries the full header. Chunks of one logical message are sent
// back-to-back on one socket, so per-key reassembly never sees reordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpl {

// 128 covers the thread-backend scale sweeps far past the paper's 8 and
// the fork sweeps' 32. Everything sized by this constant is either
// lazily materialized (ring mesh pages, per-page protocol state) or
// O(kMaxProcs) small (vector clocks, dispatch tables), so raising it
// costs idle configurations almost nothing. The socket backend needs
// 4*n^2 descriptors for a full mesh; the fabric raises RLIMIT_NOFILE
// toward the hard limit when required and fails loudly when even that
// is not enough — in practice fork backends stop at 32 ranks and the
// 64/128-rank configurations run on the thread backend's inproc mesh.
inline constexpr int kMaxProcs = 128;

/// Largest payload per datagram chunk. Kept under typical Unix-domain
/// socket buffer limits so a single chunk can always be queued.
inline constexpr std::size_t kMaxChunk = 56 * 1024;

inline constexpr std::uint32_t kFrameMagic = 0x544d4b31;  // "TMK1"

/// Every distinct protocol message in the system. The transport does not
/// interpret these beyond routing; a single registry avoids collisions
/// between layers.
enum class FrameKind : std::uint16_t {
  // ---- pvme (message-passing library) ----
  kPvmeData = 1,
  kPvmeBarrierArrive,
  kPvmeBarrierDepart,
  // ---- tmk (DSM protocol) ----
  kDiffRequest,
  kDiffReply,
  kPageRequest,
  kPageReply,
  kLockRequest,   // acquirer -> manager (service)
  kLockForward,   // manager (service) -> last holder (service)
  kLockGrant,     // holder (service or main) -> acquirer (main)
  kBarrierArrive, // member (main) -> manager (main)
  kBarrierDepart, // manager (main) -> member (main)
  kForkWork,      // master (main) -> worker (main): improved interface §2.3
  kJoinDone,      // worker (main) -> master (main)
  kPushData,      // tmk extension: pushed update (Dwarkadas et al. [7])
  kDiffPush,      // hybrid update protocol: barrier-time pushed diffs
  kBcastData,     // tmk extension: broadcast shared data
  kGcMark,        // diff garbage collection rounds
  kGcAck,
  // ---- harness (uncounted) ----
  kShutdownArrive,  // final rendezvous before service threads stop
  kShutdownDepart,
  // ---- test-only ----
  kTestPing,
  kTestPong,
};

/// Which accounting bucket a message belongs to. The paper's Tables 2 and
/// 3 report DSM-system traffic and message-passing traffic separately
/// (they are different columns of the same table); control traffic of the
/// harness itself is never counted.
enum class Layer : std::uint8_t { kTmk = 0, kPvme = 1, kOther = 2 };

[[nodiscard]] constexpr Layer layer_of(FrameKind k) noexcept {
  switch (k) {
    case FrameKind::kPvmeData:
    case FrameKind::kPvmeBarrierArrive:
    case FrameKind::kPvmeBarrierDepart:
      return Layer::kPvme;
    case FrameKind::kShutdownArrive:
    case FrameKind::kShutdownDepart:
    case FrameKind::kTestPing:
    case FrameKind::kTestPong:
      return Layer::kOther;
    default:
      return Layer::kTmk;
  }
}

/// On-wire chunk header; 40 bytes, host byte order (single-host mesh).
struct FrameHeader {
  std::uint32_t magic;
  std::uint16_t kind;
  std::uint16_t src;
  std::uint64_t vt_arrival;  // modelled arrival time at the destination
  std::int32_t tag;
  std::uint32_t req_id;
  std::uint32_t chunk_len;  // payload bytes in this chunk
  std::uint32_t orig_len;   // payload bytes in the logical message
  std::uint32_t offset;     // this chunk's offset into the payload
  std::uint32_t reserved;
};
static_assert(sizeof(FrameHeader) == 40);

/// A fully reassembled logical message.
struct Frame {
  FrameKind kind{};
  int src = -1;
  std::int32_t tag = 0;
  std::uint32_t req_id = 0;
  std::uint64_t vt_arrival = 0;
  std::vector<std::byte> payload;
};

}  // namespace mpl
