// Deterministic fault injection for chaos runs (TMK_FAULT_INJECT).
//
// A fault plan is a comma-separated key=value list parsed once per
// transport construction, e.g.
//
//   TMK_FAULT_INJECT="rank=3,exit-at-barrier=2,hard=1"
//   TMK_FAULT_INJECT="seed=7,rank=any,crash-at-send=100"
//   TMK_FAULT_INJECT="rank=1,delay-before-publish=50@10"
//
// Keys:
//   seed=<u64>                  selects the victim when rank=any
//                               (victim = seed % nprocs); default 1
//   rank=<k>|any                the victim rank; a plan whose victim is
//                               not this rank installs nothing, so the
//                               disabled path costs one null check
//   crash-at-send=<N>           die immediately before publishing the
//                               Nth datagram (1-based, both threads)
//   delay-before-publish=<MS>@<N>  park MS milliseconds before datagram
//                               N leaves, once — a straggler, not a death
//   exit-at-barrier=<K>         die on entering the Kth tmk barrier
//   hard=1                      die by _exit(86) instead of unwinding
//                               (process backend only: under the thread
//                               backend _exit takes every rank with it)
//
// Unknown keys throw at parse time. The plan is interpreted by the
// Transport base class (transport.hpp), so every backend — socket, shm,
// inproc — observes identical fault semantics by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

namespace mpl {

struct FaultPlan {
  std::uint64_t seed = 1;
  int rank = -1;                        // explicit victim; -1 with
  bool any_rank = false;                // any_rank: seed % nprocs
  std::uint64_t crash_at_send = 0;      // 1-based datagram index; 0 = off
  std::uint64_t delay_before_send = 0;  // 1-based datagram index; 0 = off
  std::uint32_t delay_ms = 0;
  std::uint32_t exit_at_barrier = 0;    // 1-based barrier count; 0 = off
  bool hard = false;                    // _exit(86) instead of throwing

  /// Parses a plan spec; throws common::Error on unknown keys or
  /// malformed values (a typoed plan must not silently run fault-free).
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// The rank this plan kills for an nprocs-rank mesh (may be out of
  /// range for an explicit rank=<k>; then nobody is the victim).
  [[nodiscard]] int victim(int nprocs) const noexcept {
    if (any_rank) return static_cast<int>(seed % static_cast<std::uint64_t>(nprocs));
    return rank;
  }
};

/// The victim rank's live fault state, owned by its Transport. Both
/// sending threads (main + service) drive the send counter, so the
/// counters are atomics; `dead()` is checked by the transport wrappers
/// after a fault fired so a dying rank drops further sends instead of
/// completing protocol exchanges.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int rank) : plan_(plan), rank_(rank) {}

  /// Called immediately before a datagram publish attempt: applies the
  /// delay plan (once) and fires crash-at-send — prints the fault to
  /// stderr, then _exit(86)s (hard) or throws common::Error (soft).
  void before_send();

  /// Called after a successfully published datagram.
  void after_send() noexcept {
    sends_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Called when the runtime enters a barrier; fires exit-at-barrier.
  void on_barrier();

  [[nodiscard]] bool dead() const noexcept {
    return dead_.load(std::memory_order_acquire);
  }

  /// The fault description recorded by die(), or "" if the fault has
  /// not fired (or the recording thread has not finished writing it
  /// yet). Lets the *other* thread of a dying rank blame the concrete
  /// plan key — the service thread may be the one that hits
  /// crash-at-send while the main thread merely observes dead().
  [[nodiscard]] const char* cause() const noexcept {
    return cause_ready_.load(std::memory_order_acquire) ? cause_ : "";
  }

 private:
  void die(const char* what);

  FaultPlan plan_;
  int rank_;
  std::atomic<std::uint64_t> sends_{0};
  std::atomic<std::uint32_t> barriers_{0};
  std::atomic<bool> delay_done_{false};
  std::atomic<bool> dead_{false};
  std::atomic<bool> cause_ready_{false};
  char cause_[96] = {};
};

/// Builds this rank's injector from TMK_FAULT_INJECT, or null when the
/// variable is unset/empty or the plan's victim is a different rank —
/// the common case, so a fault-free run pays one getenv at construction
/// and a null-pointer check per send.
[[nodiscard]] std::unique_ptr<FaultInjector> fault_injector_from_env(
    int rank, int nprocs);

}  // namespace mpl
