#include "mpl/fabric.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>

#include "common/check.hpp"
#include "common/cpu_clock.hpp"
#include "common/env.hpp"
#include "mpl/inproc_transport.hpp"
#include "mpl/shm_transport.hpp"
#include "mpl/socket_transport.hpp"

namespace mpl {

namespace {

// Bound on pooled receive buffers per side; beyond this, freed payloads
// are simply released to the allocator.
constexpr std::size_t kMaxPooledBuffers = 32;

/// Pops a pooled buffer (capacity reuse) or default-constructs one.
/// Every take — pooled or fresh — counts toward the pool's demand
/// high-water mark for Endpoint::trim_buffer_pools().
std::vector<std::byte> take_buffer(BufferPool& pool) {
  ++pool.takes;
  if (pool.bufs.empty()) return {};
  std::vector<std::byte> buf = std::move(pool.bufs.back());
  pool.bufs.pop_back();
  buf.clear();
  return buf;
}

void give_buffer(BufferPool& pool, std::vector<std::byte>&& buf) {
  if (pool.bufs.size() < kMaxPooledBuffers && buf.capacity() > 0)
    pool.bufs.push_back(std::move(buf));
}

}  // namespace

std::optional<TransportKind> parse_transport(std::string_view name) noexcept {
  if (name == "socket") return TransportKind::kSocket;
  if (name == "shm") return TransportKind::kShm;
  if (name == "inproc") return TransportKind::kInproc;
  return std::nullopt;
}

TransportKind transport_from_env(TransportKind fallback) noexcept {
  const char* env = common::env::raw("TMK_TRANSPORT");
  if (env == nullptr) return fallback;
  if (auto k = parse_transport(env)) return *k;
  common::env::detail::warn_value("TMK_TRANSPORT", env,
                                  "expected socket, shm, or inproc");
  return fallback;
}

bool burst_from_env() noexcept {
  // Read per construction (never cached in a static): equivalence tests
  // toggle the mode between spawns within one process.
  return common::env::flag_knob("TMK_FABRIC_BURST", true);
}

Fabric::Fabric(int nprocs, TransportKind kind) : nprocs_(nprocs), kind_(kind) {
  COMMON_CHECK_MSG(nprocs >= 1 && nprocs <= kMaxProcs,
                   "nprocs=" << nprocs << " outside [1," << kMaxProcs << "]");
  switch (kind) {
    case TransportKind::kShm:
      state_ = make_shm_fabric(nprocs);
      break;
    case TransportKind::kInproc:
      state_ = make_inproc_fabric(nprocs);
      break;
    case TransportKind::kSocket:
      state_ = make_socket_fabric(nprocs);
      break;
  }
}

std::unique_ptr<Transport> Fabric::adopt(int rank) {
  COMMON_CHECK(rank >= 0 && rank < nprocs_ && state_ != nullptr);
  return state_->adopt(rank);
}

std::unique_ptr<PeerKiller> Fabric::make_peer_killer() {
  COMMON_CHECK(state_ != nullptr);
  return state_->make_killer();
}

Endpoint::Endpoint(Fabric& fabric, int rank, simx::MachineModel model)
    : rank_(rank),
      nprocs_(fabric.nprocs()),
      clock_(model),
      transport_(fabric.adopt(rank)),
      burst_enabled_(burst_from_env()) {
  wait_deadline_ms_ =
      std::max(0ll, common::env::int_knob("TMK_WAIT_DEADLINE_MS").value_or(0));
  last_frame_kind_.assign(static_cast<std::size_t>(nprocs_), 0xffff);
}

void Endpoint::set_wait_site(const char* site) noexcept {
  std::strncpy(wait_site_, site, sizeof(wait_site_) - 1);
  wait_site_[sizeof(wait_site_) - 1] = '\0';
}

void Endpoint::check_wait_health(std::uint64_t start_ns) {
  if (transport_->self_dead()) {
    const char* cause = transport_->self_death_cause();
    std::string msg = "rank " + std::to_string(rank_) +
                      " unwinding after injected fault";
    if (cause[0] != '\0') msg += std::string(": ") + cause;
    throw common::Error(msg + " (at " + wait_site_ + ")");
  }
  const int dead = transport_->poisoned_peer();
  if (dead >= 0) fail_wait("peer-death", dead, start_ns);
  if (wait_deadline_ms_ > 0 &&
      common::wall_ns() - start_ns >
          static_cast<std::uint64_t>(wait_deadline_ms_) * 1'000'000ull)
    fail_wait("deadline", -1, start_ns);
}

void Endpoint::fail_wait(const char* reason, int dead_rank,
                         std::uint64_t start_ns) {
  const std::uint64_t waited_ms = (common::wall_ns() - start_ns) / 1'000'000u;
  // One machine-readable line: everything a post-mortem needs to assign
  // blame without the rank's full log. All embedded free text (the wait
  // site, describe_channels, the forensics writer) is quote-free by
  // contract, so the line stays valid JSON.
  std::ostringstream os;
  os << "{\"rank\":" << rank_ << ",\"site\":\"" << wait_site_
     << "\",\"reason\":\"" << reason << "\"";
  if (dead_rank >= 0) os << ",\"dead_rank\":" << dead_rank;
  os << ",\"waited_ms\":" << waited_ms
     << ",\"deadline_ms\":" << wait_deadline_ms_
     << ",\"pending_frames\":" << pending_.size();
  os << ",\"last_frame_kind\":{";
  bool first = true;
  for (int src = 0; src < nprocs_; ++src) {
    const std::uint16_t k = last_frame_kind_[static_cast<std::size_t>(src)];
    if (k == 0xffff) continue;
    os << (first ? "" : ",") << "\"" << src << "\":" << k;
    first = false;
  }
  os << "},\"channels\":\"";
  transport_->describe_channels(os);
  os << "\"";
  if (forensics_writer_ != nullptr) {
    os << ",\"protocol\":\"";
    forensics_writer_(forensics_ctx_, os);
    os << "\"";
  }
  os << "}";
  std::fprintf(stderr, "TMK_CRASH_REPORT %s\n", os.str().c_str());
  std::fflush(stderr);
  // The throw itself stays short: it must survive the runner's bounded
  // per-rank error field, and the full state is already on stderr.
  std::ostringstream err;
  err << "rank " << rank_ << " gave up waiting at " << wait_site_ << " ("
      << reason;
  if (dead_rank >= 0) err << ": rank " << dead_rank << " died";
  err << " after " << waited_ms << " ms)";
  throw common::Error(err.str());
}

Endpoint::~Endpoint() {
  // A rank unwinding mid-burst (an exception between begin_burst and
  // flush_burst) must not leave frames invisible to its peers — they
  // would block on the dead rank forever instead of observing its
  // failure. Swallow errors: this runs during unwinding.
  try {
    flush_burst();
  } catch (...) {
  }
}

void Endpoint::begin_burst(int dst) {
  if (!burst_enabled_ || burst_dst_ == dst) return;
  flush_burst();
  burst_dst_ = dst;
}

void Endpoint::flush_burst() {
  if (burst_dst_ < 0) return;
  const int dst = burst_dst_;
  std::uint64_t blocked_since = 0;
  for (int lane = 0; lane < 2; ++lane) {
    if (!burst_lane_used_[lane]) continue;
    while (!transport_->try_flush_burst(static_cast<Lane>(lane), dst)) {
      // Same deadlock-freedom discipline as a blocked send: drain our
      // own inbound app traffic so a peer blocked on a send toward us
      // can progress, then wait for channel space.
      pump();
      if (blocked_since == 0) blocked_since = common::wall_ns();
      check_wait_health(blocked_since);
      transport_->wait_send(static_cast<Lane>(lane), dst, 2);
    }
    burst_lane_used_[lane] = false;
  }
  burst_dst_ = -1;
}

void Endpoint::count_if_remote(int dst, FrameKind kind,
                               std::size_t bytes) noexcept {
  if (dst != rank_) counters_.count(kind, bytes);
}

void Endpoint::send_chunks(Lane lane, int dst, bool pump_while_blocked,
                           FrameKind kind, std::int32_t tag,
                           std::uint32_t req_id,
                           std::span<const std::byte> payload,
                           std::uint64_t vt_arrival) {
  // The payload bytes travel straight from the caller's buffer (often
  // the shared page image itself) into the transport; no staging copy.
  const std::size_t total = payload.size();
  // Burst integration. Only the main thread (pump_while_blocked) has
  // explicit per-peer bursts; a send to a DIFFERENT peer is an
  // operation boundary that flushes the open one. Independent of the
  // explicit API, a multi-chunk message always batches its own chunks
  // into one transport publish — a 56 KiB-chunked diff reply costs one
  // doorbell, not one per chunk. Single-chunk messages outside a burst
  // keep the zero-copy direct path.
  const bool in_explicit_burst =
      pump_while_blocked && burst_enabled_ && burst_dst_ == dst;
  if (pump_while_blocked && burst_dst_ >= 0 && dst != burst_dst_)
    flush_burst();
  bool own_burst = false;
  if (in_explicit_burst) {
    if (!burst_lane_used_[static_cast<int>(lane)]) {
      transport_->begin_burst(lane, dst);
      burst_lane_used_[static_cast<int>(lane)] = true;
    }
  } else if (burst_enabled_ && total > kMaxChunk) {
    transport_->begin_burst(lane, dst);
    own_burst = true;
  }
  std::size_t offset = 0;
  std::uint64_t blocked_since = 0;
  do {
    const std::size_t len = std::min(kMaxChunk, total - offset);
    FrameHeader h{};
    h.magic = kFrameMagic;
    h.kind = static_cast<std::uint16_t>(kind);
    h.src = static_cast<std::uint16_t>(rank_);
    h.tag = tag;
    h.req_id = req_id;
    h.chunk_len = static_cast<std::uint32_t>(len);
    h.orig_len = static_cast<std::uint32_t>(total);
    h.offset = static_cast<std::uint32_t>(offset);
    h.vt_arrival = vt_arrival;

    while (!transport_->try_send(lane, dst, h, payload.subspan(offset, len))) {
      // Receiver has not drained yet. If we are the main thread, drain
      // our own inbound app traffic so the peer (possibly blocked on a
      // send toward us) can make progress; then wait for space. The
      // health re-check bounds a send wedged on a dead peer's full
      // channel. (Service-thread sends skip it: poll_poison is a
      // main-thread affair, and the service thread is unwound through
      // its stop flag when the main thread aborts.)
      if (pump_while_blocked) {
        pump();
        if (blocked_since == 0) blocked_since = common::wall_ns();
        check_wait_health(blocked_since);
      }
      transport_->wait_send(lane, dst, pump_while_blocked ? 2 : -1);
    }
    offset += len;
  } while (offset < total);
  if (own_burst) {
    while (!transport_->try_flush_burst(lane, dst)) {
      if (pump_while_blocked) {
        pump();
        if (blocked_since == 0) blocked_since = common::wall_ns();
        check_wait_health(blocked_since);
      }
      transport_->wait_send(lane, dst, pump_while_blocked ? 2 : -1);
    }
  }
}

void Endpoint::send_app(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload) {
  const std::uint64_t arrival = clock_.on_send(payload.size(), dst == rank_);
  count_if_remote(dst, kind, payload.size());
  send_chunks(Lane::kApp, dst, /*pump_while_blocked=*/true, kind, tag, req_id,
              payload, arrival);
  // The syscall/copy time is covered by the modelled send cost.
  clock_.skip_transport();
}

void Endpoint::send_svc(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload) {
  const std::uint64_t arrival = clock_.on_send(payload.size(), dst == rank_);
  count_if_remote(dst, kind, payload.size());
  send_chunks(Lane::kSvc, dst, /*pump_while_blocked=*/true, kind, tag, req_id,
              payload, arrival);
  clock_.skip_transport();
}

void Endpoint::send_app_stamped(int dst, FrameKind kind, std::int32_t tag,
                                std::uint32_t req_id,
                                std::span<const std::byte> payload,
                                std::uint64_t vt_arrival) {
  count_if_remote(dst, kind, payload.size());
  send_chunks(Lane::kApp, dst, /*pump_while_blocked=*/false, kind, tag,
              req_id, payload, vt_arrival);
}

void Endpoint::send_svc_stamped(int dst, FrameKind kind, std::int32_t tag,
                                std::uint32_t req_id,
                                std::span<const std::byte> payload,
                                std::uint64_t vt_arrival) {
  count_if_remote(dst, kind, payload.size());
  send_chunks(Lane::kSvc, dst, /*pump_while_blocked=*/false, kind, tag,
              req_id, payload, vt_arrival);
}

std::optional<Frame> Endpoint::Assembler::feed(
    const FrameHeader& h, std::span<const std::byte> chunk,
    BufferPool& pool) {
  COMMON_CHECK_MSG(h.magic == kFrameMagic, "corrupt frame header");
  if (h.chunk_len == h.orig_len && h.offset == 0) {
    // Single-datagram message: complete without touching the map.
    Frame f;
    f.kind = static_cast<FrameKind>(h.kind);
    f.src = h.src;
    f.tag = h.tag;
    f.req_id = h.req_id;
    f.vt_arrival = h.vt_arrival;
    f.payload = take_buffer(pool);
    f.payload.assign(chunk.begin(), chunk.end());
    return f;
  }
  const Key key{
      (static_cast<std::uint64_t>(h.src) << 16) | h.kind,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.tag)) << 32) |
          h.req_id};
  auto it = partial.find(key);
  if (it == partial.end()) {
    COMMON_CHECK_MSG(h.offset == 0, "chunk stream started mid-message");
    Frame f;
    f.kind = static_cast<FrameKind>(h.kind);
    f.src = h.src;
    f.tag = h.tag;
    f.req_id = h.req_id;
    f.vt_arrival = h.vt_arrival;
    f.payload = take_buffer(pool);
    f.payload.reserve(h.orig_len);
    it = partial.emplace(key, std::move(f)).first;
  }
  Frame& f = it->second;
  COMMON_CHECK_MSG(f.payload.size() == h.offset, "chunk out of order");
  f.payload.insert(f.payload.end(), chunk.begin(), chunk.end());
  if (f.payload.size() == h.orig_len) {
    Frame done = std::move(f);
    partial.erase(it);
    return done;
  }
  return std::nullopt;
}

void Endpoint::drain_app(bool block) {
  bool got_any = false;
  // ChunkSink is non-owning: the lambda must outlive it.
  const auto on_chunk =
      [this, &got_any](const FrameHeader& h, std::span<const std::byte> chunk) {
        last_frame_kind_[h.src] = h.kind;
        if (auto done = app_assembler_.feed(h, chunk, app_buffer_pool_)) {
          pending_.push_back(std::move(*done));
          got_any = true;
        }
      };
  const ChunkSink sink(on_chunk);
  std::uint64_t start_ns = 0;
  for (;;) {
    // Token before the drain: anything arriving after the drain misses
    // it bumps the token, so the wait below cannot sleep through it.
    const std::uint32_t token = transport_->recv_token(Lane::kApp);
    transport_->drain(Lane::kApp, sink);
    if (got_any || !block) return;
    // Health check strictly AFTER an empty drain: datagrams that were
    // delivered before a peer died (or before poison landed) are always
    // consumed first, so a rank that can still finish its protocol
    // exchange does so instead of aborting spuriously.
    if (start_ns == 0) start_ns = common::wall_ns();
    check_wait_health(start_ns);
    transport_->wait_recv(Lane::kApp, token);
  }
}

void Endpoint::pump() { drain_app(/*block=*/false); }

void Endpoint::recycle_buffer(std::vector<std::byte>&& buf) {
  give_buffer(app_buffer_pool_, std::move(buf));
}

void Endpoint::recycle_svc_buffer(std::vector<std::byte>&& buf) {
  give_buffer(svc_buffer_pool_, std::move(buf));
}

void Endpoint::trim_buffer_pools() {
  // Main thread only (the app pool's owner). Keeps at most as many
  // pooled buffers as were taken since the last trim — a burst that
  // briefly pooled kMaxPooledBuffers oversized payloads stops pinning
  // their capacity once the steady state no longer draws that many.
  // The svc pool belongs to the service thread and is not touched.
  if (app_buffer_pool_.bufs.size() > app_buffer_pool_.takes)
    app_buffer_pool_.bufs.resize(app_buffer_pool_.takes);
  app_buffer_pool_.takes = 0;
}

bool Endpoint::has_pending(FramePredicate pred) const {
  for (const Frame& f : pending_)
    if (pred(f)) return true;
  return false;
}

Frame Endpoint::wait_app(FramePredicate pred) {
  // Operation boundary: anything batched must reach its peer before we
  // block — the frame we are about to wait for may be its reply.
  flush_burst();
  // Fold real application compute before any transport work; everything
  // between here and the matching frame is waiting/draining, which
  // on_recv discards in favour of the modelled costs.
  clock_.fold_compute();
  for (;;) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (pred(*it)) {
        Frame f = std::move(*it);
        pending_.erase(it);
        clock_.on_recv(f.vt_arrival, f.src == rank_);
        return f;
      }
    }
    drain_app(/*block=*/true);
  }
}

Frame Endpoint::wait_app_kind(FrameKind kind) {
  return wait_app([kind](const Frame& f) { return f.kind == kind; });
}

Frame Endpoint::wait_app_kind_from(FrameKind kind, int src) {
  return wait_app(
      [kind, src](const Frame& f) { return f.kind == kind && f.src == src; });
}

std::optional<Frame> Endpoint::next_svc_request(
    const std::atomic<bool>& stop) {
  const auto on_chunk =
      [this](const FrameHeader& h, std::span<const std::byte> chunk) {
        if (auto done = svc_assembler_.feed(h, chunk, svc_buffer_pool_))
          svc_pending_.push_back(std::move(*done));
      };
  const ChunkSink sink(on_chunk);
  for (;;) {
    if (!svc_pending_.empty()) {
      Frame f = std::move(svc_pending_.front());
      svc_pending_.pop_front();
      return f;
    }
    const std::uint32_t token = transport_->recv_token(Lane::kSvc);
    if (stop.load(std::memory_order_acquire) || transport_->self_dead())
      return std::nullopt;
    transport_->drain(Lane::kSvc, sink);
    if (!svc_pending_.empty()) continue;
    // The token predates both the stop check and the drain: a request
    // or a wake_service() landing after either makes this return
    // immediately instead of sleeping through it.
    transport_->wait_recv(Lane::kSvc, token);
  }
}

void Endpoint::wake_service() { transport_->wake_service(); }

}  // namespace mpl
