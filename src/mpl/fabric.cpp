#include "mpl/fabric.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"

namespace mpl {

namespace {

constexpr int kSocketBuffer = 512 * 1024;

// Bound on pooled receive buffers per side; beyond this, freed payloads
// are simply released to the allocator.
constexpr std::size_t kMaxPooledBuffers = 32;

void make_pair(common::Fd& send_end, common::Fd& recv_end) {
  int fds[2];
  COMMON_SYSCALL(socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_NONBLOCK, 0, fds));
  for (int fd : fds) {
    // Best effort: larger buffers reduce pumping; correctness does not
    // depend on the kernel honouring the full request.
    (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kSocketBuffer,
                     sizeof(kSocketBuffer));
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kSocketBuffer,
                     sizeof(kSocketBuffer));
  }
  send_end.reset(fds[0]);
  recv_end.reset(fds[1]);
}

/// Pops a pooled buffer (capacity reuse) or default-constructs one.
std::vector<std::byte> take_buffer(
    std::vector<std::vector<std::byte>>& pool) {
  if (pool.empty()) return {};
  std::vector<std::byte> buf = std::move(pool.back());
  pool.pop_back();
  buf.clear();
  return buf;
}

void give_buffer(std::vector<std::vector<std::byte>>& pool,
                 std::vector<std::byte>&& buf) {
  if (pool.size() < kMaxPooledBuffers && buf.capacity() > 0)
    pool.push_back(std::move(buf));
}

}  // namespace

Fabric::Fabric(int nprocs) : nprocs_(nprocs) {
  COMMON_CHECK_MSG(nprocs >= 1 && nprocs <= kMaxProcs,
                   "nprocs=" << nprocs << " outside [1," << kMaxProcs << "]");
  const std::size_t pairs =
      static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs);
  svc_send_.resize(pairs);
  svc_recv_.resize(pairs);
  app_send_.resize(pairs);
  app_recv_.resize(pairs);
  for (int i = 0; i < nprocs; ++i) {
    for (int j = 0; j < nprocs; ++j) {
      make_pair(svc_send_[idx(i, j)], svc_recv_[idx(i, j)]);
      make_pair(app_send_[idx(i, j)], app_recv_[idx(i, j)]);
    }
  }
}

Endpoint::Endpoint(Fabric& fabric, int rank, simx::MachineModel model)
    : rank_(rank), nprocs_(fabric.nprocs()), clock_(model) {
  COMMON_CHECK(rank >= 0 && rank < nprocs_);
  svc_out_.resize(static_cast<std::size_t>(nprocs_));
  app_out_.resize(static_cast<std::size_t>(nprocs_));
  svc_in_.resize(static_cast<std::size_t>(nprocs_));
  app_in_.resize(static_cast<std::size_t>(nprocs_));
  for (int j = 0; j < nprocs_; ++j) {
    svc_out_[static_cast<std::size_t>(j)] =
        std::move(fabric.svc_send_[fabric.idx(rank, j)]);
    app_out_[static_cast<std::size_t>(j)] =
        std::move(fabric.app_send_[fabric.idx(rank, j)]);
    svc_in_[static_cast<std::size_t>(j)] =
        std::move(fabric.svc_recv_[fabric.idx(j, rank)]);
    app_in_[static_cast<std::size_t>(j)] =
        std::move(fabric.app_recv_[fabric.idx(j, rank)]);
  }
  service_wake_.reset(COMMON_SYSCALL(eventfd(0, EFD_NONBLOCK)));

  // Descriptors are fixed for the Endpoint's lifetime: build the poll
  // arrays once instead of per receive.
  app_pollfds_.reserve(app_in_.size());
  for (const auto& fd : app_in_) app_pollfds_.push_back({fd.get(), POLLIN, 0});
  svc_pollfds_.reserve(svc_in_.size() + 1);
  for (const auto& fd : svc_in_) svc_pollfds_.push_back({fd.get(), POLLIN, 0});
  svc_pollfds_.push_back({service_wake_.get(), POLLIN, 0});
}

void Endpoint::count_if_remote(int dst, FrameKind kind,
                               std::size_t bytes) noexcept {
  if (dst != rank_) counters_.count(kind, bytes);
}

void Endpoint::send_chunks(int fd, bool pump_while_blocked, FrameKind kind,
                           std::int32_t tag, std::uint32_t req_id,
                           std::span<const std::byte> payload,
                           std::uint64_t vt_arrival) {
  // Scatter-gather: header and payload leave in one sendmsg with no
  // staging copy; the payload bytes are read straight from the caller's
  // buffer (often the shared page image itself).
  const std::size_t total = payload.size();
  std::size_t offset = 0;
  do {
    const std::size_t len = std::min(kMaxChunk, total - offset);
    FrameHeader h{};
    h.magic = kFrameMagic;
    h.kind = static_cast<std::uint16_t>(kind);
    h.src = static_cast<std::uint16_t>(rank_);
    h.tag = tag;
    h.req_id = req_id;
    h.chunk_len = static_cast<std::uint32_t>(len);
    h.orig_len = static_cast<std::uint32_t>(total);
    h.offset = static_cast<std::uint32_t>(offset);
    h.vt_arrival = vt_arrival;

    iovec iov[2];
    iov[0].iov_base = &h;
    iov[0].iov_len = sizeof(h);
    iov[1].iov_base = const_cast<std::byte*>(payload.data()) + offset;
    iov[1].iov_len = len;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = (len > 0) ? 2 : 1;

    for (;;) {
      const ssize_t r = sendmsg(fd, &msg, 0);
      if (r >= 0) {
        COMMON_CHECK(static_cast<std::size_t>(r) == sizeof(h) + len);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Receiver has not drained yet. If we are the main thread, drain
        // our own inbound app traffic so the peer (possibly blocked on a
        // send toward us) can make progress; then wait for space.
        if (pump_while_blocked) pump();
        pollfd p{fd, POLLOUT, 0};
        const int pr = poll(&p, 1, pump_while_blocked ? 2 : -1);
        if (pr < 0 && errno != EINTR) COMMON_SYSCALL(pr);
        continue;
      }
      COMMON_SYSCALL(r);
    }
    offset += len;
  } while (offset < total);
}

void Endpoint::send_app(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload) {
  const std::uint64_t arrival = clock_.on_send(payload.size(), dst == rank_);
  count_if_remote(dst, kind, payload.size());
  send_chunks(app_out_[static_cast<std::size_t>(dst)].get(),
              /*pump_while_blocked=*/true, kind, tag, req_id, payload,
              arrival);
  // The syscall/copy time is covered by the modelled send cost.
  clock_.skip_transport();
}

void Endpoint::send_svc(int dst, FrameKind kind, std::int32_t tag,
                        std::uint32_t req_id,
                        std::span<const std::byte> payload) {
  const std::uint64_t arrival = clock_.on_send(payload.size(), dst == rank_);
  count_if_remote(dst, kind, payload.size());
  send_chunks(svc_out_[static_cast<std::size_t>(dst)].get(),
              /*pump_while_blocked=*/true, kind, tag, req_id, payload,
              arrival);
  clock_.skip_transport();
}

void Endpoint::send_app_stamped(int dst, FrameKind kind, std::int32_t tag,
                                std::uint32_t req_id,
                                std::span<const std::byte> payload,
                                std::uint64_t vt_arrival) {
  count_if_remote(dst, kind, payload.size());
  send_chunks(app_out_[static_cast<std::size_t>(dst)].get(),
              /*pump_while_blocked=*/false, kind, tag, req_id, payload,
              vt_arrival);
}

void Endpoint::send_svc_stamped(int dst, FrameKind kind, std::int32_t tag,
                                std::uint32_t req_id,
                                std::span<const std::byte> payload,
                                std::uint64_t vt_arrival) {
  count_if_remote(dst, kind, payload.size());
  send_chunks(svc_out_[static_cast<std::size_t>(dst)].get(),
              /*pump_while_blocked=*/false, kind, tag, req_id, payload,
              vt_arrival);
}

std::optional<Frame> Endpoint::Assembler::feed(
    const FrameHeader& h, std::span<const std::byte> chunk,
    std::vector<std::vector<std::byte>>& pool) {
  COMMON_CHECK_MSG(h.magic == kFrameMagic, "corrupt frame header");
  if (h.chunk_len == h.orig_len && h.offset == 0) {
    // Single-datagram message: complete without touching the map.
    Frame f;
    f.kind = static_cast<FrameKind>(h.kind);
    f.src = h.src;
    f.tag = h.tag;
    f.req_id = h.req_id;
    f.vt_arrival = h.vt_arrival;
    f.payload = take_buffer(pool);
    f.payload.assign(chunk.begin(), chunk.end());
    return f;
  }
  const Key key{
      (static_cast<std::uint64_t>(h.src) << 16) | h.kind,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.tag)) << 32) |
          h.req_id};
  auto it = partial.find(key);
  if (it == partial.end()) {
    COMMON_CHECK_MSG(h.offset == 0, "chunk stream started mid-message");
    Frame f;
    f.kind = static_cast<FrameKind>(h.kind);
    f.src = h.src;
    f.tag = h.tag;
    f.req_id = h.req_id;
    f.vt_arrival = h.vt_arrival;
    f.payload = take_buffer(pool);
    f.payload.reserve(h.orig_len);
    it = partial.emplace(key, std::move(f)).first;
  }
  Frame& f = it->second;
  COMMON_CHECK_MSG(f.payload.size() == h.offset, "chunk out of order");
  f.payload.insert(f.payload.end(), chunk.begin(), chunk.end());
  if (f.payload.size() == h.orig_len) {
    Frame done = std::move(f);
    partial.erase(it);
    return done;
  }
  return std::nullopt;
}

void Endpoint::drain_app(bool block) {
  bool got_any = false;
  do {
    for (auto& p : app_pollfds_) p.revents = 0;
    const int timeout = (block && !got_any) ? -1 : 0;
    const int r = poll(app_pollfds_.data(), app_pollfds_.size(), timeout);
    if (r < 0) {
      if (errno == EINTR) continue;
      COMMON_SYSCALL(r);
    }
    if (r == 0) return;

    alignas(FrameHeader) std::byte buf[sizeof(FrameHeader) + kMaxChunk];
    for (std::size_t i = 0; i < app_pollfds_.size(); ++i) {
      if (!(app_pollfds_[i].revents & POLLIN)) continue;
      for (;;) {
        const ssize_t n = recv(app_pollfds_[i].fd, buf, sizeof(buf), 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          COMMON_SYSCALL(n);
        }
        if (n == 0) break;  // peer exited; channel closed
        COMMON_CHECK(static_cast<std::size_t>(n) >= sizeof(FrameHeader));
        FrameHeader h;
        std::memcpy(&h, buf, sizeof(h));
        COMMON_CHECK(static_cast<std::size_t>(n) ==
                     sizeof(FrameHeader) + h.chunk_len);
        auto done = app_assembler_.feed(
            h, {buf + sizeof(FrameHeader), h.chunk_len}, app_buffer_pool_);
        if (done) {
          pending_.push_back(std::move(*done));
          got_any = true;
        }
      }
    }
  } while (block && !got_any);
}

void Endpoint::pump() { drain_app(/*block=*/false); }

void Endpoint::recycle_buffer(std::vector<std::byte>&& buf) {
  give_buffer(app_buffer_pool_, std::move(buf));
}

void Endpoint::recycle_svc_buffer(std::vector<std::byte>&& buf) {
  give_buffer(svc_buffer_pool_, std::move(buf));
}

bool Endpoint::has_pending(FramePredicate pred) const {
  for (const Frame& f : pending_)
    if (pred(f)) return true;
  return false;
}

Frame Endpoint::wait_app(FramePredicate pred) {
  // Fold real application compute before any transport work; everything
  // between here and the matching frame is waiting/draining, which
  // on_recv discards in favour of the modelled costs.
  clock_.fold_compute();
  for (;;) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (pred(*it)) {
        Frame f = std::move(*it);
        pending_.erase(it);
        clock_.on_recv(f.vt_arrival, f.src == rank_);
        return f;
      }
    }
    drain_app(/*block=*/true);
  }
}

Frame Endpoint::wait_app_kind(FrameKind kind) {
  return wait_app([kind](const Frame& f) { return f.kind == kind; });
}

Frame Endpoint::wait_app_kind_from(FrameKind kind, int src) {
  return wait_app(
      [kind, src](const Frame& f) { return f.kind == kind && f.src == src; });
}

std::optional<Frame> Endpoint::next_svc_request(
    const std::atomic<bool>& stop) {
  for (;;) {
    if (!svc_pending_.empty()) {
      Frame f = std::move(svc_pending_.front());
      svc_pending_.pop_front();
      return f;
    }
    if (stop.load(std::memory_order_acquire)) return std::nullopt;

    for (auto& p : svc_pollfds_) p.revents = 0;
    const int r = poll(svc_pollfds_.data(), svc_pollfds_.size(), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      COMMON_SYSCALL(r);
    }

    if (svc_pollfds_.back().revents & POLLIN) {
      std::uint64_t v;
      (void)!read(service_wake_.get(), &v, sizeof(v));
    }

    alignas(FrameHeader) std::byte buf[sizeof(FrameHeader) + kMaxChunk];
    for (std::size_t i = 0; i + 1 < svc_pollfds_.size(); ++i) {
      if (!(svc_pollfds_[i].revents & POLLIN)) continue;
      for (;;) {
        const ssize_t n = recv(svc_pollfds_[i].fd, buf, sizeof(buf), 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          COMMON_SYSCALL(n);
        }
        if (n == 0) break;  // peer exited; channel closed
        COMMON_CHECK(static_cast<std::size_t>(n) >= sizeof(FrameHeader));
        FrameHeader h;
        std::memcpy(&h, buf, sizeof(h));
        COMMON_CHECK(static_cast<std::size_t>(n) ==
                     sizeof(FrameHeader) + h.chunk_len);
        auto done = svc_assembler_.feed(
            h, {buf + sizeof(FrameHeader), h.chunk_len}, svc_buffer_pool_);
        if (done) svc_pending_.push_back(std::move(*done));
      }
    }
  }
}

void Endpoint::wake_service() {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t r = write(service_wake_.get(), &one, sizeof(one));
    if (r >= 0 || errno != EINTR) break;
  }
}

}  // namespace mpl
