// Lock-free single-producer single-consumer datagram ring over raw
// (shared) memory — the building block of ShmTransport.
//
// One ring carries framed datagrams in ONE direction between ONE
// producing thread and ONE consuming thread; ShmTransport keeps a ring
// per (src, dst, lane, sending-thread) so every ring is strictly SPSC
// and needs no locks. The control words and the data bytes live in a
// MAP_SHARED region; the ring object itself is a per-process non-owning
// view.
//
// Record layout (8-byte aligned within the ring):
//   [u32 chunk_len][u32 unused][FrameHeader][payload, padded to 8]
// A chunk_len of kWrapMarker means "skip to the start of the ring":
// records never straddle the wrap boundary, so header and payload are
// always contiguous and can be handed to the consumer as one span.
//
// Cursors are free-running 32-bit offsets (capacity a power of two, so
// unsigned wraparound composes with masking). `head` doubles as the
// futex word a blocked producer sleeps on; the consumer wakes it only
// when `writer_waiting` is set, keeping the steady-state pop path
// syscall-free. The producer's sleep carries a short timeout as a
// belt-and-suspenders against the (benign, rare) flag race — a missed
// wake costs one bounded re-check, never a hang.
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/check.hpp"
#include "mpl/frame.hpp"

namespace mpl {

namespace detail {

/// FUTEX_WAIT on a shared-memory word (no _PRIVATE: waiters and wakers
/// are different processes). Returns on wake, value mismatch, signal,
/// or timeout.
inline void futex_wait(const std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected, int timeout_ms) noexcept {
  timespec ts{};
  timespec* tsp = nullptr;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = (timeout_ms % 1000) * 1'000'000L;
    tsp = &ts;
  }
  (void)syscall(SYS_futex, addr, FUTEX_WAIT, expected, tsp, nullptr, 0);
}

inline void futex_wake(const std::atomic<std::uint32_t>* addr,
                       int nwaiters) noexcept {
  (void)syscall(SYS_futex, addr, FUTEX_WAKE, nwaiters, nullptr, nullptr, 0);
}

}  // namespace detail

/// Shared-memory control block of one ring. Zero-initialized memory is
/// a valid empty ring. Consumer-written and producer-written words sit
/// on separate cache lines.
struct RingCtrl {
  alignas(64) std::atomic<std::uint32_t> head{0};  // consumer cursor
  std::atomic<std::uint32_t> writer_waiting{0};
  alignas(64) std::atomic<std::uint32_t> tail{0};  // producer cursor
};
static_assert(sizeof(RingCtrl) == 128);

class SpscRing {
 public:
  static constexpr std::uint32_t kWrapMarker = 0xffffffffu;
  static constexpr std::uint32_t kRecordHeader = 8;  // u32 len + u32 pad

  /// Bytes a datagram of `chunk_len` payload occupies in the ring.
  [[nodiscard]] static constexpr std::uint32_t record_bytes(
      std::uint32_t chunk_len) noexcept {
    return (kRecordHeader + static_cast<std::uint32_t>(sizeof(FrameHeader)) +
            chunk_len + 7u) &
           ~7u;
  }

  /// Smallest power-of-two capacity that guarantees an EMPTY ring can
  /// accept a datagram of `max_chunk` payload at every cursor offset.
  /// Records never straddle the wrap, so a push may need to burn up to
  /// (record - 8) trailing bytes with a wrap marker before placing the
  /// record at the start: the worst case costs just under two records.
  /// With less capacity than this, a maximum-size push can fail forever
  /// at an unlucky offset — a wedged channel, not mere backpressure.
  [[nodiscard]] static constexpr std::uint32_t min_capacity(
      std::size_t max_chunk) noexcept {
    const std::uint32_t need =
        2 * record_bytes(static_cast<std::uint32_t>(max_chunk));
    std::uint32_t cap = 1;
    while (cap < need) cap <<= 1;
    return cap;
  }

  SpscRing() = default;
  SpscRing(RingCtrl* ctrl, std::byte* data, std::uint32_t capacity) noexcept
      : ctrl_(ctrl), data_(data), cap_(capacity), mask_(capacity - 1) {}

  [[nodiscard]] RingCtrl* ctrl() const noexcept { return ctrl_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return cap_; }

  // ---- producer side (one thread) ------------------------------------

  /// Enqueues one datagram; false when the ring lacks space (consumer
  /// has not caught up). Never blocks.
  bool try_push(const FrameHeader& h,
                std::span<const std::byte> chunk) noexcept {
    const bool ok = stage(h, chunk);
    publish();
    return ok;
  }

  /// Writes one datagram into the ring WITHOUT making it visible to the
  /// consumer: the tail store is deferred until publish(). A burst of
  /// stage() calls followed by one publish() hands the consumer the
  /// whole burst with a single release store — and lets the transport
  /// ring its doorbell once per burst instead of once per datagram.
  /// False when the ring lacks space for this record (anything already
  /// staged stays staged; the caller decides whether to publish it).
  bool stage(const FrameHeader& h, std::span<const std::byte> chunk) noexcept {
    if (!staging_) {
      staged_tail_ = ctrl_->tail.load(std::memory_order_relaxed);
      staging_ = true;
    }
    const auto len = static_cast<std::uint32_t>(chunk.size());
    const std::uint32_t rec = record_bytes(len);
    const std::uint32_t head = ctrl_->head.load(std::memory_order_acquire);
    std::uint32_t tail = staged_tail_;
    std::uint32_t free = cap_ - (tail - head);
    std::uint32_t pos = tail & mask_;
    const std::uint32_t contig = cap_ - pos;
    if (contig < rec) {
      // Record would straddle the end: burn the remainder with a wrap
      // marker (there are always >= 8 contiguous bytes here, as every
      // cursor advance is a multiple of 8).
      if (free < contig + rec) return false;
      std::uint32_t marker = kWrapMarker;
      std::memcpy(data_ + pos, &marker, sizeof(marker));
      tail += contig;
      free -= contig;
      pos = 0;
    }
    if (free < rec) return false;
    std::memcpy(data_ + pos, &len, sizeof(len));
    std::memcpy(data_ + pos + kRecordHeader, &h, sizeof(h));
    if (len > 0)
      std::memcpy(data_ + pos + kRecordHeader + sizeof(FrameHeader),
                  chunk.data(), len);
    staged_tail_ = tail + rec;
    return true;
  }

  /// Makes every staged record visible to the consumer with one release
  /// store of the tail. No-op when nothing is staged.
  void publish() noexcept {
    if (!staging_) return;
    if (staged_tail_ != ctrl_->tail.load(std::memory_order_relaxed))
      ctrl_->tail.store(staged_tail_, std::memory_order_release);
    staging_ = false;
  }

  /// True when stage() has written records the consumer cannot yet see.
  [[nodiscard]] bool has_staged() const noexcept {
    return staging_ &&
           staged_tail_ != ctrl_->tail.load(std::memory_order_relaxed);
  }

  /// Blocks (futex on `head`) until the consumer has advanced past the
  /// cursor observed by the last failed try_push, or ~`timeout_ms`.
  /// Internally capped so a lost wake degrades to a bounded re-check.
  void wait_space(int timeout_ms) noexcept {
    constexpr int kMaxWaitMs = 10;
    const int t = (timeout_ms < 0 || timeout_ms > kMaxWaitMs) ? kMaxWaitMs
                                                              : timeout_ms;
    const std::uint32_t head = ctrl_->head.load(std::memory_order_acquire);
    ctrl_->writer_waiting.store(1, std::memory_order_seq_cst);
    if (ctrl_->head.load(std::memory_order_seq_cst) == head)
      detail::futex_wait(&ctrl_->head, head, t);
    ctrl_->writer_waiting.store(0, std::memory_order_relaxed);
  }

  // ---- consumer side (one thread) ------------------------------------

  [[nodiscard]] bool empty() const noexcept {
    return ctrl_->tail.load(std::memory_order_acquire) ==
           ctrl_->head.load(std::memory_order_relaxed);
  }

  /// Pops every ready datagram, invoking `sink(header, chunk)` with a
  /// span into the ring (valid only during the call; the slot is
  /// released right after). Returns the number of datagrams consumed.
  template <typename Sink>
  std::size_t drain(const Sink& sink) {
    const std::uint32_t tail = ctrl_->tail.load(std::memory_order_acquire);
    std::uint32_t head = ctrl_->head.load(std::memory_order_relaxed);
    std::size_t popped = 0;
    while (head != tail) {
      std::uint32_t pos = head & mask_;
      std::uint32_t len;
      std::memcpy(&len, data_ + pos, sizeof(len));
      if (len == kWrapMarker) {
        head += cap_ - pos;
        ctrl_->head.store(head, std::memory_order_release);
        continue;
      }
      FrameHeader h;
      std::memcpy(&h, data_ + pos + kRecordHeader, sizeof(h));
      COMMON_CHECK_MSG(h.chunk_len == len, "shm ring record corrupted");
      sink(h, std::span<const std::byte>(
                  data_ + pos + kRecordHeader + sizeof(FrameHeader), len));
      head += record_bytes(len);
      // Publish per record, not per batch, so a producer blocked on a
      // full ring sees space as soon as it exists.
      ctrl_->head.store(head, std::memory_order_release);
      ++popped;
    }
    if (popped > 0 &&
        ctrl_->writer_waiting.load(std::memory_order_seq_cst) != 0)
      detail::futex_wake(&ctrl_->head, 1);
    return popped;
  }

 private:
  RingCtrl* ctrl_ = nullptr;
  std::byte* data_ = nullptr;
  std::uint32_t cap_ = 0;
  std::uint32_t mask_ = 0;
  // Producer-local staging cursor (not in shared memory: only the single
  // producing thread reads it, and the consumer must not see staged
  // records until publish()).
  std::uint32_t staged_tail_ = 0;
  bool staging_ = false;
};

}  // namespace mpl
