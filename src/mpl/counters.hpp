// Message and data accounting.
//
// Half of the paper's evaluation (Tables 2 and 3) is "number of messages"
// and "amount of data exchanged". These counters are incremented once per
// *logical* message at the sender (requests and replies each count, as in
// the paper: a page fetch is "two access faults and four messages").
// Loopback traffic (a process to itself) is free and uncounted, matching
// the paper's 2(n-1) barrier cost on n processors.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "mpl/frame.hpp"

namespace mpl {

struct Counters {
  std::array<std::uint64_t, 3> messages{};  // indexed by Layer
  std::array<std::uint64_t, 3> bytes{};

  void count(FrameKind kind, std::uint64_t payload_bytes) noexcept {
    const auto l = static_cast<std::size_t>(layer_of(kind));
    messages[l] += 1;
    bytes[l] += payload_bytes;
  }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages[0] + messages[1] + messages[2];
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes[0] + bytes[1] + bytes[2];
  }

  Counters& operator+=(const Counters& o) noexcept {
    for (std::size_t i = 0; i < messages.size(); ++i) {
      messages[i] += o.messages[i];
      bytes[i] += o.bytes[i];
    }
    return *this;
  }

  /// Difference of two snapshots (for measurement windows).
  [[nodiscard]] Counters since(const Counters& start) const noexcept {
    Counters d;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      d.messages[i] = messages[i] - start.messages[i];
      d.bytes[i] = bytes[i] - start.bytes[i];
    }
    return d;
  }
};

/// The live accumulator inside an Endpoint. Both the main thread
/// (send_app/send_svc) and the service thread (the *_stamped reply
/// paths) count logical messages concurrently, so the cells are relaxed
/// atomics; plain `Counters` is the trivially-copyable snapshot type
/// that crosses the report pipe and feeds the measurement windows.
class AtomicCounters {
 public:
  void count(FrameKind kind, std::uint64_t payload_bytes) noexcept {
    const auto l = static_cast<std::size_t>(layer_of(kind));
    messages_[l].fetch_add(1, std::memory_order_relaxed);
    bytes_[l].fetch_add(payload_bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] Counters snapshot() const noexcept {
    Counters c;
    for (std::size_t i = 0; i < c.messages.size(); ++i) {
      c.messages[i] = messages_[i].load(std::memory_order_relaxed);
      c.bytes[i] = bytes_[i].load(std::memory_order_relaxed);
    }
    return c;
  }

 private:
  std::array<std::atomic<std::uint64_t>, 3> messages_{};
  std::array<std::atomic<std::uint64_t>, 3> bytes_{};
};

}  // namespace mpl
