#include "mpl/shm_transport.hpp"

#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <climits>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "common/check.hpp"

namespace mpl {

namespace {

constexpr std::uint32_t kShmMagic = 0x544d4b55;  // "TMKU" (v3: poison words)

/// Region prologue, followed by doorbells and ring blocks. The poison
/// words are a bitmask of dead ranks (set by the runner's PeerKiller,
/// read by every survivor's poll_poison); two 64-bit words cover
/// kMaxProcs = 128.
struct RegionHeader {
  std::uint32_t magic;
  std::uint32_t nprocs;
  std::uint32_t ring_bytes;
  std::uint32_t reserved;
  std::atomic<std::uint64_t> poison[2];
};
static_assert(kMaxProcs <= 128, "poison words cover 128 ranks");

constexpr std::size_t kAlign = 64;

// The header must fit inside the first alignment block so every
// doorbell/mask/ring offset below is independent of its exact size.
static_assert(sizeof(RegionHeader) <= kAlign);

[[nodiscard]] constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

[[nodiscard]] std::size_t ring_block_bytes() noexcept {
  return align_up(sizeof(RingCtrl)) + kShmRingBytes;
}

[[nodiscard]] std::size_t rings_per_mesh(int nprocs) noexcept {
  // (src, dst) ordered pairs x 2 lanes x 2 sender slots.
  return static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs) *
         4;
}

// Receive-side wait bounds (doorbell re-checks before advertising a
// sleeper). While a receiver re-checks it does NOT advertise `waiters`,
// so the matching senders skip FUTEX_WAKE entirely — the bulk of the
// burst-mode syscall saving. The first kSpinPause re-checks are pause
// spins (they catch a publish already in flight on another core); the
// rest are sched_yield re-checks, which is what matters with more rank
// threads than cores: the receiver hands its timeslice to the sender
// it is waiting on instead of burning it, so request/reply turnarounds
// and barrier fan-in storms complete without any futex traffic even on
// one core. The budget adapts per lane (grow on a hit, shrink on a
// miss) so receivers blocked on genuinely distant events — a barrier
// depart several compute phases away — fall back to sleeping after a
// few yields.
constexpr int kSpinPause = 32;
constexpr int kSpinInitial = 64;
constexpr int kSpinMax = 256;
// Floor above zero so a budget collapsed by a run of misses keeps a
// meaningful probe window (and can grow back); shrink is gentle (1/4
// per miss) so one long wait in a run of short turnarounds does not
// collapse the budget and push the next turnarounds into futex sleeps.
constexpr int kSpinMin = 32;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

/// One per (receiver rank, lane): `seq` counts datagrams pushed toward
/// that inbox (any source ring) and is the receiver's futex word;
/// `waiters` advertises a sleeping receiver so senders skip FUTEX_WAKE
/// on the fast path. The seq_cst RMW pairing in wait_recv/ring_doorbell
/// makes the sleep lost-wakeup-free (Dekker through the futex word).
struct alignas(64) ShmTransport::Doorbell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiters{0};
};

namespace {

[[nodiscard]] std::size_t doorbells_offset() noexcept {
  return align_up(sizeof(RegionHeader));
}

[[nodiscard]] ShmTransport::Doorbell* doorbells(void* base) noexcept {
  return reinterpret_cast<ShmTransport::Doorbell*>(
      static_cast<std::byte*>(base) + doorbells_offset());
}

// Active-ring masks, one per (receiver rank, lane): bit src*2+slot is
// set (once, by the sender) the first time that incoming ring carries a
// datagram. The receiver's drain walks only set bits, so an idle pair
// ring is never constructed into the receive path and its control page
// is never touched — at 128 ranks a full drain pass would otherwise
// probe 2*nprocs ring headers per lane (16k rings process-wide) just to
// find the two or three neighbours that actually talk.
[[nodiscard]] std::size_t mask_words(int nprocs) noexcept {
  return (static_cast<std::size_t>(nprocs) * 2 + 63) / 64;
}

[[nodiscard]] std::size_t masks_offset(int nprocs) noexcept {
  return align_up(doorbells_offset() +
                  static_cast<std::size_t>(nprocs) * 2 *
                      sizeof(ShmTransport::Doorbell));
}

[[nodiscard]] std::size_t rings_offset(int nprocs) noexcept {
  return align_up(masks_offset(nprocs) +
                  static_cast<std::size_t>(nprocs) * 2 * mask_words(nprocs) *
                      sizeof(std::uint64_t));
}

/// Ring block index of (src, dst, lane, slot).
[[nodiscard]] std::size_t ring_index(int nprocs, int src, int dst, Lane lane,
                                     int slot) noexcept {
  const auto n = static_cast<std::size_t>(nprocs);
  return ((static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)) *
              2 +
          static_cast<std::size_t>(lane)) *
             2 +
         static_cast<std::size_t>(slot);
}

[[nodiscard]] SpscRing ring_view(void* base, int nprocs, std::size_t index) {
  auto* bytes = static_cast<std::byte*>(base);
  std::byte* block = bytes + rings_offset(nprocs) + index * ring_block_bytes();
  auto* ctrl = reinterpret_cast<RingCtrl*>(block);
  return SpscRing(ctrl, block + align_up(sizeof(RingCtrl)), kShmRingBytes);
}

/// Marks ranks dead in the poison words and wakes every parked
/// receiver. When `owns_region` is set, the caller's view of the
/// region transfers here (the process-backend parent hands its view
/// over before discarding the Fabric).
class ShmPeerKiller final : public PeerKiller {
 public:
  ShmPeerKiller(void* base, int nprocs, bool owns_region) noexcept
      : base_(base), nprocs_(nprocs), owns_region_(owns_region) {}

  ~ShmPeerKiller() override {
    if (owns_region_) munmap(base_, shm_region_bytes(nprocs_));
  }

  void poison(int dead_rank) noexcept override {
    if (dead_rank < 0 || dead_rank >= nprocs_) return;
    auto* h = static_cast<RegionHeader*>(base_);
    h->poison[dead_rank / 64].fetch_or(1ull << (dead_rank % 64),
                                       std::memory_order_seq_cst);
    // Bump and wake every doorbell: parked receivers futex-wake, and
    // spinning receivers see the sequence move — either way the next
    // empty drain re-checks poison and unwinds. Producers blocked on a
    // full ring need no wake (wait_space self-bounds at 10 ms).
    ShmTransport::Doorbell* bells = doorbells(base_);
    for (int i = 0; i < nprocs_ * 2; ++i) {
      bells[i].seq.fetch_add(1, std::memory_order_seq_cst);
      detail::futex_wake(&bells[i].seq, INT_MAX);
    }
  }

 private:
  void* base_;
  int nprocs_;
  bool owns_region_;
};

class ShmFabricState final : public FabricState {
 public:
  explicit ShmFabricState(int nprocs) : nprocs_(nprocs) {
    bytes_ = shm_region_bytes(nprocs);
    void* p = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    COMMON_CHECK_MSG(p != MAP_FAILED, "mmap of shm fabric region failed");
    base_ = p;
    init_ring_region(base_, nprocs);
  }

  ~ShmFabricState() override {
    // Unmap responsibility for this process's view: the adopting
    // process hands it to its ShmTransport, make_killer() hands it to
    // the killer; un-adopted copies (the parent's, or a child's on an
    // error path before adoption) release it here. munmap is
    // per-address-space, so the parent unmapping never disturbs
    // children.
    if (base_ != nullptr && !adopted_ && !killer_made_) munmap(base_, bytes_);
  }

  std::unique_ptr<Transport> adopt(int rank) override {
    adopted_ = true;
    return std::make_unique<ShmTransport>(base_, nprocs_, rank,
                                          /*owns_region=*/true);
  }

  std::unique_ptr<PeerKiller> make_killer() override {
    // The killer owns this view unless a transport in this process
    // already does (then it borrows — single-process harnesses keep the
    // transport alive past the killer).
    const bool owns = !adopted_ && !killer_made_;
    killer_made_ = true;
    return std::make_unique<ShmPeerKiller>(base_, nprocs_, owns);
  }

 private:
  int nprocs_;
  std::size_t bytes_ = 0;
  void* base_ = nullptr;
  bool adopted_ = false;
  bool killer_made_ = false;
};

}  // namespace

std::size_t shm_region_bytes(int nprocs) noexcept {
  return rings_offset(nprocs) + rings_per_mesh(nprocs) * ring_block_bytes();
}

void init_ring_region(void* base, int nprocs) noexcept {
  // Zeroed pages are a valid empty state for every doorbell, poison
  // word, and ring; only the header needs real values.
  auto* h = static_cast<RegionHeader*>(base);
  h->magic = kShmMagic;
  h->nprocs = static_cast<std::uint32_t>(nprocs);
  h->ring_bytes = kShmRingBytes;
}

std::unique_ptr<PeerKiller> make_shm_killer(void* base, int nprocs,
                                            bool owns_region) {
  return std::make_unique<ShmPeerKiller>(base, nprocs, owns_region);
}

ShmTransport::ShmTransport(void* base, int nprocs, int rank, bool owns_region,
                           TransportKind kind)
    : Transport(rank, nprocs),
      base_(base),
      owns_region_(owns_region),
      kind_(kind),
      main_thread_(static_cast<unsigned long>(pthread_self())),
      burst_enabled_(burst_from_env()) {
  if (burst_enabled_) spin_budget_[0] = spin_budget_[1] = kSpinInitial;
  const auto* h = static_cast<const RegionHeader*>(base);
  COMMON_CHECK_MSG(h->magic == kShmMagic &&
                       h->nprocs == static_cast<std::uint32_t>(nprocs) &&
                       h->ring_bytes == kShmRingBytes,
                   "shm fabric region header mismatch");
  for (int slot = 0; slot < 2; ++slot) {
    for (int lane = 0; lane < 2; ++lane) {
      out_[slot][lane].reserve(static_cast<std::size_t>(nprocs));
      for (int dst = 0; dst < nprocs; ++dst)
        out_[slot][lane].push_back(ring_view(
            base, nprocs,
            ring_index(nprocs, rank, dst, static_cast<Lane>(lane), slot)));
      announced_[slot][lane].assign(static_cast<std::size_t>(nprocs), 0);
    }
  }
  for (int lane = 0; lane < 2; ++lane) {
    in_[lane].reserve(static_cast<std::size_t>(nprocs) * 2);
    for (int src = 0; src < nprocs; ++src)
      for (int slot = 0; slot < 2; ++slot)
        in_[lane].push_back(ring_view(
            base, nprocs,
            ring_index(nprocs, src, rank, static_cast<Lane>(lane), slot)));
  }
}

ShmTransport::~ShmTransport() {
  // Teardown contract: the Endpoint flushes every open burst before the
  // transport dies, so nothing should be staged here. If a caller
  // bypassed that, publish anyway — a stranded record would wedge the
  // peer's receive forever, which is strictly worse than delivering
  // late — and complain loudly so the bug is visible.
  for (int slot = 0; slot < 2; ++slot) {
    for (int lane = 0; lane < 2; ++lane) {
      const int dst = burst_dst_[slot][lane];
      if (dst < 0) continue;
      if (out_ring(static_cast<Lane>(lane), slot, dst).has_staged()) {
        std::fprintf(stderr,
                     "mpl: rank %d tore down with frames staged toward "
                     "rank %d (unflushed burst) — publishing them\n",
                     rank_, dst);
        publish_staged(static_cast<Lane>(lane), slot, dst);
        assert(false && "transport destroyed with an unflushed burst");
      }
    }
  }
  if (owns_region_) munmap(base_, shm_region_bytes(nprocs_));
}

ShmTransport::Doorbell& ShmTransport::doorbell(int rank, Lane lane) noexcept {
  auto* bells = doorbells(base_);
  return bells[static_cast<std::size_t>(rank) * 2 +
               static_cast<std::size_t>(lane)];
}

int ShmTransport::sender_slot() const noexcept {
  // Slot 0 is the thread that built the endpoint (the main thread);
  // anything else — there is exactly one, the service thread — uses
  // slot 1, keeping every ring single-producer without registration.
  return pthread_equal(pthread_self(),
                       static_cast<pthread_t>(main_thread_)) != 0
             ? 0
             : 1;
}

SpscRing& ShmTransport::out_ring(Lane lane, int slot, int dst) noexcept {
  return out_[slot][static_cast<int>(lane)][static_cast<std::size_t>(dst)];
}

std::atomic<std::uint64_t>* ShmTransport::active_mask(int rank,
                                                      Lane lane) noexcept {
  auto* words = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(base_) + masks_offset(nprocs_));
  return words + (static_cast<std::size_t>(rank) * 2 +
                  static_cast<std::size_t>(lane)) *
                     mask_words(nprocs_);
}

void ShmTransport::announce_ring(Lane lane, int slot, int dst) noexcept {
  // First datagram on this (src, dst, lane, slot) ring: publish its bit
  // in the receiver's active mask so its drain starts visiting the
  // ring. Ordered before the doorbell bump — a receiver woken by the
  // bump re-reads the mask after a stale token, so the bit is always
  // seen before the datagram must be.
  auto& flag = announced_[slot][static_cast<int>(lane)]
                         [static_cast<std::size_t>(dst)];
  if (flag != 0) return;
  const std::size_t bit = static_cast<std::size_t>(rank_) * 2 +
                          static_cast<std::size_t>(slot);
  active_mask(dst, lane)[bit / 64].fetch_or(1ull << (bit % 64),
                                            std::memory_order_seq_cst);
  flag = 1;
}

void ShmTransport::ring_doorbell(int dst, Lane lane) noexcept {
  Doorbell& d = doorbell(dst, lane);
  d.seq.fetch_add(1, std::memory_order_seq_cst);
  host_send_calls_.fetch_add(1, std::memory_order_relaxed);
  if (d.waiters.load(std::memory_order_seq_cst) != 0) {
    detail::futex_wake(&d.seq, INT_MAX);
    host_futex_wakes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShmTransport::publish_staged(Lane lane, int slot, int dst) noexcept {
  SpscRing& ring = out_ring(lane, slot, dst);
  const bool had_staged = ring.has_staged();
  ring.publish();
  if (had_staged) {
    announce_ring(lane, slot, dst);
    ring_doorbell(dst, lane);
  }
}

bool ShmTransport::do_try_send(Lane lane, int dst, const FrameHeader& h,
                               std::span<const std::byte> chunk) {
  const int slot = sender_slot();
  SpscRing& ring = out_ring(lane, slot, dst);
  if (burst_dst_[slot][static_cast<int>(lane)] == dst) {
    // Mid-burst: stage without a tail store or doorbell. If the ring is
    // full, publish what IS staged (and ring once) so the consumer can
    // drain it — otherwise neither side could make progress — then
    // report backpressure; the burst stays open for the retry.
    if (ring.stage(h, chunk)) return true;
    publish_staged(lane, slot, dst);
    return false;
  }
  if (!ring.try_push(h, chunk)) return false;
  announce_ring(lane, slot, dst);
  ring_doorbell(dst, lane);
  return true;
}

void ShmTransport::do_begin_burst(Lane lane, int dst) {
  const int slot = sender_slot();
  int& cur = burst_dst_[slot][static_cast<int>(lane)];
  if (cur == dst) return;
  // Switching targets closes the previous burst (publish + doorbell);
  // ring publishes never backpressure, so this cannot fail.
  if (cur >= 0) publish_staged(lane, slot, cur);
  cur = dst;
}

bool ShmTransport::do_try_flush_burst(Lane lane, int dst) {
  const int slot = sender_slot();
  int& cur = burst_dst_[slot][static_cast<int>(lane)];
  if (cur != dst) return true;
  publish_staged(lane, slot, dst);
  cur = -1;
  return true;
}

HostStats ShmTransport::host_stats() const noexcept {
  return {host_send_calls_.load(std::memory_order_relaxed),
          host_futex_wakes_.load(std::memory_order_relaxed)};
}

void ShmTransport::do_wait_send(Lane lane, int dst, int timeout_ms) {
  out_ring(lane, sender_slot(), dst).wait_space(timeout_ms);
}

std::size_t ShmTransport::do_drain(Lane lane, const ChunkSink& sink) {
  // Visit only rings that have ever carried a datagram toward us: the
  // active mask bounds the pass by the number of talking neighbours,
  // not by nprocs, and leaves idle rings' shared pages untouched.
  std::size_t count = 0;
  const std::atomic<std::uint64_t>* mask = active_mask(rank_, lane);
  auto& rings = in_[static_cast<int>(lane)];
  const std::size_t words = mask_words(nprocs_);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t m = mask[w].load(std::memory_order_acquire);
    while (m != 0) {
      const int bit = std::countr_zero(m);
      m &= m - 1;
      count += rings[w * 64 + static_cast<std::size_t>(bit)].drain(sink);
    }
  }
  return count;
}

std::uint32_t ShmTransport::do_recv_token(Lane lane) {
  return doorbell(rank_, lane).seq.load(std::memory_order_acquire);
}

void ShmTransport::do_wait_recv(Lane lane, std::uint32_t token,
                                int timeout_ms) {
  Doorbell& d = doorbell(rank_, lane);
  // Burst mode: pause-then-yield on the doorbell before advertising a
  // sleeper. While re-checking, `waiters` stays 0, so senders skip
  // FUTEX_WAKE — the common request/reply exchange then costs no
  // syscalls on the wake side even when the sender only runs after the
  // receiver yields its timeslice (see the constants above).
  int& budget = spin_budget_[static_cast<int>(lane)];
  for (int i = 0; i < budget; ++i) {
    if (d.seq.load(std::memory_order_acquire) != token) {
      budget = std::min(kSpinMax, budget * 2 + 1);
      return;
    }
    if (i < kSpinPause)
      cpu_relax();
    else
      sched_yield();
  }
  if (budget > 0) budget = std::max(kSpinMin, budget - budget / 4);
  // Bounded sleep (the caller slices at kMaxWaitSliceMs): a spurious
  // return only costs one empty re-drain, and the bound keeps even a
  // theoretically missed wake from becoming a hang — and lets the
  // caller re-check poison and deadline state between slices.
  d.waiters.fetch_add(1, std::memory_order_seq_cst);
  if (d.seq.load(std::memory_order_seq_cst) == token)
    detail::futex_wait(&d.seq, token, timeout_ms);
  d.waiters.fetch_sub(1, std::memory_order_seq_cst);
}

void ShmTransport::do_wake_service() { ring_doorbell(rank_, Lane::kSvc); }

int ShmTransport::poll_poison() noexcept {
  const auto* h = static_cast<const RegionHeader*>(base_);
  for (int w = 0; w < 2; ++w) {
    std::uint64_t m = h->poison[w].load(std::memory_order_acquire);
    if (w == rank_ / 64) m &= ~(1ull << (rank_ % 64));  // not our own death
    if (m != 0) return w * 64 + std::countr_zero(m);
  }
  return -1;
}

void ShmTransport::describe_channels(std::ostream& os) {
  // Incoming ring occupancy per announced (src, slot, lane): bytes the
  // peer published that we have not consumed. Best-effort snapshot over
  // the shared atomics; only rings the active mask names are touched.
  for (int lane = 0; lane < 2; ++lane) {
    const std::atomic<std::uint64_t>* mask =
        active_mask(rank_, static_cast<Lane>(lane));
    const std::size_t words = mask_words(nprocs_);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t m = mask[w].load(std::memory_order_acquire);
      while (m != 0) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const std::size_t idx = w * 64 + static_cast<std::size_t>(bit);
        const SpscRing& ring = in_[lane][idx];
        const std::uint32_t head =
            ring.ctrl()->head.load(std::memory_order_acquire);
        const std::uint32_t tail =
            ring.ctrl()->tail.load(std::memory_order_acquire);
        if (tail == head) continue;
        os << " peer" << idx / 2 << (idx % 2 == 0 ? ".main" : ".svc")
           << (lane == static_cast<int>(Lane::kSvc) ? "->svc:" : "->app:")
           << (tail - head) << "B";
      }
    }
  }
}

std::unique_ptr<FabricState> make_shm_fabric(int nprocs) {
  return std::make_unique<ShmFabricState>(nprocs);
}

}  // namespace mpl
