#include "mpl/shm_transport.hpp"

#include <pthread.h>
#include <sys/mman.h>

#include <bit>
#include <climits>
#include <cstring>

#include "common/check.hpp"

namespace mpl {

namespace {

constexpr std::uint32_t kShmMagic = 0x544d4b54;  // "TMKT" (v2: active masks)

/// Region prologue, followed by doorbells and ring blocks.
struct RegionHeader {
  std::uint32_t magic;
  std::uint32_t nprocs;
  std::uint32_t ring_bytes;
  std::uint32_t reserved;
};

constexpr std::size_t kAlign = 64;

[[nodiscard]] constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

[[nodiscard]] std::size_t ring_block_bytes() noexcept {
  return align_up(sizeof(RingCtrl)) + kShmRingBytes;
}

[[nodiscard]] std::size_t rings_per_mesh(int nprocs) noexcept {
  // (src, dst) ordered pairs x 2 lanes x 2 sender slots.
  return static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs) *
         4;
}

}  // namespace

/// One per (receiver rank, lane): `seq` counts datagrams pushed toward
/// that inbox (any source ring) and is the receiver's futex word;
/// `waiters` advertises a sleeping receiver so senders skip FUTEX_WAKE
/// on the fast path. The seq_cst RMW pairing in wait_recv/ring_doorbell
/// makes the sleep lost-wakeup-free (Dekker through the futex word).
struct alignas(64) ShmTransport::Doorbell {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiters{0};
};

namespace {

[[nodiscard]] std::size_t doorbells_offset() noexcept {
  return align_up(sizeof(RegionHeader));
}

// Active-ring masks, one per (receiver rank, lane): bit src*2+slot is
// set (once, by the sender) the first time that incoming ring carries a
// datagram. The receiver's drain walks only set bits, so an idle pair
// ring is never constructed into the receive path and its control page
// is never touched — at 128 ranks a full drain pass would otherwise
// probe 2*nprocs ring headers per lane (16k rings process-wide) just to
// find the two or three neighbours that actually talk.
[[nodiscard]] std::size_t mask_words(int nprocs) noexcept {
  return (static_cast<std::size_t>(nprocs) * 2 + 63) / 64;
}

[[nodiscard]] std::size_t masks_offset(int nprocs) noexcept {
  return align_up(doorbells_offset() +
                  static_cast<std::size_t>(nprocs) * 2 *
                      sizeof(ShmTransport::Doorbell));
}

[[nodiscard]] std::size_t rings_offset(int nprocs) noexcept {
  return align_up(masks_offset(nprocs) +
                  static_cast<std::size_t>(nprocs) * 2 * mask_words(nprocs) *
                      sizeof(std::uint64_t));
}

/// Ring block index of (src, dst, lane, slot).
[[nodiscard]] std::size_t ring_index(int nprocs, int src, int dst, Lane lane,
                                     int slot) noexcept {
  const auto n = static_cast<std::size_t>(nprocs);
  return ((static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)) *
              2 +
          static_cast<std::size_t>(lane)) *
             2 +
         static_cast<std::size_t>(slot);
}

[[nodiscard]] SpscRing ring_view(void* base, int nprocs, std::size_t index) {
  auto* bytes = static_cast<std::byte*>(base);
  std::byte* block = bytes + rings_offset(nprocs) + index * ring_block_bytes();
  auto* ctrl = reinterpret_cast<RingCtrl*>(block);
  return SpscRing(ctrl, block + align_up(sizeof(RingCtrl)), kShmRingBytes);
}

class ShmFabricState final : public FabricState {
 public:
  explicit ShmFabricState(int nprocs) : nprocs_(nprocs) {
    bytes_ = shm_region_bytes(nprocs);
    void* p = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    COMMON_CHECK_MSG(p != MAP_FAILED, "mmap of shm fabric region failed");
    base_ = p;
    init_ring_region(base_, nprocs);
  }

  ~ShmFabricState() override {
    // Unmap responsibility for this process's view: the adopting
    // process hands it to its ShmTransport; un-adopted copies (the
    // parent's, or a child's on an error path before adoption) release
    // it here. munmap is per-address-space, so the parent unmapping
    // never disturbs children.
    if (base_ != nullptr && !adopted_) munmap(base_, bytes_);
  }

  std::unique_ptr<Transport> adopt(int rank) override {
    adopted_ = true;
    return std::make_unique<ShmTransport>(base_, nprocs_, rank,
                                          /*owns_region=*/true);
  }

 private:
  int nprocs_;
  std::size_t bytes_ = 0;
  void* base_ = nullptr;
  bool adopted_ = false;
};

}  // namespace

std::size_t shm_region_bytes(int nprocs) noexcept {
  return rings_offset(nprocs) + rings_per_mesh(nprocs) * ring_block_bytes();
}

void init_ring_region(void* base, int nprocs) noexcept {
  // Zeroed pages are a valid empty state for every doorbell and ring;
  // only the header needs real values.
  auto* h = static_cast<RegionHeader*>(base);
  h->magic = kShmMagic;
  h->nprocs = static_cast<std::uint32_t>(nprocs);
  h->ring_bytes = kShmRingBytes;
}

ShmTransport::ShmTransport(void* base, int nprocs, int rank, bool owns_region,
                           TransportKind kind)
    : nprocs_(nprocs),
      rank_(rank),
      base_(base),
      owns_region_(owns_region),
      kind_(kind),
      main_thread_(static_cast<unsigned long>(pthread_self())) {
  const auto* h = static_cast<const RegionHeader*>(base);
  COMMON_CHECK_MSG(h->magic == kShmMagic &&
                       h->nprocs == static_cast<std::uint32_t>(nprocs) &&
                       h->ring_bytes == kShmRingBytes,
                   "shm fabric region header mismatch");
  for (int slot = 0; slot < 2; ++slot) {
    for (int lane = 0; lane < 2; ++lane) {
      out_[slot][lane].reserve(static_cast<std::size_t>(nprocs));
      for (int dst = 0; dst < nprocs; ++dst)
        out_[slot][lane].push_back(ring_view(
            base, nprocs,
            ring_index(nprocs, rank, dst, static_cast<Lane>(lane), slot)));
      announced_[slot][lane].assign(static_cast<std::size_t>(nprocs), 0);
    }
  }
  for (int lane = 0; lane < 2; ++lane) {
    in_[lane].reserve(static_cast<std::size_t>(nprocs) * 2);
    for (int src = 0; src < nprocs; ++src)
      for (int slot = 0; slot < 2; ++slot)
        in_[lane].push_back(ring_view(
            base, nprocs,
            ring_index(nprocs, src, rank, static_cast<Lane>(lane), slot)));
  }
}

ShmTransport::~ShmTransport() {
  if (owns_region_) munmap(base_, shm_region_bytes(nprocs_));
}

ShmTransport::Doorbell& ShmTransport::doorbell(int rank, Lane lane) noexcept {
  auto* bells = reinterpret_cast<Doorbell*>(static_cast<std::byte*>(base_) +
                                            doorbells_offset());
  return bells[static_cast<std::size_t>(rank) * 2 +
               static_cast<std::size_t>(lane)];
}

int ShmTransport::sender_slot() const noexcept {
  // Slot 0 is the thread that built the endpoint (the main thread);
  // anything else — there is exactly one, the service thread — uses
  // slot 1, keeping every ring single-producer without registration.
  return pthread_equal(pthread_self(),
                       static_cast<pthread_t>(main_thread_)) != 0
             ? 0
             : 1;
}

SpscRing& ShmTransport::out_ring(Lane lane, int slot, int dst) noexcept {
  return out_[slot][static_cast<int>(lane)][static_cast<std::size_t>(dst)];
}

std::atomic<std::uint64_t>* ShmTransport::active_mask(int rank,
                                                      Lane lane) noexcept {
  auto* words = reinterpret_cast<std::atomic<std::uint64_t>*>(
      static_cast<std::byte*>(base_) + masks_offset(nprocs_));
  return words + (static_cast<std::size_t>(rank) * 2 +
                  static_cast<std::size_t>(lane)) *
                     mask_words(nprocs_);
}

void ShmTransport::announce_ring(Lane lane, int slot, int dst) noexcept {
  // First datagram on this (src, dst, lane, slot) ring: publish its bit
  // in the receiver's active mask so its drain starts visiting the
  // ring. Ordered before the doorbell bump — a receiver woken by the
  // bump re-reads the mask after a stale token, so the bit is always
  // seen before the datagram must be.
  auto& flag = announced_[slot][static_cast<int>(lane)]
                         [static_cast<std::size_t>(dst)];
  if (flag != 0) return;
  const std::size_t bit = static_cast<std::size_t>(rank_) * 2 +
                          static_cast<std::size_t>(slot);
  active_mask(dst, lane)[bit / 64].fetch_or(1ull << (bit % 64),
                                            std::memory_order_seq_cst);
  flag = 1;
}

void ShmTransport::ring_doorbell(int dst, Lane lane) noexcept {
  Doorbell& d = doorbell(dst, lane);
  d.seq.fetch_add(1, std::memory_order_seq_cst);
  if (d.waiters.load(std::memory_order_seq_cst) != 0)
    detail::futex_wake(&d.seq, INT_MAX);
}

bool ShmTransport::try_send(Lane lane, int dst, const FrameHeader& h,
                            std::span<const std::byte> chunk) {
  const int slot = sender_slot();
  if (!out_ring(lane, slot, dst).try_push(h, chunk)) return false;
  announce_ring(lane, slot, dst);
  ring_doorbell(dst, lane);
  return true;
}

void ShmTransport::wait_send(Lane lane, int dst, int timeout_ms) {
  out_ring(lane, sender_slot(), dst).wait_space(timeout_ms);
}

std::size_t ShmTransport::drain(Lane lane, const ChunkSink& sink) {
  // Visit only rings that have ever carried a datagram toward us: the
  // active mask bounds the pass by the number of talking neighbours,
  // not by nprocs, and leaves idle rings' shared pages untouched.
  std::size_t count = 0;
  const std::atomic<std::uint64_t>* mask = active_mask(rank_, lane);
  auto& rings = in_[static_cast<int>(lane)];
  const std::size_t words = mask_words(nprocs_);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t m = mask[w].load(std::memory_order_acquire);
    while (m != 0) {
      const int bit = std::countr_zero(m);
      m &= m - 1;
      count += rings[w * 64 + static_cast<std::size_t>(bit)].drain(sink);
    }
  }
  return count;
}

std::uint32_t ShmTransport::recv_token(Lane lane) {
  return doorbell(rank_, lane).seq.load(std::memory_order_acquire);
}

void ShmTransport::wait_recv(Lane lane, std::uint32_t token) {
  // Bounded sleep: a spurious return only costs the caller one empty
  // re-drain, and the bound keeps even a theoretically missed wake from
  // becoming a hang.
  constexpr int kMaxSleepMs = 100;
  Doorbell& d = doorbell(rank_, lane);
  d.waiters.fetch_add(1, std::memory_order_seq_cst);
  if (d.seq.load(std::memory_order_seq_cst) == token)
    detail::futex_wait(&d.seq, token, kMaxSleepMs);
  d.waiters.fetch_sub(1, std::memory_order_seq_cst);
}

void ShmTransport::wake_service() { ring_doorbell(rank_, Lane::kSvc); }

std::unique_ptr<FabricState> make_shm_fabric(int nprocs) {
  return std::make_unique<ShmFabricState>(nprocs);
}

}  // namespace mpl
