// Transport abstraction: the interconnect under the process mesh.
//
// The Endpoint core (fabric.hpp) owns everything protocol-visible —
// framing, chunking, reassembly, message/byte counters, virtual-clock
// charges. A Transport only moves opaque datagram chunks between
// processes, so the modelled results (message counts, bytes, virtual
// times, checksums) are bit-identical across backends by construction;
// only the *host-side* cost of moving a chunk differs. Backends:
//
//   SocketTransport (socket_transport.hpp)
//       SOCK_SEQPACKET Unix-domain socketpairs, one per directed
//       channel; sendmsg/recv/poll per datagram. The original fabric.
//
//   ShmTransport (shm_transport.hpp)
//       Per-(pair, lane, sending-thread) lock-free SPSC byte rings in
//       one MAP_SHARED region inherited through the runner's fork, with
//       futex-based blocking — the steady-state datagram path performs
//       no syscalls at all.
//
//   InprocTransport (inproc_transport.hpp)
//       The same ring mesh over plain process-private memory, for the
//       runner's thread backend where all "processes" are threads of
//       one address space: no fork, no fd inheritance, no MAP_SHARED.
//
// Delivery contract every backend honours (what the Endpoint's
// reassembly relies on): datagrams are never corrupted, duplicated, or
// dropped, and datagrams pushed by ONE sending thread toward one
// (destination, lane) arrive in push order. Datagrams from different
// sending threads (a peer's main and service threads share outgoing
// channels) may interleave arbitrarily, exactly as two threads
// sendmsg()ing one socket interleave.
//
// Failure handling lives in THIS base class so its semantics are
// backend-identical by construction: the public entry points are
// non-virtual wrappers over protected do_* hooks. The wrappers
//   - drive the rank's deterministic fault plan (TMK_FAULT_INJECT,
//     fault_inject.hpp) on the send path and at barrier entry;
//   - drop sends once this rank's fault has fired, so a dying rank
//     cannot keep completing protocol exchanges;
//   - bound every blocking wait to kMaxWaitSliceMs, so callers
//     (fabric.cpp) re-check peer-death poison and their wait deadline
//     between slices instead of parking indefinitely;
//   - cache the backend's poison signal (poll_poison) so the per-wait
//     check is one atomic load after a peer death was first observed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "mpl/fault_inject.hpp"
#include "mpl/frame.hpp"

namespace mpl {

/// Which interconnect a run's process mesh is built on. kInproc only
/// works when every rank lives in one address space (the runner's
/// thread backend); the fork-based backends cannot use it.
enum class TransportKind : std::uint8_t { kSocket = 0, kShm = 1, kInproc = 2 };

[[nodiscard]] constexpr const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kInproc:
      return "inproc";
    case TransportKind::kSocket:
      break;
  }
  return "socket";
}

/// Parses a transport name ("socket", "shm", or "inproc"); nullopt on
/// anything else.
[[nodiscard]] std::optional<TransportKind> parse_transport(
    std::string_view name) noexcept;

/// The process-wide default: TMK_TRANSPORT=socket|shm when set (and
/// valid), else `fallback`.
[[nodiscard]] TransportKind transport_from_env(
    TransportKind fallback = TransportKind::kSocket) noexcept;

/// Whether the burst-mode send path is enabled: TMK_FABRIC_BURST=0
/// disables it, anything else (including unset) keeps the default ON.
/// Read per construction, never cached process-wide, so tests can
/// toggle it between spawns under the thread backend.
[[nodiscard]] bool burst_from_env() noexcept;

/// Host-side cost counters of one transport view. These are HOST
/// observables (how many kernel round-trips the interconnect cost this
/// process), never modelled quantities: the modelled message/byte
/// counters and virtual times live in the Endpoint and are identical
/// across transports and burst modes by construction.
struct HostStats {
  /// Datagram publishes toward peers: doorbell bumps for the ring
  /// transports, send syscalls for the socket transport. A burst of N
  /// frames costs 1, not N.
  std::uint64_t send_calls = 0;
  /// FUTEX_WAKE syscalls actually issued by send-side doorbells (ring
  /// transports only; always 0 for sockets).
  std::uint64_t futex_wakes = 0;
};

/// The two delivery targets inside every destination process: its
/// service thread and its main thread. A directed channel is (src, dst,
/// lane).
enum class Lane : std::uint8_t { kSvc = 0, kApp = 1 };

/// Non-owning reference to a `void(const FrameHeader&, chunk)` datagram
/// consumer — same trick as FramePredicate: receive paths hand the
/// transport a capturing lambda without a std::function allocation.
class ChunkSink {
 public:
  template <typename F>
  ChunkSink(const F& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_([](const void* o, const FrameHeader& h,
                           std::span<const std::byte> chunk) {
          (*static_cast<const F*>(o))(h, chunk);
        }) {}

  void operator()(const FrameHeader& h,
                  std::span<const std::byte> chunk) const {
    call_(obj_, h, chunk);
  }

 private:
  const void* obj_;
  void (*call_)(const void*, const FrameHeader&, std::span<const std::byte>);
};

/// One process's view of the interconnect. Constructed by Fabric::adopt
/// in the forked child; used by exactly two threads — the main thread
/// (kApp receives, sends on either lane) and the service thread (kSvc
/// receives, sends on either lane).
class Transport {
 public:
  /// Upper bound every blocking do_wait_* honours: a parked rank wakes
  /// at least this often so the caller can re-check poison / deadline /
  /// stop conditions. Spurious wakes were already part of the contract.
  static constexpr int kMaxWaitSliceMs = 100;

  Transport(int rank, int nprocs);
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;

  /// Attempts to enqueue one datagram (header + chunk) toward `dst`'s
  /// `lane`. Returns false when the channel is full — the caller may
  /// pump its own inbound traffic and retry (the deadlock-freedom
  /// discipline of the socket fabric). Drives the fault plan; once this
  /// rank's fault fired, the datagram is silently dropped (reported as
  /// sent) so the dying rank unwinds instead of wedging in a send.
  bool try_send(Lane lane, int dst, const FrameHeader& h,
                std::span<const std::byte> chunk);

  /// Blocks until the (lane, dst) channel plausibly has space again, or
  /// `timeout_ms` elapsed (negative = no caller deadline; the wait is
  /// still sliced at kMaxWaitSliceMs and may wake spuriously). Only
  /// meaningful right after a failed try_send from the same thread.
  void wait_send(Lane lane, int dst, int timeout_ms);

  /// Non-blocking: feeds every ready inbound datagram on `lane` to
  /// `sink`, in per-sending-thread order. Returns the datagram count.
  /// The chunk span is only valid during the sink call.
  std::size_t drain(Lane lane, const ChunkSink& sink);

  /// Samples the arrival state of `lane` for a lost-wakeup-free wait:
  /// a token taken BEFORE a drain, passed to wait_recv AFTER the drain
  /// came up empty, guarantees wait_recv returns promptly if anything
  /// arrived in between. (Level-triggered backends may ignore it.)
  [[nodiscard]] std::uint32_t recv_token(Lane lane);

  /// Blocks until new datagrams may be ready on `lane` — or, for
  /// Lane::kSvc, until wake_service() was called — or kMaxWaitSliceMs
  /// passed. Spurious returns are allowed; callers re-check their
  /// condition (and their wait deadline) in a loop.
  void wait_recv(Lane lane, std::uint32_t token);

  /// Wakes a wait_recv(Lane::kSvc) blocked in the service thread (used
  /// for shutdown). Callable from the main thread.
  void wake_service();

  // ---- burst mode (optional; default implementation = no batching) ----
  //
  // A burst groups consecutive try_sends from ONE thread toward ONE
  // (lane, dst) so the backend can publish them as a unit: the ring
  // transports stage records and ring the doorbell once at flush, the
  // socket transport gathers copies and hands them to the kernel in one
  // vectored call. Between begin_burst and a successful try_flush_burst
  // the frames may be invisible to the receiver, so callers MUST flush
  // before blocking on anything a peer could be waiting to answer — the
  // Endpoint enforces this at its operation boundaries.

  /// Opens (or continues) a burst from the calling thread toward
  /// (lane, dst). Backends without burst support ignore it.
  void begin_burst(Lane lane, int dst) { do_begin_burst(lane, dst); }

  /// Publishes everything buffered by the current burst toward
  /// (lane, dst). True when the burst is fully handed over (and closed);
  /// false when the channel back-pressured with frames still buffered —
  /// the caller should pump its inbound traffic, wait_send, and retry.
  [[nodiscard]] bool try_flush_burst(Lane lane, int dst) {
    return do_try_flush_burst(lane, dst);
  }

  /// Host-side cost counters accumulated by this view (see HostStats).
  [[nodiscard]] virtual HostStats host_stats() const noexcept { return {}; }

  // ---- failure handling ----

  /// Runtime hook at barrier entry: fires the exit-at-barrier fault.
  void barrier_entered() {
    if (fault_ != nullptr) fault_->on_barrier();
  }

  /// True once this rank's own injected fault has fired: its sends are
  /// dropped and its waits return immediately so it unwinds loudly.
  [[nodiscard]] bool self_dead() const noexcept {
    return fault_ != nullptr && fault_->dead();
  }

  /// The recorded description of this rank's own fired fault ("" until
  /// one fires). Diagnostics include it so the blame names the plan key
  /// even when the fault fired on the rank's other thread.
  [[nodiscard]] const char* self_death_cause() const noexcept {
    return fault_ != nullptr ? fault_->cause() : "";
  }

  /// The lowest-numbered peer known to have died (runner poison), or
  /// -1. One relaxed load after the first observation; the slow path
  /// asks the backend (poll_poison).
  [[nodiscard]] int poisoned_peer() noexcept {
    const int cached = poison_cache_.load(std::memory_order_relaxed);
    if (cached >= 0) return cached;
    const int dead = poll_poison();
    if (dead >= 0) poison_cache_.store(dead, std::memory_order_relaxed);
    return dead;
  }

  /// Appends a human-readable per-peer channel snapshot (ring occupancy
  /// / queued burst frames) to `os` for crash reports. Best-effort and
  /// backend-specific; the default writes nothing.
  virtual void describe_channels(std::ostream& os);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }

 protected:
  virtual bool do_try_send(Lane lane, int dst, const FrameHeader& h,
                           std::span<const std::byte> chunk) = 0;
  virtual void do_wait_send(Lane lane, int dst, int timeout_ms) = 0;
  virtual std::size_t do_drain(Lane lane, const ChunkSink& sink) = 0;
  [[nodiscard]] virtual std::uint32_t do_recv_token(Lane lane) = 0;
  /// `timeout_ms` is already sliced to (0, kMaxWaitSliceMs].
  virtual void do_wait_recv(Lane lane, std::uint32_t token,
                            int timeout_ms) = 0;
  virtual void do_wake_service() = 0;
  virtual void do_begin_burst(Lane /*lane*/, int /*dst*/) {}
  [[nodiscard]] virtual bool do_try_flush_burst(Lane /*lane*/, int /*dst*/) {
    return true;
  }
  /// Backend scan for the runner's peer-death poison signal: the id of
  /// a dead peer, or -1. Called only until the first positive answer.
  [[nodiscard]] virtual int poll_poison() noexcept { return -1; }

  int rank_ = 0;
  int nprocs_ = 1;

 private:
  // Null unless TMK_FAULT_INJECT names this rank as the victim: the
  // fault-free fast path costs one pointer check per send.
  std::unique_ptr<FaultInjector> fault_;
  std::atomic<int> poison_cache_{-1};
};

/// Parent-side handle that marks one rank dead for every survivor: the
/// runner calls poison() when it observes a rank die, and each
/// survivor's next blocking wait (or blocked send) aborts naming the
/// dead rank instead of parking until the global watchdog.
class PeerKiller {
 public:
  virtual ~PeerKiller() = default;
  virtual void poison(int dead_rank) noexcept = 0;
};

/// Parent-side backend state, built by the Fabric BEFORE forking so
/// every child inherits it (descriptors or a shared mapping). adopt()
/// is called at most once per rank, in that rank's child process.
class FabricState {
 public:
  virtual ~FabricState() = default;
  [[nodiscard]] virtual std::unique_ptr<Transport> adopt(int rank) = 0;
  /// Builds the parent-side death-propagation handle. Must be called
  /// BEFORE the parent releases the fabric (the handle takes over the
  /// resources it needs); null when the backend has no poison path.
  [[nodiscard]] virtual std::unique_ptr<PeerKiller> make_killer() {
    return nullptr;
  }
};

}  // namespace mpl
