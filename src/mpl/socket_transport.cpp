#include "mpl/socket_transport.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <sys/eventfd.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "common/check.hpp"

namespace mpl {

namespace {

constexpr int kSocketBuffer = 512 * 1024;

// Burst bounds: enough gathered datagrams to amortize the syscall, few
// enough that the scratch stays well under the socket send buffer (a
// flush that cannot fit in kSocketBuffer would always backpressure).
constexpr std::size_t kMaxBurstFrames = 64;
constexpr std::size_t kMaxBurstBytes = 256 * 1024;

void make_pair(common::Fd& send_end, common::Fd& recv_end) {
  int fds[2];
  COMMON_SYSCALL(socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_NONBLOCK, 0, fds));
  for (int fd : fds) {
    // Best effort: larger buffers reduce pumping; correctness does not
    // depend on the kernel honouring the full request.
    (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kSocketBuffer,
                     sizeof(kSocketBuffer));
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kSocketBuffer,
                     sizeof(kSocketBuffer));
  }
  send_end.reset(fds[0]);
  recv_end.reset(fds[1]);
}

/// A 32-process mesh needs 4 * 32^2 = 4096 descriptors in the parent —
/// past the common 1024 soft limit — and a 128-process mesh 65 792,
/// past many hard limits. Raise the soft limit toward the hard limit
/// (no privilege needed) and fail with an actionable message when even
/// that cannot cover the mesh: the shm transport and the thread
/// backend's inproc mesh need no descriptors at all.
void ensure_fd_headroom(std::size_t need, int nprocs) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur != RLIM_INFINITY && rl.rlim_cur < need) {
    rlimit want = rl;
    want.rlim_cur =
        (rl.rlim_max == RLIM_INFINITY || rl.rlim_max > need) ? need
                                                             : rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &want);
  }
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  COMMON_CHECK_MSG(
      rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur >= need,
      "socket mesh at nprocs=" << nprocs << " needs " << need
                               << " descriptors but RLIMIT_NOFILE caps at "
                               << rl.rlim_cur
                               << "; use TMK_TRANSPORT=shm (fd-free rings) "
                                  "or TMK_BACKEND=thread");
}

/// Owns both ends of every rank's poison pipe; poison(k) tells all
/// ranks (in a bounded, signal-free way) that rank k died. Keeping the
/// parent-side read ends alive is load-bearing: once a child exits its
/// copy of the read end closes, and a write into a reader-less pipe
/// would SIGPIPE the runner itself — with the killer's read end held,
/// every pipe always has a reader and the write cannot raise.
class SocketPeerKiller final : public PeerKiller {
 public:
  SocketPeerKiller(std::vector<common::Fd> read_ends,
                   std::vector<common::Fd> write_ends) noexcept
      : read_ends_(std::move(read_ends)), write_ends_(std::move(write_ends)) {}

  void poison(int dead_rank) noexcept override {
    const std::int32_t id = dead_rank;
    for (const auto& fd : write_ends_) {
      if (fd.get() < 0) continue;
      // Nonblocking 4-byte write; a pipe that is improbably full
      // (EAGAIN) is simply skipped — that rank is already unwinding.
      (void)!write(fd.get(), &id, sizeof(id));
    }
  }

 private:
  std::vector<common::Fd> read_ends_;
  std::vector<common::Fd> write_ends_;
};

class SocketFabricState final : public FabricState {
 public:
  explicit SocketFabricState(int nprocs) : nprocs_(nprocs) {
    const std::size_t pairs =
        static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs);
    ensure_fd_headroom(4 * pairs + 256, nprocs);
    for (auto& lane : send_) lane.resize(pairs);
    for (auto& lane : recv_) lane.resize(pairs);
    for (std::size_t p = 0; p < pairs; ++p)
      for (int lane = 0; lane < 2; ++lane)
        make_pair(send_[lane][p], recv_[lane][p]);
    poison_r_.resize(static_cast<std::size_t>(nprocs));
    poison_w_.resize(static_cast<std::size_t>(nprocs));
    for (int r = 0; r < nprocs; ++r) {
      int fds[2];
      COMMON_SYSCALL(pipe2(fds, O_NONBLOCK));
      poison_r_[static_cast<std::size_t>(r)].reset(fds[0]);
      poison_w_[static_cast<std::size_t>(r)].reset(fds[1]);
    }
  }

  std::unique_ptr<Transport> adopt(int rank) override {
    SocketTransport::Channels ch;
    for (int lane = 0; lane < 2; ++lane) {
      ch.out[lane].resize(static_cast<std::size_t>(nprocs_));
      ch.in[lane].resize(static_cast<std::size_t>(nprocs_));
      for (int j = 0; j < nprocs_; ++j) {
        ch.out[lane][static_cast<std::size_t>(j)] =
            std::move(send_[lane][idx(rank, j)]);
        ch.in[lane][static_cast<std::size_t>(j)] =
            std::move(recv_[lane][idx(j, rank)]);
      }
    }
    return std::make_unique<SocketTransport>(
        std::move(ch), std::move(poison_r_[static_cast<std::size_t>(rank)]),
        rank, nprocs_);
  }

  std::unique_ptr<PeerKiller> make_killer() override {
    return std::make_unique<SocketPeerKiller>(std::move(poison_r_),
                                              std::move(poison_w_));
  }

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const noexcept {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(nprocs_) +
           static_cast<std::size_t>(j);
  }

  int nprocs_;
  // For pair (i,j): send_[lane][idx] is i's sending end toward j's
  // `lane`, recv_[lane][idx] is j's receiving end.
  std::vector<common::Fd> send_[2], recv_[2];
  // Per-rank poison pipes: children adopt their read end; the write
  // ends move into the PeerKiller (children close their inherited
  // copies when they discard this state after adoption, so EOF on a
  // read end means the runner itself is gone).
  std::vector<common::Fd> poison_r_, poison_w_;
};

}  // namespace

SocketTransport::SocketTransport(Channels channels, common::Fd poison_fd,
                                 int rank, int nprocs)
    : Transport(rank, nprocs),
      ch_(std::move(channels)),
      poison_fd_(std::move(poison_fd)),
      main_thread_(static_cast<unsigned long>(pthread_self())) {
  service_wake_.reset(COMMON_SYSCALL(eventfd(0, EFD_NONBLOCK)));
  for (int lane = 0; lane < 2; ++lane) {
    drain_pollfds_[lane].reserve(ch_.in[lane].size());
    for (const auto& fd : ch_.in[lane])
      drain_pollfds_[lane].push_back({fd.get(), POLLIN, 0});
    wait_pollfds_[lane] = drain_pollfds_[lane];
  }
  if (poison_fd_.get() >= 0)
    wait_pollfds_[static_cast<int>(Lane::kApp)].push_back(
        {poison_fd_.get(), POLLIN, 0});
  wait_pollfds_[static_cast<int>(Lane::kSvc)].push_back(
      {service_wake_.get(), POLLIN, 0});
}

int SocketTransport::sender_slot() const noexcept {
  return pthread_equal(pthread_self(),
                       static_cast<pthread_t>(main_thread_)) != 0
             ? 0
             : 1;
}

bool SocketTransport::flush_frames(Burst& b, Lane lane) {
  const int fd =
      ch_.out[static_cast<int>(lane)][static_cast<std::size_t>(b.dst)].get();
  while (b.sent < b.frames.size()) {
    mmsghdr msgs[kMaxBurstFrames];
    iovec iovs[kMaxBurstFrames];
    const std::size_t n =
        std::min(kMaxBurstFrames, b.frames.size() - b.sent);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [off, len] = b.frames[b.sent + i];
      iovs[i].iov_base = b.bytes.data() + off;
      iovs[i].iov_len = len;
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int r = sendmmsg(fd, msgs, static_cast<unsigned>(n), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      COMMON_SYSCALL(r);
    }
    host_send_calls_.fetch_add(1, std::memory_order_relaxed);
    // SEQPACKET datagrams are atomic: each accepted message left whole.
    for (int i = 0; i < r; ++i)
      COMMON_CHECK(msgs[i].msg_len == b.frames[b.sent +
                                               static_cast<std::size_t>(i)]
                                          .second);
    b.sent += static_cast<std::size_t>(r);
  }
  b.bytes.clear();  // fully drained: reset, keeping scratch capacity
  b.frames.clear();
  b.sent = 0;
  return true;
}

void SocketTransport::do_begin_burst(Lane lane, int dst) {
  Burst& b = burst_[sender_slot()][static_cast<int>(lane)];
  if (b.dst == dst) return;
  if (b.dst >= 0) {
    // Switching targets: drain the previous burst first. Block through
    // plain poll if needed — the caller asked for a new burst without
    // flushing, so it is not in a state where it could pump.
    while (!flush_frames(b, lane)) do_wait_send(lane, b.dst, kMaxWaitSliceMs);
  }
  b.dst = dst;
}

bool SocketTransport::do_try_flush_burst(Lane lane, int dst) {
  Burst& b = burst_[sender_slot()][static_cast<int>(lane)];
  if (b.dst != dst) return true;
  if (!flush_frames(b, lane)) return false;  // stays open for the retry
  b.dst = -1;
  return true;
}

HostStats SocketTransport::host_stats() const noexcept {
  return {host_send_calls_.load(std::memory_order_relaxed), 0};
}

void SocketTransport::describe_channels(std::ostream& os) {
  // Crash-report hook, called on the reporting thread: describe only
  // that thread's own burst slots (the other thread's scratch vectors
  // are not safely readable mid-flight). Kernel-queued socket bytes are
  // not observable from userspace, so gathered-but-unflushed datagrams
  // are the interesting channel state here.
  const int slot = sender_slot();
  for (int lane = 0; lane < 2; ++lane) {
    const Burst& b = burst_[slot][lane];
    if (b.dst < 0 || b.frames.size() == b.sent) continue;
    os << " burst" << (lane == static_cast<int>(Lane::kSvc) ? ".svc->" : "->")
       << b.dst << ":" << (b.frames.size() - b.sent) << "f";
  }
}

SocketTransport::~SocketTransport() {
  // Teardown contract: the Endpoint flushes open bursts first. Push any
  // leftovers best-effort (no blocking in a destructor) so peers are
  // not silently starved, and make the protocol bug visible.
  for (int slot = 0; slot < 2; ++slot) {
    for (int lane = 0; lane < 2; ++lane) {
      Burst& b = burst_[slot][lane];
      if (b.dst < 0 || b.sent == b.frames.size()) continue;
      std::fprintf(stderr,
                   "mpl: socket transport torn down with %zu datagrams "
                   "still gathered toward rank %d (unflushed burst)\n",
                   b.frames.size() - b.sent, b.dst);
      (void)flush_frames(b, static_cast<Lane>(lane));
      assert(false && "transport destroyed with an unflushed burst");
    }
  }
}

bool SocketTransport::do_try_send(Lane lane, int dst, const FrameHeader& h,
                                  std::span<const std::byte> chunk) {
  Burst& b = burst_[sender_slot()][static_cast<int>(lane)];
  if (b.dst == dst) {
    // Mid-burst: gather a copy (the caller's buffer will not outlive
    // this call) and leave the kernel handoff to the flush. When the
    // scratch is at capacity, try to drain it first; only a kernel-side
    // backpressure propagates to the caller as a failed send.
    if ((b.frames.size() - b.sent >= kMaxBurstFrames ||
         b.bytes.size() >= kMaxBurstBytes) &&
        !flush_frames(b, lane))
      return false;
    const std::size_t off = b.bytes.size();
    b.bytes.resize(off + sizeof(h) + chunk.size());
    std::memcpy(b.bytes.data() + off, &h, sizeof(h));
    if (!chunk.empty())
      std::memcpy(b.bytes.data() + off + sizeof(h), chunk.data(),
                  chunk.size());
    b.frames.emplace_back(off, sizeof(h) + chunk.size());
    return true;
  }
  // Scatter-gather: header and payload leave in one sendmsg with no
  // staging copy; the payload bytes are read straight from the caller's
  // buffer (often the shared page image itself).
  iovec iov[2];
  iov[0].iov_base = const_cast<FrameHeader*>(&h);
  iov[0].iov_len = sizeof(h);
  iov[1].iov_base = const_cast<std::byte*>(chunk.data());
  iov[1].iov_len = chunk.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = chunk.empty() ? 1 : 2;
  const int fd =
      ch_.out[static_cast<int>(lane)][static_cast<std::size_t>(dst)].get();
  for (;;) {
    const ssize_t r = sendmsg(fd, &msg, 0);
    if (r >= 0) {
      COMMON_CHECK(static_cast<std::size_t>(r) == sizeof(h) + chunk.size());
      host_send_calls_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    COMMON_SYSCALL(r);
  }
}

void SocketTransport::do_wait_send(Lane lane, int dst, int timeout_ms) {
  pollfd p{
      ch_.out[static_cast<int>(lane)][static_cast<std::size_t>(dst)].get(),
      POLLOUT, 0};
  const int r = poll(&p, 1, timeout_ms);
  if (r < 0 && errno != EINTR) COMMON_SYSCALL(r);
}

std::size_t SocketTransport::do_drain(Lane lane, const ChunkSink& sink) {
  auto& pfds = drain_pollfds_[static_cast<int>(lane)];
  for (auto& p : pfds) p.revents = 0;
  for (;;) {
    const int r = poll(pfds.data(), pfds.size(), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      COMMON_SYSCALL(r);
    }
    if (r == 0) return 0;
    break;
  }
  std::size_t count = 0;
  alignas(FrameHeader) std::byte buf[sizeof(FrameHeader) + kMaxChunk];
  for (auto& p : pfds) {
    if (!(p.revents & POLLIN)) continue;
    for (;;) {
      const ssize_t n = recv(p.fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        COMMON_SYSCALL(n);
      }
      if (n == 0) break;  // peer exited; channel closed
      COMMON_CHECK(static_cast<std::size_t>(n) >= sizeof(FrameHeader));
      FrameHeader h;
      std::memcpy(&h, buf, sizeof(h));
      COMMON_CHECK(static_cast<std::size_t>(n) ==
                   sizeof(FrameHeader) + h.chunk_len);
      sink(h, {buf + sizeof(FrameHeader), h.chunk_len});
      ++count;
    }
  }
  return count;
}

void SocketTransport::do_wait_recv(Lane lane, std::uint32_t /*token*/,
                                   int timeout_ms) {
  // Level-triggered: queued datagrams keep their descriptor readable, so
  // the pre-drain token is unnecessary here. The timeout slice is the
  // caller's poison/deadline re-check interval.
  auto& pfds = wait_pollfds_[static_cast<int>(lane)];
  for (auto& p : pfds) p.revents = 0;
  const int r = poll(pfds.data(), pfds.size(), timeout_ms);
  if (r < 0) {
    if (errno == EINTR) return;
    COMMON_SYSCALL(r);
  }
  if (lane == Lane::kSvc && (pfds.back().revents & POLLIN)) {
    std::uint64_t v;
    (void)!read(service_wake_.get(), &v, sizeof(v));
  }
}

int SocketTransport::poll_poison() noexcept {
  // Main-thread only (it mutates the kApp wait array on EOF; the kSvc
  // array belongs to the service thread and never carries the pipe).
  if (poison_fd_.get() < 0) return -1;
  std::int32_t dead = -1;
  const ssize_t n = read(poison_fd_.get(), &dead, sizeof(dead));
  if (n == static_cast<ssize_t>(sizeof(dead)) && dead >= 0 &&
      dead < nprocs_ && dead != rank_)
    return dead;
  if (n == 0) {
    // EOF: the runner is gone without naming anyone. Retire the
    // descriptor so its POLLHUP does not turn the app wait into a busy
    // loop.
    wait_pollfds_[static_cast<int>(Lane::kApp)].back().fd = -1;
    poison_fd_.reset();
  }
  return -1;
}

void SocketTransport::do_wake_service() {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t r = write(service_wake_.get(), &one, sizeof(one));
    if (r >= 0 || errno != EINTR) break;
  }
}

std::unique_ptr<FabricState> make_socket_fabric(int nprocs) {
  return std::make_unique<SocketFabricState>(nprocs);
}

}  // namespace mpl
