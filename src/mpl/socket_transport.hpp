// SOCK_SEQPACKET socketpair transport — the original fabric wiring.
//
// Per ordered process pair (i -> j) and lane there is one one-directional
// socketpair; SEQPACKET keeps datagram chunks atomic, so two sending
// threads may share an outgoing descriptor and their chunk streams
// interleave without tearing. All descriptors are non-blocking; blocking
// waits go through poll() over persistent pollfd arrays, and the service
// lane's wait additionally watches an eventfd for wake_service().
//
// Failure propagation: every rank additionally inherits the read end of
// a per-rank poison pipe. The runner-side PeerKiller (make_killer) owns
// all the write ends and writes the dead rank's id into every pipe; the
// read end sits in the app lane's wait set, so a parked survivor's poll
// returns immediately and its next health check (poll_poison) learns
// the dead rank. The service lane needs no poison descriptor — its
// waits are already sliced at Transport::kMaxWaitSliceMs.
#pragma once

#include <poll.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/fd.hpp"
#include "mpl/transport.hpp"

namespace mpl {

class SocketTransport final : public Transport {
 public:
  /// This rank's descriptors, indexed [lane][peer].
  struct Channels {
    std::vector<common::Fd> out[2];
    std::vector<common::Fd> in[2];
  };

  /// `poison_fd` is this rank's end of the runner's death-propagation
  /// pipe (may be empty for harnesses that build channels by hand).
  SocketTransport(Channels channels, common::Fd poison_fd, int rank,
                  int nprocs);
  ~SocketTransport() override;

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::kSocket;
  }
  [[nodiscard]] HostStats host_stats() const noexcept override;
  void describe_channels(std::ostream& os) override;

 protected:
  bool do_try_send(Lane lane, int dst, const FrameHeader& h,
                   std::span<const std::byte> chunk) override;
  void do_wait_send(Lane lane, int dst, int timeout_ms) override;
  std::size_t do_drain(Lane lane, const ChunkSink& sink) override;
  [[nodiscard]] std::uint32_t do_recv_token(Lane) override { return 0; }
  void do_wait_recv(Lane lane, std::uint32_t token, int timeout_ms) override;
  void do_wake_service() override;
  void do_begin_burst(Lane lane, int dst) override;
  [[nodiscard]] bool do_try_flush_burst(Lane lane, int dst) override;
  [[nodiscard]] int poll_poison() noexcept override;

 private:
  // A burst gathers datagram copies (header + payload, since the
  // caller's buffers do not outlive try_send) into persistent scratch
  // and hands them to the kernel in sendmmsg batches at flush. One per
  // [sending slot][lane]; each slot is owned by its single thread.
  struct Burst {
    int dst = -1;
    std::vector<std::byte> bytes;  // concatenated datagram images
    std::vector<std::pair<std::size_t, std::size_t>> frames;  // offset, len
    std::size_t sent = 0;  // datagrams already accepted by the kernel
  };

  [[nodiscard]] int sender_slot() const noexcept;
  /// Pushes queued datagrams [sent, end) to the kernel; false on
  /// backpressure with datagrams still queued.
  bool flush_frames(Burst& b, Lane lane);

  Channels ch_;
  common::Fd service_wake_;  // eventfd observed by the kSvc wait
  common::Fd poison_fd_;     // read end of the runner's poison pipe
  unsigned long main_thread_;  // pthread_t of the constructing thread
  Burst burst_[2][2];          // [slot][lane]
  std::atomic<std::uint64_t> host_send_calls_{0};
  // Persistent poll arrays (descriptors never change): [lane] over the
  // inbound fds; the kApp wait array carries the poison pipe last, the
  // kSvc wait array the eventfd last. drain() and wait_recv() on a lane
  // run on that lane's single receiving thread, so the arrays are not
  // shared between threads; poll_poison (main thread only) touches only
  // the kApp array.
  std::vector<pollfd> drain_pollfds_[2];
  std::vector<pollfd> wait_pollfds_[2];
};

/// Parent-side state: the full socket mesh, built before forking.
[[nodiscard]] std::unique_ptr<FabricState> make_socket_fabric(int nprocs);

}  // namespace mpl
