// SOCK_SEQPACKET socketpair transport — the original fabric wiring.
//
// Per ordered process pair (i -> j) and lane there is one one-directional
// socketpair; SEQPACKET keeps datagram chunks atomic, so two sending
// threads may share an outgoing descriptor and their chunk streams
// interleave without tearing. All descriptors are non-blocking; blocking
// waits go through poll() over persistent pollfd arrays, and the service
// lane's wait additionally watches an eventfd for wake_service().
#pragma once

#include <poll.h>

#include <memory>
#include <vector>

#include "common/fd.hpp"
#include "mpl/transport.hpp"

namespace mpl {

class SocketTransport final : public Transport {
 public:
  /// This rank's descriptors, indexed [lane][peer].
  struct Channels {
    std::vector<common::Fd> out[2];
    std::vector<common::Fd> in[2];
  };

  explicit SocketTransport(Channels channels);

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::kSocket;
  }
  bool try_send(Lane lane, int dst, const FrameHeader& h,
                std::span<const std::byte> chunk) override;
  void wait_send(Lane lane, int dst, int timeout_ms) override;
  std::size_t drain(Lane lane, const ChunkSink& sink) override;
  [[nodiscard]] std::uint32_t recv_token(Lane) override { return 0; }
  void wait_recv(Lane lane, std::uint32_t token) override;
  void wake_service() override;

 private:
  Channels ch_;
  common::Fd service_wake_;  // eventfd observed by the kSvc wait
  // Persistent poll arrays (descriptors never change): [lane] over the
  // inbound fds; the kSvc wait array carries the eventfd last. drain()
  // and wait_recv() on a lane run on that lane's single receiving
  // thread, so the arrays are not shared between threads.
  std::vector<pollfd> drain_pollfds_[2];
  std::vector<pollfd> wait_pollfds_[2];
};

/// Parent-side state: the full socket mesh, built before forking.
[[nodiscard]] std::unique_ptr<FabricState> make_socket_fabric(int nprocs);

}  // namespace mpl
