#include "mpl/transport.hpp"

#include <ostream>

namespace mpl {

Transport::Transport(int rank, int nprocs)
    : rank_(rank),
      nprocs_(nprocs),
      fault_(fault_injector_from_env(rank, nprocs)) {}

bool Transport::try_send(Lane lane, int dst, const FrameHeader& h,
                         std::span<const std::byte> chunk) {
  if (fault_ != nullptr) {
    // A rank whose fault already fired is unwinding: report the send as
    // done without delivering, so it cannot wedge in a full channel or
    // keep completing protocol exchanges (e.g. the shutdown rendezvous)
    // as if it were healthy.
    if (fault_->dead()) return true;
    fault_->before_send();
  }
  const bool sent = do_try_send(lane, dst, h, chunk);
  if (sent && fault_ != nullptr) fault_->after_send();
  return sent;
}

void Transport::wait_send(Lane lane, int dst, int timeout_ms) {
  if (self_dead()) return;
  const int slice = (timeout_ms < 0 || timeout_ms > kMaxWaitSliceMs)
                        ? kMaxWaitSliceMs
                        : timeout_ms;
  do_wait_send(lane, dst, slice);
}

std::size_t Transport::drain(Lane lane, const ChunkSink& sink) {
  return do_drain(lane, sink);
}

std::uint32_t Transport::recv_token(Lane lane) {
  return do_recv_token(lane);
}

void Transport::wait_recv(Lane lane, std::uint32_t token) {
  if (self_dead()) return;
  do_wait_recv(lane, token, kMaxWaitSliceMs);
}

void Transport::wake_service() { do_wake_service(); }

void Transport::describe_channels(std::ostream& os) { (void)os; }

}  // namespace mpl
