#include "mpl/inproc_transport.hpp"

#include <sys/mman.h>

#include "common/check.hpp"

namespace mpl {

namespace {

class InprocFabricState final : public FabricState {
 public:
  explicit InprocFabricState(int nprocs) : nprocs_(nprocs) {
    bytes_ = shm_region_bytes(nprocs);
    // A private anonymous mapping: zeroed, page-aligned, lazily
    // materialized — plain process memory with no sharing semantics.
    void* p = mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    COMMON_CHECK_MSG(p != MAP_FAILED, "mmap of inproc fabric region failed");
    base_ = p;
    init_ring_region(base_, nprocs);
  }

  ~InprocFabricState() override {
    if (base_ != nullptr) munmap(base_, bytes_);
  }

  std::unique_ptr<Transport> adopt(int rank) override {
    // Called once per rank, possibly concurrently from the rank
    // threads: no mutable state, just a view.
    return std::make_unique<InprocTransport>(base_, nprocs_, rank);
  }

  std::unique_ptr<PeerKiller> make_killer() override {
    // Non-owning: this state outlives every rank thread AND the killer
    // (the run harness joins the threads before discarding either).
    return make_shm_killer(base_, nprocs_, /*owns_region=*/false);
  }

 private:
  int nprocs_;
  std::size_t bytes_ = 0;
  void* base_ = nullptr;
};

}  // namespace

std::unique_ptr<FabricState> make_inproc_fabric(int nprocs) {
  return std::make_unique<InprocFabricState>(nprocs);
}

}  // namespace mpl
