// TreadMarks runtime: lifecycle, allocation, intervals, consistency
// integration, barriers, fork/join, extensions, and fault handling.
// Lock traffic lives in locks.cpp; the service loop in service.cpp; the
// SIGSEGV trampoline in sigsegv.cpp.
#include "tmk/runtime.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/env.hpp"

namespace tmk {

namespace {

// Fault-dispatch registry: one slot per live Runtime in this process.
// Slots are claimed by CAS so concurrent rank threads (the thread
// backend constructs all ranks' runtimes at once) need no lock, and
// reads are plain atomic loads — async-signal-safe. The process
// backend occupies exactly one slot per child. This unsorted array is
// the ground truth; the sorted index below is an accelerator.
std::atomic<Runtime*> g_runtimes[mpl::kMaxProcs] = {};

// Sorted heap-range index: owner_of's O(log n) fast path. At 128 rank
// threads the former linear scan put up to 128 range probes on every
// page fault's critical path; the handler now binary-searches this
// base-sorted table instead. Writers (Runtime construction and
// destruction) serialize on g_range_mu and publish via the seqlock
// g_range_version (odd while mutating); the reader — the SIGSEGV
// handler, async-signal-safe by construction — retries on a torn read
// a bounded number of times and falls back to the linear ground-truth
// scan, so a fault taken while another thread is mid-registration can
// never spin forever (not even on a genuine wild-pointer crash taken
// by the registering thread itself, which holds g_range_mu).
struct HeapRange {
  std::atomic<std::uintptr_t> base{0};
  std::atomic<std::uintptr_t> end{0};
  std::atomic<Runtime*> rt{nullptr};
};
HeapRange g_ranges[mpl::kMaxProcs];
std::atomic<std::uint32_t> g_range_count{0};
std::atomic<std::uint32_t> g_range_version{0};
std::mutex g_range_mu;

void range_index_insert(Runtime* rt, std::uintptr_t base,
                        std::uintptr_t end) {
  std::lock_guard<std::mutex> g(g_range_mu);
  const std::uint32_t n = g_range_count.load(std::memory_order_relaxed);
  COMMON_CHECK(n < static_cast<std::uint32_t>(mpl::kMaxProcs));
  g_range_version.fetch_add(1, std::memory_order_acq_rel);  // odd: mutating
  std::uint32_t i = n;
  while (i > 0 && g_ranges[i - 1].base.load(std::memory_order_relaxed) >
                      base) {
    g_ranges[i].base.store(
        g_ranges[i - 1].base.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    g_ranges[i].end.store(g_ranges[i - 1].end.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    g_ranges[i].rt.store(g_ranges[i - 1].rt.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    --i;
  }
  g_ranges[i].base.store(base, std::memory_order_relaxed);
  g_ranges[i].end.store(end, std::memory_order_relaxed);
  g_ranges[i].rt.store(rt, std::memory_order_relaxed);
  g_range_count.store(n + 1, std::memory_order_relaxed);
  g_range_version.fetch_add(1, std::memory_order_release);  // even: stable
}

void range_index_erase(Runtime* rt) {
  std::lock_guard<std::mutex> g(g_range_mu);
  const std::uint32_t n = g_range_count.load(std::memory_order_relaxed);
  std::uint32_t i = 0;
  while (i < n && g_ranges[i].rt.load(std::memory_order_relaxed) != rt) ++i;
  if (i == n) return;  // never indexed (construction failure path)
  g_range_version.fetch_add(1, std::memory_order_acq_rel);
  for (; i + 1 < n; ++i) {
    g_ranges[i].base.store(
        g_ranges[i + 1].base.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    g_ranges[i].end.store(g_ranges[i + 1].end.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    g_ranges[i].rt.store(g_ranges[i + 1].rt.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  g_ranges[n - 1].rt.store(nullptr, std::memory_order_relaxed);
  g_range_count.store(n - 1, std::memory_order_relaxed);
  g_range_version.fetch_add(1, std::memory_order_release);
}

// The rank context of the calling thread: the Runtime constructed on
// it. Thread-local, so every rank thread resolves to its own.
thread_local Runtime* t_runtime = nullptr;

}  // namespace

Runtime* Runtime::instance() noexcept { return t_runtime; }

Runtime* Runtime::owner_of(const void* addr) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  // Fast path: seqlock-validated binary search over the sorted index.
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::uint32_t v1 = g_range_version.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) continue;  // writer mid-update
    const std::uint32_t n = g_range_count.load(std::memory_order_acquire);
    // Greatest entry with base <= a.
    std::uint32_t lo = 0;
    std::uint32_t hi = n;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (g_ranges[mid].base.load(std::memory_order_relaxed) <= a)
        lo = mid + 1;
      else
        hi = mid;
    }
    Runtime* rt = nullptr;
    if (lo > 0 && a < g_ranges[lo - 1].end.load(std::memory_order_relaxed))
      rt = g_ranges[lo - 1].rt.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (g_range_version.load(std::memory_order_relaxed) == v1) return rt;
  }
  // A writer is churning the index (concurrent runtime construction or
  // destruction). The unsorted slot array is always consistent entry by
  // entry; scan it instead of spinning.
  for (const auto& slot : g_runtimes) {
    Runtime* rt = slot.load(std::memory_order_acquire);
    if (rt == nullptr) continue;
    const auto base = reinterpret_cast<std::uintptr_t>(rt->heap_);
    if (a >= base && a < base + rt->heap_len_) return rt;
  }
  return nullptr;
}

// Defined in sigsegv.cpp.
void install_sigsegv_handler();
void uninstall_thread_sigaltstack() noexcept;
std::uint64_t measure_host_fault_cost_ns();

Runtime::Runtime(runner::ChildContext& ctx, Options options)
    : rank_(ctx.endpoint.rank()),
      nprocs_(ctx.endpoint.nprocs()),
      ep_(ctx.endpoint),
      heap_(ctx.heap_base),
      heap_len_(ctx.heap_bytes),
      options_(options) {
  COMMON_CHECK_MSG(t_runtime == nullptr, "one Runtime per rank thread");
  COMMON_CHECK_MSG(heap_ != nullptr && heap_len_ >= common::kPageSize,
                   "no shared heap mapping inherited");
  COMMON_CHECK((reinterpret_cast<std::uintptr_t>(heap_) & common::kPageMask) ==
               0);
  if (options_.heap_limit_bytes != 0 && options_.heap_limit_bytes < heap_len_)
    heap_len_ = common::align_down(options_.heap_limit_bytes,
                                   common::kPageSize);
  num_pages_ = heap_len_ / common::kPageSize;
  COMMON_CHECK_MSG(num_pages_ <= static_cast<std::size_t>(kPackMaxPage) + 1,
                   "heap too large for packed write-notice keys");
  pages_.resize(num_pages_);
  page_ext_.resize(num_pages_);
  // Worst case every page dirtied in one interval: reserve once so the
  // write-fault path never grows this vector.
  dirty_pages_.reserve(num_pages_);

  // Zero-page invariant: every process starts with identical all-zero
  // pages; reads are free until the first write notice arrives.
  COMMON_SYSCALL(mprotect(heap_, heap_len_, PROT_READ));

  locks_.resize(static_cast<std::size_t>(options_.num_locks));
  lock_last_requester_.resize(static_cast<std::size_t>(options_.num_locks));
  for (int l = 0; l < options_.num_locks; ++l) {
    lock_last_requester_[static_cast<std::size_t>(l)] =
        static_cast<ProcId>(lock_manager(l));
    if (lock_manager(l) == rank_)
      locks_[static_cast<std::size_t>(l)].released_here = true;
  }

  worker_vc_.resize(static_cast<std::size_t>(nprocs_));
  fetch_needs_.resize(static_cast<std::size_t>(nprocs_));
  fetch_outstanding_.reserve(static_cast<std::size_t>(nprocs_));
  main_tid_ = pthread_self();

  // Knobs: the run's Config snapshot (ChildContext, resolved once at
  // spawn — env parsing and warn-once validation live in
  // tmk/config.hpp) unless forced by programmatic Options.
  const Config& cfg = ctx.config;
  update_mode_ = options_.update_mode.value_or(cfg.update_mode);
  {
    long long credits = options_.push_credits.value_or(cfg.push_credits);
    credits = std::min<long long>(std::max<long long>(credits, 1), 255);
    push_credits_ = static_cast<std::uint8_t>(credits);
  }
  if (update_mode_ != UpdateMode::kOff)
    push_counts_.assign(static_cast<std::size_t>(nprocs_), 0);
  racecheck_ = options_.racecheck.value_or(cfg.racecheck);
  racecheck_throw_ = cfg.racecheck_throw;
  race_max_reports_ = cfg.racecheck_max_reports > 0
                          ? static_cast<std::size_t>(cfg.racecheck_max_reports)
                          : 0;
  epoch_gc_ = cfg.epoch_gc;
  gc_interval_ = cfg.epoch_gc_interval > 0
                     ? static_cast<std::uint32_t>(cfg.epoch_gc_interval)
                     : 64;
  gc_bytes_ = cfg.epoch_gc_bytes > 0
                  ? static_cast<std::uint64_t>(cfg.epoch_gc_bytes)
                  : 0;
  report_ctx_ = &ctx;

  // Barrier fan-in shape: flat (the paper's centralized manager) unless
  // an arity is requested; any arity >= nprocs-1 is normalized to flat.
  int arity = options_.barrier_arity;
  if (arity == 0) arity = cfg.barrier_arity;
  const int flat = std::max(1, nprocs_ - 1);
  barrier_arity_ = (arity <= 0 || arity >= flat) ? flat : arity;
  barrier_child_vc_.resize(
      static_cast<std::size_t>(barrier_num_children()));
  barrier_contrib_.assign(static_cast<std::size_t>(nprocs_), {0, 0});

  install_sigsegv_handler();
  host_fault_cost_ns_ = measure_host_fault_cost_ns();
  // Crash-report hook before the service thread exists: any wait the
  // main thread ever abandons can dump protocol state.
  ep_.set_forensics(&Runtime::write_forensics, this);
  service_ = std::thread([this] { service_loop(); });

  // Publish to the fault-dispatch registry LAST, after every fallible
  // construction step: if anything above threw, no slot could be left
  // dangling (the destructor of a half-built object never runs). This
  // is still before the first heap fault — the heap is PROT_READ and
  // application code only touches it after the constructor returns;
  // the calibration probe above dispatches via its own thread-local
  // page, not the registry.
  t_runtime = this;
  bool claimed = false;
  for (auto& slot : g_runtimes) {
    Runtime* expected = nullptr;
    if (slot.compare_exchange_strong(expected, this,
                                     std::memory_order_acq_rel)) {
      claimed = true;
      break;
    }
  }
  if (!claimed) {
    // Undo the started service thread before reporting; the error path
    // must leave no trace of this runtime.
    stop_.store(true, std::memory_order_release);
    ep_.wake_service();
    service_.join();
    t_runtime = nullptr;
    COMMON_CHECK_MSG(false, "fault-dispatch registry full: more than "
                                << mpl::kMaxProcs
                                << " live Runtimes in one process");
  }
  // Index the heap range for the handler's binary search. Ordered after
  // the slot claim so the linear fallback already finds this runtime
  // while the index write is in flight.
  const auto base = reinterpret_cast<std::uintptr_t>(heap_);
  range_index_insert(this, base, base + heap_len_);
}

Runtime::~Runtime() {
  try {
    shutdown();
  } catch (...) {
    // Destructor must not throw; a failed rendezvous will surface as a
    // missing report in the harness.
  }
  ep_.set_forensics(nullptr, nullptr);
  range_index_erase(this);
  for (auto& slot : g_runtimes) {
    Runtime* expected = this;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel))
      break;
  }
  t_runtime = nullptr;
  uninstall_thread_sigaltstack();
}

void Runtime::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // Rendezvous: after this no process touches shared memory, so it is
  // safe to stop answering diff requests. Uncounted (harness traffic).
  // Even an abandoned rendezvous (peer death, deadline, own injected
  // fault) MUST fall through to stopping and joining the service thread
  // — leaving it running would std::terminate in ~thread, turning a
  // clean blame error into an opaque abort.
  try {
    // A rank unwinding from a racecheck throw skips the rendezvous:
    // its peers are still mid-epoch (or unwinding too) and will never
    // answer; exiting promptly hands teardown to the runner's
    // peer-death propagation, the same path an injected fault takes.
    if (nprocs_ > 1 && !race_unwinding_) {
      ep_.set_wait_site(rank_ == 0 ? "shutdown rendezvous (root fan-in)"
                                   : "shutdown rendezvous (depart wait)");
      if (rank_ == 0) {
        for (int i = 1; i < nprocs_; ++i)
          (void)ep_.wait_app_kind(mpl::FrameKind::kShutdownArrive);
        for (int p = 1; p < nprocs_; ++p)
          ep_.send_app(p, mpl::FrameKind::kShutdownDepart, 0, 0, {});
      } else {
        ep_.send_app(0, mpl::FrameKind::kShutdownArrive, 0, 0, {});
        (void)ep_.wait_app_kind_from(mpl::FrameKind::kShutdownDepart, 0);
      }
    }
  } catch (...) {
    stop_.store(true, std::memory_order_release);
    ep_.wake_service();
    if (service_.joinable()) service_.join();
    flush_stats_to_ctx();
    throw;
  }
  stop_.store(true, std::memory_order_release);
  ep_.wake_service();
  if (service_.joinable()) service_.join();
  flush_stats_to_ctx();
}

void Runtime::flush_stats_to_ctx() noexcept {
  // Called once per Runtime, after the service thread has joined, so
  // every counter is final; += lets a rank that constructs several
  // Runtimes back to back report their sum.
  if (report_ctx_ == nullptr) return;
  // Final footprint sample (the run may never have hit a GC round); the
  // service thread is joined, so try_lock only fails under a concurrent
  // crash path — where losing one gauge sample is fine.
  if (std::unique_lock<std::mutex> g(mu_, std::try_to_lock); g.owns_lock())
    protocol_rss_peak_ =
        std::max(protocol_rss_peak_, protocol_rss_bytes_locked());
  using runner::ctr::Id;
  auto& c = report_ctx_->ctrs;
  c[Id::kDiffRequests] += stats_.diff_requests;
  c[Id::kDiffReplies] += stats_.diff_replies;
  c[Id::kDiffPush] += stats_.diff_push;
  c[Id::kPushHits] += stats_.push_hits;
  // Stashed pushes the run never consumed were sent for nothing.
  c[Id::kPushWaste] += stats_.push_waste + push_stash_.size();
  c[Id::kPageFaults] += stats_.read_faults + stats_.write_faults;
  // Every emitted report counts, stored or dropped past the cap.
  c[Id::kRaceReports] += race_emitted_;
  c[Id::kRaceReportsDropped] += race_reports_dropped_;
  c[Id::kIntervalsReclaimed] += records_reclaimed_;
  const std::uint64_t peak = protocol_rss_peak_;
  if (c[Id::kProtocolRssBytes] < peak) c[Id::kProtocolRssBytes] = peak;
  report_ctx_ = nullptr;
}

void Runtime::write_forensics(void* ctx, std::ostream& os) {
  auto* rt = static_cast<Runtime*>(ctx);
  os << "barrier_seq=" << rt->barrier_seq_ << " fork_seq=" << rt->fork_seq_;
  // Best-effort: the service thread may be holding mu_ (possibly the
  // very reason this rank looks wedged); never block a crash report on
  // it.
  std::unique_lock<std::mutex> g(rt->mu_, std::try_to_lock);
  if (!g.owns_lock()) {
    os << " state=mu-busy";
    return;
  }
  os << " vc=[";
  for (int p = 0; p < rt->nprocs_; ++p)
    os << (p == 0 ? "" : " ") << rt->vc_.get(static_cast<ProcId>(p));
  os << "] held_locks=[";
  bool first = true;
  for (std::size_t l = 0; l < rt->locks_.size(); ++l) {
    if (!rt->locks_[l].held) continue;
    os << (first ? "" : " ") << l;
    first = false;
  }
  os << "] dirty_pages=" << rt->dirty_pages_.size();
}

// ---------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------

void* Runtime::alloc_bytes(std::size_t bytes, bool page_align) {
  COMMON_CHECK(bytes > 0);
  if (page_align)
    alloc_off_ = common::align_up(alloc_off_, common::kPageSize);
  else
    alloc_off_ = common::align_up(alloc_off_, 16);
  COMMON_CHECK_MSG(alloc_off_ + bytes <= heap_len_,
                   "shared heap exhausted: need "
                       << bytes << " at offset " << alloc_off_ << " of "
                       << heap_len_);
  void* p = static_cast<std::byte*>(heap_) + alloc_off_;
  alloc_off_ += bytes;
  if (page_align) alloc_off_ = common::align_up(alloc_off_, common::kPageSize);
  return p;
}

// ---------------------------------------------------------------------
// Page protection
// ---------------------------------------------------------------------

void Runtime::mprotect_page(PageIndex page, int prot) const {
  COMMON_SYSCALL(mprotect(page_ptr(page), common::kPageSize, prot));
}

// ---------------------------------------------------------------------
// Twin buffer pool (caller holds mu_)
// ---------------------------------------------------------------------

std::unique_ptr<std::byte[]> Runtime::take_twin_buffer() {
  // Demand signal for the barrier-time high-water-mark trim: pooled or
  // fresh, every take is one page of this epoch's twin working set.
  ++twin_takes_epoch_;
  if (twin_pool_.empty())
    return std::make_unique<std::byte[]>(common::kPageSize);
  auto twin = std::move(twin_pool_.back());
  twin_pool_.pop_back();
  return twin;
}

void Runtime::recycle_twin(std::unique_ptr<std::byte[]> twin) {
  if (twin != nullptr) twin_pool_.push_back(std::move(twin));
}

// ---------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------

void Runtime::close_interval() {
  simx::ProtocolSection protocol(ep_.clock());
  std::lock_guard<std::mutex> g(mu_);
  if (dirty_pages_.empty()) return;

  const Seq seq = vc_.get(static_cast<ProcId>(rank_)) + 1;
  COMMON_CHECK_MSG(seq <= kPackMaxSeq,
                   "interval sequence overflows the packed key seq field");
  vc_.set(static_cast<ProcId>(rank_), seq);

  auto meta = std::make_unique<IntervalMeta>();
  meta->id = IntervalKey{static_cast<ProcId>(rank_), seq};
  meta->vc = vc_;
  meta->vc_weight = vc_.weight();
  meta->pages = dirty_pages_;
  std::sort(meta->pages.begin(), meta->pages.end());

  if (racecheck_ != RaceCheckMode::kOff) {
    // Per-page write masks for the write notice. The persistent twin
    // covers every unflushed interval, so twin-vs-page yields the
    // CUMULATIVE word mask; subtracting the race_cum_mask watermark
    // isolates the closing interval's own words. A word rewritten in
    // two unflushed intervals attributes wholly to the older one —
    // never a false positive (the older interval is concurrent with at
    // least everything the newer one is), at worst a missed rematch.
    meta->write_masks.reserve(meta->pages.size());
    for (PageIndex page : meta->pages) {
      PageMeta& pm = pages_[page];
      PageExt& px = ext(page);
      // A dirty page can sit PROT_NONE (invalidated by a concurrent
      // writer's notice); its content is intact — unprotect to scan.
      const bool unreadable = pm.state == PageState::kInvalid;
      if (unreadable) mprotect_page(page, PROT_READ);
      const RaceMask cum = changed_word_mask(px.twin.get(), page_ptr(page));
      if (unreadable) mprotect_page(page, PROT_NONE);
      meta->write_masks.push_back(cum.minus(px.race_cum_mask));
      px.race_cum_mask = cum;
    }
  }

  // Lazy diffing: no diffs are made here. Each dirty page records the
  // closing interval and is write-protected again; the twin persists so
  // the eventual flush (at the first diff request) covers every interval
  // since the previous flush. Pages never fetched never pay for a diff.
  for (PageIndex page : dirty_pages_) {
    PageMeta& pm = pages_[page];
    PageExt& px = ext(page);
    COMMON_CHECK(pm.dirty && px.twin != nullptr);
    px.unflushed.push_back(seq);
    if (update_mode_ != UpdateMode::kOff) {
      // First unpushed interval for this page since the last barrier
      // push: enroll it as a push candidate (deduplicated by watermark).
      if (px.own_last_seq <= px.pushed_seq) push_candidates_.push_back(page);
      px.own_last_seq = seq;
    }
    pm.dirty = false;
    if (pm.state != PageState::kInvalid) {
      // (An invalid page — concurrent-writer notice — stays invalid.)
      mprotect_page(page, PROT_READ);
      pm.state = PageState::kReadOnly;
    }
  }
  for (PageIndex page : meta->pages)
    ext(page).notices.push_back(meta.get());
  intervals_[static_cast<std::size_t>(rank_)].live.push_back(std::move(meta));
  ++records_created_;
  dirty_pages_.clear();
  stats_.intervals_created.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Runtime::flush_page_diff(PageIndex page) {
  // Caller holds mu_. Creates one diff for every unflushed interval of
  // this page. Open-interval writes leak into the stored diff with their
  // current values; for data-race-free programs any such word is either
  // rewritten by a later (fetched) diff or never read concurrently, and
  // because the stored diff is immutable every fetcher sees the same
  // bytes (DESIGN.md §5, lazy diffing).
  PageMeta& pm = pages_[page];
  PageExt& px = ext(page);
  COMMON_CHECK(!px.unflushed.empty() && px.twin != nullptr);
  const auto& model = ep_.clock().model();
  std::uint64_t cost = model.diff_create_ns;

  // The page may be PROT_NONE locally (invalidated while unflushed);
  // the content is still intact and readable from the service thread
  // only after unprotecting. Reads on a PROT_READ page are fine.
  const bool unreadable = pm.state == PageState::kInvalid;
  if (unreadable) mprotect_page(page, PROT_READ);
  // Encode into the reusable worst-case-sized scratch (no allocation
  // after warm-up), then store one exact-size immutable blob.
  make_diff_into(px.twin.get(), page_ptr(page), diff_scratch_);
  auto diff = std::make_shared<std::vector<std::byte>>(diff_scratch_.begin(),
                                                       diff_scratch_.end());
  stats_.diffs_created.fetch_add(1, std::memory_order_relaxed);
  stats_.diff_bytes_created.fetch_add(diff->size(),
                                      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> dg(diff_mu_);
    const Seq covered = px.unflushed.back();
    for (Seq s : px.unflushed)
      diffs_.emplace((static_cast<std::uint64_t>(page) << 32) | s,
                     DiffRec{diff, covered});
  }
  px.unflushed.clear();
  if (pm.dirty) {
    // Open-interval writes continue against a fresh twin.
    std::memcpy(px.twin.get(), page_ptr(page), common::kPageSize);
    cost += model.twin_ns;
  } else {
    recycle_twin(std::move(px.twin));
  }
  // The twin was re-baselined (recopied or retired) — the race
  // detector's cumulative write-mask watermark restarts from this
  // image. Open-interval writes made before the flush are baked into
  // the new baseline and drop out of future masks: a documented
  // under-approximation, never a false positive.
  px.race_cum_mask = RaceMask{};
  if (unreadable) mprotect_page(page, PROT_NONE);
  return cost;
}

void Runtime::integrate_interval(ProcId creator, Seq seq,
                                 const VectorClock& vc,
                                 std::vector<PageIndex> pages,
                                 std::vector<RaceMask> write_masks) {
  // Caller holds mu_.
  if (creator == rank_) return;
  auto& known = intervals_[creator];
  if (seq <= known.hi()) return;  // duplicate delivery
  COMMON_CHECK_MSG(seq == known.hi() + 1,
                   "interval gap for proc " << creator << ": have "
                                            << known.hi() << ", got "
                                            << seq);
  auto meta = std::make_unique<IntervalMeta>();
  meta->id = IntervalKey{creator, seq};
  meta->vc = vc;
  meta->vc_weight = vc.weight();
  meta->pages = std::move(pages);
  meta->write_masks = std::move(write_masks);
  const IntervalMeta* m = meta.get();
  known.live.push_back(std::move(meta));
  ++records_created_;
  // Race detection is THE choke point here: every write notice this
  // rank ever learns of — barrier fan-in/depart, lock grant, fork,
  // join — arrives through this integration, before local bookkeeping
  // reacts to it. Local accesses recorded after this line are ordered
  // behind the sync operation that delivered the notice and are never
  // re-checked against it.
  if (racecheck_ != RaceCheckMode::kOff) race_check_incoming(*m);
  if (vc_.get(creator) < seq) vc_.set(creator, seq);

  for (PageIndex page : m->pages) {
    PageMeta& pm = pages_[page];
    PageExt& px = ext(page);
    px.notices.push_back(m);
    if (preapplied_.erase(pack_preapplied(creator, seq, page))) {
      // Already applied through a push/bcast; no invalidation needed.
      continue;
    }
    px.pending.push_back(m);
    if (pm.state != PageState::kInvalid) {
      mprotect_page(page, PROT_NONE);
      pm.state = PageState::kInvalid;
    }
  }
  // Coverage bookkeeping can pre-register pages this interval turned out
  // not to touch; drop the leftovers now that the real page list is known.
  if (!preapplied_.empty()) {
    const std::uint64_t prefix =
        preapplied_prefix(pack_preapplied(creator, seq, PageIndex{0}));
    preapplied_.erase_if([prefix](std::uint64_t key) {
      return preapplied_prefix(key) == prefix;
    });
  }
}

void Runtime::put_interval_record(ByteWriter& w,
                                  const IntervalMeta& m) const {
  // The one wire format every interval serializer emits and
  // read_intervals parses: creator, seq, vc, page list — plus, when
  // race detection is on, one write mask per page. TMK_RACECHECK must
  // therefore be uniform across ranks; `off` leaves the format (and
  // every modelled byte count) identical to a detection-free build.
  w.put<ProcId>(m.id.creator);
  w.put<Seq>(m.id.seq);
  w.put_vc(m.vc, nprocs_);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(m.pages.size()));
  for (PageIndex pg : m.pages) w.put<PageIndex>(pg);
  if (racecheck_ != RaceCheckMode::kOff) {
    COMMON_CHECK(m.write_masks.size() == m.pages.size());
    for (const RaceMask& mask : m.write_masks)
      for (std::uint64_t word : mask.v) w.put<std::uint64_t>(word);
  }
}

void Runtime::serialize_intervals_lacking(ByteWriter& w,
                                          const VectorClock& their_vc) const {
  // Caller holds mu_. Emits, per creator in ascending seq order, every
  // interval the peer lacks according to their_vc, bounded by what we
  // know (vc_).
  // A floor below a creator's reclaimed prefix can only mean the peer's
  // recorded clock is stale (e.g. worker_vc_ across many barriers): the
  // reclaim horizon proves every rank integrated those seqs long ago,
  // so clamping to `base` skips only records the peer already holds.
  std::uint32_t count = 0;
  for (int p = 0; p < nprocs_; ++p) {
    const auto pid = static_cast<ProcId>(p);
    const Seq lo =
        std::max(their_vc.get(pid), intervals_[static_cast<std::size_t>(p)].base);
    count += vc_.get(pid) - std::min(lo, vc_.get(pid));
  }
  w.put<std::uint32_t>(count);
  for (int p = 0; p < nprocs_; ++p) {
    const auto pid = static_cast<ProcId>(p);
    const auto& known = intervals_[static_cast<std::size_t>(p)];
    for (Seq s = std::max(their_vc.get(pid), known.base) + 1; s <= vc_.get(pid);
         ++s)
      put_interval_record(w, *known.at(s));
  }
}

void Runtime::serialize_own_intervals_after(ByteWriter& w,
                                            Seq after_seq) const {
  // Caller holds mu_.
  const auto& own = intervals_[static_cast<std::size_t>(rank_)];
  const Seq cur = vc_.get(static_cast<ProcId>(rank_));
  COMMON_CHECK(after_seq <= cur);
  // Own watermarks advance at every barrier, so they can never fall
  // behind the reclaim horizon (which trails the barrier clock).
  COMMON_CHECK_MSG(after_seq >= own.base,
                   "own-interval floor " << after_seq
                                         << " below reclaimed prefix "
                                         << own.base);
  w.put<std::uint32_t>(cur - after_seq);
  for (Seq s = after_seq + 1; s <= cur; ++s)
    put_interval_record(w, *own.at(s));
}

std::uint32_t Runtime::read_intervals(ByteReader& r, bool note_contrib) {
  // Caller holds mu_. With note_contrib (the barrier fan-in), each
  // creator's reported (lo, hi] seq range is recorded in
  // barrier_contrib_ so the fan-in can forward the subtree's
  // contribution to its parent.
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto creator = r.get<ProcId>();
    const auto seq = r.get<Seq>();
    VectorClock vc = r.get_vc(nprocs_);
    const auto npages = r.get<std::uint32_t>();
    std::vector<PageIndex> pages;
    pages.reserve(npages);
    for (std::uint32_t k = 0; k < npages; ++k)
      pages.push_back(r.get<PageIndex>());
    std::vector<RaceMask> write_masks;
    if (racecheck_ != RaceCheckMode::kOff) {
      write_masks.resize(npages);
      for (std::uint32_t k = 0; k < npages; ++k)
        for (std::uint64_t& word : write_masks[k].v)
          word = r.get<std::uint64_t>();
    }
    if (note_contrib) {
      COMMON_CHECK_MSG(creator != rank_,
                       "barrier fan-in reported this rank's own interval");
      auto& c = barrier_contrib_[creator];
      if (c.first == c.second)
        c = {seq - 1, seq};  // per-creator records arrive ascending
      else
        c.second = std::max(c.second, seq);
    }
    integrate_interval(creator, seq, vc, std::move(pages),
                       std::move(write_masks));
  }
  return count;
}

// ---------------------------------------------------------------------
// Online race detection (TMK_RACECHECK != off). The vector clocks the
// protocol already maintains ARE a happens-before oracle; detection
// just compares the access summaries the twin machinery yields for
// free against each incoming write notice, at the one choke point all
// notices pass through (integrate_interval). Everything below runs on
// the main thread with mu_ held — detection never reads pages from the
// service thread, which is what suppresses the deliberate lazy-diffing
// race (tsan.supp: make_diff_into vs. open-interval writes) by
// construction rather than by annotation.
// ---------------------------------------------------------------------

void Runtime::race_check_incoming(const IntervalMeta& m) {
  // Caller holds mu_. `m` is a remote interval seen for the first time.
  //
  // Ordering argument, both directions:
  //   - m happened-before a local access: impossible for accesses
  //     already recorded — any sync edge ordering m before this point
  //     would have carried m's metadata here earlier (grants, departs
  //     and forks all forward everything the receiver lacks), so m
  //     would not be new. Accesses recorded AFTER this call are ordered
  //     behind the acquire that delivered m and are never re-checked.
  //   - a local access happened-before m: for a closed interval with
  //     seq q, that edge raised m.vc[rank_] to at least q — so every
  //     own interval with seq > m.vc[rank_] is concurrent. The open
  //     interval's writes-so-far and this epoch's reads have had no
  //     outgoing sync edge since they happened (a release/arrive/join
  //     would have closed the interval resp. bumped race_epoch_), so
  //     they are concurrent with m unconditionally.
  COMMON_CHECK(m.write_masks.size() == m.pages.size());
  const auto me = static_cast<ProcId>(rank_);
  const auto& own = intervals_[static_cast<std::size_t>(rank_)];
  const Seq own_cur = vc_.get(me);
  const Seq ordered_up_to = m.vc.get(me);
  for (std::size_t pi = 0; pi < m.pages.size(); ++pi) {
    const PageIndex page = m.pages[pi];
    const RaceMask& rmask = m.write_masks[pi];
    if (!rmask.any()) continue;
    const PageExt* px = ext_if(page);
    if (px == nullptr) continue;  // page never accessed locally

    // -- write/write, closed local intervals --
    // A new arrival always carries m.vc[rank_] >= the reclaim horizon
    // (its creator passed the GC barrier that set it), so the clamp to
    // own.base skips nothing real — it only guards the indexing.
    for (Seq s = std::max(ordered_up_to, own.base) + 1; s <= own_cur; ++s) {
      const IntervalMeta& l = *own.at(s);
      const auto it = std::lower_bound(l.pages.begin(), l.pages.end(), page);
      if (it == l.pages.end() || *it != page) continue;
      const RaceMask& lmask =
          l.write_masks[static_cast<std::size_t>(it - l.pages.begin())];
      const RaceMask overlap = lmask & rmask;
      if (!overlap.any()) continue;
      RaceReport rep;
      rep.page = page;
      rep.overlap_mask = overlap;
      rep.local_write = true;
      rep.remote = m.id.creator;
      rep.remote_seq = m.id.seq;
      rep.local_seq = s;
      rep.remote_vc = m.vc;
      rep.local_vc = l.vc;
      race_emit(std::move(rep));
    }

    // -- write/write, the open local interval --
    if (pages_[page].dirty && px->twin != nullptr) {
      const bool unreadable = pages_[page].state == PageState::kInvalid;
      if (unreadable) mprotect_page(page, PROT_READ);
      const RaceMask open =
          changed_word_mask(px->twin.get(), page_ptr(page))
              .minus(px->race_cum_mask);
      if (unreadable) mprotect_page(page, PROT_NONE);
      const RaceMask overlap = open & rmask;
      if (overlap.any()) {
        RaceReport rep;
        rep.page = page;
        rep.overlap_mask = overlap;
        rep.local_write = true;
        rep.remote = m.id.creator;
        rep.remote_seq = m.id.seq;
        rep.local_seq = own_cur + 1;  // the open interval's would-be seq
        rep.remote_vc = m.vc;
        rep.local_vc = vc_;
        race_emit(std::move(rep));
      }
    }

    // -- remote write / local read, current sync epoch only --
    // (race_reads stays empty outside precise mode; see
    // race_record_read for why summary is write/write-only.)
    for (const PageExt::ReadRec& rr : px->race_reads) {
      if (rr.epoch != race_epoch_) continue;
      const RaceMask overlap = rr.mask & rmask;
      if (!overlap.any()) continue;
      RaceReport rep;
      rep.page = page;
      rep.overlap_mask = overlap;
      rep.local_write = false;
      rep.remote = m.id.creator;
      rep.remote_seq = m.id.seq;
      rep.local_seq = rr.seq;
      rep.remote_vc = m.vc;
      rep.local_vc = vc_;
      race_emit(std::move(rep));
    }
  }
}

void Runtime::race_record_read(PageIndex page, std::size_t offset_in_page) {
  // Caller holds mu_. Only kInvalid read faults arrive here — the first
  // read of an invalidated page; subsequent reads of the now-valid page
  // do not trap, so the faulting access is the witness (a documented
  // under-approximation), recorded at the faulting 4-byte diff word.
  // Precise mode only: a page-granular read witness would intersect any
  // concurrent same-page write notice, flagging exactly the read/write
  // false sharing the multiple-writer protocol exists to permit (fft's
  // transpose produces hundreds of such pairs) — so summary mode keeps
  // no read state at all and read/write detection is precise-only.
  if (racecheck_ != RaceCheckMode::kPrecise) return;
  PageExt& px = ext(page);
  // Records from finished epochs are ordered before any interval that
  // can still arrive (see race_epoch_); drop them on the way in.
  std::erase_if(px.race_reads, [this](const PageExt::ReadRec& rr) {
    return rr.epoch != race_epoch_;
  });
  const RaceMask mask = RaceMask::word_at(offset_in_page);
  const Seq open_seq = vc_.get(static_cast<ProcId>(rank_)) + 1;
  for (PageExt::ReadRec& rr : px.race_reads) {
    if (rr.seq == open_seq) {
      rr.mask |= mask;
      return;
    }
  }
  px.race_reads.push_back({open_seq, race_epoch_, mask});
}

void Runtime::race_emit(RaceReport r) {
  // Caller holds mu_. One machine-greppable line per detected pair, in
  // the TMK_CRASH_REPORT style; embedded values are all numeric or
  // fixed enum strings, so the line is always valid JSON.
  r.barrier_seq = barrier_seq_;
  std::ostringstream os;
  os << "{\"rank\":" << rank_ << ",\"kind\":\""
     << (r.local_write ? "ww" : "rw") << "\",\"page\":" << r.page
     << ",\"words\":\"0x" << r.overlap_mask.hex()
     << "\",\"remote\":" << r.remote << ",\"remote_seq\":" << r.remote_seq
     << ",\"local_seq\":" << r.local_seq << ",\"remote_vc\":[";
  for (int p = 0; p < nprocs_; ++p)
    os << (p == 0 ? "" : ",") << r.remote_vc.get(static_cast<ProcId>(p));
  os << "],\"local_vc\":[";
  for (int p = 0; p < nprocs_; ++p)
    os << (p == 0 ? "" : ",") << r.local_vc.get(static_cast<ProcId>(p));
  os << "],\"barrier_seq\":" << r.barrier_seq << ",\"mode\":\""
     << to_string(racecheck_) << "\"}";
  std::fprintf(stderr, "TMK_RACE_REPORT %s\n", os.str().c_str());
  std::fflush(stderr);
  if (racecheck_throw_) race_throw_pending_ = true;
  // Storage is capped (each report carries two full vector clocks —
  // unbounded retention would OOM a racy long-running workload); the
  // line above and the race_reports counter keep firing regardless.
  ++race_emitted_;
  if (race_reports_.size() < race_max_reports_)
    race_reports_.push_back(std::move(r));
  else
    ++race_reports_dropped_;
}

void Runtime::race_maybe_throw() {
  if (!racecheck_throw_) return;
  bool fire;
  {
    std::lock_guard<std::mutex> g(mu_);
    fire = race_throw_pending_;
    race_throw_pending_ = false;
  }
  if (fire) {
    race_unwinding_ = true;  // ~Runtime: skip the shutdown rendezvous
    throw common::Error("rank " + std::to_string(rank_) +
                        ": data race detected (TMK_RACECHECK_THROW=1; see "
                        "TMK_RACE_REPORT lines on stderr)");
  }
}

// ---------------------------------------------------------------------
// Diff fetching (page faults and aggregated validate)
// ---------------------------------------------------------------------

void Runtime::fetch_and_apply(std::span<const PageIndex> fault_pages,
                              bool learn) {
  // Snapshot the needed (creator -> [(page, seq)...]) sets into the
  // reusable per-creator scratch vectors. Only the main thread mutates
  // pending lists, and we *are* the main thread, so the snapshot stays
  // accurate while we release mu_ to do network I/O.
  bool any = false;
  // Pending seqs covered by a stashed push (a barrier-time diff push
  // the page's other pending notices kept us from applying on the
  // spot) are satisfied locally: the stashed blob is staged alongside
  // the fetched ones and that creator's round trip never happens.
  struct StashHit {
    PageIndex page;
    const IntervalMeta* interval;
    std::uint64_t key;
  };
  std::vector<StashHit> stash_hits;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& v : fetch_needs_) v.clear();
    for (PageIndex page : fault_pages) {
      const PageExt* px = ext_if(page);
      if (px == nullptr) continue;
      for (const IntervalMeta* m : px->pending) {
        COMMON_CHECK(m->id.creator != rank_);
        const std::uint64_t key = stash_key(page, m->id.creator);
        if (const auto it = push_stash_.find(key);
            it != push_stash_.end() && m->id.seq > it->second.lo &&
            m->id.seq <= it->second.hi) {
          stash_hits.push_back(StashHit{page, m, key});
          continue;
        }
        fetch_needs_[m->id.creator].push_back(FetchNeed{page, m->id.seq});
        any = true;
      }
    }
  }
  if (!any && stash_hits.empty()) return;

  // One batched request per creator, issued in parallel.
  fetch_outstanding_.clear();
  for (int p = 0; p < nprocs_; ++p) {
    const auto& needs = fetch_needs_[static_cast<std::size_t>(p)];
    if (needs.empty()) continue;
    ByteWriter& w = fetch_writer_;
    w.clear();
    w.put<std::uint32_t>(static_cast<std::uint32_t>(needs.size()));
    for (const FetchNeed& n : needs) {
      w.put<PageIndex>(n.page);
      w.put<Seq>(n.seq);
    }
    const std::uint32_t req_id = next_req_id_++;
    // One request frame per creator for its whole fetch_needs_ set,
    // handed to the transport as one burst unit.
    ep_.begin_burst(p);
    ep_.send_svc(p, mpl::FrameKind::kDiffRequest, learn ? 0 : 1, req_id,
                 w.bytes());
    fetch_outstanding_.push_back(
        FetchOutstanding{static_cast<ProcId>(p), req_id});
    stats_.diff_requests.fetch_add(1, std::memory_order_relaxed);
  }
  ep_.flush_burst();

  // Collect replies; stage diffs as zero-copy views into the reply
  // payloads, which stay alive in fetch_replies_ until applied.
  constexpr PageIndex kNoPage = std::numeric_limits<PageIndex>::max();
  fetch_staged_.clear();
  fetch_replies_.clear();
  for (const FetchOutstanding& o : fetch_outstanding_) {
    char site[64];
    std::snprintf(site, sizeof(site), "diff fetch from rank %d", o.creator);
    ep_.set_wait_site(site);
    mpl::Frame f = ep_.wait_app([&o](const mpl::Frame& fr) {
      return fr.kind == mpl::FrameKind::kDiffReply && fr.src == o.creator &&
             fr.req_id == o.req_id;
    });
    ByteReader r(f.payload);
    const auto n = r.get<std::uint32_t>();
    std::lock_guard<std::mutex> g(mu_);
    const auto& known = intervals_[o.creator];
    std::span<const std::byte> prev_bytes;
    // Reply records echo the request order, so one page's records are
    // consecutive; aggregate its requested/covered seqs on the fly. The
    // blob bakes in the creator's writes up to `covered`; write notices
    // for the gap (requested, covered] must not trigger a refetch later
    // — the stale blob would clobber our own concurrent writes to other
    // words of the page (false sharing).
    PageIndex cur_page = kNoPage;
    Seq max_covered = 0;
    Seq max_requested = 0;
    const auto finish_page = [&] {
      if (cur_page == kNoPage) return;
      for (Seq s = max_requested + 1; s <= max_covered; ++s) {
        // Integrated gap seqs did not touch this page (else they would
        // have been pending, hence requested); skip them.
        if (s <= known.hi()) continue;
        preapplied_.insert(pack_preapplied(o.creator, s, cur_page));
      }
    };
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto page = r.get<PageIndex>();
      const auto seq = r.get<Seq>();
      const auto covered = r.get<Seq>();
      const auto len = r.get<std::uint32_t>();
      std::span<const std::byte> bytes;
      const bool shared_blob = (len == 0xffffffffu);
      if (shared_blob) {
        bytes = prev_bytes;  // one flush covered several intervals
      } else {
        bytes = r.get_bytes(len);
        prev_bytes = bytes;
      }
      COMMON_CHECK(seq > known.base && seq <= known.hi());
      fetch_staged_.push_back(
          FetchedDiff{page, known.at(seq), bytes, shared_blob});
      stats_.diffs_fetched.fetch_add(1, std::memory_order_relaxed);
      if (page != cur_page) {
        finish_page();
        cur_page = page;
        max_covered = 0;
        max_requested = 0;
      }
      max_covered = std::max(max_covered, covered);
      max_requested = std::max(max_requested, seq);
    }
    finish_page();
    fetch_replies_.push_back(std::move(f));  // keep the spans alive
  }

  // Apply, per page, in a linear extension of happens-before (vc weight;
  // concurrent intervals write disjoint words, so ties are safe).
  std::lock_guard<std::mutex> g(mu_);
  // Stage the stash-satisfied seqs exactly like fetched ones: one entry
  // per pending interval (the apply loop checks that count), with the
  // blob applied once per stash entry via the shared-blob flag. The
  // stash's shared_ptr keeps each blob alive past the erase below.
  std::vector<std::shared_ptr<std::vector<std::byte>>> stash_live;
  stash_live.reserve(stash_hits.size());
  {
    std::uint64_t prev_key = ~std::uint64_t{0};
    for (const StashHit& sh : stash_hits) {
      const auto it = push_stash_.find(sh.key);
      COMMON_CHECK(it != push_stash_.end());
      const bool dup = sh.key == prev_key;
      if (!dup) stash_live.push_back(it->second.blob);
      fetch_staged_.push_back(FetchedDiff{
          sh.page, sh.interval, std::span<const std::byte>(*it->second.blob),
          dup});
      prev_key = sh.key;
    }
  }
  std::sort(fetch_staged_.begin(), fetch_staged_.end(),
            [](const FetchedDiff& a, const FetchedDiff& b) {
              if (a.page != b.page) return a.page < b.page;
              const auto wa = a.interval->vc_weight;
              const auto wb = b.interval->vc_weight;
              if (wa != wb) return wa < wb;
              return a.interval->id.creator < b.interval->id.creator;
            });
  std::size_t i = 0;
  while (i < fetch_staged_.size()) {
    const PageIndex page = fetch_staged_[i].page;
    std::size_t j = i;
    while (j < fetch_staged_.size() && fetch_staged_[j].page == page) ++j;
    PageMeta& pm = pages_[page];
    PageExt& px = ext(page);
    COMMON_CHECK_MSG(j - i == px.pending.size(),
                     "pending set changed under fetch for page " << page);
    const bool dirty = pm.dirty;
    mprotect_page(page, PROT_READ | PROT_WRITE);
    for (std::size_t k = i; k < j; ++k) {
      const FetchedDiff& fd = fetch_staged_[k];
      // Entries sharing one flush blob are applied (and charged) once.
      if (fd.same_as_prev) continue;
      ep_.clock().add_model(
          ep_.clock().model().diff_apply_cost(fd.blob.size()));
      apply_diff(fd.blob, page_ptr(page));
      // Keep the twin in sync (TreadMarks applies incoming diffs to both
      // copies): otherwise our next flush would re-export other writers'
      // words at stale values and clobber their newer updates.
      if (px.twin != nullptr) apply_diff(fd.blob, px.twin.get());
    }
    px.pending.clear();
    if (dirty) {
      pm.state = PageState::kReadWrite;  // keep writing against old twin
    } else {
      mprotect_page(page, PROT_READ);
      pm.state = PageState::kReadOnly;
    }
    i = j;
  }
  fetch_staged_.clear();
  // Consumed stash entries are retired as hits (erase() de-dups the
  // per-entry count when several seqs drew on one blob).
  for (const StashHit& sh : stash_hits)
    if (push_stash_.erase(sh.key) != 0)
      stats_.push_hits.fetch_add(1, std::memory_order_relaxed);
  // Return the reply payload buffers to the receive pool.
  for (mpl::Frame& f : fetch_replies_) ep_.recycle_buffer(std::move(f.payload));
  fetch_replies_.clear();
}

bool Runtime::handle_fault(void* addr, bool is_write_hint) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const auto base = reinterpret_cast<std::uintptr_t>(heap_);
  if (a < base || a >= base + heap_len_) return false;
  if (!pthread_equal(pthread_self(), main_tid_)) {
    // The faulting thread is not this runtime's application thread: a
    // service thread touched protected pages, or — thread backend — a
    // rank scribbled into a PEER's heap range (e.g. per-rank state
    // leaked through a shared global). Unrecoverable; dying loudly here
    // beats throwing a C++ exception through the signal frame.
    std::fprintf(stderr,
                 "tmk: fault at %p belongs to rank %d's heap but was taken "
                 "on a foreign thread — cross-rank wild pointer?\n",
                 addr, rank_);
    std::fflush(nullptr);
    std::abort();
  }

  simx::ProtocolSection protocol(ep_.clock(), host_fault_cost_ns_);
  ep_.clock().add_model(ep_.clock().model().page_fault_ns);
  const PageIndex page = page_of(addr);
  PageState state;
  {
    std::lock_guard<std::mutex> g(mu_);
    state = pages_[page].state;
  }
  // A fault on a read-only page can only be a write; a fault on an
  // invalid page uses the hardware's read/write bit when available
  // (x86-64), else is treated as a read — the retried store then faults
  // again on the read-only page and takes the write path.
  const bool is_write = is_write_hint || state == PageState::kReadOnly;

  switch (state) {
    case PageState::kInvalid: {
      if (is_write)
        stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
      else
        stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      const PageIndex pages[1] = {page};
      fetch_and_apply(pages);
      if (!is_write && racecheck_ != RaceCheckMode::kOff) {
        std::lock_guard<std::mutex> g(mu_);
        race_record_read(page, static_cast<std::size_t>(a - base) %
                                   common::kPageSize);
      }
      if (is_write) {
        std::lock_guard<std::mutex> g(mu_);
        PageMeta& pm = pages_[page];
        PageExt& px = ext(page);
        if (!pm.dirty) {
          if (px.twin == nullptr) {
            px.twin = take_twin_buffer();
            std::memcpy(px.twin.get(), page_ptr(page), common::kPageSize);
            ep_.clock().add_model(ep_.clock().model().twin_ns);
            stats_.twins_created.fetch_add(1, std::memory_order_relaxed);
          }
          pm.dirty = true;
          dirty_pages_.push_back(page);
        }
        mprotect_page(page, PROT_READ | PROT_WRITE);
        pm.state = PageState::kReadWrite;
      }
      return true;
    }
    case PageState::kReadOnly: {
      stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> g(mu_);
      PageMeta& pm = pages_[page];
      PageExt& px = ext(page);
      COMMON_CHECK(!pm.dirty);
      if (px.twin == nullptr) {
        // First write since the last flush: make a twin. A persistent
        // twin from earlier intervals is reused without copying (the
        // big lazy-diffing saving for repeatedly-written pages).
        px.twin = take_twin_buffer();
        std::memcpy(px.twin.get(), page_ptr(page), common::kPageSize);
        ep_.clock().add_model(ep_.clock().model().twin_ns);
        stats_.twins_created.fetch_add(1, std::memory_order_relaxed);
      }
      pm.dirty = true;
      dirty_pages_.push_back(page);
      mprotect_page(page, PROT_READ | PROT_WRITE);
      pm.state = PageState::kReadWrite;
      return true;
    }
    case PageState::kReadWrite:
      // The only way to fault on an RW page is a protocol bug.
      COMMON_CHECK_MSG(false, "fault on a read-write page " << page);
  }
  return false;
}

// ---------------------------------------------------------------------
// Barrier (§2.2: centralized manager, 2(n-1) messages). The fan-in runs
// over a k-ary heap-indexed tree rooted at rank 0 (barrier_arity_); the
// default arity nprocs-1 makes every rank a direct child of the root,
// which IS the paper's flat centralized manager, byte-for-byte. Any
// arity still costs exactly one arrive plus one depart per tree edge —
// the modelled 2(n-1) barrier messages are arity-invariant — but a
// small arity bounds each node's sequential fan-in at k, which is what
// keeps the host-side critical path O(k log_k n) at 128 ranks.
//
// Up the tree, each node reports its subtree's new intervals (its own
// past the floor its parent knows, plus the ranges its children
// reported this round — every creator lives in exactly one subtree, so
// ranges never collide). Down the tree, each node — complete knowledge
// in hand after its parent's depart — sends every child exactly the
// intervals that child's subtree lacked at arrival, the same tailoring
// the flat manager performs.
// ---------------------------------------------------------------------

void Runtime::serialize_barrier_contrib(ByteWriter& w) const {
  // Caller holds mu_. Emits, per creator in ascending order, the
  // intervals recorded in barrier_contrib_ — the subtree's news. For a
  // leaf this degenerates to serialize_own_intervals_after, byte for
  // byte, which is what keeps the flat (all-leaves) shape identical to
  // the original centralized-manager wire format.
  std::uint32_t count = 0;
  for (int p = 0; p < nprocs_; ++p) {
    const auto& c = barrier_contrib_[static_cast<std::size_t>(p)];
    count += c.second - c.first;
  }
  w.put<std::uint32_t>(count);
  for (int p = 0; p < nprocs_; ++p) {
    const auto [lo, hi] = barrier_contrib_[static_cast<std::size_t>(p)];
    const auto& known = intervals_[static_cast<std::size_t>(p)];
    for (Seq s = lo + 1; s <= hi; ++s)
      put_interval_record(w, *known.at(s));
  }
}

void Runtime::barrier() {
  simx::ProtocolSection protocol(ep_.clock());
  // Fault hook first: "exit-at-barrier=K" means the rank enters its Kth
  // barrier and dies there, before any arrive leaves this rank.
  ep_.fault_barrier_entered();
  close_interval();
  stats_.barriers.fetch_add(1, std::memory_order_relaxed);
  if (nprocs_ == 1) {
    if (epoch_gc_) {
      // Single rank: everything is integrated by construction (no
      // pendings, no peers to wait for), so a GC round reclaims straight
      // up to the current clock.
      std::lock_guard<std::mutex> g(mu_);
      if (gc_round_now()) {
        protocol_rss_peak_ =
            std::max(protocol_rss_peak_, protocol_rss_bytes_locked());
        epoch_gc_reclaim(vc_);
      }
      trim_pools_locked();
    }
    ++barrier_seq_;
    return;
  }

  const int nchildren = barrier_num_children();
  const int first_child = barrier_first_child();
  const bool pushing = update_mode_ != UpdateMode::kOff;
  // Epoch-GC piggyback: only GC rounds extend the barrier wire (a flags
  // byte + the subtree's element-wise minimum clock up, a flags byte +
  // the global horizon down), so the other barriers — and every barrier
  // of a TMK_EPOCH_GC=off run — stay byte-identical to the pre-GC
  // protocol. The round predicate depends only on barrier_seq_ and
  // config, so every rank agrees on the wire shape without negotiation.
  const bool gc_wire = gc_round_now();
  bool gc_want = false;
  bool gc_do = false;
  VectorClock gc_min;      // element-wise min over the subtree's clocks
  VectorClock gc_horizon;  // global min, distributed by the root
  const auto fold_min = [this](VectorClock& into, const VectorClock& other) {
    for (int p = 0; p < nprocs_; ++p) {
      const auto pid = static_cast<ProcId>(p);
      into.set(pid, std::min(into.get(pid), other.get(pid)));
    }
  };
  if (pushing) {
    // Per-child-link caches for the count-table sentinel (empty = no
    // history yet; the first barrier always ships the full table).
    push_counts_child_rx_.resize(static_cast<std::size_t>(nchildren));
    push_counts_sent_down_.resize(static_cast<std::size_t>(nchildren));
    std::lock_guard<std::mutex> g(mu_);
    build_push_plan();
  }

  char site[64];
  std::snprintf(site, sizeof(site), "barrier %u fan-in", barrier_seq_);
  ep_.set_wait_site(site);

  // ---- fan-in: own news, then every child subtree's ----
  for (auto& c : barrier_contrib_) c = {0, 0};
  {
    std::lock_guard<std::mutex> g(mu_);
    // Report own intervals from the floor the PARENT is guaranteed to
    // know. The flat parent is rank 0, which join_worker also reports
    // to, so the shared watermark applies (and keeps the paper shape's
    // wire bytes identical to the original centralized manager); a
    // non-root tree parent only ever learns this rank's intervals
    // through barriers, so fork/join progress must not advance its
    // floor — reporting from sent_to_master_seq_ there would open an
    // interval gap at the parent and abort the run.
    const Seq floor_seq =
        barrier_parent() == 0 ? sent_to_master_seq_ : barrier_sent_seq_;
    barrier_contrib_[static_cast<std::size_t>(rank_)] = {
        floor_seq, vc_.get(static_cast<ProcId>(rank_))};
    if (gc_wire) {
      // This rank's contribution to the horizon is its pre-fan-in clock
      // (children's integrated news must not inflate the minimum).
      gc_min = vc_;
      gc_want = (barrier_seq_ + 1) % gc_interval_ == 0 ||
                (gc_bytes_ > 0 && protocol_rss_bytes_locked() > gc_bytes_);
    }
  }
  for (int i = 0; i < nchildren; ++i) {
    mpl::Frame f = ep_.wait_app_kind(mpl::FrameKind::kBarrierArrive);
    COMMON_CHECK_MSG(f.src >= first_child && f.src < first_child + nchildren,
                     "barrier arrive from non-child rank " << f.src);
    ByteReader r(f.payload);
    const auto seq = r.get<std::uint32_t>();
    COMMON_CHECK_MSG(seq == barrier_seq_, "barrier sequence mismatch");
    VectorClock their = r.get_vc(nprocs_);
    std::lock_guard<std::mutex> g(mu_);
    read_intervals(r, /*note_contrib=*/true);
    barrier_child_vc_[static_cast<std::size_t>(f.src - first_child)] = their;
    // Child subtrees report how many kDiffPush frames they will send to
    // each destination; fold them into this subtree's totals.
    if (pushing)
      read_push_counts(
          r, /*accumulate=*/true,
          push_counts_child_rx_[static_cast<std::size_t>(f.src - first_child)]);
    if (gc_wire) {
      const auto flags = r.get<std::uint8_t>();
      if ((flags & 1u) != 0) gc_want = true;
      fold_min(gc_min, r.get_vc(nprocs_));
    }
    // Deliberately NO vc_.merge(their): a child's vc can claim intervals
    // it learned about through a lock chain whose creators live OUTSIDE
    // this subtree — claims this node does not possess as interval
    // metadata. Merging them would make this node's own arrive vc
    // overclaim, its parent's depart would then skip those intervals,
    // and a later serialization bounded by vc_ would index interval
    // records that were never received. vc_ grows only through
    // integrate_interval, so it always equals what intervals_ actually
    // holds; every claim a child can make is covered by its creator's
    // own report arriving at the root through the creator's own path.
    ep_.recycle_buffer(std::move(f.payload));
  }

  if (rank_ != 0) {
    // ---- report the subtree upward, wait for the global depart ----
    ByteWriter w;
    w.put<std::uint32_t>(barrier_seq_);
    {
      std::lock_guard<std::mutex> g(mu_);
      w.put_vc(vc_, nprocs_);
      serialize_barrier_contrib(w);
      if (pushing)  // upward: the whole subtree's totals
        append_push_counts(w, /*subtree_root=*/-1, push_counts_sent_up_);
      if (gc_wire) {
        w.put<std::uint8_t>(gc_want ? 1 : 0);
        w.put_vc(gc_min, nprocs_);
      }
      // By the time this barrier completes, the contribution has
      // reached rank 0 through the tree — so the join watermark may
      // advance too, whatever the arity.
      barrier_sent_seq_ = vc_.get(static_cast<ProcId>(rank_));
      sent_to_master_seq_ = barrier_sent_seq_;
    }
    const int parent = barrier_parent();
    // The arrival (vc + interval metadata, possibly several chunks) goes
    // to the parent as one burst; the wait below flushes it.
    ep_.begin_burst(parent);
    ep_.send_app(parent, mpl::FrameKind::kBarrierArrive, 0, 0, w.bytes());

    std::snprintf(site, sizeof(site), "barrier %u depart (parent %d)",
                  barrier_seq_, parent);
    ep_.set_wait_site(site);
    mpl::Frame f =
        ep_.wait_app_kind_from(mpl::FrameKind::kBarrierDepart, parent);
    ByteReader r(f.payload);
    const auto seq = r.get<std::uint32_t>();
    COMMON_CHECK_MSG(seq == barrier_seq_, "barrier sequence mismatch");
    VectorClock merged = r.get_vc(nprocs_);
    {
      std::lock_guard<std::mutex> g(mu_);
      read_intervals(r);
      vc_.merge(merged);
      // The depart carries the run-wide push totals; replace the
      // subtree view — every rank ends with the same global vector.
      if (pushing)
        read_push_counts(r, /*accumulate=*/false, push_counts_rx_down_);
      if (gc_wire) {
        const auto flags = r.get<std::uint8_t>();
        gc_do = (flags & 1u) != 0;
        if (gc_do) gc_horizon = r.get_vc(nprocs_);
      }
    }
    ep_.recycle_buffer(std::move(f.payload));
  } else if (gc_wire) {
    // Root: the fold over every subtree IS the global horizon.
    gc_do = gc_want;
    gc_horizon = gc_min;
  }

  // Flatten the planned diff chains and assemble one kDiffPush payload
  // per predicted consumer, before the departs go out: a child that is
  // also a consumer gets its depart AND its pushed diffs as one burst.
  if (pushing) prepare_push_frames();

  // ---- departs: tailored to what each child's subtree lacked ----
  for (int i = 0; i < nchildren; ++i) {
    ByteWriter w;
    w.put<std::uint32_t>(barrier_seq_);
    {
      std::lock_guard<std::mutex> g(mu_);
      w.put_vc(vc_, nprocs_);
      serialize_intervals_lacking(
          w, barrier_child_vc_[static_cast<std::size_t>(i)]);
      // Downward: only the slice of the totals this child's subtree
      // will consume.
      if (pushing)
        append_push_counts(w, first_child + i,
                           push_counts_sent_down_[static_cast<std::size_t>(i)]);
      if (gc_wire) {
        w.put<std::uint8_t>(gc_do ? 1 : 0);
        if (gc_do) w.put_vc(gc_horizon, nprocs_);
      }
    }
    // Per-destination burst: each child's depart (notices included) is
    // one transport publish however many chunks it spans.
    ep_.begin_burst(first_child + i);
    ep_.send_app(first_child + i, mpl::FrameKind::kBarrierDepart, 0, 0,
                 w.bytes());
    if (pushing) {
      for (auto& pf : push_frames_) {
        if (pf.first != first_child + i) continue;
        ep_.send_app(pf.first, mpl::FrameKind::kDiffPush, 0, 0, pf.second);
        pf.first = -1;  // consumed by the depart burst
      }
    }
  }
  ep_.flush_burst();
  if (pushing) {
    // Pushes to non-child consumers follow, one burst per peer; then
    // collect exactly the frames the depart's totals promised us.
    for (auto& pf : push_frames_) {
      if (pf.first < 0) continue;
      ep_.begin_burst(pf.first);
      ep_.send_app(pf.first, mpl::FrameKind::kDiffPush, 0, 0, pf.second);
    }
    ep_.flush_burst();
    collect_pushes(push_counts_[static_cast<std::size_t>(rank_)]);
  }
  // ---- epoch GC execution (one round behind the horizon exchange) ----
  if (gc_wire && gc_do) {
    std::vector<PageIndex> stale;
    {
      std::lock_guard<std::mutex> g(mu_);
      protocol_rss_peak_ =
          std::max(protocol_rss_peak_, protocol_rss_bytes_locked());
      if (gc_have_snapshot_) {
        // Reclaim up to the PREVIOUS round's validated snapshot, capped
        // by this round's global horizon (the cap is provably a no-op —
        // every rank's clock already covered the snapshot when it passed
        // the previous GC barrier — but keeps the safety condition local
        // and checkable).
        VectorClock h = gc_ready_horizon_;
        fold_min(h, gc_horizon);
        epoch_gc_reclaim(h);
      }
      // Validation pass: find every page still carrying pending write
      // notices; force-applying them below makes the snapshot taken
      // after this block safe — nothing pending can reference a record
      // at or below it when the NEXT round reclaims.
      for (std::size_t p = 0; p < num_pages_; ++p)
        if (const PageExt* px = ext_if(static_cast<PageIndex>(p));
            px != nullptr && !px->pending.empty())
          stale.push_back(static_cast<PageIndex>(p));
    }
    if (!stale.empty()) fetch_and_apply(stale, /*learn=*/false);
    {
      std::lock_guard<std::mutex> g(mu_);
      gc_ready_horizon_ = vc_;
      gc_have_snapshot_ = true;
    }
  }
  if (epoch_gc_) {
    std::lock_guard<std::mutex> g(mu_);
    trim_pools_locked();
  }
  ++barrier_seq_;
  {
    // End of a global rendezvous: every interval closed before it has
    // now been integrated everywhere, so any interval that arrives
    // from here on contains only post-barrier writes — this rank's
    // pre-barrier reads are ordered before them without any vector
    // clock ever saying so (read-only intervals never close).
    std::lock_guard<std::mutex> g(mu_);
    ++race_epoch_;
  }
  race_maybe_throw();
}

// ---------------------------------------------------------------------
// Epoch GC (TMK_EPOCH_GC): reclamation of protocol state below the
// global vector-clock horizon. The horizon reclaim() receives is the
// element-wise minimum of every rank's clock as VALIDATED one GC round
// ago: every seq at or below it has been integrated everywhere and had
// its data applied everywhere (the previous round's forced validate),
// so no diff request, push, lock-grant serialization, or race check can
// ever reference those records again.
// ---------------------------------------------------------------------

void Runtime::epoch_gc_reclaim(const VectorClock& horizon) {
  // Caller holds mu_.
  std::vector<PageIndex> touched;
  {
    std::lock_guard<std::mutex> dg(diff_mu_);
    for (int p = 0; p < nprocs_; ++p) {
      auto& known = intervals_[static_cast<std::size_t>(p)];
      const Seq limit = horizon.get(static_cast<ProcId>(p));
      while (known.base < limit && !known.live.empty()) {
        std::unique_ptr<IntervalMeta> meta = std::move(known.live.front());
        known.live.pop_front();
        COMMON_CHECK(meta->id.seq == known.base + 1);
        ++known.base;
        const Seq s = meta->id.seq;
        for (PageIndex page : meta->pages) {
          PageExt* px = page_ext_[page].get();
          if (px == nullptr) continue;
          COMMON_CHECK_MSG(
              std::find(px->pending.begin(), px->pending.end(), meta.get()) ==
                  px->pending.end(),
              "reclaiming interval (" << p << "," << s
                                      << ") still pending on page " << page);
          std::erase(px->notices,
                     static_cast<const IntervalMeta*>(meta.get()));
          if (p == rank_) {
            // Own record: the stored diff blob (if the page ever
            // flushed) and the unflushed marker (if it never did) both
            // die with it. Reclaim walks seqs in ascending order, so an
            // unflushed marker for s can only sit at the front.
            diffs_.erase((static_cast<std::uint64_t>(page) << 32) | s);
            if (!px->unflushed.empty() && px->unflushed.front() == s)
              px->unflushed.erase(px->unflushed.begin());
          }
          touched.push_back(page);
        }
        ++records_reclaimed_;
      }
    }
  }
  // Stashed pushes wholly below the horizon can never be consumed — the
  // fault they were stashed for was provably resolved (validated) by
  // the previous round; account them as waste exactly like stashes
  // still unconsumed at shutdown.
  for (auto it = push_stash_.begin(); it != push_stash_.end();) {
    const auto creator = static_cast<ProcId>(
        it->first & ((std::uint64_t{1} << kPackCreatorBits) - 1));
    if (it->second.hi <= horizon.get(creator)) {
      stats_.push_waste.fetch_add(1, std::memory_order_relaxed);
      it = push_stash_.erase(it);
    } else {
      ++it;
    }
  }
  // Per-page post-pass over every page a reclaimed record touched.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (PageIndex page : touched) {
    auto& slot = page_ext_[page];
    if (slot == nullptr) continue;
    PageExt& px = *slot;
    const PageMeta& pm = pages_[page];
    // Stale read witnesses: records from sync epochs before the current
    // one are barrier-ordered before any interval that can still
    // arrive (same pruning rule race_record_read applies on append).
    std::erase_if(px.race_reads, [this](const PageExt::ReadRec& r) {
      return r.epoch != race_epoch_;
    });
    // Twin retirement: with no unflushed interval left (every remaining
    // fetcher-visible diff is already materialized in diffs_) and no
    // open write in flight, the baseline image serves no future diff.
    // Drop it — the next write fault re-baselines from the current
    // content, which has the reclaimed writes baked in.
    if (px.twin != nullptr && px.unflushed.empty() && !pm.dirty) {
      recycle_twin(std::move(px.twin));
      px.race_cum_mask = RaceMask{};
    }
    // Fold an emptied slot back to nullptr — the lazy-allocation steady
    // state for pages that left the protocol's working set. Consumer
    // hints persist (the application declared them once, for the whole
    // run), so a hinted page keeps its slot.
    if (px.twin == nullptr && px.pending.empty() && px.notices.empty() &&
        px.unflushed.empty() && px.race_reads.empty() &&
        !px.hint_consumers.any() && !px.adaptive_consumers.any())
      slot.reset();
  }
}

std::uint64_t Runtime::protocol_rss_bytes_locked() const {
  // Caller holds mu_; takes diff_mu_ for the blob map. Deliberately an
  // upper bound where exactness would cost more than it informs: a
  // flush blob shared by several covered intervals counts once per
  // interval. The soak assertions compare trends (flat vs growing), for
  // which a consistent over-approximation is exactly as good.
  std::uint64_t total = 0;
  for (int p = 0; p < nprocs_; ++p) {
    const auto& log = intervals_[static_cast<std::size_t>(p)];
    for (const auto& m : log.live) {
      total += sizeof(IntervalMeta);
      total += m->pages.capacity() * sizeof(PageIndex);
      total += m->write_masks.capacity() * sizeof(RaceMask);
    }
  }
  {
    std::lock_guard<std::mutex> dg(diff_mu_);
    for (const auto& [key, rec] : diffs_) {
      total += sizeof(key) + sizeof(rec);
      if (rec.blob != nullptr) total += rec.blob->capacity();
    }
  }
  for (const auto& e : page_ext_) {
    if (e == nullptr) continue;
    total += sizeof(PageExt);
    total += e->pending.capacity() * sizeof(const IntervalMeta*);
    total += e->notices.capacity() * sizeof(const IntervalMeta*);
    total += e->unflushed.capacity() * sizeof(Seq);
    total += e->race_reads.capacity() * sizeof(PageExt::ReadRec);
    if (e->twin != nullptr) total += common::kPageSize;
  }
  total += twin_pool_.size() * common::kPageSize;
  for (const auto& [key, stash] : push_stash_) {
    total += sizeof(key) + sizeof(stash);
    if (stash.blob != nullptr) total += stash.blob->capacity();
  }
  total += race_reports_.size() * sizeof(RaceReport);
  total += preapplied_.size() * sizeof(std::uint64_t);
  return total;
}

void Runtime::trim_pools_locked() {
  // High-water-mark trim: keep only as many pooled twins as this epoch
  // actually consumed, so a one-off spike (an init phase touching every
  // page, say) stops pinning page-sized buffers for the rest of the
  // run. Runs every barrier when the collector is on.
  if (twin_pool_.size() > twin_takes_epoch_)
    twin_pool_.resize(twin_takes_epoch_);
  twin_takes_epoch_ = 0;
  ep_.trim_buffer_pools();
}

Runtime::MemStats Runtime::mem_stats() const {
  std::lock_guard<std::mutex> g(mu_);
  MemStats s;
  s.protocol_rss_bytes = protocol_rss_bytes_locked();
  s.records_created = records_created_;
  s.records_reclaimed = records_reclaimed_;
  for (int p = 0; p < nprocs_; ++p)
    s.records_live += intervals_[static_cast<std::size_t>(p)].live.size();
  s.twin_pool_pages = twin_pool_.size();
  for (const auto& e : page_ext_) {
    if (e == nullptr) continue;
    ++s.page_ext_live;
    if (e->twin != nullptr) ++s.twins_live;
  }
  s.race_reports_dropped = race_reports_dropped_;
  return s;
}

// ---------------------------------------------------------------------
// Hybrid update protocol (TMK_UPDATE_MODE != off): barrier-time diff
// push. The paper's premise is that the compiler KNOWS the access
// pattern; hint_consumers feeds that knowledge in, the adaptive
// predictor learns it from observed diff requests, and the barrier
// departure pushes each page's flattened diff chain to the predicted
// consumers — replacing a SIGSEGV fault plus a kDiffRequest/kDiffReply
// round trip per page per consumer with one pushed frame per peer.
// ---------------------------------------------------------------------

void Runtime::hint_consumers(const void* base, std::size_t len,
                             int consumer) {
  COMMON_CHECK(consumer >= 0 && consumer < nprocs_);
  if (update_mode_ != UpdateMode::kHint &&
      update_mode_ != UpdateMode::kHybrid)
    return;  // hints are inert in off/adaptive runs, byte for byte
  if (len == 0 || consumer == rank_) return;
  const auto off = static_cast<std::size_t>(
      static_cast<const std::byte*>(base) - static_cast<std::byte*>(heap_));
  COMMON_CHECK(off < heap_len_ && off + len <= heap_len_);
  const auto first = static_cast<PageIndex>(off / common::kPageSize);
  const auto last =
      static_cast<PageIndex>((off + len - 1) / common::kPageSize);
  std::lock_guard<std::mutex> g(mu_);
  for (PageIndex p = first; p <= last; ++p)
    ext(p).hint_consumers.set(consumer);
}

void Runtime::build_push_plan() {
  // Caller holds mu_ (barrier entry, this interval just closed).
  push_plan_.clear();
  std::fill(push_counts_.begin(), push_counts_.end(), 0);
  ProcMask planned;
  for (PageIndex page : push_candidates_) {
    PageExt& px = ext(page);
    if (px.own_last_seq <= px.pushed_seq) continue;
    PushPlanEntry e;
    e.page = page;
    e.lo = px.pushed_seq;
    e.hi = px.own_last_seq;
    if (update_mode_ == UpdateMode::kHint ||
        update_mode_ == UpdateMode::kHybrid)
      e.dsts.merge(px.hint_consumers);
    if ((update_mode_ == UpdateMode::kAdaptive ||
         update_mode_ == UpdateMode::kHybrid) &&
        px.adaptive_consumers.any()) {
      // Credit-bounded: a consumer that stopped requesting stops
      // costing bandwidth after push_credits_ pushed rounds; its next
      // request re-arms the bit (and the budget) in serve_diff_request.
      e.dsts.merge(px.adaptive_consumers);
      if (--px.push_budget == 0) px.adaptive_consumers.reset();
    }
    e.dsts.clear(rank_);
    // The offer watermark advances whether or not anyone was predicted:
    // skipped intervals are pulled as today, never re-offered.
    px.pushed_seq = px.own_last_seq;
    if (!e.dsts.any()) continue;
    planned.merge(e.dsts);
    push_plan_.push_back(std::move(e));
  }
  push_candidates_.clear();
  // One frame per destination this barrier, however many pages it packs.
  for (int d = 0; d < nprocs_; ++d)
    if (planned.test(d)) ++push_counts_[static_cast<std::size_t>(d)];
}

void Runtime::append_push_counts(ByteWriter& w, int subtree_root,
                                 std::vector<std::uint16_t>& last_sent) const {
  // Caller holds mu_. Sparse (dst, frames) pairs — almost every entry is
  // zero for halo patterns — packed as u8/u8: a dst fits kPackCreatorBits
  // and a count is at most one frame per sender. Arrives carry every
  // nonzero dst upward (subtree_root < 0); a depart carries only the
  // dsts inside the receiving child's subtree, since that is all the
  // child and its descendants can consume — broadcasting the full table
  // down the tree costs O(n^2) entries per barrier and showed up as a
  // measurable share of hybrid-mode bytes at 32+ ranks. On top of that,
  // steady-state access patterns repeat the identical table barrier
  // after barrier, so each tree link remembers what it last carried and
  // an unchanged table collapses to the 1-byte sentinel 0xff (a real
  // entry count never exceeds nprocs <= 128).
  std::vector<std::uint16_t> cur(static_cast<std::size_t>(nprocs_), 0);
  std::uint8_t n = 0;
  for (int d = 0; d < nprocs_; ++d) {
    const std::uint16_t c = push_counts_[static_cast<std::size_t>(d)];
    if (c == 0 || !(subtree_root < 0 || in_barrier_subtree(d, subtree_root)))
      continue;
    cur[static_cast<std::size_t>(d)] = c;
    ++n;
  }
  if (!last_sent.empty() && cur == last_sent) {
    w.put<std::uint8_t>(0xff);
    return;
  }
  w.put<std::uint8_t>(n);
  for (int d = 0; d < nprocs_; ++d) {
    const std::uint16_t c = cur[static_cast<std::size_t>(d)];
    if (c == 0) continue;
    COMMON_CHECK(c <= 0xfe);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(d));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(c));
  }
  last_sent = std::move(cur);
}

void Runtime::read_push_counts(ByteReader& r, bool accumulate,
                               std::vector<std::uint16_t>& last_rx) {
  // Caller holds mu_. accumulate=true folds a child subtree's totals in
  // (fan-in); false replaces with the totals for our own subtree (the
  // depart is pre-filtered by the parent). The sentinel 0xff means
  // "same table as this link carried last barrier".
  const auto n = r.get<std::uint8_t>();
  if (n == 0xff) {
    COMMON_CHECK_MSG(!last_rx.empty(), "push-count sentinel with no history");
  } else {
    last_rx.assign(static_cast<std::size_t>(nprocs_), 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto d = r.get<std::uint8_t>();
      const auto c = r.get<std::uint8_t>();
      COMMON_CHECK_MSG(d < nprocs_, "push count for rank " << int{d});
      last_rx[d] = c;
    }
  }
  if (!accumulate) std::fill(push_counts_.begin(), push_counts_.end(), 0);
  for (int d = 0; d < nprocs_; ++d)
    push_counts_[static_cast<std::size_t>(d)] = static_cast<std::uint16_t>(
        push_counts_[static_cast<std::size_t>(d)] +
        last_rx[static_cast<std::size_t>(d)]);
}

void Runtime::prepare_push_frames() {
  push_frames_.clear();
  if (push_plan_.empty()) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    const auto& m = ep_.clock().model();
    for (PushPlanEntry& e : push_plan_) {
      PageExt& px = ext(e.page);
      // The newest covered intervals are usually still lazy; flush them
      // so the chain is materialized (and pull requests for the same
      // seqs will serve the identical blobs).
      if (!px.unflushed.empty())
        ep_.clock().add_model(flush_page_diff(e.page));
      // Gather the distinct flush blobs covering (lo, hi], oldest
      // first. One blob is the common case (one flush generation since
      // the last barrier); several arise when the page was flushed
      // mid-span (a reader pulled between barriers) — the chain that
      // used to ship as multiple overlapping diffs.
      std::vector<std::shared_ptr<std::vector<std::byte>>> chain;
      {
        std::lock_guard<std::mutex> dg(diff_mu_);
        for (Seq s = e.lo + 1; s <= e.hi; ++s) {
          const auto it =
              diffs_.find((static_cast<std::uint64_t>(e.page) << 32) | s);
          if (it == diffs_.end()) continue;  // seq missed this page
          if (!chain.empty() && chain.back() == it->second.blob) continue;
          chain.push_back(it->second.blob);
        }
      }
      COMMON_CHECK_MSG(!chain.empty(),
                       "no diff for planned push of page " << e.page);
      if (chain.size() == 1) {
        e.blob = chain.front();
      } else {
        // Diff-chain flattening: absorb oldest -> newest (later wins,
        // the receiver-order semantics) and re-encode one coalesced
        // diff — one apply pass instead of chain.size() overlapping
        // ones, and strictly fewer bytes on the wire.
        diff_merger_.reset();
        for (const auto& b : chain) {
          diff_merger_.absorb(*b);
          ep_.clock().add_model(m.diff_apply_cost(b->size()));
        }
        auto out = std::make_shared<std::vector<std::byte>>();
        diff_merger_.encode_into(*out);
        e.blob = std::move(out);
        stats_.diffs_flattened.fetch_add(chain.size(),
                                         std::memory_order_relaxed);
      }
    }
  }
  // Assemble one payload per destination (blobs are immutable; no lock
  // needed). The creator is implicit in the frame's src.
  for (int d = 0; d < nprocs_; ++d) {
    std::size_t npages = 0;
    for (const PushPlanEntry& e : push_plan_)
      if (e.dsts.test(d)) ++npages;
    if (npages == 0) continue;
    ByteWriter w;
    w.put<std::uint16_t>(static_cast<std::uint16_t>(npages));
    for (const PushPlanEntry& e : push_plan_) {
      if (!e.dsts.test(d)) continue;
      // Compact header: the span (hi - lo) is one or two barriers'
      // worth of seqs in steady state, so it ships as a u8 with an
      // escape for the rare long chain, and a diff never exceeds
      // kMaxDiffBytes so its length fits a u16. Worth ~7 bytes per
      // pushed page, which is what keeps hybrid-mode kbytes strictly
      // below pull-only on halo workloads.
      w.put<PageIndex>(e.page);
      w.put<Seq>(e.hi);
      const Seq span = e.hi - e.lo;
      if (span >= 0xff) {
        w.put<std::uint8_t>(0xff);
        w.put<Seq>(e.lo);
      } else {
        w.put<std::uint8_t>(static_cast<std::uint8_t>(span));
      }
      COMMON_CHECK(e.blob->size() <= 0xffff);
      w.put<std::uint16_t>(static_cast<std::uint16_t>(e.blob->size()));
      w.put_bytes(*e.blob);
      stats_.diff_push.fetch_add(1, std::memory_order_relaxed);
    }
    push_frames_.emplace_back(d, w.take());
  }
}

void Runtime::collect_pushes(std::uint32_t expected) {
  if (expected == 0) return;
  char site[64];
  std::snprintf(site, sizeof(site), "barrier %u push collect (%u frames)",
                barrier_seq_, expected);
  ep_.set_wait_site(site);

  struct PushRec {
    PageIndex page;
    ProcId creator;
    Seq lo;
    Seq hi;
    std::span<const std::byte> blob;
    std::uint64_t order_weight;
  };
  std::vector<PushRec> recs;
  std::vector<mpl::Frame> frames;
  frames.reserve(expected);
  for (std::uint32_t i = 0; i < expected; ++i) {
    mpl::Frame f = ep_.wait_app_kind(mpl::FrameKind::kDiffPush);
    ByteReader r(f.payload);
    const auto n = r.get<std::uint16_t>();
    for (std::uint32_t k = 0; k < n; ++k) {
      PushRec rec{};
      rec.page = r.get<PageIndex>();
      rec.creator = static_cast<ProcId>(f.src);
      rec.hi = r.get<Seq>();
      const auto span = r.get<std::uint8_t>();
      rec.lo = (span == 0xff) ? r.get<Seq>() : rec.hi - span;
      const auto len = r.get<std::uint16_t>();
      rec.blob = r.get_bytes(len);
      recs.push_back(rec);
    }
    frames.push_back(std::move(f));  // keep the blob spans alive
  }

  std::lock_guard<std::mutex> g(mu_);
  // Same linear extension of happens-before as the pull path: per page,
  // by the vc weight of the newest covered interval (concurrent
  // intervals write disjoint words, so ties are safe).
  for (PushRec& rec : recs) {
    const auto& known = intervals_[rec.creator];
    rec.order_weight = (rec.hi > known.base && rec.hi <= known.hi())
                           ? known.at(rec.hi)->vc_weight
                           : 0;
  }
  std::sort(recs.begin(), recs.end(),
            [](const PushRec& a, const PushRec& b) {
              if (a.page != b.page) return a.page < b.page;
              if (a.order_weight != b.order_weight)
                return a.order_weight < b.order_weight;
              return a.creator < b.creator;
            });
  std::size_t i = 0;
  while (i < recs.size()) {
    const PageIndex page = recs[i].page;
    std::size_t j = i;
    while (j < recs.size() && recs[j].page == page) ++j;
    // Fully-covered-or-discard: applying a SUBSET of a page's pending
    // notices could order wrongly against a later pull (the pull would
    // re-apply an older creator's diff over newer pushed words). Only
    // when this round's pushes cover the page's entire pending set is
    // applying them equivalent to the pull path; anything less is
    // discarded wholesale and the fault path pulls as if nothing had
    // been pushed.
    const PageExt* pxv = ext_if(page);
    bool ok = pxv != nullptr && !pxv->pending.empty();
    for (std::size_t k = i; ok && k < j; ++k)
      if (recs[k].hi > intervals_[recs[k].creator].hi())
        ok = false;  // push outran our write-notice knowledge
    if (ok) {
      for (const IntervalMeta* pend : pxv->pending) {
        bool covered = false;
        for (std::size_t k = i; k < j && !covered; ++k)
          covered = recs[k].creator == pend->id.creator &&
                    pend->id.seq > recs[k].lo && pend->id.seq <= recs[k].hi;
        if (!covered) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      // Partial coverage (an unpredicted writer shares the page, or no
      // pending at all). Don't throw the bytes away: stash each blob
      // per (page, creator) and let the fault path consume it in place
      // of that creator's network round trip, in the same vc-weight
      // order a pull would have used. A newer push for the same key
      // retires an unconsumed older one as waste.
      for (std::size_t k = i; k < j; ++k) {
        PushStash& slot = push_stash_[stash_key(page, recs[k].creator)];
        if (slot.blob != nullptr)
          stats_.push_waste.fetch_add(1, std::memory_order_relaxed);
        slot.lo = recs[k].lo;
        slot.hi = recs[k].hi;
        slot.blob = std::make_shared<std::vector<std::byte>>(
            recs[k].blob.begin(), recs[k].blob.end());
      }
      i = j;
      continue;
    }
    PageMeta& pm = pages_[page];
    PageExt& px = ext(page);
    const bool dirty = pm.dirty;
    mprotect_page(page, PROT_READ | PROT_WRITE);
    for (std::size_t k = i; k < j; ++k) {
      ep_.clock().add_model(
          ep_.clock().model().diff_apply_cost(recs[k].blob.size()));
      apply_diff(recs[k].blob, page_ptr(page));
      // Twin stays in sync, exactly as in the pull path: our next flush
      // must not re-export other writers' words at stale values.
      if (px.twin != nullptr) apply_diff(recs[k].blob, px.twin.get());
    }
    stats_.push_hits.fetch_add(j - i, std::memory_order_relaxed);
    px.pending.clear();
    if (dirty) {
      pm.state = PageState::kReadWrite;
    } else {
      mprotect_page(page, PROT_READ);
      pm.state = PageState::kReadOnly;
    }
    i = j;
  }
  for (mpl::Frame& f : frames) ep_.recycle_buffer(std::move(f.payload));
}

// ---------------------------------------------------------------------
// Improved compiler interface (§2.3)
// ---------------------------------------------------------------------

void Runtime::fork_broadcast(std::uint32_t func_id,
                             std::span<const std::byte> args) {
  COMMON_CHECK_MSG(rank_ == 0, "fork_broadcast is master-only");
  simx::ProtocolSection protocol(ep_.clock());
  close_interval();
  for (int w = 1; w < nprocs_; ++w) {
    ByteWriter msg;
    msg.put<std::uint32_t>(fork_seq_);
    msg.put<std::uint32_t>(func_id);
    msg.put<std::uint32_t>(static_cast<std::uint32_t>(args.size()));
    msg.put_bytes(args);
    {
      std::lock_guard<std::mutex> g(mu_);
      msg.put_vc(vc_, nprocs_);
      serialize_intervals_lacking(msg,
                                  worker_vc_[static_cast<std::size_t>(w)]);
      worker_vc_[static_cast<std::size_t>(w)].merge(vc_);
    }
    ep_.begin_burst(w);
    ep_.send_app(w, mpl::FrameKind::kForkWork, 0, 0, msg.bytes());
  }
  ep_.flush_burst();
  ++fork_seq_;
  {
    // Outgoing edge to every worker: pre-fork reads are ordered before
    // whatever the workers now do.
    std::lock_guard<std::mutex> g(mu_);
    ++race_epoch_;
  }
}

Runtime::ForkWork Runtime::wait_fork() {
  COMMON_CHECK_MSG(rank_ != 0, "wait_fork is worker-only");
  simx::ProtocolSection protocol(ep_.clock());
  ep_.set_wait_site("fork wait (master 0)");
  mpl::Frame f = ep_.wait_app_kind_from(mpl::FrameKind::kForkWork, 0);
  ByteReader r(f.payload);
  const auto seq = r.get<std::uint32_t>();
  COMMON_CHECK_MSG(seq == fork_seq_, "fork sequence mismatch");
  ++fork_seq_;
  ForkWork work;
  work.func_id = r.get<std::uint32_t>();
  const auto len = r.get<std::uint32_t>();
  auto bytes = r.get_bytes(len);
  work.args.assign(bytes.begin(), bytes.end());
  VectorClock master_vc = r.get_vc(nprocs_);
  {
    std::lock_guard<std::mutex> g(mu_);
    read_intervals(r);
    vc_.merge(master_vc);
    ++race_epoch_;
  }
  ep_.recycle_buffer(std::move(f.payload));
  race_maybe_throw();
  return work;
}

void Runtime::join_worker() {
  COMMON_CHECK_MSG(rank_ != 0, "join_worker is worker-only");
  simx::ProtocolSection protocol(ep_.clock());
  close_interval();
  ByteWriter w;
  w.put<std::uint32_t>(fork_seq_);
  {
    std::lock_guard<std::mutex> g(mu_);
    w.put_vc(vc_, nprocs_);
    serialize_own_intervals_after(w, sent_to_master_seq_);
    sent_to_master_seq_ = vc_.get(static_cast<ProcId>(rank_));
    // Outgoing sync edge: reads before this join are ordered before
    // anything the master (and, through the next fork, anyone) does
    // after collecting it — prune them rather than false-report.
    ++race_epoch_;
  }
  ep_.send_app(0, mpl::FrameKind::kJoinDone, 0, 0, w.bytes());
}

void Runtime::join_master() {
  COMMON_CHECK_MSG(rank_ == 0, "join_master is master-only");
  simx::ProtocolSection protocol(ep_.clock());
  close_interval();
  ep_.set_wait_site("join fan-in");
  for (int i = 1; i < nprocs_; ++i) {
    mpl::Frame f = ep_.wait_app_kind(mpl::FrameKind::kJoinDone);
    ByteReader r(f.payload);
    const auto seq = r.get<std::uint32_t>();
    COMMON_CHECK_MSG(seq == fork_seq_, "join sequence mismatch");
    VectorClock their = r.get_vc(nprocs_);
    {
      std::lock_guard<std::mutex> g(mu_);
      read_intervals(r);
      worker_vc_[static_cast<std::size_t>(f.src)] = their;
      // No vc_.merge(their): like the barrier fan-in, a worker's vc can
      // claim lock-learned intervals this master does not yet possess;
      // vc_ advances only through integrate_interval, and every claimed
      // interval's creator reports it itself before the loop ends — so
      // the final clock is identical, without the transient overclaim
      // window (during which the service thread could serialize a lock
      // grant bounded by vc_ and index intervals never received).
    }
    ep_.recycle_buffer(std::move(f.payload));
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    ++race_epoch_;
  }
  race_maybe_throw();
}

// ---------------------------------------------------------------------
// Extension interface (§5 optimizations; Dwarkadas et al. [7])
// ---------------------------------------------------------------------

void Runtime::validate(const void* base, std::size_t len) {
  const Range r{base, len};
  validate_ranges({&r, 1});
}

void Runtime::validate_ranges(std::span<const Range> ranges) {
  simx::ProtocolSection protocol(ep_.clock());
  stats_.validates.fetch_add(1, std::memory_order_relaxed);
  std::vector<PageIndex> want;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const Range& r : ranges) {
      if (r.len == 0) continue;
      const auto off = static_cast<std::size_t>(
          static_cast<const std::byte*>(r.base) -
          static_cast<std::byte*>(heap_));
      COMMON_CHECK(off < heap_len_ && off + r.len <= heap_len_);
      const PageIndex first = static_cast<PageIndex>(off / common::kPageSize);
      const PageIndex last =
          static_cast<PageIndex>((off + r.len - 1) / common::kPageSize);
      for (PageIndex p = first; p <= last; ++p)
        if (const PageExt* px = ext_if(p);
            px != nullptr && !px->pending.empty())
          want.push_back(p);
    }
    // Ranges may share pages; fetch each once.
    std::sort(want.begin(), want.end());
    want.erase(std::unique(want.begin(), want.end()), want.end());
  }
  if (!want.empty()) fetch_and_apply(want);
}

void Runtime::push(int dst, const void* base, std::size_t len) {
  simx::ProtocolSection protocol(ep_.clock());
  stats_.pushes.fetch_add(1, std::memory_order_relaxed);
  const auto off = static_cast<std::size_t>(static_cast<const std::byte*>(base) -
                                            static_cast<std::byte*>(heap_));
  COMMON_CHECK_MSG((off & common::kPageMask) == 0 &&
                       (len & common::kPageMask) == 0,
                   "push requires page-aligned region");
  COMMON_CHECK(off + len <= heap_len_);
  close_interval();

  const PageIndex first = static_cast<PageIndex>(off / common::kPageSize);
  const auto npages = static_cast<PageIndex>(len / common::kPageSize);

  ByteWriter w;
  w.put<std::uint64_t>(off);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(len));
  {
    std::lock_guard<std::mutex> g(mu_);
    for (PageIndex p = first; p < first + npages; ++p) {
      const PageExt* px = ext_if(p);
      COMMON_CHECK_MSG(px == nullptr || px->pending.empty(),
                       "push source page " << p << " is stale");
    }
    w.put_bytes({static_cast<const std::byte*>(base), len});
    // Covered write notices: every known interval touching these pages.
    std::vector<std::tuple<PageIndex, ProcId, Seq>> covered;
    for (PageIndex p = first; p < first + npages; ++p) {
      const PageExt* px2 = ext_if(p);
      if (px2 == nullptr) continue;
      for (const IntervalMeta* m : px2->notices)
        covered.emplace_back(p, m->id.creator, m->id.seq);
    }
    w.put<std::uint32_t>(static_cast<std::uint32_t>(covered.size()));
    for (const auto& [p, c, s] : covered) {
      w.put<PageIndex>(p);
      w.put<ProcId>(c);
      w.put<Seq>(s);
    }
    // Outgoing sync edge to `dst`: prune pre-push read records rather
    // than false-report them against writes ordered behind the push.
    ++race_epoch_;
  }
  ep_.send_app(dst, mpl::FrameKind::kPushData, 0, 0, w.bytes());
}

namespace {

struct CoveredTriple {
  PageIndex page;
  ProcId creator;
  Seq seq;
};

}  // namespace

void Runtime::accept_push(int src) {
  simx::ProtocolSection protocol(ep_.clock());
  char site[64];
  std::snprintf(site, sizeof(site), "push accept from rank %d", src);
  ep_.set_wait_site(site);
  mpl::Frame f = ep_.wait_app_kind_from(mpl::FrameKind::kPushData, src);
  ep_.clock().add_model(ep_.clock().model().diff_apply_cost(f.payload.size()));
  ByteReader r(f.payload);
  const auto off = r.get<std::uint64_t>();
  const auto len = r.get<std::uint32_t>();
  auto content = r.get_bytes(len);
  const auto ncov = r.get<std::uint32_t>();
  std::vector<CoveredTriple> covered;
  covered.reserve(ncov);
  for (std::uint32_t i = 0; i < ncov; ++i) {
    CoveredTriple t{};
    t.page = r.get<PageIndex>();
    t.creator = r.get<ProcId>();
    t.seq = r.get<Seq>();
    covered.push_back(t);
  }

  const PageIndex first = static_cast<PageIndex>(off / common::kPageSize);
  const auto npages = static_cast<PageIndex>(len / common::kPageSize);

  std::lock_guard<std::mutex> g(mu_);
  for (PageIndex p = first; p < first + npages; ++p) {
    PageMeta& pm = pages_[p];
    const PageExt* px = ext_if(p);
    COMMON_CHECK_MSG(!pm.dirty && (px == nullptr || px->unflushed.empty()),
                     "push target page " << p << " is locally written");
    mprotect_page(p, PROT_READ | PROT_WRITE);
  }
  std::memcpy(static_cast<std::byte*>(heap_) + off, content.data(), len);

  for (const CoveredTriple& t : covered) {
    if (t.creator == rank_) continue;
    PageExt& px = ext(t.page);
    // If the notice is already pending, the push satisfied it; otherwise
    // remember it so the future notice does not invalidate the page.
    auto it = std::find_if(px.pending.begin(), px.pending.end(),
                           [&t](const IntervalMeta* m) {
                             return m->id.creator == t.creator &&
                                    m->id.seq == t.seq;
                           });
    if (it != px.pending.end()) {
      px.pending.erase(it);
    } else if (t.seq > intervals_[t.creator].hi()) {
      preapplied_.insert(pack_preapplied(t.creator, t.seq, t.page));
    }
  }
  for (PageIndex p = first; p < first + npages; ++p) {
    PageMeta& pm = pages_[p];
    const PageExt* px = ext_if(p);
    if (px == nullptr || px->pending.empty()) {
      mprotect_page(p, PROT_READ);
      pm.state = PageState::kReadOnly;
    } else {
      mprotect_page(p, PROT_NONE);
      pm.state = PageState::kInvalid;
    }
  }
}

void Runtime::bcast(int root, void* base, std::size_t len) {
  if (nprocs_ == 1) return;
  if (rank_ == root) {
    for (int p = 0; p < nprocs_; ++p)
      if (p != rank_) push(p, base, len);
  } else {
    accept_push(root);
  }
}

}  // namespace tmk
