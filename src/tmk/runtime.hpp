// TreadMarks runtime (§2.2, §2.3, §8).
//
// A user-level page-based software DSM:
//   - the shared heap is one anonymous private mapping inherited from the
//     harness parent, so it sits at the same address in every process and
//     starts as identical zero pages everywhere;
//   - access detection uses mprotect + SIGSEGV, at page granularity;
//   - consistency is lazy invalidate release consistency with a
//     multiple-writer protocol: writers twin pages on the first write
//     fault, create run-length diffs when their interval closes, and
//     faulting readers pull exactly the diffs they are missing;
//   - synchronization: centralized-manager barriers (2(n-1) messages) and
//     statically-managed locks whose releases are silent;
//   - the improved compiler interface (§2.3): one-to-all `fork` carrying
//     the loop-control block and all-to-one `join`, 2(n-1) messages per
//     parallel loop instead of 8(n-1);
//   - the extension interface used for the §5 hand optimizations
//     (Dwarkadas et al. [7]): aggregated validate (pull), push, and
//     broadcast of shared data.
//
// Threading model: the application runs on the rank's main thread; one
// service thread per Runtime answers diff fetches and lock traffic.
// The SIGSEGV handler runs on the faulting rank's main thread and
// performs its own RPCs; the process-wide handler routes each fault to
// the Runtime owning the faulted address (owner_of), so under the
// runner's thread backend many rank runtimes — each with its own heap
// range — coexist in one process. Internal state is guarded by mu_
// with the strict rule that no thread blocks on the network while
// holding it.
#pragma once

#include <pthread.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.hpp"
#include "mpl/fabric.hpp"
#include "runner/runner.hpp"
#include "tmk/config.hpp"  // UpdateMode / RaceCheckMode / Config
#include "tmk/diff.hpp"
#include "tmk/types.hpp"

namespace tmk {

/// Per-page protocol state.
enum class PageState : std::uint8_t {
  kReadOnly,   // mapped PROT_READ; contents valid
  kReadWrite,  // mapped PROT_READ|PROT_WRITE; twinned, being written
  kInvalid,    // mapped PROT_NONE; write notices pending
};

/// Protocol statistics. `diffs_created` / `diff_bytes_created` are
/// written by the *service* thread (lazy flush in serve_diff_request)
/// while the main thread may concurrently read the struct (tests and
/// apps sample stats mid-run) or bump its own fields — so every counter
/// is a relaxed atomic. Plain reads via the implicit conversion are
/// fine; there is no cross-field consistency guarantee.
struct TmkStats {
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> write_faults{0};
  std::atomic<std::uint64_t> twins_created{0};
  std::atomic<std::uint64_t> diffs_created{0};
  std::atomic<std::uint64_t> diff_bytes_created{0};
  std::atomic<std::uint64_t> diffs_fetched{0};
  std::atomic<std::uint64_t> diff_requests{0};
  std::atomic<std::uint64_t> diff_replies{0};
  // Hybrid update protocol: page-diffs pushed at barriers, pushed
  // page-diffs the receiver applied (each one is a kDiffRequest/
  // kDiffReply round trip that never happened), pushed page-diffs the
  // receiver discarded (mispredicted or insufficient coverage), and
  // multi-flush diff chains flattened into one coalesced diff.
  std::atomic<std::uint64_t> diff_push{0};
  std::atomic<std::uint64_t> push_hits{0};
  std::atomic<std::uint64_t> push_waste{0};
  std::atomic<std::uint64_t> diffs_flattened{0};
  std::atomic<std::uint64_t> intervals_created{0};
  std::atomic<std::uint64_t> barriers{0};
  std::atomic<std::uint64_t> lock_acquires{0};
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> validates{0};
};

class Runtime {
 public:
  struct Options {
    /// Number of lock identifiers available to the application.
    int num_locks = 64;
    /// If nonzero, a deterministic cap on shared-heap allocation; the
    /// remainder of the inherited mapping is left untouched.
    std::size_t heap_limit_bytes = 0;
    /// Barrier fan-in arity. 0 (the default) keeps the paper's
    /// centralized manager — every rank a direct child of rank 0, the
    /// flat 2(n-1) shape of §2.2 — unless TMK_BARRIER_ARITY overrides
    /// it. Any k >= 1 arranges the ranks as a k-ary heap-indexed tree
    /// rooted at 0: still exactly 2(n-1) barrier messages (one arrive
    /// and one depart per tree edge), but the root waits on at most k
    /// children instead of n-1, so host-side fan-in latency is
    /// O(k log_k n) at 128 ranks. Values >= nprocs-1 degenerate to the
    /// flat shape, byte-identically.
    int barrier_arity = 0;
    /// Hybrid update protocol mode; resolved from TMK_UPDATE_MODE (off
    /// when unset) unless forced here.
    std::optional<UpdateMode> update_mode;
    /// Adaptive-predictor credit budget: pushes granted per observed
    /// diff request before the learned consumer bit expires; resolved
    /// from TMK_PUSH_CREDITS (default 16) unless forced here.
    std::optional<int> push_credits;
    /// Online race detection mode; resolved from the run's Config
    /// snapshot (TMK_RACECHECK, off when unset) unless forced here.
    /// Must be identical on every rank: the checking modes extend the
    /// write-notice wire format with per-page write masks.
    std::optional<RaceCheckMode> racecheck;
  };

  /// One detected race: an incoming write notice that is concurrent
  /// (vector-clock unordered) with a local access to an overlapping
  /// block range of the same page. `local_write` distinguishes
  /// write/write from remote-write/local-read. Also emitted as one
  /// machine-greppable `TMK_RACE_REPORT {json}` stderr line.
  struct RaceReport {
    PageIndex page = 0;
    RaceMask overlap_mask;  // 4-byte diff words both sides touched
    bool local_write = false;
    ProcId remote = 0;  // the incoming interval's creator
    Seq remote_seq = 0;
    Seq local_seq = 0;  // local closed interval, or the open interval's
                        // would-be seq for open/read records
    VectorClock remote_vc;
    VectorClock local_vc;
    std::uint32_t barrier_seq = 0;  // workload phase at detection
  };

  /// Attaches the DSM to the rank's heap mapping and starts the
  /// service thread. Exactly one Runtime may exist per rank: one per
  /// process under the fork backend, one per rank thread under the
  /// thread backend (each registered in a process-wide fault-dispatch
  /// table keyed by heap address range).
  Runtime(runner::ChildContext& ctx, Options options);
  explicit Runtime(runner::ChildContext& ctx) : Runtime(ctx, Options()) {}
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] mpl::Endpoint& endpoint() noexcept { return ep_; }
  [[nodiscard]] const TmkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] UpdateMode update_mode() const noexcept {
    return update_mode_;
  }
  [[nodiscard]] RaceCheckMode racecheck() const noexcept { return racecheck_; }

  /// Every race detected so far, in detection order (tests; the stress
  /// workload asserts the exact set against its seed-derived plan).
  /// Capped at TMK_RACECHECK_MAX_REPORTS records: past the cap the
  /// stderr line and counters still fire but nothing more is stored.
  [[nodiscard]] std::vector<RaceReport> race_reports() const {
    std::lock_guard<std::mutex> g(mu_);
    return race_reports_;
  }

  /// Point-in-time protocol memory accounting (tests and the soak
  /// assertion; protocol_rss_bytes also feeds the run counter of the
  /// same name through shutdown). Computed under mu_/diff_mu_, so it is
  /// a consistent snapshot, not a sampled estimate.
  struct MemStats {
    std::uint64_t protocol_rss_bytes = 0;  // bytes held by protocol state
    std::uint64_t records_created = 0;     // interval records ever logged
    std::uint64_t records_reclaimed = 0;   // records freed by epoch GC
    std::uint64_t records_live = 0;        // records currently held
    std::uint64_t twin_pool_pages = 0;     // pooled (idle) twin buffers
    std::uint64_t twins_live = 0;          // twins attached to pages
    std::uint64_t page_ext_live = 0;       // non-null PageExt slots
    std::uint64_t race_reports_dropped = 0;
  };
  [[nodiscard]] MemStats mem_stats() const;

  /// Snapshot of the current vector clock (tests and diagnostics; the
  /// across-mode equivalence suite asserts final clocks are identical
  /// whether diffs were pushed or pulled).
  [[nodiscard]] VectorClock clock_snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return vc_;
  }

  // ---- allocation --------------------------------------------------
  // All processes must perform the identical allocation sequence (the
  // Fortran-common-block discipline of §2.2); allocations are served from
  // a deterministic bump pointer over the inherited mapping.

  /// Allocates `bytes` of shared memory. When `page_align` is set the
  /// block is padded to page boundaries — what SPF does for every shared
  /// array to reduce false sharing (§2.1).
  void* alloc_bytes(std::size_t bytes, bool page_align = true);

  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count, bool page_align = true) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T), page_align));
  }

  // ---- synchronization ----------------------------------------------

  /// Global barrier with a centralized manager at process 0 (§2.2).
  void barrier();

  void lock_acquire(int lock_id);
  void lock_release(int lock_id);

  // ---- improved compiler interface (§2.3) ----------------------------

  /// Master: closes the current interval and broadcasts the loop-control
  /// block plus consistency information to all workers (one-to-all).
  void fork_broadcast(std::uint32_t func_id, std::span<const std::byte> args);

  struct ForkWork {
    std::uint32_t func_id = 0;
    std::vector<std::byte> args;
  };

  /// Worker: blocks for the next fork message and integrates its
  /// consistency information.
  [[nodiscard]] ForkWork wait_fork();

  /// Worker: closes the interval and reports to the master (all-to-one).
  void join_worker();

  /// Master: collects all workers' join messages.
  void join_master();

  // ---- extension interface (§5 hand optimizations, §8) ---------------

  /// Aggregated pull: fetches every missing diff for [base, base+len) in
  /// one batched request per remote writer, instead of page-at-a-time
  /// faulting. ("Data aggregation" of §5.)
  void validate(const void* base, std::size_t len);

  /// Aggregated pull over several disjoint ranges (e.g. the strided slab
  /// a transposed FFT pass will read): still one batched request per
  /// remote writer across all ranges.
  struct Range {
    const void* base;
    std::size_t len;
  };
  void validate_ranges(std::span<const Range> ranges);

  /// Pushes the current contents of [base, base+len) to `dst`, together
  /// with the covered write-notice identities, so the receiver will not
  /// re-fetch them. The range must be page-aligned and closed under this
  /// process's current writes (the call closes the interval first).
  /// The receiver must call accept_push(src).
  void push(int dst, const void* base, std::size_t len);

  /// Receives one pushed region from `src` and applies it.
  void accept_push(int src);

  /// Hybrid update protocol hint: declares that `consumer` reads
  /// [base, base+len) after barriers, so this rank's barrier-time diffs
  /// of those pages are pushed to it instead of being pulled through a
  /// SIGSEGV fault plus a kDiffRequest/kDiffReply round trip. Derived
  /// from the src/dist decomposition (the compiler's static knowledge
  /// of the halo exchange, §2.1/§2.3); a no-op unless the resolved mode
  /// uses hints (kHint or kHybrid), so TMK_UPDATE_MODE=off runs are
  /// byte-identical with or without hints in the application.
  void hint_consumers(const void* base, std::size_t len, int consumer);

  /// Collective broadcast of [base, base+len) from `root`; merges
  /// synchronization and data (§5.3's MGS optimization). All processes
  /// must call it.
  void bcast(int root, void* base, std::size_t len);

  // ---- harness -------------------------------------------------------

  /// Final rendezvous: no shared-memory access is allowed afterwards.
  /// Called automatically by the destructor if not called explicitly.
  void shutdown();

  /// The Runtime whose application thread is the calling thread (set at
  /// construction, cleared at destruction), or null. Under the thread
  /// backend every rank thread resolves to its own context.
  [[nodiscard]] static Runtime* instance() noexcept;

  /// The live Runtime whose shared heap contains `addr`, or null — the
  /// process-wide SIGSEGV handler's fault-dispatch lookup. Lock-free
  /// and async-signal-safe: it scans a fixed table of atomic slots.
  [[nodiscard]] static Runtime* owner_of(const void* addr) noexcept;

  /// SIGSEGV entry point (the owning rank's application thread only).
  /// Returns false if the address is outside the shared heap (the
  /// handler then re-raises).
  bool handle_fault(void* addr, bool is_write);

  /// Total bytes of shared heap managed.
  [[nodiscard]] std::size_t heap_bytes() const noexcept { return heap_len_; }
  [[nodiscard]] void* heap_base() const noexcept { return heap_; }

 private:
  // Per-page state is split in two: a 2-byte record for every page (the
  // array is sized num_pages_ at startup — keeping it tiny makes Runtime
  // construction O(pages) over bytes, not cache lines), plus extended
  // protocol state allocated lazily the first time a page participates
  // in the protocol. Most pages of a large heap never do.
  struct PageMeta {
    PageState state = PageState::kReadOnly;
    bool dirty = false;  // written during the current interval
  };
  static_assert(sizeof(PageMeta) == 2);

  struct PageExt {
    // The twin persists across interval closes (lazy diffing): it is the
    // page image as of the last flush, covering every interval in
    // `unflushed` plus any open-interval writes.
    std::unique_ptr<std::byte[]> twin;
    std::vector<const IntervalMeta*> pending;
    // Every interval known to touch this page (applied or pending);
    // lets push() enumerate covered write notices without a full scan.
    std::vector<const IntervalMeta*> notices;
    // My closed intervals whose diffs have not been created yet; they all
    // share the flush-time diff.
    std::vector<Seq> unflushed;
    // ---- hybrid update protocol (mode != off only) ----
    // Predicted consumers: static decomposition hints and the learned
    // set of ranks whose diff requests touched this page. The adaptive
    // bits expire when push_budget runs out; a fresh request re-arms it.
    ProcMask hint_consumers;
    ProcMask adaptive_consumers;
    std::uint8_t push_budget = 0;
    // Own-interval push watermarks: the highest own seq that dirtied
    // this page, and the highest own seq already offered to consumers.
    Seq own_last_seq = 0;
    Seq pushed_seq = 0;
    // ---- race detection (racecheck != off only) ----
    // The twin persists across interval closes (lazy diffing), so a
    // twin-vs-page scan at close time yields the CUMULATIVE write mask
    // of every unflushed interval. This watermark is that cumulative
    // mask as of the previous close; the delta is the closing
    // interval's own mask. Reset whenever the twin is re-baselined
    // (created, flushed-and-recopied, or recycled).
    RaceMask race_cum_mask;
    // Read records of the current sync epoch (precise mode only —
    // summary tracks writes exclusively): the open interval's would-be
    // seq, the epoch it was taken in, and the faulting 4-byte words
    // read. Records from earlier epochs are barrier-ordered before
    // any interval that can still arrive, so they are pruned on record.
    struct ReadRec {
      Seq seq = 0;
      std::uint32_t epoch = 0;
      RaceMask mask;
    };
    std::vector<ReadRec> race_reads;
  };

  struct LockState {
    // Main-thread view.
    bool held = false;
    // True when this process was the lock's last owner and has released
    // it (a forward can be granted immediately by the service thread).
    bool released_here = false;
    // Pending successor stored by the service thread while we hold it.
    std::optional<std::pair<ProcId, VectorClock>> successor;
  };

  // -- helpers, main thread --
  void close_interval();
  void integrate_interval(ProcId creator, Seq seq, const VectorClock& vc,
                          std::vector<PageIndex> pages,
                          std::vector<RaceMask> write_masks);
  void serialize_intervals_lacking(ByteWriter& w,
                                   const VectorClock& their_vc) const;
  void put_interval_record(ByteWriter& w, const IntervalMeta& m) const;
  void serialize_own_intervals_after(ByteWriter& w, Seq after_seq) const;
  std::uint32_t read_intervals(ByteReader& r, bool note_contrib = false);
  void serialize_barrier_contrib(ByteWriter& w) const;

  // -- hybrid update protocol (barrier-time diff push; mode != off) --
  // Plan which pages go to which predicted consumers (caller holds mu_;
  // called right after close_interval at barrier entry).
  void build_push_plan();
  // Sparse per-destination frame counts appended to barrier arrives
  // (subtree totals, aggregated up the tree) and departs (global
  // totals, distributed down) — how the receiver knows exactly how
  // many kDiffPush frames to expect, deterministically.
  // subtree_root < 0 appends every nonzero dst (arrive, upward);
  // otherwise only dsts inside that barrier subtree (depart, downward).
  // last_sent/last_rx are that tree link's table cache: an unchanged
  // table ships as a 1-byte sentinel.
  void append_push_counts(ByteWriter& w, int subtree_root,
                          std::vector<std::uint16_t>& last_sent) const;
  void read_push_counts(ByteReader& r, bool accumulate,
                        std::vector<std::uint16_t>& last_rx);
  // Flattens each planned page's diff chain into one blob and
  // assembles one kDiffPush payload per destination (takes mu_).
  void prepare_push_frames();
  // Waits for exactly `expected` kDiffPush frames, then applies every
  // fully-covered page (sorted by vc weight, to page and twin alike)
  // and discards the rest as push_waste.
  void collect_pushes(std::uint32_t expected);

  // -- barrier tree topology (heap-indexed k-ary tree rooted at 0) --
  [[nodiscard]] int barrier_parent() const noexcept {
    return (rank_ - 1) / barrier_arity_;
  }
  [[nodiscard]] int barrier_first_child() const noexcept {
    return barrier_arity_ * rank_ + 1;
  }
  [[nodiscard]] bool in_barrier_subtree(int node, int root) const noexcept {
    while (node > root) node = (node - 1) / barrier_arity_;
    return node == root;
  }
  [[nodiscard]] int barrier_num_children() const noexcept {
    const int first = barrier_first_child();
    if (first >= nprocs_) return 0;
    return std::min(barrier_arity_, nprocs_ - first);
  }
  // `learn=false` marks the requests as epoch-GC validation traffic
  // (kDiffRequest tag 1): the server answers identically but does NOT
  // feed its adaptive push predictor — a forced fetch proves nothing
  // about what the requester actually reads, and learning from it would
  // turn every GC round into a sustained mispredicted-push storm.
  void fetch_and_apply(std::span<const PageIndex> pages, bool learn = true);
  void mprotect_page(PageIndex page, int prot) const;
  [[nodiscard]] std::byte* page_ptr(PageIndex page) const noexcept {
    return static_cast<std::byte*>(heap_) + page * common::kPageSize;
  }
  [[nodiscard]] PageIndex page_of(const void* p) const noexcept {
    return static_cast<PageIndex>(
        (static_cast<const std::byte*>(p) - static_cast<std::byte*>(heap_)) /
        common::kPageSize);
  }
  [[nodiscard]] int lock_manager(int lock_id) const noexcept {
    return lock_id % nprocs_;
  }

  // -- crash forensics --
  /// Endpoint crash-report hook (Endpoint::set_forensics): dumps the
  /// vector clock, barrier/fork phase, and held locks as quote-free
  /// text. Best-effort — uses try_lock on mu_ since the service thread
  /// may hold it while the main thread is writing the report.
  static void write_forensics(void* ctx, std::ostream& os);

  // -- service thread --
  void service_loop();
  void serve_diff_request(const mpl::Frame& f);
  void serve_lock_request(const mpl::Frame& f);
  void serve_lock_forward(const mpl::Frame& f);
  // Composes a grant for `requester` given its vector clock; used by both
  // the service thread and the main thread (at release).
  void send_lock_grant(int lock_id, ProcId requester,
                       const VectorClock& req_vc, bool from_service,
                       std::uint64_t base_vt);

  int rank_;
  int nprocs_;
  mpl::Endpoint& ep_;
  void* heap_;
  std::size_t heap_len_;
  std::size_t num_pages_;
  std::size_t alloc_off_ = 0;
  Options options_;

  // Guards: vc_, intervals_, pages_ metadata, preapplied_, locks_,
  // diffs_ has its own mutex (service reads it while main computes).
  mutable std::mutex mu_;
  VectorClock vc_;
  // Per-creator interval log: seqs are contiguous by construction, and
  // epoch GC pops reclaimed prefixes off the front, so record (p, s)
  // lives at live[s - 1 - base]. `base` is the highest reclaimed seq
  // (0 = nothing reclaimed); every indexing site guards s > base.
  struct IntervalLog {
    std::deque<std::unique_ptr<IntervalMeta>> live;
    Seq base = 0;
    /// Highest seq in the log (== base when empty).
    [[nodiscard]] Seq hi() const noexcept {
      return base + static_cast<Seq>(live.size());
    }
    /// Record (creator, s); caller guarantees base < s <= hi().
    [[nodiscard]] const IntervalMeta* at(Seq s) const noexcept {
      return live[static_cast<std::size_t>(s - 1 - base)].get();
    }
  };
  std::array<IntervalLog, mpl::kMaxProcs> intervals_;
  std::vector<PageMeta> pages_;
  // Lazily-allocated extended page state; null until a page first
  // participates in the protocol. Guarded by mu_ like pages_.
  std::vector<std::unique_ptr<PageExt>> page_ext_;
  std::vector<PageIndex> dirty_pages_;  // pages twinned this interval
  // (creator, seq, page) triples already applied via push/bcast, packed
  // into 64-bit keys (pack_preapplied, types.hpp: 7-bit creator, 30-bit
  // seq, 27-bit page): a flat hash set instead of a node-per-entry
  // std::set on the fault path.
  common::FlatSet64 preapplied_;
  // Retired twin buffers for reuse: a write fault after a flush grabs a
  // pooled 4 KiB buffer instead of allocating. Guarded by mu_.
  std::vector<std::unique_ptr<std::byte[]>> twin_pool_;
  std::vector<LockState> locks_;

  [[nodiscard]] std::unique_ptr<std::byte[]> take_twin_buffer();
  void recycle_twin(std::unique_ptr<std::byte[]> twin);

  // Extended state accessors (caller holds mu_): ext() creates on first
  // use; ext_if() is the read-only peek that never allocates.
  [[nodiscard]] PageExt& ext(PageIndex page) {
    auto& e = page_ext_[page];
    if (e == nullptr) e = std::make_unique<PageExt>();
    return *e;
  }
  [[nodiscard]] const PageExt* ext_if(PageIndex page) const noexcept {
    return page_ext_[page].get();
  }

  mutable std::mutex diff_mu_;
  // One flushed diff can cover several of a page's intervals (everything
  // since the previous flush); covered_up_to tells the fetcher which
  // write notices the blob satisfies beyond the requested one.
  struct DiffRec {
    std::shared_ptr<std::vector<std::byte>> blob;
    Seq covered_up_to = 0;
  };
  // key: (page << 32) | seq — diffs created by this process.
  std::unordered_map<std::uint64_t, DiffRec> diffs_;

  // Flushes a page's lazy diff (creates it from twin vs current content
  // and registers it for every unflushed interval). Caller holds mu_;
  // takes diff_mu_ internally. Returns modelled cost.
  std::uint64_t flush_page_diff(PageIndex page);

  // Reusable worst-case-sized diff encode buffer (service thread, under
  // mu_): the stored blob is then one exact-size allocation.
  std::vector<std::byte> diff_scratch_;
  // Reply writer reused across diff-request handlers (service thread).
  tmk::ByteWriter svc_reply_writer_;

  // fetch_and_apply scratch, reused across faults so the steady-state
  // fault path performs no per-call allocation (main thread only).
  struct FetchNeed {
    PageIndex page;
    Seq seq;
  };
  struct FetchedDiff {
    PageIndex page;
    const IntervalMeta* interval;
    // View into a reply frame's payload (kept alive in fetch_replies_
    // until applied): fetched diffs are staged without copying.
    std::span<const std::byte> blob;
    bool same_as_prev;  // shares the previous entry's flush blob
  };
  struct FetchOutstanding {
    ProcId creator;
    std::uint32_t req_id;
  };
  // Sized nprocs_ at construction (not kMaxProcs): both are touched on
  // every fault, and an 8-rank run has no business clearing 128 slots.
  std::vector<std::vector<FetchNeed>> fetch_needs_;
  std::vector<FetchOutstanding> fetch_outstanding_;
  std::vector<FetchedDiff> fetch_staged_;
  std::vector<mpl::Frame> fetch_replies_;
  tmk::ByteWriter fetch_writer_;

  // -- race detection (racecheck != off only) --
  // All called with mu_ held on the main thread — detection only ever
  // reads main-thread access records, which is what suppresses the
  // deliberate lazy-diffing service-thread race by construction.
  //
  // Checks one incoming write notice against local access records:
  // closed own intervals with seq > vc_in[rank_] are vector-clock
  // concurrent (anything older was delivered to the creator by an
  // earlier barrier/grant and is ordered); the open interval's
  // writes-so-far and current-epoch reads are concurrent by
  // construction (records appended after this integration are ordered
  // behind the acquire that delivered it, and are never re-checked).
  void race_check_incoming(const IntervalMeta& m);
  // Appends a read record for the faulting page (kInvalid read fault;
  // post-fault reads do not trap — a documented under-approximation).
  void race_record_read(PageIndex page, std::size_t offset_in_page);
  // Emits the TMK_RACE_REPORT stderr line and stores the report.
  void race_emit(RaceReport r);
  // Throws (outside mu_) if racecheck_throw is set and a report fired
  // during the integration that just completed.
  void race_maybe_throw();

  RaceCheckMode racecheck_ = RaceCheckMode::kOff;
  bool racecheck_throw_ = false;
  // Sync-epoch counter for read-record pruning: bumped at every global
  // rendezvous (barrier, fork receipt, join collection). An interval
  // arriving in epoch E can only contain writes performed in E — every
  // older write was closed and delivered by the rendezvous that ended
  // its epoch — so read records from epochs < E are ordered before it
  // even when no interval close ever told the remote vector clock so
  // (a rank that reads but writes nothing closes no intervals).
  std::uint32_t race_epoch_ = 0;
  bool race_throw_pending_ = false;
  // Set when race_maybe_throw fires: this rank is unwinding mid-run, so
  // ~Runtime must SKIP the shutdown rendezvous — peers are still inside
  // their epoch loops and would never answer; the rank exits loudly and
  // the runner's peer-death propagation unwinds the survivors with
  // blame, exactly like an injected soft fault.
  bool race_unwinding_ = false;
  std::vector<RaceReport> race_reports_;
  // Storage cap (TMK_RACECHECK_MAX_REPORTS) and the totals that keep
  // counting past it: every report emitted, and every report dropped
  // from storage. kRaceReports flushes race_emitted_, not
  // race_reports_.size(), so the counter stays exact under the cap.
  std::size_t race_max_reports_ = 4096;
  std::uint64_t race_emitted_ = 0;
  std::uint64_t race_reports_dropped_ = 0;

  // -- epoch GC (TMK_EPOCH_GC; default on) --
  // Every `gc_interval_`-th barrier is a GC round: arrives additionally
  // carry a flags byte plus the subtree's element-wise minimum vector
  // clock, the root folds them into the global horizon H, and departs
  // carry H back down. Reclamation then runs one round behind: at round
  // G each rank first frees everything at or below the snapshot taken
  // at round G-1 (safe: every rank passed barrier G-1 with that state
  // integrated, and the round-G validation below guaranteed no pending
  // references remain), then force-applies its own pending notices at
  // or below H (modelled validate traffic) and snapshots vc_ as the
  // next round's reclaim horizon. Non-GC barriers are byte-identical to
  // the GC-off protocol.
  bool epoch_gc_ = true;
  std::uint32_t gc_interval_ = 64;
  std::uint64_t gc_bytes_ = 0;  // TMK_EPOCH_GC_BYTES pressure trigger
  // Validated reclaim horizon from the previous GC round (== vc_ at
  // that round's end, identical on every rank).
  VectorClock gc_ready_horizon_;
  bool gc_have_snapshot_ = false;
  // Accounting for the invariant records_created == records_reclaimed +
  // live records (own closes AND integrated remotes, unlike
  // stats_.intervals_created which counts own closes only).
  std::uint64_t records_created_ = 0;
  std::uint64_t records_reclaimed_ = 0;
  // Peak protocol footprint observed at GC rounds (flushed as the
  // protocol_rss_bytes run counter).
  std::uint64_t protocol_rss_peak_ = 0;
  // Twin-pool high-water-mark trim: buffers taken from the pool since
  // the last barrier; any pool surplus beyond it is released there.
  std::size_t twin_takes_epoch_ = 0;

  /// True when barrier number `barrier_seq_` is a GC round (1-based:
  /// the arriving barrier is barrier_seq_ + 1).
  [[nodiscard]] bool gc_round_now() const noexcept {
    return epoch_gc_ &&
           (gc_bytes_ > 0 || (barrier_seq_ + 1) % gc_interval_ == 0);
  }
  // Frees every interval record with seq <= horizon[creator] plus the
  // diff blobs, notices, unflushed prefixes, stashed pushes, and race
  // metadata that reference them; folds emptied PageExt slots back to
  // nullptr. Caller holds mu_; takes diff_mu_ internally.
  void epoch_gc_reclaim(const VectorClock& horizon);
  [[nodiscard]] std::uint64_t protocol_rss_bytes_locked() const;
  void trim_pools_locked();

  // -- hybrid update protocol state (mode != off only) --
  UpdateMode update_mode_ = UpdateMode::kOff;
  std::uint8_t push_credits_ = 16;
  struct PushPlanEntry {
    PageIndex page;
    Seq lo = 0;  // push covers own seqs in (lo, hi] for this page
    Seq hi = 0;
    ProcMask dsts;
    std::shared_ptr<std::vector<std::byte>> blob;  // flattened diff
  };
  std::vector<PushPlanEntry> push_plan_;
  // Pages with own intervals not yet offered to consumers (appended by
  // close_interval, drained by build_push_plan).
  std::vector<PageIndex> push_candidates_;
  std::vector<std::uint16_t> push_counts_;  // per-dst kDiffPush frames
  // Count-table caches, one per barrier-tree link (empty = no history):
  // what we last sent to the parent / each child, and what we last
  // received from each child / the parent.
  std::vector<std::uint16_t> push_counts_sent_up_;
  std::vector<std::uint16_t> push_counts_rx_down_;
  std::vector<std::vector<std::uint16_t>> push_counts_sent_down_;
  std::vector<std::vector<std::uint16_t>> push_counts_child_rx_;
  std::vector<std::pair<int, std::vector<std::byte>>> push_frames_;
  DiffMerger diff_merger_;
  // Receiver-side stash of pushed diffs that could NOT be applied at the
  // barrier (the page had pending write notices the round's pushes did
  // not fully cover — false sharing with an unpredicted writer). The
  // fault path consumes them in place of a network fetch: the blob
  // covers the creator's seqs in (lo, hi], exactly like a pulled flush
  // blob, and is applied in the same vc-weight order. Keyed by
  // (page << 7) | creator; guarded by mu_ (main thread only).
  struct PushStash {
    Seq lo = 0;
    Seq hi = 0;
    std::shared_ptr<std::vector<std::byte>> blob;
  };
  [[nodiscard]] static constexpr std::uint64_t stash_key(
      PageIndex page, ProcId creator) noexcept {
    return (static_cast<std::uint64_t>(page) << kPackCreatorBits) | creator;
  }
  std::unordered_map<std::uint64_t, PushStash> push_stash_;

  // Improved-interface bookkeeping (master side).
  std::vector<VectorClock> worker_vc_;
  Seq sent_to_master_seq_ = 0;  // my own intervals already sent to proc 0
  // My own seq as of the last barrier arrive: everything up to it
  // reached my tree parent through that barrier. Distinct from
  // sent_to_master_seq_, which join_worker also advances — a join
  // reports straight to rank 0 and teaches a non-root parent nothing,
  // so a non-flat barrier must report from this floor instead.
  Seq barrier_sent_seq_ = 0;
  std::uint32_t barrier_seq_ = 0;
  // Effective barrier fan-in arity (>= 1); nprocs-1 is the flat
  // centralized-manager shape. Resolved once at construction from
  // Options::barrier_arity / TMK_BARRIER_ARITY.
  int barrier_arity_ = 1;
  // Barrier fan-in scratch (main thread only), sized once: arrived
  // subtree vcs per direct child, and per-creator (lo, hi] interval
  // ranges this node forwards to its parent.
  std::vector<VectorClock> barrier_child_vc_;
  std::vector<std::pair<Seq, Seq>> barrier_contrib_;
  std::uint32_t fork_seq_ = 0;
  std::uint32_t next_req_id_ = 1;
  // Manager-side record of the last process to request each lock.
  std::vector<ProcId> lock_last_requester_;
  pthread_t main_tid_{};

  // Host-side cost of delivering one page fault (measured at startup);
  // excluded from scaled compute at each fault.
  std::uint64_t host_fault_cost_ns_ = 0;

  std::thread service_;
  std::atomic<bool> stop_{false};
  bool shutdown_done_ = false;

  TmkStats stats_;
  // Where shutdown() accumulates the final DSM counters so the harness
  // can report them per rank (+=: several sequential Runtimes in one
  // rank add up). Written only after the service thread has joined.
  runner::ChildContext* report_ctx_ = nullptr;
  void flush_stats_to_ctx() noexcept;
};

}  // namespace tmk
