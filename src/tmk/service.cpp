// Service thread: answers diff fetches and lock traffic while the main
// thread computes. TreadMarks used SIGIO interrupts for this; a dedicated
// thread produces the same message pattern, and its handler cost is
// charged to the process's virtual clock as interrupt overhead.
#include "tmk/runtime.hpp"

#include <cstdio>
#include <exception>

#include "common/check.hpp"

namespace tmk {

void Runtime::service_loop() {
  try {
    while (auto f = ep_.next_svc_request(stop_)) {
      switch (f->kind) {
        case mpl::FrameKind::kDiffRequest:
          serve_diff_request(*f);
          break;
        case mpl::FrameKind::kLockRequest:
          serve_lock_request(*f);
          break;
        case mpl::FrameKind::kLockForward:
          serve_lock_forward(*f);
          break;
        default:
          COMMON_CHECK_MSG(false, "unexpected service frame kind "
                                      << static_cast<int>(f->kind));
      }
      // The handlers only read the payload; recycle its capacity for the
      // next receive.
      ep_.recycle_svc_buffer(std::move(f->payload));
    }
  } catch (const std::exception& e) {
    // An injected fault (or a peer's death) can surface here while the
    // main thread is computing; an escaped exception would std::terminate
    // the whole process with no blame line. Log and fall off — the main
    // thread's own waits hit the same condition and unwind with the full
    // crash report.
    std::fprintf(stderr, "tmk: rank %d service thread failed: %s\n", rank_,
                 e.what());
    std::fflush(stderr);
  }
}

// Reply entry whose length is this marker shares the previous entry's
// bytes (one lazy flush covers several intervals of a page).
inline constexpr std::uint32_t kSameAsPrevious = 0xffffffffu;

void Runtime::serve_diff_request(const mpl::Frame& f) {
  const auto& m = ep_.clock().model();
  ByteReader r(f.payload);
  const auto n = r.get<std::uint32_t>();
  std::uint64_t handler = m.handler_cost(n);

  ByteWriter& w = svc_reply_writer_;  // service thread only; reused
  w.clear();
  w.put<std::uint32_t>(n);
  // tag 1 marks epoch-GC validation fetches: forced traffic that says
  // nothing about what the requester reads, so it must not arm the
  // adaptive push predictor (learning from it turns every GC round
  // into a run-long mispredicted-push storm).
  const bool learning = (update_mode_ == UpdateMode::kAdaptive ||
                         update_mode_ == UpdateMode::kHybrid) &&
                        f.tag == 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    const DiffRec* prev = nullptr;
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto page = r.get<PageIndex>();
      const auto seq = r.get<Seq>();
      if (learning) {
        // Adaptive predictor feed: this rank PULLED this page, so it is
        // a likely consumer of our next barrier's diff. Re-arm the
        // credit budget — a request proves the prediction is live.
        PageExt& px = ext(page);
        px.adaptive_consumers.set(f.src);
        px.push_budget = push_credits_;
      }
      const auto key = (static_cast<std::uint64_t>(page) << 32) | seq;
      const DiffRec* rec = nullptr;
      {
        std::lock_guard<std::mutex> dg(diff_mu_);
        if (auto it = diffs_.find(key); it != diffs_.end()) rec = &it->second;
      }
      if (rec == nullptr) {
        // Lazy flush: create the diff(s) for this page now.
        handler += flush_page_diff(page);
        std::lock_guard<std::mutex> dg(diff_mu_);
        auto it = diffs_.find(key);
        COMMON_CHECK_MSG(it != diffs_.end(),
                         "diff request for unknown diff: page "
                             << page << " seq " << seq);
        rec = &it->second;
      }
      w.put<PageIndex>(page);
      w.put<Seq>(seq);
      w.put<Seq>(rec->covered_up_to);
      if (prev != nullptr && prev->blob == rec->blob) {
        w.put<std::uint32_t>(kSameAsPrevious);
      } else {
        w.put<std::uint32_t>(static_cast<std::uint32_t>(rec->blob->size()));
        w.put_bytes(*rec->blob);
      }
      prev = rec;
    }
  }
  stats_.diff_replies.fetch_add(1, std::memory_order_relaxed);
  ep_.clock().charge_interrupt(m.recv_overhead_ns + handler +
                               m.send_overhead_ns);
  const std::uint64_t base = f.vt_arrival + m.recv_overhead_ns + handler;
  const std::uint64_t arrival = ep_.stamp_reply(base, f.src, w.size());
  ep_.send_app_stamped(f.src, mpl::FrameKind::kDiffReply, 0, f.req_id,
                       w.bytes(), arrival);
}

}  // namespace tmk
