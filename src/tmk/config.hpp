// Typed snapshot of every TMK_* knob the DSM runtime consumes.
//
// The runtime used to read its knobs one getenv at a time, scattered
// through the Runtime constructor. Config centralizes that: the harness
// builds one snapshot per spawn (runner::spawn resolves
// SpawnOptions::tmk_config, defaulting to Config::from_env()) and hands
// it to every rank through ChildContext, so (a) all ranks of a run see
// the same values even if a test mutates the environment mid-run, and
// (b) adding a knob is one field plus one line in from_env() — parsing,
// validation, and the warn-once-on-garbage behavior all live in
// common/env.hpp. Programmatic Runtime::Options overrides still win
// over the snapshot, which wins over built-in defaults.
//
// Header-only and dependency-free below common/: runner (which sits
// under tmk) carries a Config without linking the DSM.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/env.hpp"

namespace tmk {

/// Hybrid invalidate/update protocol mode (TMK_UPDATE_MODE). `kOff` is
/// the paper's pure invalidate protocol, byte-identical to the runtime
/// before the protocol existed. The other modes push barrier-time diffs
/// to predicted consumers: `kHint` trusts only explicit decomposition
/// hints (hint_consumers), `kAdaptive` trusts only the learned history
/// of which ranks fetched each page, `kHybrid` the union of both.
enum class UpdateMode : std::uint8_t {
  kOff = 0,
  kHint = 1,
  kAdaptive = 2,
  kHybrid = 3,
};

[[nodiscard]] constexpr const char* to_string(UpdateMode m) noexcept {
  switch (m) {
    case UpdateMode::kOff: return "off";
    case UpdateMode::kHint: return "hint";
    case UpdateMode::kAdaptive: return "adaptive";
    case UpdateMode::kHybrid: return "hybrid";
  }
  return "?";
}

/// Parses a TMK_UPDATE_MODE value; nullopt on anything unrecognized.
[[nodiscard]] constexpr std::optional<UpdateMode> parse_update_mode(
    std::string_view name) noexcept {
  if (name == "off") return UpdateMode::kOff;
  if (name == "hint") return UpdateMode::kHint;
  if (name == "adaptive") return UpdateMode::kAdaptive;
  if (name == "hybrid") return UpdateMode::kHybrid;
  return std::nullopt;
}

/// Online race detection mode (TMK_RACECHECK). `kOff` records nothing
/// and is byte-identical — wire format, modelled counters, checksums —
/// to a runtime without the detector. The checking modes record
/// per-interval access summaries and compare incoming write notices
/// against them under the vector-clock happens-before order at every
/// integration point (barrier fan-in/departure, lock grant, fork,
/// join); they differ in what they track: `kSummary` checks
/// write/write pairs only, `kPrecise` additionally records read
/// faults (per 4-byte diff word) and reports read/write pairs. Write
/// summaries are per-word in both modes — they fall out of the
/// twin-vs-page diff scan for free, and any coarser check (page- or
/// cache-line-granular, for writes or reads) would flag the legal
/// concurrent same-page disjoint accesses the multiple-writer
/// protocol exists to allow; that is also why summary mode does not
/// attempt page-granular read tracking.
enum class RaceCheckMode : std::uint8_t {
  kOff = 0,
  kSummary = 1,
  kPrecise = 2,
};

[[nodiscard]] constexpr const char* to_string(RaceCheckMode m) noexcept {
  switch (m) {
    case RaceCheckMode::kOff: return "off";
    case RaceCheckMode::kSummary: return "summary";
    case RaceCheckMode::kPrecise: return "precise";
  }
  return "?";
}

/// Parses a TMK_RACECHECK value; nullopt on anything unrecognized.
[[nodiscard]] constexpr std::optional<RaceCheckMode> parse_racecheck(
    std::string_view name) noexcept {
  if (name == "off") return RaceCheckMode::kOff;
  if (name == "summary") return RaceCheckMode::kSummary;
  if (name == "precise") return RaceCheckMode::kPrecise;
  return std::nullopt;
}

/// One immutable knob snapshot, shared by every rank of a run. All
/// fields carry their built-in defaults, so a default-constructed
/// Config equals an empty environment.
struct Config {
  UpdateMode update_mode = UpdateMode::kOff;
  /// Adaptive-predictor credit budget (TMK_PUSH_CREDITS).
  int push_credits = 16;
  /// Barrier fan-in arity (TMK_BARRIER_ARITY); 0 = flat manager.
  int barrier_arity = 0;
  RaceCheckMode racecheck = RaceCheckMode::kOff;
  /// TMK_RACECHECK_THROW: when set, the first TMK_RACE_REPORT also
  /// throws common::Error once the integration that found it returns.
  bool racecheck_throw = false;
  /// TMK_RACECHECK_MAX_REPORTS: cap on RaceReport records a rank keeps
  /// in memory (each holds two full vector clocks). Reports past the
  /// cap still print their TMK_RACE_REPORT line and count toward the
  /// race_reports counter but are dropped from storage, bumping
  /// race_reports_dropped instead. 0 means keep nothing.
  int racecheck_max_reports = 4096;
  /// TMK_EPOCH_GC: epoch-based reclamation of protocol state (interval
  /// records, diff blobs, consumed notices/pendings, stashed pushes,
  /// race metadata) below the global vector-clock horizon computed on
  /// barrier fan-in. `off` is bit-identical to a runtime without the
  /// collector in every counter and every modelled byte.
  bool epoch_gc = true;
  /// TMK_EPOCH_GC_INTERVAL: barrier epochs between GC rounds. Only GC
  /// rounds carry the horizon piggyback on the barrier wire, so the
  /// other (interval - 1) of every interval barriers stay byte-identical
  /// to the GC-off protocol.
  int epoch_gc_interval = 64;
  /// TMK_EPOCH_GC_BYTES: when > 0, every barrier becomes GC-capable and
  /// a rank requests collection as soon as its protocol footprint
  /// exceeds this many bytes (best-effort pressure valve; adds the
  /// horizon bytes to every barrier frame, so equivalence suites leave
  /// it unset). 0 disables the pressure trigger.
  long long epoch_gc_bytes = 0;

  /// Resolves the snapshot from the environment, warning once per
  /// process on unparsable values (and taking the default instead).
  [[nodiscard]] static Config from_env() {
    Config c;
    namespace env = common::env;
    if (const char* v = env::raw("TMK_UPDATE_MODE");
        v != nullptr && *v != '\0') {
      if (const auto m = parse_update_mode(v); m.has_value())
        c.update_mode = *m;
      else
        env::detail::warn_value("TMK_UPDATE_MODE", v,
                                "expected off|hint|adaptive|hybrid");
    }
    if (const auto n = env::int_knob("TMK_PUSH_CREDITS"); n.has_value())
      c.push_credits = static_cast<int>(*n);
    if (const auto n = env::int_knob("TMK_BARRIER_ARITY"); n.has_value())
      c.barrier_arity = static_cast<int>(*n);
    if (const char* v = env::raw("TMK_RACECHECK"); v != nullptr && *v != '\0') {
      if (const auto m = parse_racecheck(v); m.has_value())
        c.racecheck = *m;
      else
        env::detail::warn_value("TMK_RACECHECK", v,
                                "expected off|summary|precise");
    }
    c.racecheck_throw = env::flag_knob("TMK_RACECHECK_THROW", false);
    if (const auto n = env::int_knob("TMK_RACECHECK_MAX_REPORTS");
        n.has_value())
      c.racecheck_max_reports = static_cast<int>(*n);
    if (const char* v = env::raw("TMK_EPOCH_GC"); v != nullptr && *v != '\0') {
      const std::string_view s(v);
      if (s == "on" || s == "1" || s == "true")
        c.epoch_gc = true;
      else if (s == "off" || s == "0" || s == "false")
        c.epoch_gc = false;
      else
        env::detail::warn_value("TMK_EPOCH_GC", v, "expected off|on");
    }
    if (const auto n = env::int_knob("TMK_EPOCH_GC_INTERVAL"); n.has_value()) {
      if (*n > 0)
        c.epoch_gc_interval = static_cast<int>(*n);
      else
        env::detail::warn_value("TMK_EPOCH_GC_INTERVAL",
                                env::raw("TMK_EPOCH_GC_INTERVAL"),
                                "expected a value > 0");
    }
    if (const auto n = env::int_knob("TMK_EPOCH_GC_BYTES"); n.has_value())
      c.epoch_gc_bytes = *n;
    return c;
  }
};

}  // namespace tmk
