// SIGSEGV trampoline: the access-detection mechanism of the DSM.
//
// "TreadMarks relies on user-level memory management techniques provided
//  by the operating system to detect accesses to shared memory at the
//  granularity of a page." (§2.2)
//
// On x86-64 the page-fault error code (bit 1 of REG_ERR) distinguishes
// writes from reads, so a write miss on an invalid page fetches diffs and
// twins the page in a single fault. On other architectures the handler
// treats the first fault as a read; the retried store then faults again
// on the now read-only page, which is unambiguously a write.
#include <signal.h>
#include <sys/mman.h>
#include <ucontext.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/cpu_clock.hpp"

#include "common/check.hpp"
#include "tmk/runtime.hpp"

namespace tmk {

namespace {

struct sigaction g_old_action;
bool g_installed = false;
// Probe page used to measure the host's fault-delivery cost (trap +
// signal dispatch + mprotect), which the virtual clock must not scale as
// application compute.
void* g_probe_page = nullptr;

void restore_default_and_return() {
  // Re-raising with the default handler lets a genuine crash produce a
  // normal core/termination instead of looping through our handler.
  sigaction(SIGSEGV, &g_old_action, nullptr);
}

void handler(int /*sig*/, siginfo_t* info, void* uctx) {
  if (g_probe_page != nullptr &&
      reinterpret_cast<std::uintptr_t>(info->si_addr) ==
          reinterpret_cast<std::uintptr_t>(g_probe_page)) {
    mprotect(g_probe_page, 4096, PROT_READ | PROT_WRITE);
    return;
  }
  bool is_write = false;
#if defined(__x86_64__)
  const auto* ctx = static_cast<const ucontext_t*>(uctx);
  is_write = (ctx->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)uctx;
#endif
  Runtime* rt = Runtime::instance();
  if (rt == nullptr || !rt->handle_fault(info->si_addr, is_write)) {
    restore_default_and_return();
  }
}

}  // namespace

std::uint64_t measure_host_fault_cost_ns() {
  void* p = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  COMMON_CHECK(p != MAP_FAILED);
  auto* word = static_cast<volatile int*>(p);
  *word = 1;  // warm the mapping
  g_probe_page = p;
  // 32 rounds keep the estimate stable to a few hundred ns while the
  // calibration stays well under a millisecond of every child's startup
  // (256 rounds cost more than the rest of Runtime construction).
  constexpr int kIters = 32;

  // Full path: protect, fault, handler unprotects.
  const std::uint64_t t0 = common::thread_cpu_ns();
  for (int i = 0; i < kIters; ++i) {
    COMMON_SYSCALL(mprotect(p, 4096, PROT_NONE));
    *word = i;  // faults; the handler unprotects
  }
  const std::uint64_t full =
      (common::thread_cpu_ns() - t0) / static_cast<std::uint64_t>(kIters);

  // Syscall-only path: the two mprotect calls without a fault. The
  // difference isolates trap + signal delivery + handler entry — the
  // only part that lands in the *application's* fold window (the
  // handler body runs in protocol mode and is dropped separately).
  const std::uint64_t t1 = common::thread_cpu_ns();
  for (int i = 0; i < kIters; ++i) {
    COMMON_SYSCALL(mprotect(p, 4096, PROT_NONE));
    COMMON_SYSCALL(mprotect(p, 4096, PROT_READ | PROT_WRITE));
  }
  const std::uint64_t bare =
      (common::thread_cpu_ns() - t1) / static_cast<std::uint64_t>(kIters);

  g_probe_page = nullptr;
  munmap(p, 4096);
  // The tight calibration loop runs with warm caches and predictors; a
  // real fault in the middle of a compute loop costs a little more. Half
  // the syscall-pair cost is a robust margin for that cold-path delta.
  const std::uint64_t trap = full > bare ? full - bare : 0;
  return trap + bare / 2;
}

void install_sigsegv_handler() {
  if (g_installed) return;
  g_installed = true;

  // The handler performs real protocol work (diff fetches over sockets),
  // so give it its own sizeable stack.
  static std::byte alt_stack[512 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof(alt_stack);
  COMMON_SYSCALL(sigaltstack(&ss, nullptr));

  struct sigaction sa{};
  sa.sa_sigaction = handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  COMMON_SYSCALL(sigaction(SIGSEGV, &sa, &g_old_action));
}

}  // namespace tmk
