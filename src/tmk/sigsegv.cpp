// SIGSEGV trampoline: the access-detection mechanism of the DSM.
//
// "TreadMarks relies on user-level memory management techniques provided
//  by the operating system to detect accesses to shared memory at the
//  granularity of a page." (§2.2)
//
// On x86-64 the page-fault error code (bit 1 of REG_ERR) distinguishes
// writes from reads, so a write miss on an invalid page fetches diffs and
// twins the page in a single fault. On other architectures the handler
// treats the first fault as a read; the retried store then faults again
// on the now read-only page, which is unambiguously a write.
//
// The handler is process-wide but the DSM contexts are per rank: the
// fault address is matched against every live Runtime's heap range
// (Runtime::owner_of), which is what lets the thread backend run many
// ranks — each with a private heap at a distinct address — in one
// address space.
#include <signal.h>
#include <sys/mman.h>
#include <ucontext.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/cpu_clock.hpp"

#include "common/check.hpp"
#include "tmk/runtime.hpp"

namespace tmk {

namespace {

struct sigaction g_old_action;
std::once_flag g_install_once;
// Per-thread probe page used to measure the host's fault-delivery cost
// (trap + signal dispatch + mprotect), which the virtual clock must not
// scale as application compute. Thread-local so concurrently starting
// rank threads (thread backend) can calibrate independently; the
// handler runs on the faulting thread and sees its own slot.
thread_local void* t_probe_page = nullptr;
// Per-thread handler stack (sigaltstack is per-thread state): every
// rank's application thread gets its own, installed with its Runtime
// and restored at Runtime destruction. Restoring matters under ASan,
// whose runtime registers its own per-thread alternate stack and
// unmaps whatever is registered when the thread dies — which must be
// its mapping again, not our heap buffer.
thread_local std::unique_ptr<std::byte[]> t_alt_stack;
thread_local stack_t t_prev_stack{};
thread_local bool t_alt_stack_installed = false;

void restore_default_and_return() {
  // Re-raising with the default handler lets a genuine crash produce a
  // normal core/termination instead of looping through our handler.
  sigaction(SIGSEGV, &g_old_action, nullptr);
}

void handler(int /*sig*/, siginfo_t* info, void* uctx) {
  if (t_probe_page != nullptr &&
      reinterpret_cast<std::uintptr_t>(info->si_addr) ==
          reinterpret_cast<std::uintptr_t>(t_probe_page)) {
    mprotect(t_probe_page, 4096, PROT_READ | PROT_WRITE);
    return;
  }
  bool is_write = false;
#if defined(__x86_64__)
  const auto* ctx = static_cast<const ucontext_t*>(uctx);
  is_write = (ctx->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)uctx;
#endif
  // Dispatch by address: with the thread backend several rank runtimes
  // coexist in this process, each owning a distinct heap range.
  Runtime* rt = Runtime::owner_of(info->si_addr);
  if (rt == nullptr || !rt->handle_fault(info->si_addr, is_write)) {
    restore_default_and_return();
  }
}

}  // namespace

std::uint64_t measure_host_fault_cost_ns() {
  void* p = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  COMMON_CHECK(p != MAP_FAILED);
  auto* word = static_cast<volatile int*>(p);
  *word = 1;  // warm the mapping
  t_probe_page = p;
  // 32 rounds keep the estimate stable to a few hundred ns while the
  // calibration stays well under a millisecond of every child's startup
  // (256 rounds cost more than the rest of Runtime construction).
  constexpr int kIters = 32;

  // Full path: protect, fault, handler unprotects.
  const std::uint64_t t0 = common::thread_cpu_ns();
  for (int i = 0; i < kIters; ++i) {
    COMMON_SYSCALL(mprotect(p, 4096, PROT_NONE));
    *word = i;  // faults; the handler unprotects
  }
  const std::uint64_t full =
      (common::thread_cpu_ns() - t0) / static_cast<std::uint64_t>(kIters);

  // Syscall-only path: the two mprotect calls without a fault. The
  // difference isolates trap + signal delivery + handler entry — the
  // only part that lands in the *application's* fold window (the
  // handler body runs in protocol mode and is dropped separately).
  const std::uint64_t t1 = common::thread_cpu_ns();
  for (int i = 0; i < kIters; ++i) {
    COMMON_SYSCALL(mprotect(p, 4096, PROT_NONE));
    COMMON_SYSCALL(mprotect(p, 4096, PROT_READ | PROT_WRITE));
  }
  const std::uint64_t bare =
      (common::thread_cpu_ns() - t1) / static_cast<std::uint64_t>(kIters);

  t_probe_page = nullptr;
  munmap(p, 4096);
  // The tight calibration loop runs with warm caches and predictors; a
  // real fault in the middle of a compute loop costs a little more. Half
  // the syscall-pair cost is a robust margin for that cold-path delta.
  const std::uint64_t trap = full > bare ? full - bare : 0;
  return trap + bare / 2;
}

void install_sigsegv_handler() {
  // The handler performs real protocol work (diff fetches over the
  // fabric), so give it its own sizeable stack — per thread, because
  // sigaltstack is per-thread state and under the thread backend every
  // rank's application thread takes its own faults.
  if (!t_alt_stack_installed) {
    constexpr std::size_t kAltStackBytes = 512 * 1024;
    if (t_alt_stack == nullptr)
      t_alt_stack = std::make_unique<std::byte[]>(kAltStackBytes);
    stack_t ss{};
    ss.ss_sp = t_alt_stack.get();
    ss.ss_size = kAltStackBytes;
    COMMON_SYSCALL(sigaltstack(&ss, &t_prev_stack));
    t_alt_stack_installed = true;
  }

  // The process-wide action is installed exactly once, even when many
  // rank threads construct their runtimes concurrently.
  std::call_once(g_install_once, [] {
    struct sigaction sa{};
    sa.sa_sigaction = handler;
    sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&sa.sa_mask);
    COMMON_SYSCALL(sigaction(SIGSEGV, &sa, &g_old_action));
  });
}

void uninstall_thread_sigaltstack() noexcept {
  if (!t_alt_stack_installed) return;
  // Put back whatever this thread had before its Runtime (ASan's
  // per-thread stack, or SS_DISABLE); no more DSM faults can hit this
  // thread once its runtime is gone. The buffer is kept for reuse by a
  // later Runtime on the same thread and freed at thread exit.
  sigaltstack(&t_prev_stack, nullptr);
  t_alt_stack_installed = false;
}

}  // namespace tmk
