#include "tmk/diff.hpp"

#include <cstring>

#include "common/check.hpp"

namespace tmk {

namespace {

struct RunHeader {
  std::uint16_t offset_words;
  std::uint16_t len_words;
};
static_assert(sizeof(RunHeader) == 4);

}  // namespace

std::vector<std::byte> make_diff(const std::byte* twin,
                                 const std::byte* current) {
  std::vector<std::byte> out;
  std::uint32_t tw[kWordsPerPage];
  std::uint32_t cw[kWordsPerPage];
  std::memcpy(tw, twin, common::kPageSize);
  std::memcpy(cw, current, common::kPageSize);

  std::size_t i = 0;
  while (i < kWordsPerPage) {
    if (tw[i] == cw[i]) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < kWordsPerPage && tw[j] != cw[j]) ++j;
    RunHeader h{static_cast<std::uint16_t>(i),
                static_cast<std::uint16_t>(j - i)};
    const auto* hp = reinterpret_cast<const std::byte*>(&h);
    out.insert(out.end(), hp, hp + sizeof(h));
    const auto* payload = current + i * kDiffWord;
    out.insert(out.end(), payload, payload + (j - i) * kDiffWord);
    i = j;
  }
  return out;
}

void apply_diff(std::span<const std::byte> diff, std::byte* target) {
  std::size_t pos = 0;
  while (pos < diff.size()) {
    COMMON_CHECK_MSG(pos + sizeof(RunHeader) <= diff.size(),
                     "truncated diff run header");
    RunHeader h;
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h);
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    COMMON_CHECK_MSG(h.offset_words + h.len_words <= kWordsPerPage,
                     "diff run exceeds page");
    COMMON_CHECK_MSG(pos + bytes <= diff.size(), "truncated diff payload");
    std::memcpy(target + static_cast<std::size_t>(h.offset_words) * kDiffWord,
                diff.data() + pos, bytes);
    pos += bytes;
  }
}

std::size_t diff_payload_bytes(std::span<const std::byte> diff) {
  std::size_t pos = 0;
  std::size_t total = 0;
  while (pos < diff.size()) {
    RunHeader h;
    COMMON_CHECK(pos + sizeof(h) <= diff.size());
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    pos += sizeof(h) + bytes;
    total += bytes;
  }
  COMMON_CHECK(pos == diff.size());
  return total;
}

}  // namespace tmk
