#include "tmk/diff.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace tmk {

namespace {

struct RunHeader {
  std::uint16_t offset_words;
  std::uint16_t len_words;
};
static_assert(sizeof(RunHeader) == 4);

// The 64-bit block scan splits each u64 into its low/high 32-bit words
// positionally; the wire format stays host-order (single-host mesh), but
// the low-half-first mapping below assumes little-endian hosts.
static_assert(std::endian::native == std::endian::little,
              "diff block scan assumes little-endian word order");

constexpr std::size_t kU64PerPage = common::kPageSize / sizeof(std::uint64_t);
constexpr std::size_t kU64PerBlock = 8;  // 64-byte compare blocks

// Maximum number of runs: every second word changed.
constexpr std::size_t kMaxRuns = kWordsPerPage / 2;

}  // namespace

void make_diff_into(const std::byte* twin, const std::byte* current,
                    std::vector<std::byte>& out) {
  out.clear();
  if (out.capacity() < kMaxDiffBytes) out.reserve(kMaxDiffBytes);

  // Pass 1: find the changed-word runs. A 64-byte block compare
  // (vectorized by libc) skips unchanged blocks — the overwhelmingly
  // common case for sparse writers and the whole page for an unchanged
  // one; only mismatching blocks are examined word by word, as u64
  // pairs with the open run held in registers.
  RunHeader runs[kMaxRuns + 1];
  std::size_t nruns = 0;
  std::size_t payload_words = 0;
  std::uint32_t open_off = 0;  // first word of the open run
  std::uint32_t open_len = 0;  // 0 = no open run

  const auto close_run = [&] {
    if (open_len != 0) {
      runs[nruns].offset_words = static_cast<std::uint16_t>(open_off);
      runs[nruns].len_words = static_cast<std::uint16_t>(open_len);
      ++nruns;
      payload_words += open_len;
      open_len = 0;
    }
  };

  constexpr std::size_t kBlockBytes = kU64PerBlock * sizeof(std::uint64_t);
  const auto load_xor = [&](std::size_t k) {
    std::uint64_t tv;
    std::uint64_t cv;
    std::memcpy(&tv, twin + k * sizeof(std::uint64_t), sizeof(tv));
    std::memcpy(&cv, current + k * sizeof(std::uint64_t), sizeof(cv));
    return tv ^ cv;
  };

  std::size_t b = 0;  // block-aligned u64 cursor
  while (b < kU64PerPage) {
    // Let libc's vectorized compare skip clean 64-byte blocks — the
    // overwhelmingly common case for sparse writers.
    if (std::memcmp(twin + b * sizeof(std::uint64_t),
                    current + b * sizeof(std::uint64_t), kBlockBytes) == 0) {
      b += kU64PerBlock;
      continue;
    }
    std::size_t q = b;
    std::size_t end = b + kU64PerBlock;
    while (q < end) {
      const std::uint64_t x = load_xor(q);
      if (x == 0) {
        ++q;
        continue;
      }
      const auto w0 = static_cast<std::uint32_t>(q * 2);
      // Little endian: the low half of the u64 is word w0. A run covers
      // 1 word (one half changed) or starts/extends by 2 (both halves).
      const std::uint32_t lo = static_cast<std::uint32_t>(x) != 0;
      const std::uint32_t hi = (x >> 32) != 0;
      const std::uint32_t w = w0 + (1 - lo);
      const std::uint32_t n = lo + hi;
      if (open_len != 0 && open_off + open_len == w) {
        open_len += n;
      } else {
        close_run();
        open_off = w;
        open_len = n;
      }
      ++q;
      if (lo & hi) {
        // Inside a rewritten region: greedily consume fully-changed
        // u64s with a tight loop (crossing block boundaries); the first
        // partial/clean u64 falls back to the generic handling above,
        // finishing out its block before memcmp skipping resumes.
        while (q < kU64PerPage) {
          const std::uint64_t y = load_xor(q);
          if (static_cast<std::uint32_t>(y) == 0 || (y >> 32) == 0) break;
          open_len += 2;
          ++q;
        }
        end = std::min(kU64PerPage,
                       (q + kU64PerBlock - 1) & ~(kU64PerBlock - 1));
      }
    }
    b = end;
  }
  close_run();
  if (nruns == 0) return;

  // Pass 2: single exact-size resize (never reallocates: capacity is at
  // least kMaxDiffBytes), then bulk-copy headers and payload runs.
  const std::size_t total =
      nruns * sizeof(RunHeader) + payload_words * kDiffWord;
  COMMON_CHECK(total <= kMaxDiffBytes);
  out.resize(total);
  std::byte* p = out.data();
  for (std::size_t r = 0; r < nruns; ++r) {
    std::memcpy(p, &runs[r], sizeof(RunHeader));
    p += sizeof(RunHeader);
    const std::size_t bytes =
        static_cast<std::size_t>(runs[r].len_words) * kDiffWord;
    std::memcpy(p, current + runs[r].offset_words * kDiffWord, bytes);
    p += bytes;
  }
}

std::vector<std::byte> make_diff(const std::byte* twin,
                                 const std::byte* current) {
  std::vector<std::byte> out;
  make_diff_into(twin, current, out);
  return out;
}

RaceMask changed_word_mask(const std::byte* twin, const std::byte* current) {
  static_assert(RaceMask::kWordBytes == kDiffWord,
                "race masks must use the diff-word granularity");
  RaceMask mask;
  for (std::size_t q = 0; q < kU64PerPage; ++q) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, twin + q * sizeof(std::uint64_t), sizeof(a));
    std::memcpy(&b, current + q * sizeof(std::uint64_t), sizeof(b));
    const std::uint64_t x = a ^ b;
    if (x == 0) continue;
    // Little endian, as in make_diff_into: the low half of u64 q is
    // diff word 2q, the high half word 2q + 1.
    const std::size_t w0 = q * 2;
    if (static_cast<std::uint32_t>(x) != 0)
      mask.v[w0 / 64] |= std::uint64_t{1} << (w0 % 64);
    if ((x >> 32) != 0)
      mask.v[(w0 + 1) / 64] |= std::uint64_t{1} << ((w0 + 1) % 64);
  }
  return mask;
}

void apply_diff(std::span<const std::byte> diff, std::byte* target) {
  std::size_t pos = 0;
  while (pos < diff.size()) {
    COMMON_CHECK_MSG(pos + sizeof(RunHeader) <= diff.size(),
                     "truncated diff run header");
    RunHeader h;
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h);
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    COMMON_CHECK_MSG(h.offset_words + h.len_words <= kWordsPerPage,
                     "diff run exceeds page");
    COMMON_CHECK_MSG(pos + bytes <= diff.size(), "truncated diff payload");
    std::memcpy(target + static_cast<std::size_t>(h.offset_words) * kDiffWord,
                diff.data() + pos, bytes);
    pos += bytes;
  }
}

void DiffMerger::absorb(std::span<const std::byte> diff) {
  std::size_t pos = 0;
  while (pos < diff.size()) {
    COMMON_CHECK_MSG(pos + sizeof(RunHeader) <= diff.size(),
                     "truncated diff run header");
    RunHeader h;
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    pos += sizeof(h);
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    COMMON_CHECK_MSG(h.offset_words + h.len_words <= kWordsPerPage,
                     "diff run exceeds page");
    COMMON_CHECK_MSG(pos + bytes <= diff.size(), "truncated diff payload");
    std::memcpy(page_ + static_cast<std::size_t>(h.offset_words) * kDiffWord,
                diff.data() + pos, bytes);
    for (std::uint32_t w = h.offset_words; w < h.offset_words + h.len_words;
         ++w)
      present_[w / 64] |= std::uint64_t{1} << (w % 64);
    pos += bytes;
  }
}

void DiffMerger::encode_into(std::vector<std::byte>& out) const {
  out.clear();
  if (out.capacity() < kMaxDiffBytes) out.reserve(kMaxDiffBytes);
  std::uint32_t w = 0;
  while (w < kWordsPerPage) {
    if (present_[w / 64] == 0) {  // skip empty 64-word spans wholesale
      w = (w / 64 + 1) * 64;
      continue;
    }
    if ((present_[w / 64] & (std::uint64_t{1} << (w % 64))) == 0) {
      ++w;
      continue;
    }
    const std::uint32_t start = w;
    while (w < kWordsPerPage &&
           (present_[w / 64] & (std::uint64_t{1} << (w % 64))) != 0)
      ++w;
    RunHeader h;
    h.offset_words = static_cast<std::uint16_t>(start);
    h.len_words = static_cast<std::uint16_t>(w - start);
    const std::size_t old = out.size();
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    out.resize(old + sizeof(h) + bytes);
    std::memcpy(out.data() + old, &h, sizeof(h));
    std::memcpy(out.data() + old + sizeof(h),
                page_ + static_cast<std::size_t>(start) * kDiffWord, bytes);
  }
}

std::size_t diff_payload_bytes(std::span<const std::byte> diff) {
  std::size_t pos = 0;
  std::size_t total = 0;
  while (pos < diff.size()) {
    RunHeader h;
    COMMON_CHECK(pos + sizeof(h) <= diff.size());
    std::memcpy(&h, diff.data() + pos, sizeof(h));
    const std::size_t bytes = static_cast<std::size_t>(h.len_words) * kDiffWord;
    pos += sizeof(h) + bytes;
    total += bytes;
  }
  COMMON_CHECK(pos == diff.size());
  return total;
}

}  // namespace tmk
