// Core protocol types for the TreadMarks reproduction: vector clocks,
// interval identities, and byte-stream serialization helpers.
//
// Terminology (Keleher's lazy release consistency, as implemented by
// TreadMarks §2.2):
//   - an *interval* is the slice of one processor's execution between two
//     consecutive release operations (lock release or barrier arrival);
//   - a *write notice* says "interval (creator, seq) modified page p";
//   - a *vector clock* VC[q] = highest seq of q's intervals whose write
//     notices this processor has seen (and invalidated against).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/page.hpp"
#include "mpl/frame.hpp"

namespace tmk {

using ProcId = std::uint16_t;
using Seq = std::uint32_t;       // per-processor interval sequence number
using PageIndex = std::uint32_t;

/// Vector clock over at most kMaxProcs processors. Entries beyond nprocs
/// stay zero.
class VectorClock {
 public:
  [[nodiscard]] Seq get(ProcId p) const noexcept { return v_[p]; }
  void set(ProcId p, Seq s) noexcept { v_[p] = s; }

  void merge(const VectorClock& o) noexcept {
    for (std::size_t i = 0; i < v_.size(); ++i)
      v_[i] = std::max(v_[i], o.v_[i]);
  }

  /// Componentwise <=: this happened-before-or-equals other.
  [[nodiscard]] bool dominated_by(const VectorClock& o) const noexcept {
    for (std::size_t i = 0; i < v_.size(); ++i)
      if (v_[i] > o.v_[i]) return false;
    return true;
  }

  /// Sum of components: a linear extension of happens-before for
  /// intervals (used to order diff application; see DESIGN.md §5).
  [[nodiscard]] std::uint64_t weight() const noexcept {
    std::uint64_t s = 0;
    for (Seq x : v_) s += x;
    return s;
  }

  [[nodiscard]] bool operator==(const VectorClock&) const = default;

 private:
  std::array<Seq, mpl::kMaxProcs> v_{};
};

/// Fixed-size rank bitmask: the consumer sets of the hybrid update
/// protocol (one bit per rank that is predicted to read a page).
class ProcMask {
 public:
  void set(int p) noexcept {
    w_[static_cast<std::size_t>(p) >> 6] |= std::uint64_t{1} << (p & 63);
  }
  void clear(int p) noexcept {
    w_[static_cast<std::size_t>(p) >> 6] &= ~(std::uint64_t{1} << (p & 63));
  }
  [[nodiscard]] bool test(int p) const noexcept {
    return ((w_[static_cast<std::size_t>(p) >> 6] >> (p & 63)) & 1) != 0;
  }
  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t x : w_)
      if (x != 0) return true;
    return false;
  }
  void reset() noexcept { w_.fill(0); }
  void merge(const ProcMask& o) noexcept {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
  }
  [[nodiscard]] bool operator==(const ProcMask&) const = default;

 private:
  std::array<std::uint64_t, (mpl::kMaxProcs + 63) / 64> w_{};
};

/// Identity of one interval.
struct IntervalKey {
  ProcId creator = 0;
  Seq seq = 0;
  [[nodiscard]] bool operator==(const IntervalKey&) const = default;
};

/// Race-detection access mask: one bit per 4-byte word of a page
/// (4 KiB = 1024 words = sixteen mask words) — the DSM's own diff word
/// (diff.hpp kDiffWord), i.e. the protocol's definition of false
/// sharing. Granularity matters: the legal concurrent writes the
/// multiple-writer protocol exists to support land on distinct diff
/// words of shared pages — often inside the SAME 8-byte word
/// (neighboring ranks writing adjacent floats across a row boundary in
/// Shallow, whose 97-float rows are not 8-byte multiples) — so any
/// coarser mask reports that false sharing as a race. Elements are
/// >= 4 bytes naturally aligned throughout; sub-diff-word false
/// sharing cannot occur.
struct RaceMask {
  static constexpr std::size_t kWordBytes = 4;  // == tmk::kDiffWord
  static constexpr std::size_t kWords = common::kPageSize / kWordBytes;
  std::array<std::uint64_t, kWords / 64> v{};

  /// Mask of the single page word covering byte `offset_in_page`.
  [[nodiscard]] static RaceMask word_at(std::size_t offset_in_page) noexcept {
    const std::size_t word = offset_in_page / kWordBytes;
    RaceMask m;
    m.v[word / 64] = std::uint64_t{1} << (word % 64);
    return m;
  }
  /// Mask of every word overlapping [offset, offset + len) — an
  /// element-sized access footprint (e.g. one u64 store = two words).
  [[nodiscard]] static RaceMask range(std::size_t offset,
                                      std::size_t len) noexcept {
    RaceMask m;
    const std::size_t first = offset / kWordBytes;
    const std::size_t last = (offset + len - 1) / kWordBytes;
    for (std::size_t word = first; word <= last && word < kWords; ++word)
      m.v[word / 64] |= std::uint64_t{1} << (word % 64);
    return m;
  }
  /// Full-page mask (summary-mode read witness).
  [[nodiscard]] static RaceMask all() noexcept {
    RaceMask m;
    m.v.fill(~std::uint64_t{0});
    return m;
  }
  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t w : v)
      if (w != 0) return true;
    return false;
  }
  RaceMask& operator|=(const RaceMask& o) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] |= o.v[i];
    return *this;
  }
  [[nodiscard]] friend RaceMask operator&(const RaceMask& a,
                                          const RaceMask& b) noexcept {
    RaceMask m;
    for (std::size_t i = 0; i < m.v.size(); ++i) m.v[i] = a.v[i] & b.v[i];
    return m;
  }
  /// this & ~o — the watermark subtraction of the cumulative-twin scan.
  [[nodiscard]] RaceMask minus(const RaceMask& o) const noexcept {
    RaceMask m;
    for (std::size_t i = 0; i < m.v.size(); ++i) m.v[i] = v[i] & ~o.v[i];
    return m;
  }
  [[nodiscard]] auto operator<=>(const RaceMask&) const = default;

  /// Compact hex rendering of the 1024-bit value, leading zeros trimmed
  /// (highest mask word first) — the TMK_RACE_REPORT "words" field.
  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    bool significant = false;
    for (std::size_t i = v.size(); i-- > 0;) {
      for (int shift = 60; shift >= 0; shift -= 4) {
        const auto d = static_cast<std::size_t>((v[i] >> shift) & 0xF);
        if (d != 0) significant = true;
        if (significant) out.push_back(kDigits[d]);
      }
    }
    if (out.empty()) out.push_back('0');
    return out;
  }
};

/// Metadata of one interval as shipped in write notices: who, when (its
/// creator's vector time at close), and which pages it dirtied.
/// `vc_weight` caches vc.weight(): the fetch path sorts fetched diffs by
/// it, and recomputing a kMaxProcs-wide sum per comparison would scale
/// with the widened clock instead of staying O(1).
struct IntervalMeta {
  IntervalKey id;
  VectorClock vc;
  std::uint64_t vc_weight = 0;
  std::vector<PageIndex> pages;
  // Race detection only (TMK_RACECHECK != off): one word-granular
  // RaceMask per entry of `pages`. Shipped with the write notice so
  // the receiver's write/write checks never alias distinct words —
  // page- or block-granular checks would flag the legal concurrent
  // same-page disjoint writes the multiple-writer protocol exists to
  // support. Empty when detection is off: the wire format and memory
  // footprint are unchanged.
  std::vector<RaceMask> write_masks;
};

// ---------------------------------------------------------------------
// Packed write-notice identities. A (creator, seq, page) triple fits one
// 64-bit FlatSet64 key:
//
//   bit 63 ........ 57 56 ................. 27 26 ............. 0
//   [ creator : 7b ]  [       seq : 30b       ]  [ page : 27b    ]
//
// The layout is ordering-preserving — keys compare like the tuple
// (creator, seq, page) — and the (creator, seq) identity is recoverable
// as the key's high 37 bits, which is what prefix erasure filters on.
// ---------------------------------------------------------------------

inline constexpr int kPackCreatorBits = 7;
inline constexpr int kPackSeqBits = 30;
inline constexpr int kPackPageBits = 27;
static_assert(kPackCreatorBits + kPackSeqBits + kPackPageBits == 64);
static_assert(mpl::kMaxProcs <= (1 << kPackCreatorBits),
              "creator field too narrow for kMaxProcs");

/// Largest representable values (inclusive); the runtime checks its heap
/// and interval counts against these at startup / interval close.
inline constexpr Seq kPackMaxSeq = (Seq{1} << kPackSeqBits) - 1;
inline constexpr PageIndex kPackMaxPage = (PageIndex{1} << kPackPageBits) - 1;

/// Packs one pre-applied write-notice identity into a FlatSet64 key.
[[nodiscard]] constexpr std::uint64_t pack_preapplied(
    ProcId creator, Seq seq, PageIndex page) noexcept {
  return (static_cast<std::uint64_t>(creator)
          << (kPackSeqBits + kPackPageBits)) |
         (static_cast<std::uint64_t>(seq) << kPackPageBits) |
         static_cast<std::uint64_t>(page);
}

/// The (creator, seq) identity of a packed key, for prefix erasure.
[[nodiscard]] constexpr std::uint64_t preapplied_prefix(
    std::uint64_t key) noexcept {
  return key >> kPackPageBits;
}

/// Field extraction (tests and diagnostics).
[[nodiscard]] constexpr ProcId preapplied_creator(std::uint64_t key) noexcept {
  return static_cast<ProcId>(key >> (kPackSeqBits + kPackPageBits));
}
[[nodiscard]] constexpr Seq preapplied_seq(std::uint64_t key) noexcept {
  return static_cast<Seq>((key >> kPackPageBits) & kPackMaxSeq);
}
[[nodiscard]] constexpr PageIndex preapplied_page(std::uint64_t key) noexcept {
  return static_cast<PageIndex>(key & kPackMaxPage);
}

// ---------------------------------------------------------------------
// Byte-stream serialization. All traffic stays on one host, so host byte
// order is fine; bounds are checked on the read side.
// ---------------------------------------------------------------------

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_bytes(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void put_vc(const VectorClock& vc, int nprocs) {
    for (int i = 0; i < nprocs; ++i) put<Seq>(vc.get(static_cast<ProcId>(i)));
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Drops the contents but keeps the capacity: hot paths reuse one
  /// writer across messages instead of allocating per send.
  void clear() noexcept { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> b) noexcept : buf_(b) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    COMMON_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(),
                     "message underflow reading " << sizeof(T) << " bytes");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t n) {
    COMMON_CHECK_MSG(pos_ + n <= buf_.size(), "message underflow");
    auto s = buf_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] VectorClock get_vc(int nprocs) {
    VectorClock vc;
    for (int i = 0; i < nprocs; ++i)
      vc.set(static_cast<ProcId>(i), get<Seq>());
    return vc;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace tmk
