// Lock protocol (§2.2).
//
// "Each lock has a statically assigned manager. The manager records which
//  processor has most recently requested the lock. All lock acquire
//  requests are directed to the manager, and, if necessary, forwarded to
//  the processor that last requested the lock. A lock release does not
//  cause any communication."
//
// The grant carries the write notices of every interval the acquirer has
// not yet seen (lazy release consistency) — this is the "combined
// synchronization and data transfer" the message-passing comparison in §5
// credits to the MP programs, which DSM achieves only at lock grants.
#include "tmk/runtime.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace tmk {

void Runtime::lock_acquire(int lock_id) {
  COMMON_CHECK(lock_id >= 0 && lock_id < options_.num_locks);
  simx::ProtocolSection protocol(ep_.clock());
  stats_.lock_acquires.fetch_add(1, std::memory_order_relaxed);
  if (nprocs_ == 1) {
    locks_[static_cast<std::size_t>(lock_id)].held = true;
    return;
  }

  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(lock_id));
  {
    std::lock_guard<std::mutex> g(mu_);
    w.put_vc(vc_, nprocs_);
  }
  const std::uint32_t req_id = next_req_id_++;
  ep_.send_svc(lock_manager(lock_id), mpl::FrameKind::kLockRequest, lock_id,
               req_id, w.bytes());

  char site[64];
  std::snprintf(site, sizeof(site), "lock %d acquire (manager %d)", lock_id,
                lock_manager(lock_id));
  ep_.set_wait_site(site);
  mpl::Frame f = ep_.wait_app([lock_id](const mpl::Frame& fr) {
    return fr.kind == mpl::FrameKind::kLockGrant && fr.tag == lock_id;
  });
  ByteReader r(f.payload);
  const auto granted_lock = r.get<std::uint32_t>();
  COMMON_CHECK(granted_lock == static_cast<std::uint32_t>(lock_id));
  VectorClock granter_vc = r.get_vc(nprocs_);
  {
    std::lock_guard<std::mutex> g(mu_);
    read_intervals(r);
    vc_.merge(granter_vc);
    LockState& st = locks_[static_cast<std::size_t>(lock_id)];
    COMMON_CHECK(!st.held);
    st.held = true;
    st.released_here = false;
  }
  ep_.recycle_buffer(std::move(f.payload));
  race_maybe_throw();
}

void Runtime::lock_release(int lock_id) {
  COMMON_CHECK(lock_id >= 0 && lock_id < options_.num_locks);
  simx::ProtocolSection protocol(ep_.clock());
  if (nprocs_ == 1) {
    locks_[static_cast<std::size_t>(lock_id)].held = false;
    return;
  }
  close_interval();

  std::optional<std::pair<ProcId, VectorClock>> successor;
  {
    std::lock_guard<std::mutex> g(mu_);
    LockState& st = locks_[static_cast<std::size_t>(lock_id)];
    COMMON_CHECK_MSG(st.held, "releasing a lock not held");
    st.held = false;
    // Outgoing sync edge: reads before this release are ordered before
    // every write the successor chain performs after acquiring — and a
    // read-only rank closes no interval that could ever say so. Prune
    // by epoch instead of false-reporting when such a write's notice
    // arrives later (detection may miss a genuinely concurrent old
    // notice that arrives after this point; it never false-reports).
    ++race_epoch_;
    if (st.successor.has_value()) {
      successor = std::move(st.successor);
      st.successor.reset();
      st.released_here = false;  // ownership passes on immediately
    } else {
      st.released_here = true;   // silent release
    }
  }
  if (successor.has_value()) {
    send_lock_grant(lock_id, successor->first, successor->second,
                    /*from_service=*/false, /*base_vt=*/0);
  }
}

void Runtime::send_lock_grant(int lock_id, ProcId requester,
                              const VectorClock& req_vc, bool from_service,
                              std::uint64_t base_vt) {
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(lock_id));
  {
    std::lock_guard<std::mutex> g(mu_);
    w.put_vc(vc_, nprocs_);
    serialize_intervals_lacking(w, req_vc);
    if ((update_mode_ == UpdateMode::kAdaptive ||
         update_mode_ == UpdateMode::kHybrid) &&
        requester != rank_) {
      // Adaptive predictor feed: the successor is about to invalidate
      // (and likely pull) every page our unseen-by-them intervals wrote
      // — treat the grant like an observed request for those pages.
      const Seq lo = req_vc.get(static_cast<ProcId>(rank_));
      const Seq hi = vc_.get(static_cast<ProcId>(rank_));
      const auto& own = intervals_[static_cast<std::size_t>(rank_)];
      for (Seq s = std::max(lo, own.base) + 1; s <= hi && s <= own.hi(); ++s) {
        for (PageIndex page : own.at(s)->pages) {
          PageExt& px = ext(page);
          px.adaptive_consumers.set(requester);
          px.push_budget = push_credits_;
        }
      }
    }
  }
  if (from_service) {
    const std::uint64_t arrival = ep_.stamp_reply(base_vt, requester,
                                              w.size());
    ep_.send_app_stamped(requester, mpl::FrameKind::kLockGrant, lock_id, 0,
                         w.bytes(), arrival);
  } else {
    // Grant plus piggybacked write notices as one burst toward the
    // successor — the "combined synchronization and data transfer" unit.
    ep_.begin_burst(requester);
    ep_.send_app(requester, mpl::FrameKind::kLockGrant, lock_id, 0,
                 w.bytes());
    ep_.flush_burst();
  }
}

// ---- service-thread handlers ----------------------------------------

void Runtime::serve_lock_request(const mpl::Frame& f) {
  const auto& m = ep_.clock().model();
  const std::uint64_t handler = m.handler_cost(1);
  ep_.clock().charge_interrupt(m.recv_overhead_ns + handler +
                               m.send_overhead_ns);
  ByteReader r(f.payload);
  const auto lock_id = r.get<std::uint32_t>();
  VectorClock req_vc = r.get_vc(nprocs_);
  COMMON_CHECK(lock_manager(static_cast<int>(lock_id)) == rank_);

  ProcId last;
  {
    std::lock_guard<std::mutex> g(mu_);
    last = lock_last_requester_[lock_id];
    lock_last_requester_[lock_id] = static_cast<ProcId>(f.src);
  }

  // Forward to the previous requester (possibly ourselves).
  ByteWriter w;
  w.put<std::uint32_t>(lock_id);
  w.put<ProcId>(static_cast<ProcId>(f.src));
  w.put_vc(req_vc, nprocs_);
  const std::uint64_t base = f.vt_arrival + m.recv_overhead_ns + handler;
  const std::uint64_t arrival = ep_.stamp_reply(base, last, w.size());
  ep_.send_svc_stamped(last, mpl::FrameKind::kLockForward,
                       static_cast<std::int32_t>(lock_id), f.req_id,
                       w.bytes(), arrival);
}

void Runtime::serve_lock_forward(const mpl::Frame& f) {
  const auto& m = ep_.clock().model();
  const std::uint64_t handler = m.handler_cost(1);
  ep_.clock().charge_interrupt(m.recv_overhead_ns + handler +
                               m.send_overhead_ns);
  ByteReader r(f.payload);
  const auto lock_id = r.get<std::uint32_t>();
  const auto requester = r.get<ProcId>();
  VectorClock req_vc = r.get_vc(nprocs_);

  bool grant_now = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    LockState& st = locks_[lock_id];
    if (st.released_here) {
      st.released_here = false;
      grant_now = true;
    } else {
      // Still held (or we are ourselves waiting for the grant): park the
      // requester; the release path will grant. The manager's chaining
      // guarantees at most one parked successor.
      COMMON_CHECK(!st.successor.has_value());
      st.successor = std::make_pair(requester, req_vc);
    }
  }
  if (grant_now) {
    send_lock_grant(static_cast<int>(lock_id), requester, req_vc,
                    /*from_service=*/true,
                    f.vt_arrival + m.recv_overhead_ns + handler);
  }
}

}  // namespace tmk
